/**
 * @file
 * Axiomatic consistency checker (DESIGN.md section 8).
 *
 * Given a recorded Trace and the ModelParams of the machine that produced
 * it, the checker builds the model's happens-before relation:
 *
 *   hb = ppo(model) ∪ rf ∪ co ∪ fr
 *
 * where ppo is program order restricted to what the model's hardware
 * actually enforces (full order under SC; order around sync operations
 * under WO; acquire/release order under RC; po-loc for every model), rf
 * is reads-from, co is the per-granule coherence (version) order, and fr
 * is from-reads (read of version k precedes the write of version k+1).
 * The trace is legal iff hb is acyclic; on a cycle the checker prints a
 * minimal-cycle witness.
 *
 * Because plain data accesses bind their values functionally at issue
 * time (the simulator's functional/timing split), value-level outcomes
 * alone cannot exhibit hardware reordering. The checker therefore
 * *reconstructs* the hardware-visible reads-from relation from the
 * perform timestamps: a plain read observes the newest granule version
 * whose write was visible to it by its perform time (own writes at their
 * bind, remote writes at their global perform). Sync reads execute
 * functionally at completion, so their sampled version tags are already
 * hardware-exact and are used directly.
 *
 * In addition to the graph check, every ppo generator edge carries a
 * temporal obligation (e.g. under WO a sync may not issue before every
 * prior access performed); violations are reported even when they do not
 * close a cycle, which makes single-sided ordering bugs deterministic to
 * catch.
 */

#ifndef MCSIM_AXIOM_AXIOM_CHECKER_HH
#define MCSIM_AXIOM_AXIOM_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "axiom/trace.hh"
#include "core/consistency.hh"

namespace mcsim::axiom
{

/** Relation an hb edge belongs to (witness labeling). */
enum class EdgeRel : std::uint8_t
{
    Ppo,    ///< model-enforced program order
    PoLoc,  ///< same-granule program order
    Rf,     ///< reads-from
    Co,     ///< coherence (version) order
    Fr,     ///< from-read
};

const char *edgeRelName(EdgeRel rel);

/** One hb edge, labeled. */
struct HbEdge
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    EdgeRel rel = EdgeRel::Ppo;
};

/** A ppo generator edge whose temporal obligation failed. */
struct TemporalViolation
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    /** Which hardware rule was broken (human-readable). */
    std::string rule;
};

/** Verdict for one trace. */
struct AxiomResult
{
    bool ok = true;

    /** ppo edges whose timestamps contradict the model's stall rules. */
    std::vector<TemporalViolation> temporal;

    /** Minimal hb cycle (edge list, cyclically ordered); empty if none. */
    std::vector<HbEdge> cycle;

    /** Human-readable report: violations and the cycle witness. */
    std::string message;

    /** Per event: reconstructed hardware-visible value for reads (the
     *  value of hwReadsFrom's write, or the initial value 0). Indexed by
     *  event id; writes carry their own value. */
    std::vector<std::uint64_t> hwValues;

    /** Per event: source write event id of the read's first granule, or
     *  UINT32_MAX when reading the initial state (or not a read). */
    std::vector<std::uint32_t> hwReadsFrom;

    std::size_t edgeCount = 0;
};

/** Check @p trace against the axioms of @p model. */
AxiomResult checkTrace(const Trace &trace, const core::ModelParams &model);

} // namespace mcsim::axiom

#endif // MCSIM_AXIOM_AXIOM_CHECKER_HH
