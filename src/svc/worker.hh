/**
 * @file
 * Shard worker: executes one shard of a plan, checkpointing every
 * completed point into the shard's journal (DESIGN.md section 15).
 *
 * The worker is crash-oblivious by design: it opens (or creates) its
 * journal, re-derives the shard's point list from the plan, skips every
 * point that already has a valid frame, and runs the rest, appending a
 * flushed frame per completion. Being SIGKILLed at any instant and
 * relaunched with the same arguments therefore always makes forward
 * progress, and finishing twice is idempotent. A journal written by a
 * different plan (fingerprint mismatch) is refused, never overwritten.
 */

#ifndef MCSIM_SVC_WORKER_HH
#define MCSIM_SVC_WORKER_HH

#include <cstddef>
#include <string>

#include "svc/shard.hh"

namespace mcsim::svc
{

/** Worker knobs (threads within the worker process, test hooks). */
struct WorkerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Print per-point progress to stderr. */
    bool progress = true;
    /**
     * Chaos-engineering hook: raise(SIGKILL) immediately after
     * journaling this many NEW points (0 = never). The kill lands after
     * the frame flush, so exactly the journaled work survives -- this is
     * how the CI kill/resume gate makes crashes reproducible.
     */
    std::size_t killAfter = 0;
    /** Stop scheduling new points after journaling this many new ones
     *  (0 = run to completion). A clean in-process variant of killAfter
     *  for tests; in-flight points still complete and journal. */
    std::size_t stopAfter = 0;
};

/** What one worker attempt accomplished. */
struct WorkerResult
{
    /** Points already journaled when the attempt started. */
    std::size_t resumedPoints = 0;
    /** New points journaled by this attempt. */
    std::size_t completedPoints = 0;
    /** Journaled points whose job/pair FAILED (recorded, not fatal:
     *  merge reproduces the failure byte-for-byte). */
    std::size_t failedJobs = 0;
    /** Every shard point is journaled. */
    bool done = false;
    /** Cut short by stopAfter (never set together with done). */
    bool stopped = false;
};

/**
 * Run shard @p shard of @p plan against the journal at @p journal_path.
 * fatal() on I/O failure, a corrupt journal, or a plan mismatch.
 */
WorkerResult runShardWorker(const ShardPlan &plan, std::uint32_t shard,
                            const std::string &journal_path,
                            const WorkerOptions &options = {});

} // namespace mcsim::svc

#endif // MCSIM_SVC_WORKER_HH
