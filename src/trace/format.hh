/**
 * @file
 * The canonical binary trace format (DESIGN.md section 14).
 *
 * A trace file is a 64-byte little-endian header followed by a sequence
 * of CRC-framed blocks. Each block carries the next run of records for
 * one processor; records are delta-encoded (addresses and load tokens
 * as zigzag varint deltas) with the delta state reset at every block
 * boundary, so a corrupt block never poisons its neighbours and a
 * reader can stream one processor without touching the others' payload
 * bytes.
 *
 * The record vocabulary is exactly the processor's issue-boundary
 * instruction set (cpu::Processor::OpKind): what a workload co_awaits is
 * what a trace stores, so capture and replay are lossless by
 * construction. Wire opcodes are assigned explicitly here -- reordering
 * the OpKind enumerators can never silently change the file format.
 */

#ifndef MCSIM_TRACE_FORMAT_HH
#define MCSIM_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/processor.hh"
#include "sim/types.hh"

namespace mcsim::trace
{

/** Instruction kinds reuse the processor's issue vocabulary. */
using OpKind = cpu::Processor::OpKind;

/** File magic: "MCST" as the first four bytes. */
constexpr std::uint32_t traceMagic = 0x5453434Du;

/** Block magic: "MCTB" leads every record block. */
constexpr std::uint32_t blockMagic = 0x4254434Du;

/** Format version this build reads and writes. */
constexpr std::uint16_t traceVersion = 1;

/** Fixed size of the file header, bytes. */
constexpr std::size_t headerBytes = 64;

/** Fixed size of a block header, bytes. */
constexpr std::size_t blockHeaderBytes = 20;

/** Upper bound on one block's payload; caps reader buffering. */
constexpr std::uint32_t maxBlockPayload = 1u << 20;

/** Upper bound on records per block (writer flush threshold). */
constexpr std::uint32_t blockRecordLimit = 4096;

/** Who produced a trace (header field; names are the CLI vocabulary). */
enum class Generator : std::uint8_t
{
    Captured,  ///< recorded from a workload run (TraceCapture)
    Zipfian,   ///< zipfian hot-key key-value traffic
    Bursty,    ///< bursty open-loop request arrivals
    Ring,      ///< producer/consumer rings between neighbours
    LockStorm, ///< lock-contention storm on few hot locks
};

const char *generatorName(Generator generator);

/** Parse a generator CLI name ("zipf", ...); fatal() on unknown names. */
Generator generatorFromName(const std::string &name);

/** Decoded file header. */
struct TraceHeader
{
    std::uint32_t procCount = 0;
    std::uint64_t seed = 0;
    Generator generator = Generator::Captured;
    /** Free-form origin label (workload or generator name), <= 23 chars. */
    std::string source;
    /** Total records across all processors (writer patches at finish). */
    std::uint64_t totalRecords = 0;
};

/**
 * One replayable instruction. Mirrors cpu::Processor::Op field for
 * field; `token` is meaningful only for Use records (Load tokens are
 * assigned by the replaying processor in program order, so they never
 * need to be stored).
 */
struct Record
{
    OpKind kind{OpKind::Exec};
    Addr addr = 0;
    std::uint64_t value = 0;
    std::uint32_t cycles = 0;
    std::uint64_t token = 0;
    std::uint8_t width = 8;
    bool own = false;

    bool operator==(const Record &) const = default;
};

/** Little-endian scalar append helpers. @{ */
void putU16(std::vector<std::uint8_t> &out, std::uint16_t v);
void putU32(std::vector<std::uint8_t> &out, std::uint32_t v);
void putU64(std::vector<std::uint8_t> &out, std::uint64_t v);
/** @} */

/** Little-endian scalar readers (no bounds check; caller slices). @{ */
std::uint16_t getU16(const std::uint8_t *p);
std::uint32_t getU32(const std::uint8_t *p);
std::uint64_t getU64(const std::uint8_t *p);
/** @} */

/** CRC-32 (IEEE 802.3 polynomial) over @p size bytes. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

/**
 * Per-block delta-codec state. Reset at every block boundary (both
 * sides), so blocks decode independently.
 */
struct CodecState
{
    Addr prevAddr = 0;
    std::uint64_t prevToken = 0;
};

/** Append the wire encoding of @p rec to @p out, advancing @p state. */
void encodeRecord(std::vector<std::uint8_t> &out, CodecState &state,
                  const Record &rec);

/**
 * Decode one record from @p data at @p pos (advanced past the record).
 * fatal() with a structured message on any malformed byte -- unknown
 * opcode, bad width bit combination, or a varint running past @p size
 * (mid-record end of payload). @p context names the block for the error
 * message.
 */
Record decodeRecord(const std::uint8_t *data, std::size_t size,
                    std::size_t &pos, CodecState &state,
                    const char *context);

/** Serialize @p header into its fixed 64-byte form (CRC included). */
std::vector<std::uint8_t> encodeHeader(const TraceHeader &header);

/**
 * Parse and validate the fixed header in @p data (at least headerBytes
 * long as sliced by the caller). fatal() on bad magic, unsupported
 * version, or header CRC mismatch.
 */
TraceHeader decodeHeader(const std::uint8_t *data);

} // namespace mcsim::trace

#endif // MCSIM_TRACE_FORMAT_HH
