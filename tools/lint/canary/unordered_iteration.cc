// Canary fixture for mcsim-lint's no-unordered-iteration check: two
// unsuppressed walks that must be reported, and one correctly
// suppressed walk that must stay silent. NOT compiled into any target.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Directory
{
    std::unordered_map<std::uint64_t, unsigned> lines;
    std::unordered_set<std::uint64_t> pending;
};

unsigned
sumStates(const Directory &d)
{
    unsigned total = 0;
    for (const auto &kv : d.lines)  // violation: range-for, unsuppressed
        total += kv.second;
    return total;
}

std::uint64_t
firstPending(const Directory &d)
{
    // violation: iterator walk over an unordered container
    auto it = d.pending.begin();
    return it == d.pending.end() ? 0 : *it;
}

unsigned
suppressedSum(const Directory &d)
{
    unsigned total = 0;
    // mcsim-lint: order-insensitive(commutative sum over all entries)
    for (const auto &kv : d.lines)
        total += kv.second;
    return total;
}
