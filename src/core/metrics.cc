#include "core/metrics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcsim::core
{

RunMetrics
RunMetrics::fromMachine(const Machine &machine, Tick run_ticks)
{
    RunMetrics m;
    m.cycles = run_ticks;

    const unsigned procs = machine.numProcs();
    std::uint64_t read_hits = 0;
    std::uint64_t write_hits = 0;

    for (unsigned p = 0; p < procs; ++p) {
        const auto &cs = machine.cache(p).stats();
        m.totalReads += cs.loads;
        m.totalWrites += cs.stores;
        read_hits += cs.loadHits;
        write_hits += cs.storeHits;
        m.invalidationMisses += cs.invalidationMisses;
        m.prefetchesIssued += cs.prefetchesIssued;
        m.prefetchesUseful += cs.prefetchesUseful;

        const auto &ps = machine.proc(p).stats();
        m.totalSyncOps += ps.syncLoads + ps.syncRmws + ps.syncStores;
        m.releasesDeferred += ps.releasesDeferred;

        m.breakdown.merge(ps.breakdown);
        m.idleCycles += run_ticks - ps.finishedAt;
        m.missLatencyHist.merge(cs.missLatencyHist);

        m.bufferBypasses += machine.procBufferStats(p).bypasses;
    }

    m.netTransitHist.merge(machine.requestNetStats().transitHist);
    m.netTransitHist.merge(machine.responseNetStats().transitHist);
    for (unsigned i = 0; i < machine.config().numModules; ++i)
        m.memQueueHist.merge(machine.module(i).stats().queueHist);

    if (const check::Checker *checker = machine.checker()) {
        const auto &cs = checker->stats();
        m.checkViolations = cs.totalViolations();
        m.checkLineAudits = cs.lineAudits;
        m.checkAccessesChecked = cs.accessesChecked;
        m.checkOrderingChecked = cs.orderingChecked;
    }

    if (const fault::FaultPlan *plan = machine.faultPlan())
        m.faultsInjected = plan->stats().total();
    for (unsigned p = 0; p < procs; ++p) {
        const auto &cs = machine.cache(p).stats();
        m.protocolRetries += cs.retries;
        m.protocolNacks += cs.nacksReceived;
        m.staleProtocolMsgs += cs.staleReplies;
    }
    for (unsigned i = 0; i < machine.config().numModules; ++i)
        m.staleProtocolMsgs += machine.module(i).stats().staleMessages;

    m.readsPerProc = static_cast<double>(m.totalReads) / procs;
    m.writesPerProc = static_cast<double>(m.totalWrites) / procs;
    m.syncOpsPerProc = static_cast<double>(m.totalSyncOps) / procs;

    m.readHitRate = m.totalReads
                        ? static_cast<double>(read_hits) / m.totalReads
                        : 1.0;
    m.writeHitRate = m.totalWrites
                         ? static_cast<double>(write_hits) / m.totalWrites
                         : 1.0;
    const std::uint64_t refs = m.totalReads + m.totalWrites;
    m.hitRate = refs ? static_cast<double>(read_hits + write_hits) / refs
                     : 1.0;
    m.totalMisses = refs - read_hits - write_hits;

    std::uint64_t busy_max = 0;
    std::uint64_t busy_min = ~std::uint64_t(0);
    for (unsigned i = 0; i < machine.config().numModules; ++i) {
        const std::uint64_t busy = machine.module(i).stats().busyCycles;
        busy_max = std::max(busy_max, busy);
        busy_min = std::min(busy_min, busy);
    }
    m.moduleSkew = busy_min > 0 ? static_cast<double>(busy_max) /
                                      static_cast<double>(busy_min)
                                : static_cast<double>(busy_max);

    std::uint64_t lat_sum = 0;
    std::uint64_t lat_count = 0;
    for (unsigned p = 0; p < procs; ++p) {
        lat_sum += machine.cache(p).stats().missLatencySum;
        lat_count += machine.cache(p).stats().missLatencyCount;
        m.mshrBusyCycles += machine.cache(p).stats().mshrBusyCycles;
    }
    m.avgMshrOccupancy =
        run_ticks ? static_cast<double>(m.mshrBusyCycles) /
                        (static_cast<double>(run_ticks) * procs)
                  : 0.0;
    m.avgMissLatency =
        lat_count ? static_cast<double>(lat_sum) /
                        static_cast<double>(lat_count)
                  : 0.0;

    const auto &rs = machine.responseNetStats();
    m.avgRespLatency =
        rs.messages ? static_cast<double>(rs.latencyCycles) / rs.messages
                    : 0.0;
    return m;
}

std::string
RunMetrics::summary() const
{
    return strprintf(
        "cycles=%llu refs/proc=%.0f hit=%.3f (r=%.3f w=%.3f) syncs/proc=%.0f",
        static_cast<unsigned long long>(cycles),
        readsPerProc + writesPerProc, hitRate, readHitRate, writeHitRate,
        syncOpsPerProc);
}

StatSet
RunMetrics::toStatSet() const
{
    StatSet out;
    out.set("cycles", static_cast<double>(cycles));
    out.set("readsPerProc", readsPerProc);
    out.set("writesPerProc", writesPerProc);
    out.set("syncOpsPerProc", syncOpsPerProc);
    out.set("readHitRate", readHitRate);
    out.set("writeHitRate", writeHitRate);
    out.set("hitRate", hitRate);
    out.set("totalReads", static_cast<double>(totalReads));
    out.set("totalWrites", static_cast<double>(totalWrites));
    out.set("totalSyncOps", static_cast<double>(totalSyncOps));
    out.set("invalidationMisses", static_cast<double>(invalidationMisses));
    out.set("totalMisses", static_cast<double>(totalMisses));
    out.set("bufferBypasses", static_cast<double>(bufferBypasses));
    out.set("prefetchesIssued", static_cast<double>(prefetchesIssued));
    out.set("prefetchesUseful", static_cast<double>(prefetchesUseful));
    out.set("releasesDeferred", static_cast<double>(releasesDeferred));
    out.set("checkViolations", static_cast<double>(checkViolations));
    out.set("checkLineAudits", static_cast<double>(checkLineAudits));
    out.set("checkAccessesChecked",
            static_cast<double>(checkAccessesChecked));
    out.set("checkOrderingChecked",
            static_cast<double>(checkOrderingChecked));
    out.set("faultsInjected", static_cast<double>(faultsInjected));
    out.set("protocolRetries", static_cast<double>(protocolRetries));
    out.set("protocolNacks", static_cast<double>(protocolNacks));
    out.set("staleProtocolMsgs", static_cast<double>(staleProtocolMsgs));
    out.set("moduleSkew", moduleSkew);
    out.set("avgRespLatency", avgRespLatency);
    out.set("avgMissLatency", avgMissLatency);
    out.set("mshrBusyCycles", static_cast<double>(mshrBusyCycles));
    out.set("avgMshrOccupancy", avgMshrOccupancy);
    out.set("busyCycles", static_cast<double>(breakdown.busyCycles));
    out.set("idleCycles", static_cast<double>(idleCycles));
    out.set("stallLoadMissCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::LoadMiss)));
    out.set("stallStoreMshrCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::StoreMshr)));
    out.set("stallBufferCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::Buffer)));
    out.set("stallFenceSyncCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::FenceSync)));
    out.set("stallAcquireCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::Acquire)));
    out.set("stallReleaseCycles",
            static_cast<double>(breakdown.cause(obs::StallCause::Release)));
    out.set("missLatencyP50", static_cast<double>(missLatencyHist.p50()));
    out.set("missLatencyP90", static_cast<double>(missLatencyHist.p90()));
    out.set("missLatencyP99", static_cast<double>(missLatencyHist.p99()));
    out.set("missLatencyMax", static_cast<double>(missLatencyHist.maxValue));
    out.set("netTransitP50", static_cast<double>(netTransitHist.p50()));
    out.set("netTransitP90", static_cast<double>(netTransitHist.p90()));
    out.set("netTransitP99", static_cast<double>(netTransitHist.p99()));
    out.set("netTransitMax", static_cast<double>(netTransitHist.maxValue));
    out.set("memQueueP50", static_cast<double>(memQueueHist.p50()));
    out.set("memQueueP90", static_cast<double>(memQueueHist.p90()));
    out.set("memQueueP99", static_cast<double>(memQueueHist.p99()));
    out.set("memQueueMax", static_cast<double>(memQueueHist.maxValue));
    return out;
}

double
percentGain(const RunMetrics &base, const RunMetrics &other)
{
    if (base.cycles == 0)
        return 0.0;
    return 100.0 *
           (static_cast<double>(base.cycles) -
            static_cast<double>(other.cycles)) /
           static_cast<double>(base.cycles);
}

double
absoluteGainKCycles(const RunMetrics &base, const RunMetrics &other)
{
    return (static_cast<double>(base.cycles) -
            static_cast<double>(other.cycles)) /
           1000.0;
}

} // namespace mcsim::core
