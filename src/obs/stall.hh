/**
 * @file
 * Stall-cause attribution (DESIGN.md section 10): every non-busy cycle
 * of a processor's execution is charged to exactly one cause, so that
 *
 *     busyCycles + sum(stallCycles) == finishedAt
 *
 * holds exactly per processor. This is the decomposition the paper uses
 * to explain *why* the relaxed models win (busy time vs. read, write and
 * synchronization stalls); the pre-existing ProcStats counters mirror
 * the paper's per-rule charges but deliberately overlap (a gated cycle
 * is charged again at completion), so they cannot be summed. This
 * accounting can.
 */

#ifndef MCSIM_OBS_STALL_HH
#define MCSIM_OBS_STALL_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/stats.hh"

namespace mcsim::obs
{

/**
 * The one cause each stalled processor cycle is charged to. The mapping
 * from model rule to cause is per-machine-type (DESIGN.md section 10):
 * the SC single-outstanding gate, for example, is charged to whichever
 * reference is actually outstanding.
 */
enum class StallCause : std::uint8_t
{
    LoadMiss,   ///< waiting for a load miss (incl. register interlock)
    StoreMshr,  ///< store blocked: MSHR/way conflict or outstanding store
    Buffer,     ///< interface-buffer backpressure (SC store hand-off)
    FenceSync,  ///< fence / WO sync point draining outstanding refs
    Acquire,    ///< waiting for an acquire (sync load / rmw) to perform
    Release,    ///< waiting for a release (sync store) to perform/drain
};

inline constexpr unsigned numStallCauses = 6;

/** Export name ("load_miss_wait", ...). */
inline const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::LoadMiss: return "load_miss_wait";
      case StallCause::StoreMshr: return "store_mshr_wait";
      case StallCause::Buffer: return "buffer_backpressure";
      case StallCause::FenceSync: return "fence_sync_drain";
      case StallCause::Acquire: return "acquire_wait";
      case StallCause::Release: return "release_drain";
    }
    return "<cause>";
}

/** Exact per-processor cycle accounting (see file comment). */
struct StallBreakdown
{
    std::uint64_t busyCycles = 0;
    std::array<std::uint64_t, numStallCauses> stallCycles{};

    void busy(std::uint64_t cycles) { busyCycles += cycles; }

    void
    stall(StallCause cause, std::uint64_t cycles)
    {
        stallCycles[static_cast<unsigned>(cause)] += cycles;
    }

    std::uint64_t
    cause(StallCause c) const
    {
        return stallCycles[static_cast<unsigned>(c)];
    }

    std::uint64_t
    totalStall() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t c : stallCycles)
            sum += c;
        return sum;
    }

    /** Every cycle charged so far; equals finishedAt after a run. */
    std::uint64_t accounted() const { return busyCycles + totalStall(); }

    void
    merge(const StallBreakdown &other)
    {
        busyCycles += other.busyCycles;
        for (unsigned i = 0; i < numStallCauses; ++i)
            stallCycles[i] += other.stallCycles[i];
    }

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "busy_cycles", static_cast<double>(busyCycles));
        for (unsigned i = 0; i < numStallCauses; ++i) {
            out.add(prefix + stallCauseName(static_cast<StallCause>(i)) +
                        "_cycles",
                    static_cast<double>(stallCycles[i]));
        }
    }
};

} // namespace mcsim::obs

#endif // MCSIM_OBS_STALL_HH
