/**
 * @file
 * Tests for the invariant-checking layer (src/check/): clean runs stay
 * silent, each injected fault trips its auditor, Count mode counts
 * instead of throwing, and the unit-level pieces (race detector,
 * ordering linter, protocol lint) behave per their contracts.
 */

#include <gtest/gtest.h>

#include "check/ordering_linter.hh"
#include "check/race_detector.hh"
#include "core/consistency.hh"
#include "core/machine.hh"
#include "core/metrics.hh"
#include "mem/protocol.hh"
#include "sim/task.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using core::Model;

namespace
{

constexpr Addr dataAddr = 0x1000;
constexpr Addr flagAddr = 0x2000;

core::MachineConfig
smallConfig(Model model, unsigned procs = 2)
{
    core::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.numModules = procs;
    cfg.model = model;
    cfg.cacheBytes = 1024;
    cfg.lineBytes = 16;
    return cfg;
}

SimTask
handoffWriter(cpu::Processor &p)
{
    co_await p.store(dataAddr, 42);
    co_await p.syncStore(flagAddr, 1);
}

SimTask
handoffReader(cpu::Processor &p, std::uint64_t &seen)
{
    for (;;) {
        const std::uint64_t f = co_await p.syncLoad(flagAddr);
        if (f == 1)
            break;
        co_await p.branch();
    }
    seen = co_await p.loadUse(dataAddr);
}

} // namespace

TEST(Checker, CleanHandoffRunsSilentlyOnEveryModel)
{
    for (Model model : core::allModels) {
        core::MachineConfig cfg = smallConfig(model);
        core::Machine m(cfg);
        ASSERT_NE(m.checker(), nullptr);
        std::uint64_t seen = 0;
        m.startWorkload(0, handoffWriter(m.proc(0)));
        m.startWorkload(1, handoffReader(m.proc(1), seen));
        EXPECT_NO_THROW(m.run()) << core::modelName(model);
        EXPECT_EQ(seen, 42u);

        const auto &cs = m.checker()->stats();
        EXPECT_EQ(cs.totalViolations(), 0u);
        EXPECT_GT(cs.lineAudits, 0u);
        EXPECT_GT(cs.accessesChecked, 0u);
        EXPECT_GT(cs.orderingChecked, 0u);
        EXPECT_GT(cs.messagesChecked, 0u);
    }
}

TEST(Checker, StatsAndMetricsExportCheckCounters)
{
    core::Machine m(smallConfig(Model::WO1));
    std::uint64_t seen = 0;
    m.startWorkload(0, handoffWriter(m.proc(0)));
    m.startWorkload(1, handoffReader(m.proc(1), seen));
    const Tick last = m.run();

    // Fatal mode (the smallConfig default) must still export the check.*
    // stats: a clean run reports zero violations alongside nonzero
    // checks-run counters, proving the auditors actually ran.
    const StatSet stats = m.collectStats();
    EXPECT_TRUE(stats.has("check.coherence_violations"));
    EXPECT_EQ(stats.get("check.coherence_violations"), 0.0);
    EXPECT_TRUE(stats.has("check.ordering_violations"));
    EXPECT_EQ(stats.get("check.ordering_violations"), 0.0);
    EXPECT_GT(stats.get("check.line_audits"), 0.0);
    EXPECT_GT(stats.get("check.accesses_checked"), 0.0);
    EXPECT_GT(stats.get("check.ordering_checks"), 0.0);

    const auto metrics = core::RunMetrics::fromMachine(m, last);
    EXPECT_EQ(metrics.checkViolations, 0u);
    EXPECT_GT(metrics.checkLineAudits, 0u);
    EXPECT_GT(metrics.checkAccessesChecked, 0u);
    EXPECT_GT(metrics.checkOrderingChecked, 0u);
}

TEST(Checker, DisabledModeBuildsNoChecker)
{
    core::MachineConfig cfg = smallConfig(Model::SC1);
    cfg.check.mode = check::CheckMode::Off;
    core::Machine m(cfg);
    EXPECT_EQ(m.checker(), nullptr);
    std::uint64_t seen = 0;
    m.startWorkload(0, handoffWriter(m.proc(0)));
    m.startWorkload(1, handoffReader(m.proc(1), seen));
    EXPECT_NO_THROW(m.run());
    EXPECT_FALSE(m.collectStats().has("check.line_audits"));
}

TEST(Checker, CorruptedDirectoryEntryTripsCoherenceAuditor)
{
    core::MachineConfig cfg = smallConfig(Model::SC1);
    core::Machine m(cfg);
    // Leave proc 0 with a Modified copy of dataAddr's line.
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.store(dataAddr, 7);
    }(m.proc(0)));
    EXPECT_NO_THROW(m.run());
    ASSERT_EQ(m.cache(0).lineState(dataAddr), mem::Cache::LineState::Modified);

    const Addr line = alignDown(dataAddr, cfg.lineBytes);
    const unsigned mod =
        static_cast<unsigned>((line / cfg.lineBytes) % cfg.numModules);
    // The directory forgets the exclusive owner: invariant C (and E).
    m.module(mod).corruptDirEntryForTest(
        line, mem::MemoryModule::DirState::Uncached, 0, 0);
    EXPECT_THROW(m.checker()->finalAudit(), FatalError);
}

TEST(Checker, IgnoredInvalidateTripsCoherenceAuditor)
{
    core::MachineConfig cfg = smallConfig(Model::SC1);
    core::Machine m(cfg);
    // Proc 0 keeps its stale Shared copy when proc 1 takes ownership.
    m.cache(0).injectIgnoreNextInvalidateForTest();
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.loadUse(dataAddr);   // Shared copy
        co_await p.exec(2000);
    }(m.proc(0)));
    m.startWorkload(1, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(200);           // let proc 0's fill settle first
        co_await p.store(dataAddr, 9);  // GetExclusive -> Invalidate p0
        co_await p.exec(2000);
    }(m.proc(1)));
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Checker, SkippedDrainTripsOrderingLinter)
{
    core::MachineConfig cfg = smallConfig(Model::WO1, 2);
    core::Machine m(cfg);
    // The sync store issues while the data store is still outstanding.
    m.proc(0).injectSkipNextDrainForTest();
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.store(dataAddr, 1);      // miss, outstanding under WO
        co_await p.syncStore(flagAddr, 1);  // must drain first -- skipped
    }(m.proc(0)));
    m.startWorkload(1, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(1);
    }(m.proc(1)));
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Checker, DeliberateRaceTripsRaceDetector)
{
    core::MachineConfig cfg = smallConfig(Model::SC1);
    core::Machine m(cfg);
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.store(dataAddr, 1);  // no release afterwards
    }(m.proc(0)));
    m.startWorkload(1, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(300);
        co_await p.loadUse(dataAddr);   // unsynchronized read
    }(m.proc(1)));
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Checker, CountModeCountsInsteadOfThrowing)
{
    core::MachineConfig cfg = smallConfig(Model::SC1);
    cfg.check.mode = check::CheckMode::Count;
    core::Machine m(cfg);
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.store(dataAddr, 1);
    }(m.proc(0)));
    m.startWorkload(1, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(300);
        co_await p.loadUse(dataAddr);
    }(m.proc(1)));
    EXPECT_NO_THROW(m.run());
    EXPECT_GE(m.checker()->stats().raceViolations, 1u);
    EXPECT_GE(m.collectStats().get("check.race_violations"), 1.0);
}

// Acceptance sweep: every model x every paper workload (small sizes)
// runs to completion with full checking enabled and zero violations.
TEST(Checker, AllModelsAllWorkloadsRunClean)
{
    for (Model model : core::allModels) {
        core::MachineConfig cfg;
        cfg.numProcs = 4;
        cfg.numModules = 4;
        cfg.model = model;
        cfg.cacheBytes = 2048;
        cfg.lineBytes = 16;
        cfg.maxCycles = 400'000'000ull;

        workloads::GaussParams gp;
        gp.n = 24;
        workloads::GaussWorkload gauss(gp);
        workloads::QsortParams qp;
        qp.n = 2048;
        qp.parallelCutoff = 512;
        workloads::QsortWorkload qsort(qp);
        workloads::RelaxParams rp;
        rp.interior = 24;
        rp.iterations = 2;
        workloads::RelaxWorkload relax(rp);
        workloads::PsimParams pp;
        pp.simProcs = 8;
        pp.packetsPerProc = 16;
        workloads::PsimWorkload psim(pp);

        workloads::Workload *all[] = {&gauss, &qsort, &relax, &psim};
        for (workloads::Workload *w : all) {
            workloads::RunResult r;
            ASSERT_NO_THROW(r = workloads::runWorkload(*w, cfg))
                << core::modelName(model) << " / " << w->name();
            EXPECT_EQ(r.metrics.checkViolations, 0u)
                << core::modelName(model) << " / " << w->name();
            EXPECT_GT(r.metrics.checkLineAudits, 0u);
        }
    }
}

TEST(RaceDetector, SyncEdgeSuppressesRace)
{
    check::RaceDetector det(2);
    EXPECT_EQ(det.write(0, 0x100, 8), "");
    det.release(0, 0x200);
    det.acquire(1, 0x200);
    EXPECT_EQ(det.read(1, 0x100, 8), "");   // ordered through the sync addr
    EXPECT_EQ(det.write(1, 0x100, 8), "");  // write-after-write, ordered
}

TEST(RaceDetector, UnorderedAccessesRace)
{
    check::RaceDetector det(2);
    EXPECT_EQ(det.write(0, 0x100, 8), "");
    const std::string r = det.read(1, 0x100, 8);
    EXPECT_NE(r, "");
    EXPECT_NE(r.find("races"), std::string::npos);

    // A sync edge through an *unrelated* address does not order them.
    check::RaceDetector det2(2);
    EXPECT_EQ(det2.write(0, 0x100, 8), "");
    det2.release(0, 0x200);
    det2.acquire(1, 0x300);
    EXPECT_NE(det2.write(1, 0x100, 8), "");
}

TEST(RaceDetector, GranulesAreIndependent)
{
    check::RaceDetector det(2);
    EXPECT_EQ(det.write(0, 0x100, 4), "");
    EXPECT_EQ(det.write(1, 0x104, 4), "");  // adjacent word: no conflict
    EXPECT_NE(det.write(1, 0x100, 4), "");  // same word: conflict
}

TEST(OrderingLinter, SingleOutstandingRule)
{
    check::OrderingLinter lint(1, core::modelParams(Model::SC1));
    EXPECT_EQ(lint.issueCheck(0, false, false), "");
    lint.refIssued(0, 1);
    EXPECT_NE(lint.issueCheck(0, false, false), "");
    lint.refCompleted(0, 1);
    EXPECT_EQ(lint.issueCheck(0, false, false), "");
}

TEST(OrderingLinter, DrainBeforeSyncRule)
{
    check::OrderingLinter lint(1, core::modelParams(Model::WO1));
    lint.refIssued(0, 1);
    EXPECT_EQ(lint.issueCheck(0, false, false), "");  // data refs overlap
    EXPECT_NE(lint.issueCheck(0, true, false), "");   // sync must drain
    EXPECT_NE(lint.fenceCheck(0), "");
    lint.refCompleted(0, 1);
    EXPECT_EQ(lint.issueCheck(0, true, false), "");
    EXPECT_EQ(lint.fenceCheck(0), "");
}

TEST(OrderingLinter, ReleaseAfterPriorAccessesRule)
{
    check::OrderingLinter lint(1, core::modelParams(Model::RC));
    lint.refIssued(0, 1);
    lint.releaseDeferred(0);
    lint.refIssued(0, 2);  // issued after the defer point: does not gate
    EXPECT_NE(lint.issueCheck(0, true, true), "");
    lint.refCompleted(0, 1);
    EXPECT_EQ(lint.issueCheck(0, true, true), "");
    lint.releaseDone(0);
}

TEST(ProtocolLint, ValidatesDirectionAlignmentAndProc)
{
    mem::CoherenceMsg msg{mem::MsgKind::GetShared, 0x100, 0};
    EXPECT_EQ(mem::validateMessage(msg, true, 4, 16), nullptr);
    // A request kind injected into the response network.
    EXPECT_NE(mem::validateMessage(msg, false, 4, 16), nullptr);
    // A reply kind injected into the request network.
    mem::CoherenceMsg reply{mem::MsgKind::DataReplyShared, 0x100, 0};
    EXPECT_NE(mem::validateMessage(reply, true, 4, 16), nullptr);
    EXPECT_EQ(mem::validateMessage(reply, false, 4, 16), nullptr);
    // Misaligned line address.
    mem::CoherenceMsg odd{mem::MsgKind::GetShared, 0x108, 0};
    EXPECT_NE(mem::validateMessage(odd, true, 4, 16), nullptr);
    // Nonexistent processor.
    mem::CoherenceMsg ghost{mem::MsgKind::GetShared, 0x100, 9};
    EXPECT_NE(mem::validateMessage(ghost, true, 4, 16), nullptr);
}
