/**
 * @file
 * The assembled dance-hall multiprocessor (paper Figure 1): processors
 * with private caches on one side, global memory modules with directory
 * slices on the other, connected by two Omega networks (requests and
 * responses).
 */

#ifndef MCSIM_CORE_MACHINE_HH
#define MCSIM_CORE_MACHINE_HH

#include <memory>
#include <string>
#include <vector>

#include "axiom/trace.hh"
#include "check/checker.hh"
#include "core/machine_config.hh"
#include "cpu/processor.hh"
#include "fault/fault.hh"
#include "mem/cache.hh"
#include "mem/functional_memory.hh"
#include "mem/memory_module.hh"
#include "mem/outbox.hh"
#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace mcsim::core
{

/** A complete simulated machine. */
class Machine
{
  public:
    using Network = net::OmegaNetwork<mem::CoherenceMsg>;
    using Buffer = net::IfaceBuffer<mem::CoherenceMsg>;

    explicit Machine(const MachineConfig &config);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Bind a workload coroutine to processor @p proc and schedule it. */
    void startWorkload(unsigned proc, SimTask &&task);

    /**
     * Run until every started workload completes.
     * @return the tick at which the last workload finished
     * @throws FatalError on deadlock or when maxCycles is exceeded
     */
    Tick run();

    /** Component access. @{ */
    const MachineConfig &config() const { return cfg; }
    EventQueue &eventQueue() { return queue; }
    mem::FunctionalMemory &memory() { return fmem; }
    unsigned numProcs() const { return cfg.numProcs; }
    cpu::Processor &proc(unsigned i) { return *procs.at(i); }
    const cpu::Processor &proc(unsigned i) const { return *procs.at(i); }
    mem::Cache &cache(unsigned i) { return *caches.at(i); }
    const mem::Cache &cache(unsigned i) const { return *caches.at(i); }
    mem::MemoryModule &module(unsigned i) { return *modules.at(i); }
    const mem::MemoryModule &module(unsigned i) const
    {
        return *modules.at(i);
    }
    const net::NetStats &requestNetStats() const { return reqNet->stats(); }
    const net::NetStats &responseNetStats() const { return respNet->stats(); }
    const net::BufferStats &procBufferStats(unsigned i) const
    {
        return reqBufs.at(i)->stats();
    }
    /** The invariant checker; nullptr when checking is disabled. @{ */
    check::Checker *checker() { return checkerPtr.get(); }
    const check::Checker *checker() const { return checkerPtr.get(); }
    /** @} */
    /** The axiomatic trace recorder; nullptr when recording is off. @{ */
    axiom::TraceRecorder *traceRecorder() { return recorderPtr.get(); }
    const axiom::TraceRecorder *traceRecorder() const
    {
        return recorderPtr.get();
    }
    /** @} */
    /** The event tracer ring; nullptr when cfg.obs.tracer is off. @{ */
    obs::Tracer *tracer() { return tracerPtr.get(); }
    const obs::Tracer *tracer() const { return tracerPtr.get(); }
    /** @} */
    /** The fault plan; nullptr when cfg.fault is off (perfect HW). @{ */
    fault::FaultPlan *faultPlan() { return planPtr.get(); }
    const fault::FaultPlan *faultPlan() const { return planPtr.get(); }
    /** @} */
    /** @} */

    /** Machine-wide retired-instruction count (watchdog progress). */
    std::uint64_t totalRetired() const;

    /**
     * Multi-line dump of where every in-flight piece of work sits:
     * per-processor retirement/outstanding-ref/stall state, busy MSHRs
     * with their retry attempts, writeback limbo, outbox and interface
     * buffer occupancy, open directory transactions, fault-injection
     * counters and the tail of the event-trace ring. Attached to the
     * deadlock / watchdog / maxCycles fatal()s.
     */
    std::string diagnosticSnapshot() const;

    /** Aggregate every component's statistics into one StatSet. */
    StatSet collectStats() const;

  private:
    void onWorkloadDone();

    MachineConfig cfg;
    EventQueue queue;
    mem::FunctionalMemory fmem;

    std::unique_ptr<Network> reqNet;
    std::unique_ptr<Network> respNet;

    std::vector<std::unique_ptr<Buffer>> reqBufs;    ///< per processor
    std::vector<std::unique_ptr<mem::Outbox>> procOut;
    std::vector<std::unique_ptr<mem::Cache>> caches;
    std::vector<std::unique_ptr<cpu::Processor>> procs;

    std::vector<std::unique_ptr<Buffer>> respBufs;   ///< per module
    std::vector<std::unique_ptr<mem::Outbox>> memOut;
    std::vector<std::unique_ptr<mem::MemoryModule>> modules;

    std::unique_ptr<check::Checker> checkerPtr;
    std::unique_ptr<axiom::TraceRecorder> recorderPtr;
    std::unique_ptr<obs::Tracer> tracerPtr;
    std::unique_ptr<fault::FaultPlan> planPtr;

    unsigned started = 0;
    unsigned doneCount = 0;
};

} // namespace mcsim::core

#endif // MCSIM_CORE_MACHINE_HH
