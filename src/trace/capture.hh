/**
 * @file
 * Trace capture: record any workload run to a trace by observing every
 * processor's issue boundary (cpu::Processor::IssueSink).
 *
 * Usage: build the capture, then run the workload with the afterSetup
 * hook attaching it --
 *
 *     trace::MemorySink sink;
 *     trace::TraceCapture capture(header, sink);
 *     workloads::runWorkload(w, cfg, [&](core::Machine &m) {
 *         capture.attach(m);
 *     });
 *     capture.finish();
 *
 * The sink is purely observational (it sees ops before any stall rule
 * applies and simulates nothing), so a captured run's cycle counts are
 * identical to the same run without capture.
 */

#ifndef MCSIM_TRACE_CAPTURE_HH
#define MCSIM_TRACE_CAPTURE_HH

#include <memory>
#include <vector>

#include "core/machine.hh"
#include "trace/writer.hh"

namespace mcsim::trace
{

/** Records one machine's workload issue stream through a TraceWriter. */
class TraceCapture
{
  public:
    /**
     * @p header describes the trace being recorded; its procCount must
     * match the machine later attached. totalRecords is counted by the
     * writer.
     */
    TraceCapture(const TraceHeader &header, ByteSink &sink);

    /** Install one issue tap per processor of @p machine. */
    void attach(core::Machine &machine);

    /** Flush the trace (call after the run; safe once per capture). */
    void finish() { writer.finish(); }

    std::uint64_t recordCount() const { return writer.recordCount(); }

  private:
    /** Per-processor tap: forwards ops tagged with the proc id. */
    class ProcTap : public cpu::Processor::IssueSink
    {
      public:
        ProcTap(TraceWriter &w, unsigned p) : writer(w), proc(p) {}
        void onIssue(const cpu::Processor::Op &op) override;

      private:
        TraceWriter &writer;
        unsigned proc;
    };

    TraceWriter writer;
    unsigned procCount;
    std::vector<std::unique_ptr<ProcTap>> taps;
};

} // namespace mcsim::trace

#endif // MCSIM_TRACE_CAPTURE_HH
