/**
 * @file
 * Timed message transport over an Omega topology.
 *
 * Timing model (paper section 3.1): each switch stage forwards one flit
 * (8 bytes) per cycle; a message of F flits occupies a switch output port
 * for F cycles while its head advances one stage per cycle (virtual
 * cut-through). First-word latency is therefore independent of line size,
 * while port occupancy -- and thus contention -- is proportional to it.
 * Switch-internal queues are unbounded (the 4-entry buffers the paper
 * specifies sit at the processor and memory interfaces, see IfaceBuffer);
 * ordering on a contended port is FIFO by arrival.
 */

#ifndef MCSIM_NET_OMEGA_NETWORK_HH
#define MCSIM_NET_OMEGA_NETWORK_HH

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "net/message.hh"
#include "net/net_stats.hh"
#include "net/topology.hh"
#include "obs/tracer.hh"
#include "sim/choice.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace mcsim::net
{

/**
 * Perturbation applied to one message at injection time (fault
 * injection, src/fault/). The network stays payload-agnostic: the
 * Machine installs a filter that inspects the protocol payload and
 * returns one of these.
 */
struct NetPerturbation
{
    bool drop = false;       ///< lose the message entirely
    bool duplicate = false;  ///< also inject a copy after duplicateDelay
    Tick extraDelay = 0;     ///< hold the message this long first
    Tick duplicateDelay = 0;
};

/**
 * One direction of interconnect (the machine has two: requests and
 * responses).
 *
 * @tparam Payload protocol content carried opaquely.
 */
template <typename Payload>
class OmegaNetwork
{
  public:
    using Message = Msg<Payload>;
    using DeliverFn = std::function<void(Message &&)>;
    using FaultFilterFn = std::function<NetPerturbation(const Message &)>;

    /**
     * @param eq shared event queue
     * @param n_ports usable ports (processors on one side, modules on the
     *        other)
     * @param radix switch arity
     * @param deliver invoked (at delivery tick) with each arriving message
     */
    OmegaNetwork(EventQueue &eq, unsigned n_ports, unsigned radix,
                 DeliverFn deliver)
        : queue(eq), topo(n_ports, radix), deliverFn(std::move(deliver)),
          portFree(topo.stages(),
                   std::vector<Tick>(topo.width(), 0))
    {}

    OmegaNetwork(const OmegaNetwork &) = delete;
    OmegaNetwork &operator=(const OmegaNetwork &) = delete;

    /** Topology under this network. */
    const OmegaTopology &topology() const { return topo; }

    /** Uncontended head latency through the network, in cycles. */
    Tick headLatency() const { return topo.stages(); }

    /** Traffic statistics. */
    const NetStats &stats() const { return netStats; }

    /** Wire the event tracer; @p track distinguishes the request and
     *  response instances' timelines (nullptr = no tracing). */
    void
    setTracer(obs::Tracer *t, obs::Track track)
    {
        tracer = t;
        tracerTrack = track;
    }

    /** Install the fault-injection filter (Machine; empty = no faults).
     *  Consulted once per inject(); dropped messages never enter the
     *  switch fabric and are not counted in NetStats. */
    void setFaultFilter(FaultFilterFn fn) { faultFilter = std::move(fn); }

    /** Maps a payload to the (object, aux-tiebreak) pair the model
     *  checker's dependence relation reasons about; wired by the
     *  Machine, which knows the payload type. */
    using ChoiceLabelFn = std::function<ChoiceOption(const Message &)>;
    /** Called at each logical delivery (model checking only). */
    using DeliveryProbeFn = std::function<void(const Message &)>;

    /**
     * Switch this network into logical (model-checking) delivery: the
     * timed switch fabric is bypassed, injected messages park in
     * per-(src, dst) FIFO pools, and @p scheduler picks which pool head
     * is delivered next, one delivery per @p hold cycles. Per-pair FIFO
     * order -- the guarantee the real fabric provides via per-path FIFO
     * output ports -- is preserved; every cross-pair interleaving
     * becomes reachable. The hold window exists to create races: it is
     * longer than the workload's per-op issue jitter, so messages from
     * different processors accumulate in the pools and genuinely
     * compete at each choice point instead of draining one by one in
     * issue order. Passing nullptr restores timed delivery.
     */
    void
    setChoiceScheduler(ChoiceScheduler *scheduler, ChoiceLabelFn label,
                       DeliveryProbeFn probe = nullptr, Tick hold = 64)
    {
        chooser = scheduler;
        labelFn = std::move(label);
        probeFn = std::move(probe);
        holdCycles = hold;
    }

    /**
     * Inject a message whose head flit is at the stage-0 switch input at
     * the current tick. Caller (the interface buffer) is responsible for
     * the buffer-to-network link cycle.
     */
    void
    inject(Message &&msg)
    {
        MCSIM_ASSERT(msg.dst < topo.width(), "bad network destination %u",
                     msg.dst);
        if (faultFilter) {
            const NetPerturbation p = faultFilter(msg);
            if (p.duplicate) {
                Message copy = msg;
                queue.schedule(
                    queue.now() + std::max<Tick>(p.duplicateDelay, 1),
                    [this, m = std::move(copy)]() mutable {
                        injectNow(std::move(m));
                    },
                    EventQueue::prioDeliver);
            }
            if (p.drop)
                return;
            if (p.extraDelay > 0) {
                queue.schedule(
                    queue.now() + p.extraDelay,
                    [this, m = std::move(msg)]() mutable {
                        injectNow(std::move(m));
                    },
                    EventQueue::prioDeliver);
                return;
            }
        }
        injectNow(std::move(msg));
    }

  private:
    /** Injection proper, after any fault perturbation. */
    void
    injectNow(Message &&msg)
    {
        netStats.messages += 1;
        netStats.flits += msg.flits();
        if (chooser) {
            pools[{msg.src, msg.dst}].push_back(std::move(msg));
            pumpChoices();
            return;
        }
        hop(std::move(msg), 0, msg.src, queue.now(), queue.now());
    }

    /** Logical delivery: schedule one scheduler-driven delivery per
     *  hold window while any pool is non-empty. */
    void
    pumpChoices()
    {
        if (choicePumping)
            return;
        choicePumping = true;
        queue.schedule(
            queue.now() + holdCycles, [this]() { deliverChosen(); },
            EventQueue::prioDeliver);
    }

    void
    deliverChosen()
    {
        choicePumping = false;
        if (pools.empty())
            return;
        // Candidates: the head of every non-empty pool, in the
        // deterministic (src, dst) order std::map provides.
        std::vector<ChoiceOption> options;
        std::vector<typename PoolMap::iterator> heads;
        for (auto it = pools.begin(); it != pools.end(); ++it) {
            ChoiceOption opt = labelFn ? labelFn(it->second.front())
                                       : ChoiceOption{};
            opt.aux = (static_cast<std::uint64_t>(it->first.first) << 32) |
                      it->first.second;
            options.push_back(opt);
            heads.push_back(it);
        }
        const unsigned n = static_cast<unsigned>(heads.size());
        unsigned pick = chooser->choose(ChoiceKind::NetDeliver,
                                        options.data(), n);
        MCSIM_ASSERT(pick < n, "net delivery choice %u of %u", pick, n);
        auto it = heads[pick];
        Message msg = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty())
            pools.erase(it);
        if (!pools.empty())
            pumpChoices();
        netStats.latencyCycles += queue.now() - msg.createdAt;
        netStats.transitHist.record(queue.now() - msg.createdAt);
        if (probeFn)
            probeFn(msg);
        deliverFn(std::move(msg));
    }
    /**
     * Process arrival of @p msg at stage @p stage on link @p link at tick
     * @p t; reserve the output port and advance the head.
     */
    void
    hop(Message &&msg, unsigned stage, unsigned link, Tick t, Tick inject_t)
    {
        const auto h = topo.hop(stage, link, msg.dst);
        Tick &port_free = portFree[stage][h.outLink];
        const Tick start = std::max(t, port_free);
        if (start > t) {
            const Tick waited = start - t;
            netStats.queueCycles += waited;
            if (waited > netStats.maxQueueDelay)
                netStats.maxQueueDelay = waited;
        }
        netStats.hopWaitHist.record(start - t);
        port_free = start + msg.flits();
        if (tracer) {
            // Switch-port ids are packed as (stage << 8) | output link.
            tracer->span(tracerTrack,
                         (static_cast<std::uint32_t>(stage) << 8) |
                             h.outLink,
                         obs::SpanKind::PortBusy, start, msg.flits());
        }
        const Tick head_out = start + 1;
        const unsigned next_stage = stage + 1;
        const unsigned out_link = h.outLink;
        if (next_stage == topo.stages()) {
            queue.schedule(
                head_out,
                [this, m = std::move(msg), inject_t]() mutable {
                    netStats.latencyCycles += queue.now() - inject_t;
                    netStats.transitHist.record(queue.now() - inject_t);
                    deliverFn(std::move(m));
                },
                EventQueue::prioDeliver);
        } else {
            queue.schedule(
                head_out,
                [this, m = std::move(msg), next_stage, out_link,
                 inject_t]() mutable {
                    hop(std::move(m), next_stage, out_link, queue.now(),
                        inject_t);
                },
                EventQueue::prioDeliver);
        }
    }

    EventQueue &queue;
    OmegaTopology topo;
    DeliverFn deliverFn;
    /** Per-stage, per-output-link earliest-free tick. */
    std::vector<std::vector<Tick>> portFree;
    NetStats netStats;
    FaultFilterFn faultFilter;
    obs::Tracer *tracer = nullptr;
    obs::Track tracerTrack = obs::Track::ReqSwitch;

    /** Model-checking (logical) delivery state; inert when chooser is
     *  null. std::map keeps candidate enumeration deterministic. @{ */
    using PoolMap = std::map<std::pair<std::uint32_t, std::uint32_t>,
                             std::deque<Message>>;
    ChoiceScheduler *chooser = nullptr;
    ChoiceLabelFn labelFn;
    DeliveryProbeFn probeFn;
    PoolMap pools;
    bool choicePumping = false;
    Tick holdCycles = 64;
    /** @} */
};

} // namespace mcsim::net

#endif // MCSIM_NET_OMEGA_NETWORK_HH
