/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * event-queue throughput, topology routing, network injection, cache
 * access, and a small end-to-end machine run. These track simulator
 * (host) performance, not simulated performance.
 *
 * The end-to-end pair BM_EndToEndSyntheticRun / BM_EndToEndTracerDisarmed
 * is the observability overhead gate: the second compiles the tracer in
 * but leaves it disarmed, and must stay within ~2% of the first.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hh"
#include "check/check_config.hh"
#include "core/machine.hh"
#include "mem/cache.hh"
#include "mem/memory_module.hh"
#include "mem/outbox.hh"
#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "net/topology.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "workloads/workload.hh"

using namespace mcsim;

namespace
{

/** End-to-end machine for the micro runs: the shared bench config at 4
 *  processors with a deliberately small cache, and the invariant
 *  checkers restored (the figure benches turn them off; bench_micro
 *  audits the hot path with them on). */
core::MachineConfig
microConfig()
{
    const bench::BenchArgs args;
    core::MachineConfig cfg = bench::baseConfig(args, 4);
    cfg.cacheBytes = 2048;
    cfg.check = check::CheckConfig{};
    return cfg;
}

core::RunMetrics
runMicro(const core::MachineConfig &cfg)
{
    const bench::BenchArgs args;
    const auto workload = bench::makeWorkload("Synthetic", args.scale);
    return workloads::runWorkload(*workload, cfg).metrics;
}

} // namespace

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            q.schedule(static_cast<Tick>(i % 97), [&sink]() { ++sink; });
        q.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_TopologyRoute(benchmark::State &state)
{
    const net::OmegaTopology topo(16, 4);
    unsigned src = 0, dst = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(topo.route(src, dst));
        src = (src + 1) % 16;
        dst = (dst + 5) % 16;
    }
}
BENCHMARK(BM_TopologyRoute);

static void
BM_NetworkInjectDeliver(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue q;
        std::uint64_t delivered = 0;
        net::OmegaNetwork<int> network(
            q, 16, 4, [&delivered](net::Msg<int> &&) { ++delivered; });
        for (unsigned i = 0; i < 256; ++i) {
            net::Msg<int> m;
            m.src = i % 16;
            m.dst = (i * 7) % 16;
            m.bytes = 8;
            q.schedule(i, [&network, m]() mutable {
                network.inject(std::move(m));
            });
        }
        q.run();
        benchmark::DoNotOptimize(delivered);
    }
}
BENCHMARK(BM_NetworkInjectDeliver);

static void
BM_CacheHitPath(benchmark::State &state)
{
    EventQueue q;
    net::OmegaNetwork<mem::CoherenceMsg> reqNet(
        q, 4, 4, [](mem::NetMsg &&) {});
    net::IfaceBuffer<mem::CoherenceMsg> buf(q, reqNet, 4, false);
    mem::Outbox out(buf, false);
    mem::CacheParams params;
    params.cacheBytes = 16 * 1024;
    mem::Cache cache(q, 0, params, out, 4);
    // Warm one line by hand: issue a miss, then drop the reply in.
    cache.access(0x100, mem::AccessType::Load, 1);
    mem::NetMsg reply;
    reply.payload =
        mem::CoherenceMsg{mem::MsgKind::DataReplyShared, 0x100, 0};
    cache.handleResponse(std::move(reply));
    q.run();

    std::uint64_t cookie = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(0x108, mem::AccessType::Load, cookie++));
    }
}
BENCHMARK(BM_CacheHitPath);

// The disarmed tracer fast path in isolation: span() must reduce to one
// predictable branch when tracing is off at runtime.
static void
BM_TracerSpanDisarmed(benchmark::State &state)
{
    obs::Tracer tracer(1024);
    tracer.arm(false);
    Tick now = 0;
    for (auto _ : state) {
        tracer.span(obs::Track::Proc, 0, obs::SpanKind::Busy, now++, 1);
        benchmark::DoNotOptimize(tracer);
    }
    benchmark::DoNotOptimize(tracer.size());
}
BENCHMARK(BM_TracerSpanDisarmed);

static void
BM_EndToEndSyntheticRun(benchmark::State &state)
{
    const core::MachineConfig cfg = microConfig();
    for (auto _ : state) {
        const core::RunMetrics m = runMicro(cfg);
        benchmark::DoNotOptimize(m.cycles);
    }
}
BENCHMARK(BM_EndToEndSyntheticRun)->Unit(benchmark::kMillisecond);

// Same run with the tracer constructed but disarmed: every span() call
// site in the machine takes the early-out branch. The ~2% gate from the
// observability acceptance criteria compares this against the baseline
// above.
static void
BM_EndToEndTracerDisarmed(benchmark::State &state)
{
    core::MachineConfig cfg = microConfig();
    cfg.obs.tracer = true;
    cfg.obs.tracerArmed = false;
    for (auto _ : state) {
        const core::RunMetrics m = runMicro(cfg);
        benchmark::DoNotOptimize(m.cycles);
    }
}
BENCHMARK(BM_EndToEndTracerDisarmed)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
