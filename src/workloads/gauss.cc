#include "workloads/gauss.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/layout.hh"

namespace mcsim::workloads
{

GaussWorkload::GaussWorkload(GaussParams params) : cfg(params)
{
    // Pacing calibration against paper Table 9 (reads every ~19.6
    // cycles, writes every ~70 under SC1 with 16-byte lines).
    costs.addrCalc = 3;
    costs.loopOverhead = 5;
    if (cfg.n < 2)
        fatal("Gauss needs n >= 2 (got %u)", cfg.n);
}

void
GaussWorkload::setup(core::Machine &machine)
{
    const unsigned n = cfg.n;
    SharedLayout layout(machine.config().lineBytes);
    matrixBase = layout.allocWords(static_cast<std::size_t>(n) * n);
    barrier = layout.allocBarrierObj(cfg.barrierKind, machine.numProcs());
    machine.memory().ensure(layout.top());

    // Diagonally dominant matrix: elimination without pivoting is stable.
    Rng rng(cfg.seed);
    std::vector<double> a(static_cast<std::size_t>(n) * n);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            const double v = i == j ? n + 1.0 + rng.uniform()
                                    : rng.uniform();
            a[static_cast<std::size_t>(i) * n + j] = v;
            machine.memory().writeF64(elemAddr(i, j), v);
        }
    }

    // Reference elimination with the same operation order as the
    // simulated program (results should agree to double precision).
    expected = a;
    for (unsigned k = 0; k + 1 < n; ++k) {
        for (unsigned i = k + 1; i < n; ++i) {
            const double factor =
                expected[static_cast<std::size_t>(i) * n + k] /
                expected[static_cast<std::size_t>(k) * n + k];
            expected[static_cast<std::size_t>(i) * n + k] = 0.0;
            for (unsigned j = k + 1; j < n; ++j) {
                expected[static_cast<std::size_t>(i) * n + j] -=
                    factor * expected[static_cast<std::size_t>(k) * n + j];
            }
        }
    }

    barrierCtx.assign(machine.numProcs(), {});
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), *this, p, machine.numProcs()));
    }
}

SimTask
GaussWorkload::body(cpu::Processor &proc, GaussWorkload &w, unsigned pid,
                    unsigned n_procs)
{
    using cpu::asBits;
    using cpu::asF64;
    const unsigned n = w.cfg.n;
    const OpCosts &c = w.costs;

    for (unsigned k = 0; k + 1 < n; ++k) {
        for (unsigned i = k + 1; i < n; ++i) {
            if (i % n_procs != pid)
                continue;
            // factor = A[i][k] / A[k][k]; A[i][k] = 0
            co_await proc.exec(c.addrCalc);
            const auto t_ik = co_await proc.load(w.elemAddr(i, k));
            const auto t_kk = co_await proc.load(w.elemAddr(k, k));
            const double aik = asF64(co_await proc.use(t_ik));
            const double akk = asF64(co_await proc.use(t_kk));
            co_await proc.exec(c.fpDiv);
            const double factor = aik / akk;
            co_await proc.store(w.elemAddr(i, k), asBits(0.0));

            // Software-pipelined inner loop, as the paper's compiler
            // schedules it: the loads for iteration j+1 are issued before
            // the store of iteration j, so under the relaxed models the
            // write-miss latency overlaps the next iteration instead of
            // blocking its (same-line) load behind the GetExclusive.
            std::uint64_t t_kj = co_await proc.load(w.elemAddr(k, k + 1));
            std::uint64_t t_ij = co_await proc.load(w.elemAddr(i, k + 1));
            for (unsigned j = k + 1; j < n; ++j) {
                std::uint64_t t_kj_next = 0;
                std::uint64_t t_ij_next = 0;
                if (j + 1 < n) {
                    co_await proc.exec(c.addrCalc);
                    t_kj_next = co_await proc.load(w.elemAddr(k, j + 1));
                    co_await proc.exec(c.addrCalc);
                    // Own-row elements are read then written; with
                    // readOwn the line is fetched exclusive up front.
                    t_ij_next =
                        w.cfg.readOwn
                            ? co_await proc.loadOwn(w.elemAddr(i, j + 1))
                            : co_await proc.load(w.elemAddr(i, j + 1));
                }
                co_await proc.exec(c.addrCalc);
                const double akj = asF64(co_await proc.use(t_kj));
                const double aij = asF64(co_await proc.use(t_ij));
                co_await proc.exec(c.fpMul + c.fpAdd);
                co_await proc.store(w.elemAddr(i, j),
                                    asBits(aij - factor * akj));
                co_await proc.exec(c.loopOverhead);
                co_await proc.branch();
                t_kj = t_kj_next;
                t_ij = t_ij_next;
            }
        }
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);
    }
}

void
GaussWorkload::verify(core::Machine &machine) const
{
    const unsigned n = cfg.n;
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            const double got = machine.memory().readF64(elemAddr(i, j));
            const double want = expected[static_cast<std::size_t>(i) * n + j];
            const double tol =
                1e-9 * std::max(1.0, std::max(std::fabs(got),
                                              std::fabs(want)));
            if (std::fabs(got - want) > tol) {
                fatal("Gauss result mismatch at (%u,%u): got %g want %g",
                      i, j, got, want);
            }
        }
    }
}

} // namespace mcsim::workloads
