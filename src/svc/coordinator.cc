#include "svc/coordinator.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <map>
#include <thread>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace mcsim::svc
{

namespace
{

/** Relaunch delay ceiling. */
constexpr unsigned maxBackoffMs = 5000;

/** Current size of @p path in bytes (0 when missing): the lease
 *  heartbeat. Durable growth is the one progress signal that cannot
 *  lie -- a worker that only spins never grows its journal. */
std::uint64_t
fileBytes(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0)
        return 0;
    return static_cast<std::uint64_t>(st.st_size);
}

/** What a quick scan of a journal says about an assignment. */
struct JournalLook
{
    bool valid = false;        ///< exists with an intact header
    std::size_t frames = 0;    ///< valid frames recovered
    std::uint32_t target = 0;  ///< header shardPoints (slice size for
                               ///< a steal journal)
};

/**
 * Scan @p path. Scanning a LIVE journal is safe: the only in-flight
 * hazard is a partially flushed final frame, which the scan treats as
 * a torn tail -- it can undercount momentarily, never overcount.
 */
JournalLook
lookAt(const std::string &path)
{
    JournalLook look;
    if (!journalExists(path))
        return look;
    const JournalScan scan = scanJournal(path);
    if (scan.headerTorn)
        return look;
    look.valid = true;
    look.frames = scan.frames.size();
    look.target = scan.header.shardPoints;
    return look;
}

/** fork + execv; fatal() if the coordinator itself cannot spawn. */
pid_t
spawnWorker(const std::vector<std::string> &argv)
{
    if (argv.empty())
        fatal("svc: worker argv is empty");
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);
    const pid_t pid = fork();
    if (pid < 0)
        fatal("svc: fork failed");
    if (pid == 0) {
        execv(cargv[0], cargv.data());
        std::fprintf(stderr, "svc: cannot exec '%s'\n", cargv[0]);
        _exit(127);
    }
    return pid;
}

std::string
describeDeath(int wstatus)
{
    if (WIFSIGNALED(wstatus))
        return strprintf("killed by signal %d", WTERMSIG(wstatus));
    if (WIFEXITED(wstatus))
        return strprintf("exited with status %d", WEXITSTATUS(wstatus));
    return "vanished";
}

std::string
assignmentName(const Assignment &asg, std::uint32_t shards)
{
    if (!asg.steal)
        return strprintf("shard %u/%u", asg.shard, shards);
    return strprintf("steal %u/%u of shard %u/%u",
                     static_cast<unsigned>(asg.slice),
                     static_cast<unsigned>(asg.slices), asg.shard,
                     shards);
}

} // namespace

CoordinatorReport
runCoordinator(const ShardPlan &plan, const std::string &dir,
               const std::vector<std::string> &journal_paths,
               const WorkerArgv &worker_argv,
               const CoordinatorOptions &options)
{
    const std::uint32_t shards = plan.shardCount;
    if (journal_paths.size() != shards)
        fatal("svc: coordinator got %zu journal path(s) for %u shard(s)",
              journal_paths.size(), shards);
    unsigned workers = options.workers == 0
                           ? shards
                           : std::min<unsigned>(options.workers, shards);
    if (workers == 0)
        workers = 1;

    CoordinatorReport report;
    report.shards.resize(shards);

    /** Per-assignment watchdog state. Ids 0..shards-1 are the primary
     *  assignments; steal assignments are appended as created (or
     *  rediscovered from disk by a restarted coordinator). */
    struct AsgState
    {
        Assignment asg;
        std::string path;      ///< the journal this assignment writes
        unsigned strikes = 0;  ///< consecutive no-progress deaths
        std::size_t last = 0;  ///< journaled points at last look
        bool done = false;
        bool failed = false;   ///< never relaunch again
    };
    std::vector<AsgState> states(shards);

    /** A scheduled (re)launch: which assignment, after what delay. */
    struct Launch
    {
        std::size_t id;
        unsigned delayMs;
    };
    std::deque<Launch> pending;

    // Journaled points of @p shard across its primary AND steal
    // journals: the shard-level truth doneness is judged by.
    auto coveredPoints = [&](std::uint32_t shard) -> std::size_t {
        std::vector<bool> covered(plan.grid.points.size(), false);
        auto mark = [&](const std::string &path) {
            if (!journalExists(path))
                return;
            const JournalScan scan = scanJournal(path);
            if (scan.headerTorn || scan.header.shardIndex != shard)
                return;
            for (const JournalFrame &frame : scan.frames)
                covered[frame.index] = true;
        };
        mark(journal_paths[shard]);
        for (const std::string &path : findStealJournals(plan, dir))
            mark(path);
        std::size_t count = 0;
        for (const std::size_t index : plan.shardIndices(shard))
            count += covered[index] ? 1 : 0;
        return count;
    };

    auto maybeFinishShard = [&](std::uint32_t shard) {
        ShardStatus &status = report.shards[shard];
        if (status.done)
            return;
        status.journaledPoints = coveredPoints(shard);
        if (status.journaledPoints == plan.shardPoints(shard)) {
            status.done = true;
            if (options.progress)
                std::fprintf(stderr,
                             "svc: shard %u/%u complete (%zu point(s))\n",
                             shard, shards, status.journaledPoints);
        }
    };

    // Create (or rediscover) the steal assignments covering @p victim's
    // frozen remainder, split into @p slices_n round-robin slices. The
    // victim's primary is never relaunched past this point, so every
    // steal worker derives the identical remainder from its journal.
    auto addStealStates = [&](std::uint32_t victim, unsigned slices_n) {
        report.shards[victim].stolen = true;
        states[victim].failed = true;
        for (unsigned k = 0; k < slices_n; ++k) {
            AsgState st;
            st.asg.shard = victim;
            st.asg.steal = true;
            st.asg.slice = static_cast<std::uint16_t>(k);
            st.asg.slices = static_cast<std::uint16_t>(slices_n);
            st.path = plan.stealJournalPath(
                dir, victim, st.asg.slice, st.asg.slices);
            const JournalLook look = lookAt(st.path);
            st.last = look.frames;
            st.done = look.valid && look.frames == look.target;
            const std::size_t id = states.size();
            states.push_back(std::move(st));
            if (!states[id].done)
                pending.push_back(Launch{id, 0});
        }
    };

    // Restart discovery: steal journals on disk mean a previous
    // coordinator (since crashed or killed) already revoked some shard
    // and began stealing. Adopt its slicing verbatim -- slice
    // membership is a pure function of the frozen primary and (slice,
    // slices), so the original assignments are reconstructible from
    // any one file's header even when sibling slices never created
    // their files.
    std::vector<unsigned> foundSlices(shards, 0);
    for (const std::string &path : findStealJournals(plan, dir)) {
        const JournalScan scan = scanJournal(path);
        if (scan.headerTorn)
            continue;
        if (foundSlices[scan.header.shardIndex] == 0)
            foundSlices[scan.header.shardIndex] = scan.header.stealSlices;
    }

    for (std::uint32_t s = 0; s < shards; ++s) {
        ShardStatus &status = report.shards[s];
        status.shard = s;
        states[s].asg.shard = s;
        states[s].path = journal_paths[s];
        states[s].last = lookAt(journal_paths[s]).frames;
        status.journaledPoints = coveredPoints(s);
        if (status.journaledPoints == plan.shardPoints(s)) {
            // Resume found the shard fully covered: nothing to do.
            status.done = true;
            states[s].done = true;
            if (options.progress)
                std::fprintf(stderr,
                             "svc: shard %u/%u already complete\n", s,
                             shards);
            continue;
        }
        if (foundSlices[s] > 0) {
            if (options.progress)
                std::fprintf(stderr,
                             "svc: shard %u/%u was stolen before a "
                             "restart; resuming %u steal slice(s)\n",
                             s, shards, foundSlices[s]);
            addStealStates(s, foundSlices[s]);
            continue;
        }
        pending.push_back(Launch{s, 0});
    }

    /** One live worker process. Lease bookkeeping accumulates SLEPT
     *  milliseconds between polls instead of reading a wall clock, so
     *  supervision stays free of entropy sources; the lease is a
     *  lower bound, which is the safe direction. */
    struct Running
    {
        std::size_t id;
        std::uint64_t bytes;    ///< journal size at last poll
        unsigned stalledMs = 0; ///< poll intervals without growth
        bool revoked = false;
    };
    std::map<pid_t, Running> running;

    // Reap one child: blocking when leases are off (the classic
    // supervisor), polling + revocation when they are on.
    auto reap = [&](int &wstatus) -> pid_t {
        if (options.leaseMs == 0)
            return waitpid(-1, &wstatus, 0);
        const unsigned poll = options.pollMs == 0 ? 50u : options.pollMs;
        for (;;) {
            const pid_t pid = waitpid(-1, &wstatus, WNOHANG);
            if (pid != 0)
                return pid;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(poll));
            for (auto &entry : running) {
                Running &run = entry.second;
                if (run.revoked)
                    continue;
                const std::uint64_t bytes =
                    fileBytes(states[run.id].path);
                if (bytes != run.bytes) {
                    run.bytes = bytes;
                    run.stalledMs = 0;
                    continue;
                }
                run.stalledMs += poll;
                if (run.stalledMs < options.leaseMs)
                    continue;
                run.revoked = true;
                const Assignment &asg = states[run.id].asg;
                report.shards[asg.shard].revocations += 1;
                if (options.progress) {
                    std::fprintf(stderr,
                                 "svc: %s lease expired (no journal "
                                 "growth for %u ms); revoking "
                                 "(SIGKILL pid %d)\n",
                                 assignmentName(asg, shards).c_str(),
                                 run.stalledMs,
                                 static_cast<int>(entry.first));
                }
                ::kill(entry.first, SIGKILL);
            }
        }
    };

    while (!pending.empty() || !running.empty()) {
        while (!pending.empty() && running.size() < workers) {
            const Launch launch = pending.front();
            pending.pop_front();
            if (launch.delayMs > 0) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(launch.delayMs));
            }
            AsgState &st = states[launch.id];
            ShardStatus &status = report.shards[st.asg.shard];
            ++status.attempts;
            const pid_t pid = spawnWorker(worker_argv(st.asg));
            Running run;
            run.id = launch.id;
            run.bytes = fileBytes(st.path);
            running[pid] = run;
            if (options.progress) {
                std::fprintf(stderr, "svc: %s attempt %u -> pid %d\n",
                             assignmentName(st.asg, shards).c_str(),
                             status.attempts, static_cast<int>(pid));
            }
        }
        if (running.empty())
            continue;

        int wstatus = 0;
        const pid_t pid = reap(wstatus);
        if (pid < 0)
            fatal("svc: waitpid failed");
        const auto it = running.find(pid);
        if (it == running.end())
            continue;
        const std::size_t id = it->second.id;
        running.erase(it);

        AsgState &st = states[id];
        ShardStatus &status = report.shards[st.asg.shard];
        const std::string name = assignmentName(st.asg, shards);
        const JournalLook look = lookAt(st.path);
        const std::size_t count = look.frames;
        const std::size_t fresh = count > st.last ? count - st.last : 0;
        const bool progressed = fresh > 0;
        st.last = count;
        status.journaledPoints = coveredPoints(st.asg.shard);

        const bool clean =
            WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
        const std::size_t want = st.asg.steal
                                     ? look.target
                                     : plan.shardPoints(st.asg.shard);
        if (clean && look.valid && count == want) {
            st.done = true;
            if (options.progress)
                std::fprintf(stderr, "svc: %s complete (%zu point(s))\n",
                             name.c_str(), count);
            maybeFinishShard(st.asg.shard);
            continue;
        }

        // From here the attempt is a death: by signal, by nonzero
        // exit, or -- a worker bug -- a clean exit with an incomplete
        // journal. The journal keeps whatever the attempt achieved.
        const std::string death = clean
                                      ? "exited 0 with an incomplete "
                                        "journal"
                                      : describeDeath(wstatus);
        if (options.maxRetries == 0) {
            st.failed = true;
            status.error = strprintf(
                "%s; relaunching disabled (--max-retries 0), journal "
                "kept for --resume",
                death.c_str());
            if (options.progress)
                std::fprintf(stderr, "svc: %s %s\n", name.c_str(),
                             status.error.c_str());
            continue;
        }
        // The watchdog judges forward progress, not survival: a death
        // after new points is normal churn (a --kill-after worker dies
        // every attempt and still converges); only consecutive barren
        // attempts consume retries.
        st.strikes = progressed ? 0 : st.strikes + 1;
        if (st.strikes > options.maxRetries) {
            st.failed = true;
            if (!st.asg.steal && options.stealFanout > 0) {
                // Escalate: the shard's workers cannot finish it, so
                // hand its frozen remainder to fresh steal workers.
                const std::size_t remainder =
                    plan.shardPoints(st.asg.shard) - count;
                if (remainder == 0) {
                    maybeFinishShard(st.asg.shard);
                    continue;
                }
                const unsigned slices_n = static_cast<unsigned>(
                    std::min<std::size_t>(options.stealFanout,
                                          remainder));
                if (options.progress) {
                    std::fprintf(
                        stderr,
                        "svc: %s %s after %u barren attempt(s); "
                        "splitting its %zu-point remainder into %u "
                        "steal slice(s)\n",
                        name.c_str(), death.c_str(), st.strikes,
                        remainder, slices_n);
                }
                addStealStates(st.asg.shard, slices_n);
                continue;
            }
            status.error = strprintf(
                "%s %s after %u consecutive attempt(s) with no new "
                "points; giving up (merge --degraded quarantines "
                "what stayed uncovered)",
                name.c_str(), death.c_str(), st.strikes);
            if (options.progress)
                std::fprintf(stderr, "svc: %s\n", status.error.c_str());
            continue;
        }
        unsigned delay = options.backoffMs;
        for (unsigned i = 0; i < st.strikes && delay < maxBackoffMs; ++i)
            delay *= 2;
        delay = std::min(delay, maxBackoffMs);
        if (options.progress) {
            std::fprintf(stderr,
                         "svc: %s %s after %zu new point(s); retrying "
                         "in %u ms\n",
                         name.c_str(), death.c_str(), fresh, delay);
        }
        pending.push_back(Launch{id, delay});
    }

    report.ok = true;
    for (const ShardStatus &status : report.shards)
        report.ok = report.ok && status.done;
    return report;
}

} // namespace mcsim::svc
