/**
 * @file
 * Machine-level tests: configuration validation, model feature mapping,
 * runaway/deadlock guards, and stat aggregation.
 */

#include <gtest/gtest.h>

#include "core/consistency.hh"
#include "core/machine.hh"
#include "core/metrics.hh"
#include "sim/task.hh"

using namespace mcsim;
using core::Model;

TEST(ModelParams, PaperFeatureMatrix)
{
    const auto sc1 = core::modelParams(Model::SC1);
    EXPECT_TRUE(sc1.singleOutstanding);
    EXPECT_FALSE(sc1.blockingLoads);
    EXPECT_FALSE(sc1.prefetchOnStall);
    EXPECT_FALSE(sc1.loadBypass);
    EXPECT_FALSE(sc1.releaseConsistent);

    const auto sc2 = core::modelParams(Model::SC2);
    EXPECT_TRUE(sc2.prefetchOnStall);
    EXPECT_GT(sc2.numMshrs, sc1.numMshrs);

    const auto wo1 = core::modelParams(Model::WO1);
    EXPECT_FALSE(wo1.singleOutstanding);
    EXPECT_TRUE(wo1.syncDrains);
    EXPECT_EQ(wo1.numMshrs, 5u);  // paper: five MSHRs

    const auto wo2 = core::modelParams(Model::WO2);
    EXPECT_TRUE(wo2.loadBypass);
    EXPECT_TRUE(wo2.syncDrains);

    const auto rc = core::modelParams(Model::RC);
    EXPECT_TRUE(rc.releaseConsistent);
    EXPECT_FALSE(rc.syncDrains);
    EXPECT_EQ(rc.numMshrs, 5u);

    EXPECT_TRUE(core::modelParams(Model::BSC1).blockingLoads);
    EXPECT_TRUE(core::modelParams(Model::BWO1).blockingLoads);

    EXPECT_EQ(core::modelParams(Model::WO1, 8).numMshrs, 8u);
}

TEST(ModelParams, NamesRoundTrip)
{
    for (Model m : core::allModels)
        EXPECT_EQ(core::modelFromName(core::modelName(m)), m);
    EXPECT_THROW(core::modelFromName("SC3"), FatalError);
}

TEST(ModelParams, SequentialConsistencyClassification)
{
    EXPECT_TRUE(core::isSequentiallyConsistent(Model::SC1));
    EXPECT_TRUE(core::isSequentiallyConsistent(Model::SC2));
    EXPECT_TRUE(core::isSequentiallyConsistent(Model::BSC1));
    EXPECT_FALSE(core::isSequentiallyConsistent(Model::WO1));
    EXPECT_FALSE(core::isSequentiallyConsistent(Model::RC));
}

TEST(MachineConfig, Validation)
{
    core::MachineConfig cfg;
    cfg.numProcs = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.numModules = 12;  // not a power of two
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.switchRadix = 1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    cfg.loadDelay = 0;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = {};
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Machine, RunWithoutWorkloadsIsFatal)
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    core::Machine m(cfg);
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, StartWorkloadOutOfRangeIsFatal)
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    core::Machine m(cfg);
    auto task = [](cpu::Processor &p) -> SimTask { co_await p.exec(1); };
    EXPECT_THROW(m.startWorkload(5, task(m.proc(0))), FatalError);
}

TEST(Machine, MaxCyclesGuardsLivelock)
{
    core::MachineConfig cfg;
    cfg.numProcs = 1;
    cfg.numModules = 1;
    cfg.maxCycles = 5000;
    core::Machine m(cfg);
    // A spin loop that never terminates.
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        for (;;)
            co_await p.exec(10);
    }(m.proc(0)));
    EXPECT_THROW(m.run(), FatalError);
}

TEST(Machine, RunReturnsLastFinishTick)
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    core::Machine m(cfg);
    auto worker = [](cpu::Processor &p, unsigned n) -> SimTask {
        co_await p.exec(n);
    };
    m.startWorkload(0, worker(m.proc(0), 100));
    m.startWorkload(1, worker(m.proc(1), 500));
    EXPECT_EQ(m.run(), 500u);
}

TEST(Metrics, PercentGain)
{
    core::RunMetrics base, other;
    base.cycles = 1000;
    other.cycles = 800;
    EXPECT_DOUBLE_EQ(core::percentGain(base, other), 20.0);
    EXPECT_DOUBLE_EQ(core::absoluteGainKCycles(base, other), 0.2);
    other.cycles = 1100;
    EXPECT_DOUBLE_EQ(core::percentGain(base, other), -10.0);
}

TEST(Metrics, SummaryMentionsKeyNumbers)
{
    core::RunMetrics m;
    m.cycles = 1234;
    m.readsPerProc = 10;
    m.hitRate = 0.5;
    const std::string s = m.summary();
    EXPECT_NE(s.find("1234"), std::string::npos);
    EXPECT_NE(s.find("0.5"), std::string::npos);
}

TEST(Machine, WorkloadExceptionPropagates)
{
    core::MachineConfig cfg;
    cfg.numProcs = 1;
    cfg.numModules = 1;
    core::Machine m(cfg);
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(10);
        throw std::runtime_error("workload bug");
    }(m.proc(0)));
    EXPECT_THROW(m.run(), std::runtime_error);
}
