#include "obs/tracer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcsim::obs
{

const char *
trackName(Track track)
{
    switch (track) {
      case Track::Proc: return "processors";
      case Track::Cache: return "caches";
      case Track::ReqSwitch: return "request network";
      case Track::RespSwitch: return "response network";
      case Track::Module: return "memory modules";
    }
    return "<track>";
}

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Busy: return "busy";
      case SpanKind::StallLoadMiss: return "load_miss_wait";
      case SpanKind::StallStoreMshr: return "store_mshr_wait";
      case SpanKind::StallBuffer: return "buffer_backpressure";
      case SpanKind::StallFenceSync: return "fence_sync_drain";
      case SpanKind::StallAcquire: return "acquire_wait";
      case SpanKind::StallRelease: return "release_drain";
      case SpanKind::MissService: return "miss_service";
      case SpanKind::PortBusy: return "port_busy";
      case SpanKind::DramBusy: return "dram_busy";
      case SpanKind::DirQueue: return "dir_queue";
      case SpanKind::FaultRetry: return "fault_retry";
    }
    return "<span>";
}

Tracer::Tracer(std::size_t capacity_events)
    : buf(std::max<std::size_t>(capacity_events, 1))
{}

void
Tracer::push(const TraceEvent &event)
{
    if (count < buf.size()) {
        buf[(head + count) % buf.size()] = event;
        count += 1;
    } else {
        buf[head] = event;
        head = (head + 1) % buf.size();
        drops += 1;
    }
}

void
Tracer::forEach(const std::function<void(const TraceEvent &)> &fn) const
{
    for (std::size_t i = 0; i < count; ++i)
        fn(buf[(head + i) % buf.size()]);
}

} // namespace mcsim::obs
