/**
 * @file
 * Property tests for the Omega topology: every (source, destination) pair
 * routes to the right output in exactly `stages` hops, the shuffle is a
 * bijection, and stage counts match the paper's configurations.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "net/topology.hh"
#include "sim/logging.hh"

using namespace mcsim;
using net::OmegaTopology;

TEST(Topology, PaperStageCounts)
{
    // 16 processors with 4x4 switches: 2 stages; 32 processors: 3 (the
    // extra stage is why the paper's no-contention latency rises 18->20).
    EXPECT_EQ(OmegaTopology(16, 4).stages(), 2u);
    EXPECT_EQ(OmegaTopology(32, 4).stages(), 3u);
    EXPECT_EQ(OmegaTopology(64, 4).stages(), 3u);
    EXPECT_EQ(OmegaTopology(16, 2).stages(), 4u);
}

TEST(Topology, WidthCoversPorts)
{
    const OmegaTopology t(32, 4);
    EXPECT_EQ(t.width(), 64u);
    EXPECT_EQ(t.ports(), 32u);
    EXPECT_EQ(t.switchesPerStage(), 16u);
}

TEST(Topology, ShuffleIsBijective)
{
    for (unsigned radix : {2u, 4u}) {
        const OmegaTopology t(16, radix);
        std::set<unsigned> image;
        for (unsigned link = 0; link < t.width(); ++link) {
            const unsigned s = t.shuffle(link);
            EXPECT_LT(s, t.width());
            image.insert(s);
        }
        EXPECT_EQ(image.size(), t.width());
    }
}

class TopologyRouting
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(TopologyRouting, EveryPairRoutesCorrectly)
{
    const auto [ports, radix] = GetParam();
    const OmegaTopology t(ports, radix);
    for (unsigned src = 0; src < t.width(); ++src) {
        for (unsigned dst = 0; dst < t.width(); ++dst) {
            ASSERT_EQ(t.route(src, dst), dst)
                << "ports=" << ports << " radix=" << radix
                << " src=" << src << " dst=" << dst;
        }
    }
}

TEST_P(TopologyRouting, HopsStayInRange)
{
    const auto [ports, radix] = GetParam();
    const OmegaTopology t(ports, radix);
    for (unsigned src = 0; src < t.width(); ++src) {
        unsigned link = src;
        for (unsigned s = 0; s < t.stages(); ++s) {
            const auto h = t.hop(s, link, (src * 7 + 3) % t.width());
            EXPECT_LT(h.switchIdx, t.switchesPerStage());
            EXPECT_LT(h.inPort, radix);
            EXPECT_LT(h.outPort, radix);
            EXPECT_LT(h.outLink, t.width());
            link = h.outLink;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologyRouting,
    ::testing::Values(std::make_tuple(4u, 2u), std::make_tuple(8u, 2u),
                      std::make_tuple(16u, 2u), std::make_tuple(16u, 4u),
                      std::make_tuple(32u, 4u), std::make_tuple(64u, 4u),
                      std::make_tuple(9u, 3u)));

TEST(Topology, UniquePathProperty)
{
    // The omega network has a unique path per (src, dst): two messages to
    // the same destination from different sources must share the final
    // stage's output port -- the root of hot-spot contention.
    const OmegaTopology t(16, 4);
    const unsigned dst = 5;
    std::set<unsigned> final_links;
    for (unsigned src = 0; src < 16; ++src) {
        unsigned link = src;
        for (unsigned s = 0; s < t.stages(); ++s)
            link = t.hop(s, link, dst).outLink;
        final_links.insert(link);
    }
    EXPECT_EQ(final_links.size(), 1u);
}

TEST(Topology, RejectsBadConfig)
{
    EXPECT_THROW(OmegaTopology(16, 1), FatalError);
    EXPECT_THROW(OmegaTopology(0, 4), FatalError);
}
