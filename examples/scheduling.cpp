/**
 * @file
 * Code-scheduling demo (paper sections 4.1.3 and 5.2): the same Relax
 * stencil, compiled five ways, on a consistency model of your choice.
 * Shows that the best load order depends on the memory model -- the
 * paper's observation that "programs may need to be written or compiled
 * differently to obtain the highest performance on machines with
 * different memory models."
 *
 * Usage: scheduling [model] [interior]   (defaults: WO1, 128)
 */

#include <cstdio>
#include <cstdlib>

#include "core/machine_config.hh"
#include "core/metrics.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using workloads::RelaxSchedule;

int
main(int argc, char **argv)
{
    const core::Model model =
        argc > 1 ? core::modelFromName(argv[1]) : core::Model::WO1;
    const unsigned interior = argc > 2 ? std::atoi(argv[2]) : 128;

    core::MachineConfig cfg;
    cfg.model = model;
    cfg.cacheBytes = 8 * 1024;
    cfg.lineBytes = 8;  // every south-east load misses: scheduling matters

    std::printf("Relax (interior %u) under %s, 8-byte lines\n", interior,
                core::modelName(model));
    std::printf("%-12s %12s %10s\n", "schedule", "cycles", "vs default");

    const RelaxSchedule schedules[] = {
        RelaxSchedule::Default, RelaxSchedule::OptimalSC,
        RelaxSchedule::OptimalWO, RelaxSchedule::BadSC,
        RelaxSchedule::BadWO};

    core::RunMetrics base;
    for (RelaxSchedule s : schedules) {
        workloads::RelaxParams p;
        p.interior = interior;
        p.iterations = 2;
        p.schedule = s;
        workloads::RelaxWorkload w(p);
        const auto m = workloads::runWorkload(w, cfg).metrics;
        if (s == RelaxSchedule::Default)
            base = m;
        std::printf("%-12s %12llu %9.1f%%\n", relaxScheduleName(s),
                    (unsigned long long)m.cycles,
                    core::percentGain(base, m));
    }
    std::printf("\n(positive = faster than the compiler's default "
                "schedule; try SC1 vs WO1)\n");
    return 0;
}
