#include "fault/fault.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace mcsim::fault
{

namespace
{

/** Distinct decision-site tags folded into the hash chain. */
enum Site : std::uint64_t
{
    siteNetRequest = 0x6e657452657155ull,
    siteNetResponse = 0x6e657452657370ull,
    siteReplyLoss = 0x7265706c79ull,
    siteModuleStall = 0x7374616c6cull,
    siteBlackout = 0x626c61636bull,
    siteBackoff = 0x6261636b6full,
};

bool
rateValid(double r)
{
    return r >= 0.0 && r <= 1.0;
}

} // namespace

void
FaultConfig::validate() const
{
    if (!rateValid(dropRate) || !rateValid(dupRate) ||
        !rateValid(delayRate) || !rateValid(replyLossRate) ||
        !rateValid(moduleStallRate)) {
        fatal("fault rates must lie in [0, 1]");
    }
    if ((delayRate > 0.0 || dupRate > 0.0) && delayMaxCycles == 0)
        fatal("fault delayRate/dupRate need delayMaxCycles >= 1");
    if (moduleStallRate > 0.0 && moduleStallMaxCycles == 0)
        fatal("fault moduleStallRate needs moduleStallMaxCycles >= 1");
    if (blackoutPeriod > 0 && blackoutMaxCycles >= blackoutPeriod)
        fatal("fault blackoutMaxCycles (%llu) must be shorter than "
              "blackoutPeriod (%llu)",
              static_cast<unsigned long long>(blackoutMaxCycles),
              static_cast<unsigned long long>(blackoutPeriod));
    if (blackoutPeriod > 0 && blackoutMaxCycles == 0)
        fatal("fault blackoutPeriod needs blackoutMaxCycles >= 1");
    const bool can_lose = dropRate > 0.0 || replyLossRate > 0.0;
    if (enable && can_lose && retryTimeoutCycles == 0 &&
        watchdogCycles == 0) {
        fatal("fault plan can lose messages but has neither retries nor "
              "a watchdog; a lost reply would hang the run");
    }
}

const std::vector<std::string> &
faultPresetNames()
{
    static const std::vector<std::string> names = {"off", "light",
                                                   "standard", "heavy"};
    return names;
}

FaultConfig
faultPreset(const std::string &name)
{
    FaultConfig fc;
    if (name == "off")
        return fc;
    fc.enable = true;
    if (name == "light") {
        fc.dropRate = 0.002;
        fc.dupRate = 0.002;
        fc.delayRate = 0.01;
        fc.delayMaxCycles = 32;
        fc.replyLossRate = 0.002;
        fc.moduleStallRate = 0.005;
        fc.moduleStallMaxCycles = 16;
        return fc;
    }
    if (name == "standard") {
        fc.dropRate = 0.01;
        fc.dupRate = 0.01;
        fc.delayRate = 0.03;
        fc.delayMaxCycles = 64;
        fc.replyLossRate = 0.01;
        fc.moduleStallRate = 0.02;
        fc.moduleStallMaxCycles = 32;
        fc.blackoutPeriod = 20'000;
        fc.blackoutMaxCycles = 300;
        return fc;
    }
    if (name == "heavy") {
        fc.dropRate = 0.04;
        fc.dupRate = 0.03;
        fc.delayRate = 0.10;
        fc.delayMaxCycles = 128;
        fc.replyLossRate = 0.04;
        fc.moduleStallRate = 0.05;
        fc.moduleStallMaxCycles = 64;
        fc.blackoutPeriod = 10'000;
        fc.blackoutMaxCycles = 500;
        fc.retryTimeoutCycles = 300;
        fc.nackThreshold = 4;
        return fc;
    }
    fatal("unknown fault preset '%s' (off/light/standard/heavy)",
          name.c_str());
}

FaultPlan::FaultPlan(const FaultConfig &config)
    : cfg(config), chain(config.seed)
{
    cfg.validate();
}

bool
FaultPlan::budgetLeft() const
{
    return cfg.budget == 0 || st.total() < cfg.budget;
}

FaultAction
FaultPlan::onNetMessage(bool request_net, bool droppable)
{
    FaultAction act;
    if (!cfg.enable)
        return act;
    const std::uint64_t site =
        request_net ? siteNetRequest : siteNetResponse;
    if (droppable && cfg.dropRate > 0.0 && budgetLeft() &&
        draw(site) < cfg.dropRate) {
        st.drops += 1;
        act.drop = true;
        // A dropped message can still have been duplicated upstream;
        // modelling that adds nothing, so one fault per message.
        return act;
    }
    if (droppable && cfg.dupRate > 0.0 && budgetLeft() &&
        draw(site) < cfg.dupRate) {
        st.duplicates += 1;
        act.duplicate = true;
        act.duplicateDelay = 1 + hash(site) % cfg.delayMaxCycles;
    }
    if (cfg.delayRate > 0.0 && budgetLeft() &&
        draw(site) < cfg.delayRate) {
        st.delays += 1;
        act.extraDelay = 1 + hash(site) % cfg.delayMaxCycles;
    }
    return act;
}

bool
FaultPlan::loseReply(ModuleId module)
{
    if (!cfg.enable || cfg.replyLossRate <= 0.0 || !budgetLeft())
        return false;
    if (draw(siteReplyLoss + module) >= cfg.replyLossRate)
        return false;
    st.replyLosses += 1;
    return true;
}

Tick
FaultPlan::stallCycles(ModuleId module)
{
    if (!cfg.enable || cfg.moduleStallRate <= 0.0 || !budgetLeft())
        return 0;
    if (draw(siteModuleStall + module) >= cfg.moduleStallRate)
        return 0;
    st.moduleStalls += 1;
    return 1 + hash(siteModuleStall + module) % cfg.moduleStallMaxCycles;
}

Tick
FaultPlan::blackoutUntil(ModuleId module, Tick now)
{
    if (!cfg.enable || cfg.blackoutPeriod == 0 || !budgetLeft())
        return 0;
    // One seed-positioned outage per (module, period window). This is a
    // pure function of the window index -- not of the decision counter --
    // so every arrival during the outage computes the same boundaries.
    const Tick window = now / cfg.blackoutPeriod;
    const std::uint64_t h = splitmix64(
        cfg.seed ^ splitmix64(siteBlackout + module * 0x10001ull + window));
    const Tick len = h % (cfg.blackoutMaxCycles + 1);
    if (len == 0)
        return 0;
    const Tick window_base = window * cfg.blackoutPeriod;
    const Tick start =
        window_base + (h >> 32) % (cfg.blackoutPeriod - len);
    const Tick end = start + len;
    if (now < start || now >= end)
        return 0;
    st.blackoutDeferrals += 1;
    return end;
}

Tick
FaultPlan::backoffCycles(ProcId proc, unsigned attempt)
{
    const unsigned shift = std::min(attempt > 0 ? attempt - 1 : 0, 31u);
    const std::uint64_t base =
        std::min<std::uint64_t>(std::uint64_t(cfg.backoffBaseCycles)
                                    << shift,
                                cfg.backoffMaxCycles);
    const std::uint64_t jitter =
        cfg.backoffJitterCycles
            ? hash(siteBackoff + proc) % (cfg.backoffJitterCycles + 1)
            : 0;
    return base + jitter;
}

} // namespace mcsim::fault
