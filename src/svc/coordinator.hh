/**
 * @file
 * Local coordinator: spawns one OS process per shard, supervises them,
 * and relaunches the ones that die (DESIGN.md section 15).
 *
 * Failure model: a worker process may disappear at any instant (crash,
 * SIGKILL, OOM). Its journal is the only state that matters; the
 * coordinator never holds results, it only schedules processes and
 * reads journal sizes to judge progress. Relaunching is governed by a
 * forward-progress watchdog: an attempt that journals at least one new
 * point resets the shard's strike count, so a run that keeps making
 * progress is relaunched indefinitely (this is what lets a --kill-after
 * worker converge), while a shard that dies repeatedly with NO new
 * points exhausts its retries and fails the run. Relaunches back off
 * exponentially. --max-retries 0 disables relaunching entirely: the
 * first death fails the shard, leaving its journal for a later
 * `run --resume` -- the two-phase kill/resume gate CI exercises.
 */

#ifndef MCSIM_SVC_COORDINATOR_HH
#define MCSIM_SVC_COORDINATOR_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "svc/shard.hh"

namespace mcsim::svc
{

/** Coordinator knobs. */
struct CoordinatorOptions
{
    /** Concurrent worker processes; 0 = one per shard. */
    unsigned workers = 0;
    /** Consecutive no-progress deaths a shard may suffer before the
     *  run gives up on it; 0 = never relaunch (first death is final,
     *  journals are kept for a --resume). */
    unsigned maxRetries = 3;
    /** First relaunch delay; doubles per consecutive no-progress death
     *  of that shard, capped at 5000 ms. */
    unsigned backoffMs = 200;
    /** Narrate launches, deaths, and retries to stderr. */
    bool progress = true;
};

/** Supervision outcome for one shard. */
struct ShardStatus
{
    std::uint32_t shard = 0;
    unsigned attempts = 0;
    /** Journaled points at the last scan (resumed + new). */
    std::size_t journaledPoints = 0;
    bool done = false;
    /** Why the coordinator gave up; empty while healthy. */
    std::string error;
};

/** Outcome of a supervised run. */
struct CoordinatorReport
{
    /** Every shard finished its journal completely. */
    bool ok = false;
    std::vector<ShardStatus> shards;
};

/**
 * Builds the argv for one shard's worker process (the CLI layer owns
 * the flag syntax; the coordinator only owns scheduling).
 */
using WorkerArgv =
    std::function<std::vector<std::string>(std::uint32_t shard)>;

/**
 * Supervise one worker process per shard of @p plan until every shard's
 * journal (at @p journal_paths[shard]) is complete or its retries are
 * exhausted. fatal() only on coordinator-side failures (fork or exec
 * impossible); worker deaths are policy, not errors.
 */
CoordinatorReport runCoordinator(
    const ShardPlan &plan,
    const std::vector<std::string> &journal_paths,
    const WorkerArgv &worker_argv, const CoordinatorOptions &options);

} // namespace mcsim::svc

#endif // MCSIM_SVC_COORDINATOR_HH
