#include "core/machine.hh"

#include "fault/watchdog.hh"
#include "sim/logging.hh"

namespace mcsim::core
{

void
MachineConfig::validate() const
{
    if (numProcs == 0 || numProcs > 64)
        fatal("numProcs must be 1..64 (got %u)", numProcs);
    if (numModules == 0 || numModules > 64)
        fatal("numModules must be 1..64 (got %u)", numModules);
    if (!isPowerOf2(numModules))
        fatal("numModules must be a power of two (got %u)", numModules);
    if (switchRadix < 2)
        fatal("switchRadix must be >= 2");
    if (bufferEntries == 0)
        fatal("bufferEntries must be >= 1");
    if (loadDelay == 0)
        fatal("loadDelay must be >= 1");
    if (relaxedMshrs == 0)
        fatal("relaxedMshrs must be >= 1");
    fault.validate();
    // Cache geometry is validated by CacheParams::validate().
}

Machine::Machine(const MachineConfig &config) : cfg(config)
{
    cfg.validate();

    const unsigned ports = std::max(cfg.numProcs, cfg.numModules);
    const ModelParams model = cfg.modelParams();

    if (cfg.obs.tracer) {
        tracerPtr = std::make_unique<obs::Tracer>(cfg.obs.tracerEvents);
        tracerPtr->arm(cfg.obs.tracerArmed);
    }

    reqNet = std::make_unique<Network>(
        queue, ports, cfg.switchRadix, [this](mem::NetMsg &&msg) {
            modules[msg.dst % cfg.numModules]->handleRequest(std::move(msg));
        });
    respNet = std::make_unique<Network>(
        queue, ports, cfg.switchRadix, [this](mem::NetMsg &&msg) {
            caches[msg.dst % cfg.numProcs]->handleResponse(std::move(msg));
        });

    mem::MemoryParams mem_params;
    mem_params.lineBytes = cfg.lineBytes;
    mem_params.initCycles = cfg.memInitCycles;
    mem_params.numProcs = cfg.numProcs;

    for (unsigned m = 0; m < cfg.numModules; ++m) {
        respBufs.push_back(std::make_unique<Buffer>(
            queue, *respNet, cfg.bufferEntries, /*bypass=*/false));
        memOut.push_back(
            std::make_unique<mem::Outbox>(*respBufs.back(), false));
        modules.push_back(std::make_unique<mem::MemoryModule>(
            queue, m, mem_params, *memOut.back()));
    }

    mem::CacheParams cache_params;
    cache_params.cacheBytes = cfg.cacheBytes;
    cache_params.lineBytes = cfg.lineBytes;
    cache_params.assoc = cfg.assoc;
    cache_params.numMshrs = model.numMshrs;
    cache_params.missHandleCycles = cfg.missHandleCycles;
    cache_params.fillCycles = cfg.fillCycles;
    cache_params.bypassLoads = model.loadBypass;
    cache_params.nextLinePrefetch = cfg.nextLinePrefetch;

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        reqBufs.push_back(std::make_unique<Buffer>(
            queue, *reqNet, cfg.bufferEntries, model.loadBypass));
        procOut.push_back(
            std::make_unique<mem::Outbox>(*reqBufs.back(), model.loadBypass));
        caches.push_back(std::make_unique<mem::Cache>(
            queue, p, cache_params, *procOut.back(), cfg.numModules));

        cpu::ProcParams proc_params;
        proc_params.id = p;
        proc_params.model = model;
        proc_params.loadDelay = cfg.loadDelay;
        proc_params.branchDelay = cfg.branchDelay;
        procs.push_back(std::make_unique<cpu::Processor>(
            queue, proc_params, *caches.back(), fmem));
        procs.back()->setDoneHandler([this]() { onWorkloadDone(); });
    }

    if (cfg.check.enabled()) {
        checkerPtr = std::make_unique<check::Checker>(
            cfg.check, model, cfg.numProcs, cfg.numModules, cfg.lineBytes);
        std::vector<const mem::Cache *> cache_views;
        for (const auto &c : caches)
            cache_views.push_back(c.get());
        std::vector<const mem::MemoryModule *> module_views;
        for (const auto &m : modules)
            module_views.push_back(m.get());
        checkerPtr->attach(std::move(cache_views), std::move(module_views));
        for (auto &c : caches)
            c->setChecker(checkerPtr.get());
        for (auto &m : modules)
            m->setChecker(checkerPtr.get());
        for (auto &p : procs)
            p->setChecker(checkerPtr.get());
    }

    if (cfg.trace.enabled()) {
        recorderPtr = std::make_unique<axiom::TraceRecorder>(cfg.trace,
                                                             cfg.numProcs);
        for (auto &p : procs)
            p->setRecorder(recorderPtr.get());
    }

    if (tracerPtr) {
        reqNet->setTracer(tracerPtr.get(), obs::Track::ReqSwitch);
        respNet->setTracer(tracerPtr.get(), obs::Track::RespSwitch);
        for (auto &c : caches)
            c->setTracer(tracerPtr.get());
        for (auto &p : procs)
            p->setTracer(tracerPtr.get());
        for (auto &m : modules)
            m->setTracer(tracerPtr.get());
    }

    if (cfg.fault.enabled()) {
        planPtr = std::make_unique<fault::FaultPlan>(cfg.fault);
        // Only kinds with a retry path may be lost or cloned; everything
        // else is delay-eligible only (see FaultPlan::onNetMessage).
        auto droppable = [](const mem::CoherenceMsg &cm) {
            switch (cm.kind) {
              case mem::MsgKind::GetShared:
              case mem::MsgKind::GetExclusive:
              case mem::MsgKind::DataReplyShared:
              case mem::MsgKind::DataReplyExclusive:
              case mem::MsgKind::Nack:
                return true;
              case mem::MsgKind::Writeback:
              case mem::MsgKind::InvAck:
              case mem::MsgKind::RecallStale:
              case mem::MsgKind::FlushData:
              case mem::MsgKind::Invalidate:
              case mem::MsgKind::RecallShared:
              case mem::MsgKind::RecallExclusive:
              case mem::MsgKind::WbAck:
                return false;
            }
            return false;  // not reached: all kinds enumerated above
        };
        reqNet->setFaultFilter([this, droppable](const mem::NetMsg &m) {
            const fault::FaultAction a = planPtr->onNetMessage(
                /*request_net=*/true, droppable(m.payload));
            return net::NetPerturbation{a.drop, a.duplicate, a.extraDelay,
                                        a.duplicateDelay};
        });
        respNet->setFaultFilter([this, droppable](const mem::NetMsg &m) {
            const fault::FaultAction a = planPtr->onNetMessage(
                /*request_net=*/false, droppable(m.payload));
            return net::NetPerturbation{a.drop, a.duplicate, a.extraDelay,
                                        a.duplicateDelay};
        });
        for (auto &c : caches)
            c->setFaultPlan(planPtr.get());
        for (auto &m : modules)
            m->setFaultPlan(planPtr.get());
    }

    if (cfg.choiceScheduler) {
        // Model checking (src/mc/): both networks switch to logical
        // scheduler-driven delivery; directory waiter service and retry
        // backoff become explicit choice points. The label maps each
        // message to the line address the DPOR dependence relation
        // reasons about.
        ChoiceScheduler *mc = cfg.choiceScheduler;
        auto label = [](const mem::NetMsg &m) {
            return ChoiceOption{m.payload.lineAddr, 0};
        };
        auto probe = [this, mc](bool request_net) {
            return [this, mc, request_net](const mem::NetMsg &m) {
                DeliveryRecord rec;
                rec.tick = queue.now();
                rec.requestNet = request_net;
                rec.src = m.src;
                rec.dst = m.dst;
                rec.lineAddr = m.payload.lineAddr;
                rec.kind = static_cast<std::uint8_t>(m.payload.kind);
                rec.seq = m.payload.seq;
                mc->onDelivery(rec);
            };
        };
        reqNet->setChoiceScheduler(mc, label, probe(true));
        respNet->setChoiceScheduler(mc, label, probe(false));
        for (auto &m : modules)
            m->setChoiceScheduler(mc);
        for (auto &c : caches)
            c->setChoiceScheduler(mc);
    }
}

void
Machine::startWorkload(unsigned proc_id, SimTask &&task)
{
    if (proc_id >= cfg.numProcs)
        fatal("startWorkload: processor %u out of range", proc_id);
    procs[proc_id]->start(std::move(task));
    ++started;
}

void
Machine::onWorkloadDone()
{
    ++doneCount;
}

std::uint64_t
Machine::totalRetired() const
{
    std::uint64_t retired = 0;
    for (const auto &p : procs)
        retired += p->stats().instructions;
    return retired;
}

std::string
Machine::diagnosticSnapshot() const
{
    std::string out = strprintf("diagnostic snapshot at tick %llu:\n",
                                static_cast<unsigned long long>(queue.now()));
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        const auto &proc = *procs[p];
        out += strprintf(
            "  proc %u: %s, %llu instrs, %u outstanding, outbox backlog "
            "%zu, iface buffer %zu\n",
            p, proc.done() ? "done" : "running",
            static_cast<unsigned long long>(proc.stats().instructions),
            proc.outstandingRefs(), procOut[p]->backlog(),
            reqBufs[p]->occupancy());
        for (const auto &m : caches[p]->pendingMshrs()) {
            out += strprintf(
                "    mshr line 0x%llx %s%s, issued at %llu, %u retries\n",
                static_cast<unsigned long long>(m.lineAddr),
                m.exclusive ? "exclusive" : "shared",
                m.replyReceived ? ", reply received" : "",
                static_cast<unsigned long long>(m.issueTick), m.attempts);
        }
        if (caches[p]->pendingWritebacks() > 0) {
            out += strprintf("    %zu writebacks awaiting WbAck\n",
                             caches[p]->pendingWritebacks());
        }
    }
    for (unsigned m = 0; m < cfg.numModules; ++m) {
        if (modules[m]->openTransactions() == 0 &&
            memOut[m]->backlog() == 0 && respBufs[m]->occupancy() == 0) {
            continue;
        }
        out += strprintf(
            "  module %u: %zu open transactions, outbox backlog %zu, "
            "iface buffer %zu\n",
            m, modules[m]->openTransactions(), memOut[m]->backlog(),
            respBufs[m]->occupancy());
    }
    if (planPtr) {
        const fault::FaultStats &fs = planPtr->stats();
        out += strprintf(
            "  faults injected: %llu (%llu drops, %llu dups, %llu delays, "
            "%llu reply losses, %llu stalls, %llu blackout deferrals)\n",
            static_cast<unsigned long long>(fs.total()),
            static_cast<unsigned long long>(fs.drops),
            static_cast<unsigned long long>(fs.duplicates),
            static_cast<unsigned long long>(fs.delays),
            static_cast<unsigned long long>(fs.replyLosses),
            static_cast<unsigned long long>(fs.moduleStalls),
            static_cast<unsigned long long>(fs.blackoutDeferrals));
    }
    if (tracerPtr && tracerPtr->size() > 0) {
        // Tail of the event-trace ring: the most recent activity.
        constexpr std::size_t tail = 16;
        const std::size_t skip =
            tracerPtr->size() > tail ? tracerPtr->size() - tail : 0;
        std::size_t index = 0;
        out += strprintf("  trace tail (last %zu of %zu events):\n",
                         tracerPtr->size() - skip, tracerPtr->size());
        tracerPtr->forEach([&](const obs::TraceEvent &e) {
            if (index++ < skip)
                return;
            out += strprintf(
                "    [%llu +%llu] %s/%u %s line 0x%llx\n",
                static_cast<unsigned long long>(e.begin),
                static_cast<unsigned long long>(e.dur),
                obs::trackName(e.track), e.id, obs::spanKindName(e.kind),
                static_cast<unsigned long long>(e.arg));
        });
    }
    return out;
}

Tick
Machine::run()
{
    if (started == 0)
        fatal("Machine::run with no workloads started");
    fault::ForwardProgressWatchdog watchdog(cfg.fault.watchdogCycles);
    while (doneCount < started) {
        if (queue.empty()) {
            fatal("deadlock: %u of %u workloads unfinished at tick %llu\n%s",
                  started - doneCount, started,
                  static_cast<unsigned long long>(queue.now()),
                  diagnosticSnapshot().c_str());
        }
        queue.run(1 << 16);
        if (watchdog.poll(queue.now(), totalRetired())) {
            fatal("forward-progress watchdog: no instruction retired for "
                  "%llu cycles (threshold %llu) with %u of %u workloads "
                  "unfinished\n%s",
                  static_cast<unsigned long long>(
                      watchdog.stalledCycles(queue.now())),
                  static_cast<unsigned long long>(watchdog.threshold()),
                  started - doneCount, started,
                  diagnosticSnapshot().c_str());
        }
        if (queue.now() > cfg.maxCycles) {
            fatal("simulation exceeded maxCycles=%llu with %u workloads "
                  "unfinished\n%s",
                  static_cast<unsigned long long>(cfg.maxCycles),
                  started - doneCount, diagnosticSnapshot().c_str());
        }
    }
    if (planPtr) {
        // Faulted runs can retire their last instruction with revocations,
        // duplicates, and retry timers still in flight; drain them so the
        // final audit and the chaos fingerprint see the quiesced protocol,
        // not a mid-flight window. (Terminates: every pending retry timer
        // no-ops against its completed MSHR and nothing re-arms.) Fault-off
        // runs keep the legacy stop tick so goldens see zero drift.
        while (!queue.empty())
            queue.run(1 << 16);
    }
    if (checkerPtr)
        checkerPtr->finalAudit();
    Tick last = 0;
    for (const auto &p : procs)
        if (p->done())
            last = std::max(last, p->stats().finishedAt);
    return last;
}

StatSet
Machine::collectStats() const
{
    StatSet out;
    out.set("machine.num_procs", cfg.numProcs);
    out.set("machine.line_bytes", cfg.lineBytes);
    out.set("machine.cache_bytes", cfg.cacheBytes);

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        caches[p]->stats().addTo(out, "cache.total.");
        procs[p]->stats().addTo(out, "proc.total.");
    }
    for (unsigned m = 0; m < cfg.numModules; ++m)
        modules[m]->stats().addTo(out, "mem.total.");
    reqNet->stats().addTo(out, "reqnet.");
    respNet->stats().addTo(out, "respnet.");
    for (unsigned p = 0; p < cfg.numProcs; ++p)
        reqBufs[p]->stats().addTo(out, "reqbuf.total.");
    if (checkerPtr)
        checkerPtr->stats().addTo(out, "check.");
    if (recorderPtr)
        out.set("axiom.events", static_cast<double>(recorderPtr->size()));
    if (tracerPtr) {
        out.set("obs.trace_events", static_cast<double>(tracerPtr->size()));
        out.set("obs.trace_dropped",
                static_cast<double>(tracerPtr->dropped()));
    }
    if (planPtr)
        planPtr->stats().addTo(out, "fault.");

    Tick last = 0;
    for (const auto &p : procs)
        last = std::max(last, p->stats().finishedAt);
    out.set("machine.run_ticks", static_cast<double>(last));
    return out;
}

} // namespace mcsim::core
