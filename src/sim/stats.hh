/**
 * @file
 * A small named-statistics container used for dumping and test inspection.
 *
 * Components keep their counters in typed structs for speed; StatSet is the
 * uniform export format (name -> double) used by the experiment runner, the
 * explorer example, and the bench table printers.
 */

#ifndef MCSIM_SIM_STATS_HH
#define MCSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace mcsim
{

/** An ordered collection of named scalar statistics. */
class StatSet
{
  public:
    /** Set (or overwrite) a statistic. */
    void
    set(const std::string &name, double value)
    {
        values[name] = value;
    }

    /** Add @p delta to a statistic, creating it at zero if absent. */
    void
    add(const std::string &name, double delta)
    {
        values[name] += delta;
    }

    /** Fetch a statistic; returns 0 when absent. */
    double
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0.0 : it->second;
    }

    /** True when the statistic has been recorded. */
    bool has(const std::string &name) const { return values.count(name) > 0; }

    /** Merge another set into this one, summing shared names. */
    void
    merge(const StatSet &other)
    {
        for (const auto &[name, value] : other.values)
            values[name] += value;
    }

    /** Number of recorded statistics. */
    std::size_t size() const { return values.size(); }

    /** Iterate in name order. */
    auto begin() const { return values.begin(); }
    auto end() const { return values.end(); }

    /** Human-readable dump, one "name = value" line per statistic. */
    void
    dump(std::ostream &os, const std::string &prefix = "") const
    {
        for (const auto &[name, value] : values)
            os << prefix << name << " = " << value << "\n";
    }

  private:
    std::map<std::string, double> values;
};

} // namespace mcsim

#endif // MCSIM_SIM_STATS_HH
