/**
 * @file
 * Workload interface and the single-run experiment driver.
 *
 * A Workload owns the shared-data layout and per-processor program of one
 * benchmark. Workload code is written once and runs unchanged on every
 * consistency model -- the Processor applies the model-specific stall
 * rules -- mirroring how the paper compiled one PCP program per benchmark
 * and ran it on all five simulated systems.
 */

#ifndef MCSIM_WORKLOADS_WORKLOAD_HH
#define MCSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>

#include "core/machine.hh"
#include "core/machine_config.hh"
#include "core/metrics.hh"

namespace mcsim::workloads
{

/** One benchmark program. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name ("Gauss", "Qsort", ...). */
    virtual std::string name() const = 0;

    /**
     * Lay out and initialize shared data in @p machine's functional
     * memory, then start one coroutine per processor.
     */
    virtual void setup(core::Machine &machine) = 0;

    /**
     * Check functional correctness after the run; throws (fatal) on a
     * wrong answer. Every model must produce a correct result -- the
     * relaxed models only change timing for these data-race-free
     * programs.
     */
    virtual void verify(core::Machine &machine) const = 0;

    /**
     * True when the program is data-race-free under the sync operations it
     * uses. runWorkload() disables the happens-before race detector for
     * workloads that return false (e.g. the synthetic reference generator,
     * which writes shared addresses without locking by design); the
     * coherence and ordering checks stay on.
     */
    virtual bool dataRaceFree() const { return true; }

    /**
     * Fingerprint of the run's semantic result in @p machine's functional
     * memory. The chaos harness (src/exp/chaos.hh) compares a faulted
     * run's value against its fault-free twin's to assert fault
     * transparency. The default hashes the whole image -- right for
     * statically scheduled workloads, whose final memory is a pure
     * function of the program. Dynamically scheduled workloads override
     * it to hash their output region only: WHICH processor pops which
     * work unit (and hence scheduler stacks and scratch) legitimately
     * varies with timing, while the output itself must not.
     */
    virtual std::uint64_t
    resultFingerprint(core::Machine &machine) const
    {
        return machine.memory().fingerprint();
    }
};

/** Result of one run: derived metrics plus the raw statistic set. */
struct RunResult
{
    core::RunMetrics metrics;
    StatSet stats;
};

/**
 * Build a machine from @p config, run @p workload on it to completion,
 * verify the answer, and collect metrics.
 */
RunResult runWorkload(Workload &workload, const core::MachineConfig &config);

/**
 * As above, but invoke @p afterSetup on the machine between
 * Workload::setup and the run -- the attach point for observers that
 * need the built machine (trace capture hooks processor issue sinks
 * here). Pass an empty function for a plain run.
 */
RunResult runWorkload(Workload &workload, const core::MachineConfig &config,
                      const std::function<void(core::Machine &)> &afterSetup);

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_WORKLOAD_HH
