/**
 * @file
 * sweep_runner: run named configuration grids through the parallel
 * sweep engine (src/exp/) and emit canonical JSON/CSV results, or check
 * them against committed golden baselines.
 *
 * Usage:
 *   sweep_runner [--grid NAME[,NAME...]]... [--scale quick|scaled|full]
 *                [--threads N] [--out FILE] [--csv FILE]
 *                [--check DIR] [--golden-out DIR]
 *                [--procs N] [--cache-bytes N] [--line-bytes N]
 *                [--faults PRESET] [--chaos]
 *                [--list] [--no-progress]
 *
 * Defaults: --grid quick, --threads hardware, --out
 * results/BENCH_sweep.json when any grid ran and --out was not given
 * explicitly pass --out "" to suppress writing.
 *
 * The JSON document is byte-identical for a given grid list regardless
 * of --threads (results are serialized in grid order; nothing
 * wall-clock-derived is recorded). --check DIR compares each grid
 * against DIR/<grid>.json under the per-metric tolerance policy
 * (src/exp/golden.hh) and prints the first divergent metric by name.
 *
 * --faults PRESET applies a fault-injection preset (src/fault/) to every
 * point; --chaos instead runs the chaos harness (src/exp/chaos.hh),
 * which pairs every point with a fault-free baseline and asserts fault
 * transparency. All configuration -- grid names, preset names, geometry
 * overrides -- is validated before any job runs, so a typo fails in
 * milliseconds with one actionable line instead of mid-sweep.
 *
 * Exit status: 0 all jobs ok (and all checks clean), 1 on any failed
 * job, golden divergence, or chaos failure, 2 on usage/config errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exp/chaos.hh"
#include "exp/golden.hh"
#include "exp/grid.hh"
#include "exp/sweep.hh"
#include "fault/fault_config.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "svc/atomic_file.hh"

#include "../common/cli.hh"

using namespace mcsim;

namespace
{

struct Options
{
    std::vector<std::string> grids;
    exp::Scale scale = exp::Scale::Scaled;
    unsigned threads = 0;
    std::string out = "results/BENCH_sweep.json";
    bool outExplicit = false;
    std::string csv;
    std::string checkDir;
    std::string goldenOut;
    std::string faults;
    bool chaos = false;
    unsigned procs = 0;
    unsigned cacheBytes = 0;
    unsigned lineBytes = 0;
    bool list = false;
    bool progress = true;
};

void
usage(const char *argv0)
{
    std::string names;
    for (const std::string &name : exp::gridNames())
        names += (names.empty() ? "" : "|") + name;
    std::string presets;
    for (const std::string &name : fault::faultPresetNames())
        presets += (presets.empty() ? "" : "|") + name;
    std::fprintf(
        stderr,
        "usage: %s [--grid NAME[,NAME...]]... [--scale quick|scaled|full]\n"
        "          [--threads N] [--out FILE] [--csv FILE]\n"
        "          [--check DIR] [--golden-out DIR]\n"
        "          [--procs N] [--cache-bytes N] [--line-bytes N]\n"
        "          [--faults PRESET] [--chaos] [--list] [--no-progress]\n"
        "  --grid        grid(s) to run: %s, or all (default: quick)\n"
        "  --scale       problem/cache scale for the paper grids\n"
        "                (default scaled; the quick grid is always quick)\n"
        "  --threads     worker threads (default: hardware concurrency)\n"
        "  --out         results JSON path (default "
        "results/BENCH_sweep.json,\n"
        "                or results/BENCH_chaos.json under --chaos;\n"
        "                \"\" suppresses writing)\n"
        "  --csv         also write a flat CSV of every job\n"
        "  --check       diff each grid against DIR/<grid>.json golden\n"
        "                baselines; non-zero exit on divergence\n"
        "  --golden-out  write one per-grid golden document into DIR\n"
        "  --procs       override processor/module count per point\n"
        "  --cache-bytes override per-processor cache size per point\n"
        "  --line-bytes  override cache line size per point\n"
        "  --faults      fault-injection preset: %s\n"
        "  --chaos       run the fault-transparency chaos harness instead\n"
        "                of a plain sweep (preset from --faults, default\n"
        "                standard)\n"
        "  --list        print the known grid names and exit\n",
        argv0, names.c_str(), presets.c_str());
}

void
splitGrids(const std::string &arg, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string name =
            arg.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (name == "all") {
            for (const std::string &g : exp::gridNames())
                out.push_back(g);
        } else if (!name.empty()) {
            out.push_back(name);
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        auto argError = [&](const std::string &message) {
            std::fprintf(stderr, "sweep_runner: %s\n", message.c_str());
            usage(argv[0]);
            std::exit(2);
        };
        auto nextUnsigned = [&]() -> unsigned {
            unsigned value = 0;
            if (!tools::parseUnsigned(next(), value))
                argError(arg + " expects a non-negative integer, got '" +
                         argv[i] + "'");
            return value;
        };
        if (arg == "--grid") {
            splitGrids(next(), opt.grids);
        } else if (arg == "--scale") {
            try {
                opt.scale = exp::scaleFromName(next());
            } catch (const FatalError &err) {
                argError(err.what());
            }
        } else if (arg == "--threads") {
            opt.threads = nextUnsigned();
        } else if (arg == "--out") {
            opt.out = next();
            opt.outExplicit = true;
        } else if (arg == "--csv") {
            opt.csv = next();
        } else if (arg == "--check") {
            opt.checkDir = next();
        } else if (arg == "--golden-out") {
            opt.goldenOut = next();
        } else if (arg == "--procs") {
            opt.procs = nextUnsigned();
        } else if (arg == "--cache-bytes") {
            opt.cacheBytes = nextUnsigned();
        } else if (arg == "--line-bytes") {
            opt.lineBytes = nextUnsigned();
        } else if (arg == "--faults") {
            opt.faults = next();
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--no-progress") {
            opt.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            std::exit(2);
        }
    }
    if (opt.grids.empty())
        opt.grids.push_back("quick");
    if (opt.chaos && !opt.outExplicit)
        opt.out = "results/BENCH_chaos.json";
    return opt;
}

/** One-line config error + exit 2 (the up-front validation contract). */
[[noreturn]] void
configError(const std::string &message)
{
    std::fprintf(stderr, "sweep_runner: %s\n", message.c_str());
    std::exit(2);
}

/**
 * Name and geometry validation: every grid name, the fault preset, and
 * the geometry overrides. Runs before the --list early exit too, so
 * `--list --faults bogus` fails the same way a real run would.
 */
void
validateConfig(const Options &opt)
{
    for (const std::string &name : opt.grids) {
        bool known = false;
        for (const std::string &g : exp::gridNames())
            known = known || g == name;
        if (!known)
            configError(strprintf(
                "unknown grid '%s' (run --list for the catalog)",
                name.c_str()));
    }
    if (!opt.faults.empty() || opt.chaos) {
        const std::string preset =
            opt.faults.empty() ? "standard" : opt.faults;
        bool known = false;
        for (const std::string &p : fault::faultPresetNames())
            known = known || p == preset;
        if (!known) {
            std::string presets;
            for (const std::string &p : fault::faultPresetNames())
                presets += (presets.empty() ? "" : "/") + p;
            configError(strprintf("unknown fault preset '%s' (try %s)",
                                  preset.c_str(), presets.c_str()));
        }
    }
    if (opt.procs && !isPowerOf2(opt.procs))
        configError(strprintf(
            "--procs %u: processor count must be a power of two "
            "(the Omega networks route by bit slices)",
            opt.procs));
    if (opt.lineBytes && (!isPowerOf2(opt.lineBytes) || opt.lineBytes < 8))
        configError(strprintf(
            "--line-bytes %u: line size must be a power of two >= 8",
            opt.lineBytes));
    const unsigned line = opt.lineBytes ? opt.lineBytes : 8;
    if (opt.cacheBytes && opt.cacheBytes < line)
        configError(strprintf(
            "--cache-bytes %u: cache would hold zero lines of %u bytes",
            opt.cacheBytes, line));
}

/**
 * Fail fast on bad configuration: after validateConfig, each resulting
 * per-point MachineConfig is dry-built and checked before a single job
 * is launched.
 */
std::vector<exp::Grid>
buildGrids(const Options &opt)
{
    std::vector<exp::Grid> grids;
    for (const std::string &name : opt.grids)
        grids.push_back(exp::namedGrid(name, opt.scale));
    for (exp::Grid &grid : grids) {
        for (exp::SweepPoint &point : grid.points) {
            if (opt.procs)
                point.numProcs = opt.procs;
            if (opt.cacheBytes)
                point.cacheBytes = opt.cacheBytes;
            if (opt.lineBytes)
                point.lineBytes = opt.lineBytes;
            if (!opt.faults.empty() && !opt.chaos)
                point.faultPreset = opt.faults;
            // Dry-build the full machine configuration so geometry that
            // only a component constructor would reject (set counts,
            // associativity divisibility, fault rates) fails here, named
            // after the point, and not mid-sweep in a worker thread.
            try {
                const core::MachineConfig cfg = point.machineConfig();
                cfg.validate();
                mem::CacheParams cache;
                cache.cacheBytes = cfg.cacheBytes;
                cache.lineBytes = cfg.lineBytes;
                cache.assoc = cfg.assoc;
                cache.validate();
            } catch (const FatalError &err) {
                configError(strprintf("point %s: %s",
                                      point.id().c_str(), err.what()));
            }
        }
    }
    return grids;
}

/**
 * Atomic results write (svc::writeFileAtomic: temp + rename), so an
 * interrupted run never leaves a truncated document where a complete
 * one is expected.
 */
bool
writeFile(const std::string &path, const std::string &content)
{
    try {
        svc::writeFileAtomic(path, content);
        return true;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "sweep_runner: %s\n", err.what());
        return false;
    }
}

int
runChaosMode(const Options &opt, const std::vector<exp::Grid> &grids)
{
    exp::ChaosOptions chaos_opts;
    chaos_opts.preset = opt.faults.empty() ? "standard" : opt.faults;
    chaos_opts.threads = opt.threads;
    chaos_opts.progress = opt.progress;

    bool all_ok = true;
    exp::Json docs = exp::Json::array();
    for (const exp::Grid &grid : grids) {
        std::fprintf(stderr,
                     "chaos grid %s: %zu point pair(s), preset %s\n",
                     grid.name.c_str(), grid.points.size(),
                     chaos_opts.preset.c_str());
        const exp::ChaosReport report = exp::runChaos(grid, chaos_opts);
        std::fputs(report.summary().c_str(), stdout);
        all_ok = all_ok && report.ok();
        docs.push(report.toJson());
    }
    if (!opt.out.empty()) {
        exp::Json doc = exp::Json::object();
        doc["schema"] = exp::Json("mcsim-chaos-v1");
        doc["reports"] = std::move(docs);
        if (!writeFile(opt.out, doc.dump() + "\n"))
            return 1;
    }
    return all_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    validateConfig(opt);
    if (opt.list) {
        for (const std::string &name : exp::gridNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    const std::vector<exp::Grid> grids = buildGrids(opt);
    if (opt.chaos)
        return runChaosMode(opt, grids);

    exp::SweepOutcomes outcomes;
    for (const exp::Grid &grid : grids) {
        std::fprintf(stderr, "grid %s: %zu jobs on %u thread(s)\n",
                     grid.name.c_str(), grid.points.size(),
                     opt.threads ? opt.threads
                                 : std::thread::hardware_concurrency());
        exp::SweepOptions sweep_opts;
        sweep_opts.threads = opt.threads;
        sweep_opts.progress = opt.progress;
        outcomes.add(grid, exp::SweepRunner(sweep_opts).run(grid));
    }

    const exp::Json doc = outcomes.toJson();
    if (!opt.out.empty() && !writeFile(opt.out, doc.dump() + "\n"))
        return 1;
    if (!opt.csv.empty() && !writeFile(opt.csv, outcomes.toCsv()))
        return 1;
    if (!opt.goldenOut.empty()) {
        // One self-contained document per grid, the format --check
        // consumes.
        const exp::Json *grid_docs = doc.find("grids");
        for (const std::string &name : outcomes.gridsRun()) {
            exp::Json gdoc = exp::Json::object();
            gdoc["schema"] = exp::Json("mcsim-sweep-v1");
            exp::Json one = exp::Json::object();
            if (const exp::Json *g =
                    grid_docs ? grid_docs->find(name) : nullptr)
                one[name] = *g;
            else
                one[name] = exp::Json::array();
            gdoc["grids"] = std::move(one);
            if (!writeFile(opt.goldenOut + "/" + name + ".json",
                           gdoc.dump() + "\n"))
                return 1;
        }
    }

    bool check_ok = true;
    if (!opt.checkDir.empty()) {
        for (const std::string &name : outcomes.gridsRun()) {
            const exp::GoldenDiff diff =
                exp::checkAgainstGoldenDir(doc, opt.checkDir, name);
            std::fputs(diff.report.c_str(), stdout);
            check_ok = check_ok && diff.ok;
        }
    }

    const std::size_t failed = outcomes.failedJobs();
    std::printf("sweep_runner: %zu/%zu job(s) ok%s\n",
                outcomes.totalJobs() - failed, outcomes.totalJobs(),
                check_ok ? "" : ", golden check FAILED");
    if (failed) {
        for (const std::string &name : outcomes.gridsRun())
            for (const exp::JobResult &job : outcomes.gridResults(name))
                if (!job.ok)
                    std::printf("  FAILED %s: %s\n",
                                job.point.id().c_str(),
                                job.error.c_str());
    }
    return failed == 0 && check_ok ? 0 : 1;
}
