/**
 * @file
 * Shared command-line helpers for the tools/ executables.
 *
 * Every tool follows the same validation contract: bad configuration
 * fails up front with one actionable line on stderr and exit status 2,
 * before any real work starts. These helpers cover the numeric half of
 * that contract -- std::atoi silently turns "16x" into 16 and "bogus"
 * into 0, which then surfaces as a confusing mid-run failure (or, worse,
 * a silently different experiment).
 */

#ifndef MCSIM_TOOLS_COMMON_CLI_HH
#define MCSIM_TOOLS_COMMON_CLI_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace mcsim::tools
{

/**
 * Strict non-negative integer parse: the whole token must be one
 * number (decimal, 0x-hex, or 0-octal). Rejects trailing garbage,
 * negatives (strtoull would silently wrap them), and overflow.
 */
inline bool
parseU64(const char *text, std::uint64_t &out)
{
    if (text == nullptr || *text == '\0')
        return false;
    if (std::strchr(text, '-') != nullptr)
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    out = value;
    return true;
}

/** parseU64 constrained to the unsigned range. */
inline bool
parseUnsigned(const char *text, unsigned &out)
{
    std::uint64_t value = 0;
    if (!parseU64(text, value) || value > 0xffffffffull)
        return false;
    out = static_cast<unsigned>(value);
    return true;
}

} // namespace mcsim::tools

#endif // MCSIM_TOOLS_COMMON_CLI_HH
