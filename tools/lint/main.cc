/**
 * @file
 * mcsim-lint -- the repo's determinism & protocol-hygiene linter.
 *
 * Runs the check catalog (lint/checks.hh, DESIGN.md section 13) over
 * the translation units listed in compile_commands.json plus every
 * header under the requested roots. Exit status: 0 clean, 1 findings,
 * 2 bad invocation (the tools/ exit-2 contract).
 *
 *   mcsim-lint -p build src                 # enforce the tree
 *   mcsim-lint --list-checks                # catalog
 *   mcsim-lint --check no-entropy file.cc   # one check, explicit file
 *   mcsim-lint --treat-as src/mem/x.cc f.cc # classify f.cc as that path
 *   mcsim-lint --list-suppressions src      # audit trail
 *   mcsim-lint --json out.json ...          # machine-readable findings
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "lint/checks.hh"
#include "lint/lexer.hh"
#include "lint/symbols.hh"

namespace
{

namespace fs = std::filesystem;
using namespace mcsim;

int
usage(const char *msg)
{
    if (msg != nullptr)
        std::fprintf(stderr, "mcsim-lint: %s\n", msg);
    std::fprintf(stderr,
                 "usage: mcsim-lint [-p <builddir>] [--check <name>] "
                 "[--json <out>] [--treat-as <path>] [--list-checks] "
                 "[--list-suppressions] [paths...]\n");
    return 2;
}

/** Read a whole file; false when unreadable. */
bool
slurp(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** Repo-relative-ish display path: strip a leading prefix when present. */
std::string
displayPath(const fs::path &path, const fs::path &base)
{
    std::error_code ec;
    fs::path rel = fs::relative(path, base, ec);
    if (ec || rel.empty() || rel.native().rfind("..", 0) == 0)
        return path.generic_string();
    return rel.generic_string();
}

/**
 * Gather the files to lint: for directory roots, the compile-database
 * TUs under the root plus every header beneath it (headers are not
 * TUs but hold the declarations and suppressions); explicit file
 * arguments are taken as-is.
 */
std::vector<fs::path>
gatherFiles(const std::vector<fs::path> &roots,
            const std::vector<fs::path> &dbFiles)
{
    std::set<std::string> seen;
    std::vector<fs::path> out;
    auto add = [&](const fs::path &p) {
        std::error_code ec;
        fs::path canon = fs::weakly_canonical(p, ec);
        if (ec)
            canon = p;
        if (seen.insert(canon.generic_string()).second)
            out.push_back(canon);
    };

    for (const fs::path &root : roots) {
        if (fs::is_regular_file(root)) {
            add(root);
            continue;
        }
        std::error_code ec;
        const fs::path canonRoot = fs::weakly_canonical(root, ec);
        const std::string prefix =
            (ec ? root : canonRoot).generic_string() + "/";
        for (const fs::path &tu : dbFiles) {
            if (tu.generic_string().rfind(prefix, 0) == 0)
                add(tu);
        }
        for (auto it = fs::recursive_directory_iterator(
                 root, fs::directory_options::skip_permission_denied, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            const fs::path &p = it->path();
            const std::string ext = p.extension().string();
            if (it->is_regular_file() && (ext == ".hh" || ext == ".h"))
                add(p);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** TU list from <builddir>/compile_commands.json (empty when absent). */
std::vector<fs::path>
loadCompileDb(const fs::path &builddir, bool &found)
{
    std::vector<fs::path> out;
    std::string text;
    found = slurp(builddir / "compile_commands.json", text);
    if (!found)
        return out;
    std::string error;
    const exp::Json db = exp::Json::parse(text, &error);
    if (!db.isArray()) {
        std::fprintf(stderr,
                     "mcsim-lint: warning: unparsable compile database "
                     "(%s); falling back to directory scan\n",
                     error.c_str());
        found = false;
        return out;
    }
    for (const exp::Json &entry : db.elements()) {
        const exp::Json *file = entry.find("file");
        if (file == nullptr || !file->isString())
            continue;
        fs::path p(file->asString());
        if (p.is_relative()) {
            if (const exp::Json *dir = entry.find("directory");
                dir != nullptr && dir->isString())
                p = fs::path(dir->asString()) / p;
        }
        out.push_back(p);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path builddir = "build";
    std::string only;
    std::string jsonOut;
    std::string treatAs;
    bool listChecks = false;
    bool listSuppressions = false;
    std::vector<fs::path> roots;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "mcsim-lint: %s expects a value\n",
                             what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-p") {
            builddir = next("-p");
        } else if (arg == "--check") {
            only = next("--check");
            if (!lint::isKnownCheck(only))
                return usage(("unknown check '" + only + "'").c_str());
        } else if (arg == "--json") {
            jsonOut = next("--json");
        } else if (arg == "--treat-as") {
            treatAs = next("--treat-as");
        } else if (arg == "--list-checks") {
            listChecks = true;
        } else if (arg == "--list-suppressions") {
            listSuppressions = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(nullptr);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(("unknown option '" + arg + "'").c_str());
        } else {
            roots.emplace_back(arg);
        }
    }

    if (listChecks) {
        for (const lint::CheckInfo &c : lint::checkInfos())
            std::printf("%-32s %s\n", c.name, c.summary);
        return 0;
    }
    if (roots.empty())
        roots.emplace_back("src");
    if (!treatAs.empty() &&
        (roots.size() != 1 || !fs::is_regular_file(roots[0])))
        return usage("--treat-as requires exactly one input file");

    bool dbFound = false;
    const std::vector<fs::path> dbFiles = loadCompileDb(builddir, dbFound);
    std::vector<fs::path> files;
    if (dbFound) {
        files = gatherFiles(roots, dbFiles);
    } else {
        // Graceful degradation: no compile database (unconfigured tree
        // or single-file canary run) -> lint .cc files found by scan.
        std::vector<fs::path> scanned;
        for (const fs::path &root : roots) {
            if (fs::is_regular_file(root)) {
                scanned.push_back(root);
                continue;
            }
            std::error_code ec;
            for (auto it = fs::recursive_directory_iterator(root, ec);
                 !ec && it != fs::recursive_directory_iterator(); ++it) {
                if (it->is_regular_file() &&
                    it->path().extension() == ".cc")
                    scanned.push_back(it->path());
            }
        }
        files = gatherFiles(scanned, {});
    }
    if (files.empty())
        return usage("nothing to lint (no inputs found)");

    const fs::path cwd = fs::current_path();
    std::vector<lint::LexedFile> lexed;
    lint::SymbolIndex index;
    for (const fs::path &p : files) {
        std::string text;
        if (!slurp(p, text)) {
            std::fprintf(stderr, "mcsim-lint: cannot read %s\n",
                         p.generic_string().c_str());
            return 2;
        }
        std::string effective =
            treatAs.empty() ? displayPath(p, cwd) : treatAs;
        lexed.push_back(lint::lex(std::move(effective), std::move(text)));
        lint::harvestSymbols(lexed.back(), index);
    }

    if (listSuppressions) {
        unsigned count = 0;
        for (const lint::LexedFile &f : lexed) {
            for (const auto &[line, entries] : f.suppressions) {
                for (const lint::Suppression &s : entries) {
                    std::printf("%s:%u: %s(%s)\n", f.path.c_str(), line,
                                s.malformed ? "<malformed>"
                                            : s.check.c_str(),
                                s.reason.c_str());
                    ++count;
                }
            }
        }
        std::printf("mcsim-lint: %u suppression(s) in %zu file(s)\n",
                    count, lexed.size());
        return 0;
    }

    std::vector<lint::Finding> findings;
    for (const lint::LexedFile &f : lexed)
        lint::runChecks(f, index, only, findings);

    for (const lint::Finding &f : findings) {
        std::printf("%s:%u: [%s] %s\n", f.file.c_str(), f.line,
                    f.check.c_str(), f.message.c_str());
    }

    if (!jsonOut.empty()) {
        exp::Json doc = exp::Json::object();
        doc["files"] = static_cast<unsigned>(lexed.size());
        doc["findings"] = exp::Json::array();
        for (const lint::Finding &f : findings) {
            exp::Json j = exp::Json::object();
            j["file"] = f.file;
            j["line"] = f.line;
            j["check"] = f.check;
            j["message"] = f.message;
            doc["findings"].push(std::move(j));
        }
        std::ofstream out(jsonOut, std::ios::binary);
        out << doc.dump() << "\n";
        if (!out) {
            std::fprintf(stderr, "mcsim-lint: cannot write %s\n",
                         jsonOut.c_str());
            return 2;
        }
    }

    if (findings.empty()) {
        std::fprintf(stderr, "mcsim-lint: clean (%zu files)\n",
                     lexed.size());
        return 0;
    }
    std::fprintf(stderr, "mcsim-lint: %zu finding(s) in %zu file(s)\n",
                 findings.size(), lexed.size());
    return 1;
}
