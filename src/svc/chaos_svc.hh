/**
 * @file
 * Process-level chaos harness for the sweep orchestrator (DESIGN.md
 * section 16).
 *
 * Where src/fault/ injects faults INSIDE the simulated machine and
 * src/exp/chaos.hh proves the simulation's results are invariant under
 * them, this harness attacks the ORCHESTRATOR: the journals, workers,
 * steal slices, and merge of src/svc/. Each seeded round replays a
 * randomized but fully deterministic fault history against an
 * in-process model of the supervised run:
 *
 *  - worker kills at journaled-frame boundaries (stopAfter: the clean
 *    in-process analogue of SIGKILL right after a frame flush);
 *  - torn journal tails (garbage appended where an in-flight frame
 *    would have been) and GENUINE short writes / failed flushes /
 *    failed renames, injected through the SvcIo seam so the torn
 *    bytes are produced by the real write path;
 *  - stuck workers (an attempt that journals nothing, standing in for
 *    a lease revocation) and bounded-retry escalation into work
 *    stealing, exactly as the coordinator escalates;
 *  - coordinator crash/restart cycles: all supervision state is
 *    dropped and rebuilt from the on-disk journals, the same discovery
 *    path a restarted `svc_runner run --resume` uses;
 *  - optionally POISONED points that kill any worker attempting them:
 *    blame tracking quarantines exactly those points, and the round
 *    ends in a degraded merge whose "failed" section names them.
 *
 * The invariant each round must close on: after any such history with
 * no quarantined points, the merged document and CSV are byte-identical
 * to a fresh, fault-free run's -- and compacting every journal and
 * re-merging reproduces the same bytes again. Rounds are pure
 * functions of (plan, seed, round number): every decision comes from a
 * fault::DecisionChain, never from wall clock or scheduling.
 */

#ifndef MCSIM_SVC_CHAOS_SVC_HH
#define MCSIM_SVC_CHAOS_SVC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "svc/shard.hh"

namespace mcsim::svc
{

/** Per-attempt fault rates for one chaos round. */
struct SvcChaosPreset
{
    double killRate = 0.0;       ///< die after 1..3 journaled points
    double stallRate = 0.0;      ///< journal nothing (lease revocation)
    double tearRate = 0.0;       ///< garbage bytes appended to the tail
    double ioFaultRate = 0.0;    ///< short write / failed flush via SvcIo
    double coordCrashRate = 0.0; ///< drop and rebuild supervision state
};

/** Preset names accepted by svcChaosPreset(). */
const std::vector<std::string> &svcChaosPresetNames();

/** Resolve "light" / "standard" / "heavy"; fatal() on anything else. */
SvcChaosPreset svcChaosPreset(const std::string &name);

/** Chaos harness configuration. */
struct SvcChaosConfig
{
    std::uint64_t seed = 1;
    std::size_t rounds = 5;
    std::string preset = "standard";
    /** Grid-global indices that crash any worker attempting them; the
     *  harness must quarantine EXACTLY this set. Empty = every round
     *  must converge with zero permanent failures. */
    std::vector<std::size_t> poison;
    /** Barren attempts before escalation, as CoordinatorOptions. */
    unsigned maxRetries = 3;
    /** Steal slices per revoked shard. */
    unsigned stealFanout = 2;
    /** Narrate rounds to stderr. */
    bool progress = true;
    /** Keep round directories on disk (default: each round replaces
     *  the previous round's directory). */
    bool keepJournals = false;
};

/** What one round did and whether it closed its invariant. */
struct SvcChaosRound
{
    std::size_t round = 0;
    std::size_t attempts = 0;
    std::size_t kills = 0;
    std::size_t stalls = 0;
    std::size_t tears = 0;
    std::size_t ioFaults = 0;
    std::size_t coordCrashes = 0;
    std::size_t steals = 0;      ///< steal slices created
    std::size_t compactions = 0; ///< journals compacted in the re-merge
    /** Quarantined grid-global indices (must equal the poison set). */
    std::vector<std::size_t> quarantined;
    /** Merged output byte-identical to the fault-free reference
     *  (always required when nothing was quarantined). */
    bool identical = false;
    /** Compact-then-remerge reproduced the same bytes. */
    bool compactIdentical = false;
    bool ok = false;
    std::string error; ///< first broken invariant; empty when ok
};

/** Whole-run report. */
struct SvcChaosReport
{
    std::string grid;
    std::string preset;
    std::uint64_t seed = 0;
    std::vector<SvcChaosRound> rounds;

    bool ok() const;
    /** Multi-line human-readable summary. */
    std::string summary() const;
    /** Canonical JSON ("mcsim-svc-chaos-v1"). */
    exp::Json toJson() const;
};

/**
 * Run the chaos harness: build a fault-free reference for @p plan,
 * then execute config.rounds seeded fault histories under @p dir
 * (round directories "round-000", ... plus "reference"). Returns the
 * report; callers exit non-zero when ok() is false. fatal() only on
 * harness-level misuse (bad preset, poison index out of range, an
 * unwritable @p dir).
 */
SvcChaosReport runSvcChaos(const ShardPlan &plan, const std::string &dir,
                           const SvcChaosConfig &config);

} // namespace mcsim::svc

#endif // MCSIM_SVC_CHAOS_SVC_HH
