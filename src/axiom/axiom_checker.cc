#include "axiom/axiom_checker.hh"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace mcsim::axiom
{

const char *
edgeRelName(EdgeRel rel)
{
    switch (rel) {
      case EdgeRel::Ppo:
        return "ppo";
      case EdgeRel::PoLoc:
        return "po-loc";
      case EdgeRel::Rf:
        return "rf";
      case EdgeRel::Co:
        return "co";
      case EdgeRel::Fr:
        return "fr";
    }
    return "?";
}

namespace
{

/** Per-granule write history: event ids sorted by version tag. */
struct GranuleWrites
{
    std::vector<std::uint32_t> byVersion;  ///< [k-1] wrote version k
};

class CheckerRun
{
  public:
    CheckerRun(const Trace &trace_ref, const core::ModelParams &model_ref)
        : trace(trace_ref), model(model_ref)
    {
        result.hwValues.assign(trace.events.size(), 0);
        result.hwReadsFrom.assign(trace.events.size(), kNoSource);
    }

    AxiomResult run();

  private:
    static constexpr std::uint32_t kNoSource = UINT32_MAX;

    const Event &ev(std::uint32_t id) const { return trace.events[id]; }

    void addEdge(std::uint32_t from, std::uint32_t to, EdgeRel rel)
    {
        if (from != to)
            edges.push_back(HbEdge{from, to, rel});
    }

    /** A ppo generator edge with a timestamp obligation. */
    void requirePpo(std::uint32_t from, std::uint32_t to, Tick lhs,
                    Tick rhs, const char *rule);

    void buildPpoForProc(const std::vector<std::uint32_t> &po);
    void buildPoLoc(const std::vector<std::uint32_t> &po);
    void buildWriteHistory();
    void buildRfCoFr();

    /** Hardware visibility time of write @p w to reader @p r. */
    Tick visibleAt(const Event &w, const Event &r) const
    {
        return w.proc == r.proc ? w.bind : w.perform;
    }

    void findCycle();
    std::string formatReport() const;

    const Trace &trace;
    const core::ModelParams &model;
    std::vector<HbEdge> edges;
    std::unordered_map<Addr, GranuleWrites> writes;
    AxiomResult result;
};

void
CheckerRun::requirePpo(std::uint32_t from, std::uint32_t to, Tick lhs,
                       Tick rhs, const char *rule)
{
    addEdge(from, to, EdgeRel::Ppo);
    if (lhs > rhs) {
        result.ok = false;
        if (result.temporal.size() < 32)
            result.temporal.push_back(TemporalViolation{from, to, rule});
    }
}

void
CheckerRun::buildPpoForProc(const std::vector<std::uint32_t> &po)
{
    // SC family: total program order. Fences are transparent here: the
    // machine's fence is a no-op under SC (the single-outstanding rule
    // already orders everything) and completes with refs in flight, so
    // the chain must run through the memory events around it. With the
    // store-buffer hand-off a plain store stops gating later accesses at
    // its hand-off tick, so its outgoing program order (beyond po-loc)
    // is not enforced.
    if (model.singleOutstanding) {
        bool have_last = false;
        std::uint32_t last = 0;
        for (std::uint32_t id : po) {
            if (ev(id).kind == EventKind::Fence)
                continue;
            if (have_last) {
                requirePpo(last, id, ev(last).orderTick, ev(id).issue,
                           "single-outstanding (SC): access issued before "
                           "the previous ordered access performed");
            }
            if (!model.scStoreBufferRelease ||
                ev(id).kind != EventKind::Write) {
                last = id;
                have_last = true;
            } else {
                // Store-buffered write: drops out of the chain entirely
                // (its predecessor keeps gating the successor instead).
                continue;
            }
        }
    }

    // Weak ordering: everything before a sync performs before the sync
    // issues; everything after it issues after the sync performs.
    if (model.syncDrains) {
        std::vector<std::uint32_t> pending;
        bool have_sync = false;
        std::uint32_t prev_sync = 0;
        for (std::uint32_t id : po) {
            if (have_sync) {
                requirePpo(prev_sync, id, ev(prev_sync).perform,
                           ev(id).issue, "weak ordering: access issued "
                           "before the previous sync performed");
            }
            if (isSyncKind(ev(id).kind)) {
                for (std::uint32_t a : pending) {
                    requirePpo(a, id, ev(a).orderTick, ev(id).issue,
                               "weak ordering: sync issued before a prior "
                               "access performed (drain skipped)");
                }
                pending.clear();
                prev_sync = id;
                have_sync = true;
            }
            pending.push_back(id);
        }
    }

    // Release consistency: an acquire blocks everything after it; a
    // release (or fence) performs only after everything before it.
    if (model.releaseConsistent) {
        std::vector<std::uint32_t> pending;
        bool have_acq = false;
        std::uint32_t prev_acq = 0;
        for (std::uint32_t id : po) {
            if (have_acq) {
                requirePpo(prev_acq, id, ev(prev_acq).perform,
                           ev(id).issue, "release consistency: access "
                           "issued before the previous acquire performed");
            }
            if (isReleaseKind(ev(id).kind)) {
                for (std::uint32_t a : pending) {
                    requirePpo(a, id, ev(a).orderTick, ev(id).perform,
                               "release consistency: release performed "
                               "before a prior access performed");
                }
                pending.clear();
            }
            if (isAcquireKind(ev(id).kind)) {
                prev_acq = id;
                have_acq = true;
            }
            pending.push_back(id);
        }
    }
}

void
CheckerRun::buildPoLoc(const std::vector<std::uint32_t> &po)
{
    std::unordered_map<Addr, std::uint32_t> last;
    for (std::uint32_t id : po) {
        const Event &e = ev(id);
        if (e.kind == EventKind::Fence)
            continue;
        // Under RC a deferred release does not gate po-later accesses --
        // even to its own address: an acquire issued while the release
        // is still pending legitimately observes the pre-release version
        // (there is no store-forwarding). Its incoming po-loc edge stays;
        // its outgoing one is not hardware-enforced.
        const bool gates_later = !(model.releaseConsistent &&
                                   e.kind == EventKind::SyncWrite);
        for (unsigned i = 0; i < e.granules(); ++i) {
            auto it = last.find(e.granule(i));
            if (it != last.end())
                addEdge(it->second, id, EdgeRel::PoLoc);
            if (gates_later)
                last[e.granule(i)] = id;
        }
    }
}

void
CheckerRun::buildWriteHistory()
{
    for (const Event &e : trace.events) {
        if (!isWriteKind(e.kind))
            continue;
        for (unsigned i = 0; i < e.granules(); ++i) {
            GranuleWrites &gw = writes[e.granule(i)];
            if (gw.byVersion.size() < e.tag[i])
                gw.byVersion.resize(e.tag[i], kNoSource);
            gw.byVersion[e.tag[i] - 1] = e.id;
        }
    }
    // Coherence order: consecutive versions of each granule. Sorted
    // drain: Co edges are inserted in granule order regardless of the
    // hash table's layout, so cycle/witness search sees one canonical
    // edge order on every platform.
    std::vector<Addr> granules;
    granules.reserve(writes.size());
    // mcsim-lint: order-insensitive(keys collected then sorted below)
    for (const auto &kv : writes)
        granules.push_back(kv.first);
    std::sort(granules.begin(), granules.end());
    for (const Addr granule : granules) {
        const GranuleWrites &gw = writes[granule];
        for (std::size_t k = 1; k < gw.byVersion.size(); ++k) {
            MCSIM_ASSERT(gw.byVersion[k] != kNoSource &&
                             gw.byVersion[k - 1] != kNoSource,
                         "granule 0x%llx has a version gap",
                         static_cast<unsigned long long>(granule));
            addEdge(gw.byVersion[k - 1], gw.byVersion[k], EdgeRel::Co);
        }
    }
}

void
CheckerRun::buildRfCoFr()
{
    buildWriteHistory();

    for (const Event &r : trace.events) {
        if (!isReadKind(r.kind))
            continue;

        std::uint32_t first_source = kNoSource;
        bool torn = false;
        for (unsigned i = 0; i < r.granules(); ++i) {
            auto it = writes.find(r.granule(i));
            const GranuleWrites *gw =
                it == writes.end() ? nullptr : &it->second;

            // The version this read observed at the hardware level. Sync
            // reads execute functionally at their perform tick, so their
            // sampled tag is already exact; plain reads bind early and
            // are reconstructed from the perform timestamps.
            std::uint32_t version = 0;
            if (r.kind != EventKind::Read) {
                version = r.tag[i];
                // An rmw's own write bumped the granule after its read
                // sampled it; the version it *observed* is one lower.
                if (r.kind == EventKind::SyncRmw && version > 0)
                    version -= 1;
            } else if (gw != nullptr) {
                for (std::size_t k = gw->byVersion.size(); k > 0; --k) {
                    const Event &w = ev(gw->byVersion[k - 1]);
                    // A processor can never read its own po-later write,
                    // however the timestamps tie.
                    if (w.proc == r.proc && w.poSeq > r.poSeq)
                        continue;
                    if (visibleAt(w, r) <= r.perform) {
                        version = static_cast<std::uint32_t>(k);
                        break;
                    }
                }
            }

            std::uint32_t source = kNoSource;
            if (version > 0) {
                source = gw->byVersion[version - 1];
                addEdge(source, r.id, EdgeRel::Rf);
            }
            if (gw != nullptr && version < gw->byVersion.size())
                addEdge(r.id, gw->byVersion[version], EdgeRel::Fr);

            if (i == 0)
                first_source = source;
            else if (source != first_source)
                torn = true;
        }

        result.hwReadsFrom[r.id] = first_source;
        if (r.kind != EventKind::Read) {
            result.hwValues[r.id] = r.value;
        } else if (torn) {
            result.hwValues[r.id] = r.value;  // mixed-width fallback
        } else if (first_source != kNoSource) {
            result.hwValues[r.id] = ev(first_source).value;
        }
    }
}

void
CheckerRun::findCycle()
{
    const std::size_t n = trace.events.size();
    std::vector<std::vector<std::uint32_t>> out(n);
    std::vector<std::vector<std::uint32_t>> in(n);
    for (std::size_t e = 0; e < edges.size(); ++e) {
        out[edges[e].from].push_back(static_cast<std::uint32_t>(e));
        in[edges[e].to].push_back(static_cast<std::uint32_t>(e));
    }

    // Peel acyclic fringe from both ends; what survives has in- and
    // out-degree >= 1 inside the survivor set, so it contains every
    // hb cycle (and nothing outside one matters for the witness).
    std::vector<std::uint32_t> outdeg(n), indeg(n);
    std::vector<bool> alive(n, true);
    for (std::size_t v = 0; v < n; ++v) {
        outdeg[v] = static_cast<std::uint32_t>(out[v].size());
        indeg[v] = static_cast<std::uint32_t>(in[v].size());
    }
    std::deque<std::uint32_t> work;
    for (std::size_t v = 0; v < n; ++v)
        if (indeg[v] == 0 || outdeg[v] == 0)
            work.push_back(static_cast<std::uint32_t>(v));
    while (!work.empty()) {
        const std::uint32_t v = work.front();
        work.pop_front();
        if (!alive[v] || (indeg[v] != 0 && outdeg[v] != 0))
            continue;
        alive[v] = false;
        for (std::uint32_t e : out[v]) {
            const std::uint32_t t = edges[e].to;
            if (alive[t] && --indeg[t] == 0)
                work.push_back(t);
        }
        for (std::uint32_t e : in[v]) {
            const std::uint32_t f = edges[e].from;
            if (alive[f] && --outdeg[f] == 0)
                work.push_back(f);
        }
    }

    bool any_alive = false;
    for (std::size_t v = 0; v < n; ++v)
        any_alive = any_alive || alive[v];
    if (!any_alive)
        return;
    result.ok = false;

    // Shortest cycle through each of (up to) 64 surviving nodes; keep
    // the overall shortest as the witness.
    std::vector<HbEdge> best;
    unsigned tried = 0;
    std::vector<std::uint32_t> par_edge(n);
    std::vector<int> seen(n, -1);
    int stamp = 0;
    for (std::size_t s = 0; s < n && tried < 64; ++s) {
        if (!alive[s])
            continue;
        tried += 1;
        stamp += 1;
        std::deque<std::uint32_t> q;
        q.push_back(static_cast<std::uint32_t>(s));
        seen[s] = stamp;
        bool closed = false;
        while (!q.empty() && !closed) {
            const std::uint32_t v = q.front();
            q.pop_front();
            for (std::uint32_t e : out[v]) {
                const std::uint32_t t = edges[e].to;
                if (!alive[t])
                    continue;
                if (t == s) {
                    // Close the cycle: walk parents back from v.
                    std::vector<HbEdge> cyc{edges[e]};
                    std::uint32_t cur = v;
                    while (cur != s) {
                        cyc.push_back(edges[par_edge[cur]]);
                        cur = edges[par_edge[cur]].from;
                    }
                    std::reverse(cyc.begin(), cyc.end());
                    if (best.empty() || cyc.size() < best.size())
                        best = std::move(cyc);
                    closed = true;
                    break;
                }
                if (seen[t] != stamp) {
                    seen[t] = stamp;
                    par_edge[t] = e;
                    q.push_back(t);
                }
            }
        }
        if (!best.empty() && best.size() <= 2)
            break;  // cannot get shorter
    }
    result.cycle = std::move(best);
}

std::string
CheckerRun::formatReport() const
{
    std::string msg;
    std::size_t shown = 0;
    for (const TemporalViolation &tv : result.temporal) {
        if (shown++ >= 8) {
            msg += strprintf("  ... %zu temporal violations total\n",
                             result.temporal.size());
            break;
        }
        msg += strprintf("  temporal: %s\n    %s\n    -> %s\n",
                         tv.rule.c_str(), ev(tv.from).describe().c_str(),
                         ev(tv.to).describe().c_str());
    }
    if (!result.cycle.empty()) {
        msg += strprintf("  happens-before cycle (%zu edges):\n",
                         result.cycle.size());
        for (const HbEdge &e : result.cycle) {
            msg += strprintf("    %s --%s--> %s\n",
                             ev(e.from).describe().c_str(),
                             edgeRelName(e.rel),
                             ev(e.to).describe().c_str());
        }
    }
    return msg;
}

AxiomResult
CheckerRun::run()
{
    for (const auto &po : trace.byProc) {
        buildPpoForProc(po);
        buildPoLoc(po);
    }
    buildRfCoFr();
    findCycle();
    result.edgeCount = edges.size();
    result.message = formatReport();
    return std::move(result);
}

} // namespace

AxiomResult
checkTrace(const Trace &trace, const core::ModelParams &model)
{
    MCSIM_ASSERT(!trace.byProc.empty() || trace.events.empty(),
                 "checkTrace needs a finished trace (call finish())");
    return CheckerRun(trace, model).run();
}

} // namespace mcsim::axiom
