/**
 * @file
 * Shared support for the table/figure reproduction benches, rebased on
 * the parallel sweep engine (src/exp/): each bench builds its named
 * grid, fans it across worker threads, then prints the paper's rows
 * from the result lookup. The config loops that used to be copy-pasted
 * into every bench live in exp::namedGrid() now, shared with the
 * tools/sweep_runner CLI and the golden-baseline tests.
 *
 * Scaling (DESIGN.md / EXPERIMENTS.md): problem sizes and cache sizes
 * shrink together so every benchmark stays in the same fits/doesn't-fit
 * regime the paper analyses. "Small" cache means the paper's 16K (8K
 * scaled); "large" means 64K (32K scaled).
 */

#ifndef MCSIM_BENCH_COMMON_HH
#define MCSIM_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "exp/grid.hh"
#include "exp/sweep.hh"

namespace mcsim::bench
{

/** Benchmark identifiers in the paper's presentation order. */
inline const std::vector<std::string> &benchmarkNames =
    exp::benchmarkNames();

/** Common bench command line: [--full] [--threads N] [--no-progress]. */
struct BenchArgs
{
    exp::Scale scale = exp::Scale::Scaled;
    unsigned threads = 0;  ///< 0 = hardware concurrency
    bool progress = true;
};

inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--full")) {
            args.scale = exp::Scale::Full;
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            args.threads = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--no-progress")) {
            args.progress = false;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--threads N] "
                         "[--no-progress]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return args;
}

inline bool
isFull(const BenchArgs &args)
{
    return args.scale == exp::Scale::Full;
}

inline const char *
cacheLabel(const BenchArgs &args, bool large)
{
    if (isFull(args))
        return large ? "64K" : "16K";
    return large ? "32K (64K-eq)" : "8K (16K-eq)";
}

/** Run the named grid in parallel and wrap the results for lookup. */
inline exp::SweepOutcomes
runNamedGrid(const std::string &name, const BenchArgs &args)
{
    const exp::Grid grid = exp::namedGrid(name, args.scale);
    exp::SweepOptions opts;
    opts.threads = args.threads;
    opts.progress = args.progress;
    return exp::runGrid(grid, opts);
}

/**
 * Single-run helpers for the ablation bench, which varies machine
 * parameters (MSHR count, buffer depth, switch radix, model overrides)
 * that the declarative grids deliberately do not span. @{
 */

/** Baseline paper machine (16 processors, 4x4 switches). */
inline core::MachineConfig
baseConfig(const BenchArgs &args, unsigned procs = 16)
{
    core::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.numModules = procs;
    cfg.cacheBytes = exp::smallCache(args.scale);
    cfg.lineBytes = 16;
    // Figure benches report timings; invariant checking stays off here
    // (tests and bench_micro run with it on).
    cfg.check.mode = check::CheckMode::Off;
    return cfg;
}

/** Build one of the paper's benchmarks at the chosen scale. */
inline std::unique_ptr<workloads::Workload>
makeWorkload(const std::string &name, exp::Scale scale,
             workloads::RelaxSchedule schedule =
                 workloads::RelaxSchedule::Default)
{
    exp::SweepPoint point;
    point.benchmark = name;
    point.scale = scale;
    point.schedule = schedule;
    return point.makeWorkload();
}

/** Run one benchmark on one hand-built configuration. */
inline core::RunMetrics
run(const std::string &name, const core::MachineConfig &cfg,
    const BenchArgs &args)
{
    auto w = makeWorkload(name, args.scale);
    return workloads::runWorkload(*w, cfg).metrics;
}

/** @} */

/** Standard line sizes swept throughout the paper. */
inline const std::vector<unsigned> lineSizes = {8, 16, 64};

inline void
printHeaderRule()
{
    std::printf("--------------------------------------------------------"
                "----------------------\n");
}

} // namespace mcsim::bench

#endif // MCSIM_BENCH_COMMON_HH
