#include "axiom/litmus.hh"

#include <utility>

#include "core/machine.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace mcsim::axiom
{

namespace
{

using Kind = LitmusOp::Kind;

LitmusOp w(unsigned var, std::uint64_t value) { return {Kind::W, var, value}; }
LitmusOp r(unsigned var) { return {Kind::R, var, 0}; }
LitmusOp sw(unsigned var, std::uint64_t value) { return {Kind::SyncW, var, value}; }
LitmusOp sr(unsigned var) { return {Kind::SyncR, var, 0}; }
LitmusOp fence() { return {Kind::Fence, 0, 0}; }

/** Loads can perform out of program order / stores can be delayed. */
bool
weakReorder(const core::ModelParams &p)
{
    return !p.singleOutstanding;
}

/** A plain store stops gating later accesses at its buffer hand-off. */
bool
storeBuffered(const core::ModelParams &p)
{
    return p.scStoreBufferRelease;
}

bool
sbAllowed(const core::ModelParams &p, const std::vector<std::uint64_t> &r)
{
    if (r[0] == 0 && r[1] == 0)
        return weakReorder(p) || storeBuffered(p);
    return true;
}

bool
sbFenceAllowed(const core::ModelParams &p,
               const std::vector<std::uint64_t> &r)
{
    // The machine's fence is a no-op under the SC systems; only the
    // store buffer can still reorder around it there.
    if (r[0] == 0 && r[1] == 0)
        return storeBuffered(p);
    return true;
}

bool
mpAllowed(const core::ModelParams &p, const std::vector<std::uint64_t> &r)
{
    if (r[0] == 1 && r[1] == 0)
        return weakReorder(p) || storeBuffered(p);
    return true;
}

bool
mpSyncAllowed(const core::ModelParams &p,
              const std::vector<std::uint64_t> &r)
{
    (void)p;
    return !(r[0] == 1 && r[1] == 0);
}

bool
lbAllowed(const core::ModelParams &p, const std::vector<std::uint64_t> &r)
{
    if (r[0] == 1 && r[1] == 1)
        return weakReorder(p);
    return true;
}

bool
wrcAllowed(const core::ModelParams &p, const std::vector<std::uint64_t> &r)
{
    if (r[0] == 1 && r[1] == 1 && r[2] == 0)
        return weakReorder(p);
    return true;
}

bool
wrcSyncAllowed(const core::ModelParams &p,
               const std::vector<std::uint64_t> &r)
{
    (void)p;
    return !(r[0] == 1 && r[1] == 1 && r[2] == 0);
}

bool
iriwAllowed(const core::ModelParams &p,
            const std::vector<std::uint64_t> &r)
{
    if (r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0)
        return weakReorder(p);
    return true;
}

bool
iriwSyncAllowed(const core::ModelParams &p,
                const std::vector<std::uint64_t> &r)
{
    (void)p;
    return !(r[0] == 1 && r[1] == 0 && r[2] == 1 && r[3] == 0);
}

bool
corrAllowed(const core::ModelParams &p,
            const std::vector<std::uint64_t> &r)
{
    (void)p;
    return !(r[0] == 1 && r[1] == 0);
}

SimTask
litmusThread(cpu::Processor &p, const std::vector<LitmusOp> &ops,
             const std::vector<Addr> &addrs,
             std::vector<std::uint64_t> &func_reads, std::uint64_t seed)
{
    Rng rng(seed);
    for (const LitmusOp &op : ops) {
        co_await p.exec(1 + static_cast<std::uint32_t>(rng.below(24)));
        const Addr a = addrs[op.var];
        switch (op.kind) {
          case Kind::W:
            co_await p.store(a, op.value);
            break;
          case Kind::R:
            func_reads.push_back(co_await p.loadUse(a));
            break;
          case Kind::SyncW:
            co_await p.syncStore(a, op.value);
            break;
          case Kind::SyncR:
            func_reads.push_back(co_await p.syncLoad(a));
            break;
          case Kind::Rmw:
            func_reads.push_back(co_await p.testAndSet(a));
            break;
          case Kind::Fence:
            co_await p.fence();
            break;
        }
    }
}

EventKind
expectedEventKind(Kind k)
{
    switch (k) {
      case Kind::W:
        return EventKind::Write;
      case Kind::R:
        return EventKind::Read;
      case Kind::SyncW:
        return EventKind::SyncWrite;
      case Kind::SyncR:
        return EventKind::SyncRead;
      case Kind::Rmw:
        return EventKind::SyncRmw;
      case Kind::Fence:
        return EventKind::Fence;
    }
    return EventKind::Read;
}

} // namespace

std::string
outcomeString(const std::vector<std::uint64_t> &reads)
{
    std::string s;
    for (std::size_t i = 0; i < reads.size(); ++i) {
        if (i > 0)
            s += ",";
        s += strprintf("%llu", static_cast<unsigned long long>(reads[i]));
    }
    return s;
}

const std::vector<LitmusTest> &
litmusSuite()
{
    static const std::vector<LitmusTest> suite = [] {
        std::vector<LitmusTest> t;
        // Store buffering: can both stores be delayed past both loads?
        t.push_back({"SB", 2,
                     {{w(0, 1), r(1)}, {w(1, 1), r(0)}},
                     sbAllowed});
        t.push_back({"SB+F", 2,
                     {{w(0, 1), fence(), r(1)}, {w(1, 1), fence(), r(0)}},
                     sbFenceAllowed});
        // Message passing: data write visible once the flag write is?
        t.push_back({"MP", 2,
                     {{w(0, 1), w(1, 1)}, {r(1), r(0)}},
                     mpAllowed});
        t.push_back({"MP+sync", 2,
                     {{w(0, 1), sw(1, 1)}, {sr(1), r(0)}},
                     mpSyncAllowed});
        // Load buffering: can both loads see the other thread's store?
        t.push_back({"LB", 2,
                     {{r(0), w(1, 1)}, {r(1), w(0, 1)}},
                     lbAllowed});
        // Write-to-read causality through an intermediate thread.
        t.push_back({"WRC", 2,
                     {{w(0, 1)}, {r(0), w(1, 1)}, {r(1), r(0)}},
                     wrcAllowed});
        t.push_back({"WRC+sync", 2,
                     {{w(0, 1)}, {r(0), sw(1, 1)}, {sr(1), r(0)}},
                     wrcSyncAllowed});
        // Independent reads of independent writes (write atomicity).
        t.push_back({"IRIW", 2,
                     {{w(0, 1)},
                      {w(1, 1)},
                      {r(0), r(1)},
                      {r(1), r(0)}},
                     iriwAllowed});
        t.push_back({"IRIW+sync", 2,
                     {{w(0, 1)},
                      {w(1, 1)},
                      {sr(0), sr(1)},
                      {sr(1), sr(0)}},
                     iriwSyncAllowed});
        // Coherence: two reads of one location must not go backwards.
        t.push_back({"CoRR", 1,
                     {{w(0, 1)}, {r(0), r(0)}},
                     corrAllowed});
        return t;
    }();
    return suite;
}

core::MachineConfig
litmusConfig(core::Model model)
{
    core::MachineConfig cfg;
    cfg.model = model;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.maxCycles = 1'000'000;
    cfg.trace.record = true;
    // Litmus programs race by design; WO/RC results for them are
    // undefined per the paper's DRF assumption -- which is exactly what
    // the axiomatic layer is built to observe precisely.
    cfg.check.races = false;
    return cfg;
}

LitmusRun
runLitmus(const LitmusTest &test, const core::MachineConfig &config,
          std::uint64_t seed,
          const std::function<void(core::Machine &)> &prepare)
{
    MCSIM_ASSERT(test.threads.size() <= config.numProcs,
                 "litmus test %s needs %zu procs, config has %u",
                 test.name.c_str(), test.threads.size(), config.numProcs);
    core::Machine machine(config);
    if (prepare)
        prepare(machine);

    // Spread the variables over distinct lines AND distinct memory
    // modules (module = line index modulo numModules).
    const Addr stride =
        static_cast<Addr>(config.lineBytes) * (config.numModules + 1);
    std::vector<Addr> addrs;
    for (unsigned v = 0; v < test.numVars; ++v) {
        addrs.push_back(0x1000 + v * stride);
        machine.memory().writeU64(addrs.back(), 0);
    }

    std::vector<std::vector<std::uint64_t>> func_reads(test.threads.size());
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
        machine.startWorkload(
            static_cast<unsigned>(t),
            litmusThread(machine.proc(static_cast<unsigned>(t)),
                         test.threads[t], addrs, func_reads[t],
                         seed * 6364136223846793005ull + t + 1));
    }

    LitmusRun run;
    run.runTicks = machine.run();

    const Trace &trace = machine.traceRecorder()->finish();
    run.axiom = checkTrace(trace, config.modelParams());

    // Map trace events back to litmus ops: every memory op of thread t
    // is exactly one trace event, in program order.
    for (std::size_t t = 0; t < test.threads.size(); ++t) {
        const auto &po = trace.byProc[t];
        MCSIM_ASSERT(po.size() == test.threads[t].size(),
                     "litmus %s thread %zu recorded %zu events for %zu ops",
                     test.name.c_str(), t, po.size(),
                     test.threads[t].size());
        for (std::size_t i = 0; i < po.size(); ++i) {
            const Event &ev = trace.events[po[i]];
            const LitmusOp &op = test.threads[t][i];
            MCSIM_ASSERT(ev.kind == expectedEventKind(op.kind),
                         "litmus %s thread %zu op %zu kind mismatch",
                         test.name.c_str(), t, i);
            if (isReadKind(ev.kind))
                run.hwReads.push_back(run.axiom.hwValues[ev.id]);
        }
        for (std::uint64_t v : func_reads[t])
            run.funcReads.push_back(v);
    }
    MCSIM_ASSERT(run.hwReads.size() == run.funcReads.size(),
                 "litmus %s read-count mismatch", test.name.c_str());
    return run;
}

} // namespace mcsim::axiom
