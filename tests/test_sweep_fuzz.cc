/**
 * @file
 * Consistency fuzzing through the sweep engine: seeded-random Synthetic
 * workload configurations (random store/shared mix, lock and barrier
 * cadence, model chosen by seed) run with the invariant checker and the
 * axiomatic trace checker both enabled. Every execution the simulator
 * produces must be accepted by its model's axiomatic specification with
 * zero ordering violations -- on any divergence the point id in the
 * failure message reproduces the exact run.
 */

#include <gtest/gtest.h>

#include "exp/grid.hh"
#include "exp/sweep.hh"

using namespace mcsim;

namespace
{
constexpr unsigned kFuzzPoints = 12;
constexpr std::uint64_t kFuzzSeed = 0x5eedull;
} // namespace

TEST(SweepFuzz, RandomSyntheticRunsSatisfyTheirModels)
{
    const exp::Grid grid = exp::fuzzGrid(kFuzzPoints, kFuzzSeed);
    ASSERT_EQ(grid.points.size(), kFuzzPoints);

    exp::SweepOptions opts;
    opts.progress = false;
    const auto results = exp::SweepRunner(opts).run(grid);
    ASSERT_EQ(results.size(), kFuzzPoints);

    for (const exp::JobResult &job : results) {
        SCOPED_TRACE(job.point.id());
        EXPECT_TRUE(job.ok) << job.error;
        EXPECT_TRUE(job.traceChecked);
        EXPECT_TRUE(job.traceAccepted) << job.error;
        EXPECT_GT(job.traceEvents, 0u);
        EXPECT_EQ(job.metrics.checkViolations, 0u);
        // The invariant suite really ran (Fatal mode, so a violation
        // would have thrown, but the counters prove coverage). The race
        // detector is off here -- Synthetic is not data-race-free by
        // design -- so coverage shows up in the ordering counter.
        EXPECT_GT(job.metrics.checkOrderingChecked, 0u);
    }
}

TEST(SweepFuzz, GridIsReproducible)
{
    // The fuzz grid derives every parameter from the base seed: building
    // it twice gives identical points, so any failure is replayable.
    const exp::Grid a = exp::fuzzGrid(kFuzzPoints, kFuzzSeed);
    const exp::Grid b = exp::fuzzGrid(kFuzzPoints, kFuzzSeed);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i)
        EXPECT_EQ(a.points[i].id(), b.points[i].id());

    // And a different base seed explores different configurations.
    const exp::Grid c = exp::fuzzGrid(kFuzzPoints, kFuzzSeed + 1);
    EXPECT_NE(a.points[0].id(), c.points[0].id());
}
