/**
 * @file
 * Golden-baseline comparison for sweep results documents.
 *
 * A golden file is a committed "mcsim-sweep-v1" document for one grid
 * (tests/golden/<grid>.json). compareToGolden() matches jobs by point
 * id and diffs every metric under the per-metric tolerance policy:
 *
 *  - integral event counters (cycles, reference/miss/sync counts, check
 *    counters) must match exactly -- the simulator is deterministic, so
 *    any drift is a real behavior change;
 *  - derived floating-point metrics (rates, latencies, occupancy, skew)
 *    allow 1e-9 relative error, absorbing only cross-platform
 *    accumulation differences, never model changes.
 *
 * The report names the first divergent (job, metric) pair with expected
 * and actual values, then summarizes the total divergence count, so a
 * perturbed baseline fails CI loudly and readably.
 */

#ifndef MCSIM_EXP_GOLDEN_HH
#define MCSIM_EXP_GOLDEN_HH

#include <string>

#include "exp/json.hh"

namespace mcsim::exp
{

/** Outcome of one golden comparison. */
struct GoldenDiff
{
    bool ok = true;
    /** Divergent (job, metric) pairs found. */
    unsigned divergences = 0;
    /** Human-readable report; names the first divergence in detail. */
    std::string report;
};

/** Relative tolerance for @p metric under the policy above. */
double metricTolerance(const std::string &metric);

/**
 * Compare grid @p grid_name of @p actual (a full results document)
 * against @p golden (the committed document for that grid).
 */
GoldenDiff compareToGolden(const Json &actual, const Json &golden,
                           const std::string &grid_name);

/**
 * Load DIR/<grid>.json and compare. A missing or unparsable golden file
 * is a failed comparison (the report says why).
 */
GoldenDiff checkAgainstGoldenDir(const Json &actual,
                                 const std::string &golden_dir,
                                 const std::string &grid_name);

} // namespace mcsim::exp

#endif // MCSIM_EXP_GOLDEN_HH
