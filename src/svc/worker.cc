#include "svc/worker.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <exception>
#include <cstdio>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "exp/chaos.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

namespace mcsim::svc
{

namespace
{

bool
contains(const std::vector<std::size_t> &sorted, std::size_t index)
{
    return std::binary_search(sorted.begin(), sorted.end(), index);
}

/**
 * The shared assignment core: open-or-create the journal at @p path
 * (expected header @p want), skip every @p target point that already
 * has a frame, and run the rest. @p target is the assignment's point
 * list with quarantined indices already removed; @p label names the
 * assignment in progress output.
 */
WorkerResult
runAssignment(const ShardPlan &plan, const JournalHeader &want,
              const std::string &path,
              const std::vector<std::size_t> &target,
              const WorkerOptions &options, const std::string &label)
{
    std::vector<std::size_t> poison = options.poisonIndices;
    std::sort(poison.begin(), poison.end());

    // Open-or-create: a valid existing journal is the resume state, a
    // torn header (killed during creation) is recreated from scratch.
    std::vector<bool> journaled(plan.grid.points.size(), false);
    std::size_t resumed = 0;
    std::uint64_t valid_bytes = 0;
    bool resuming = false;
    if (journalExists(path)) {
        const JournalScan scan = scanJournal(path);
        if (!scan.headerTorn) {
            requireMatchingHeader(scan.header, want, path);
            for (const JournalFrame &frame : scan.frames)
                journaled[frame.index] = true;
            resumed = scan.frames.size();
            valid_bytes = scan.validBytes;
            resuming = true;
            if (options.progress && scan.tornBytes > 0) {
                std::fprintf(stderr,
                             "svc: %s: dropping %llu torn byte(s) from "
                             "'%s'\n",
                             label.c_str(),
                             static_cast<unsigned long long>(
                                 scan.tornBytes),
                             path.c_str());
            }
        }
    }
    JournalWriter writer = resuming
                               ? JournalWriter::resume(path, valid_bytes)
                               : JournalWriter::create(path, want);

    std::vector<std::size_t> remaining;
    for (const std::size_t index : target)
        if (!journaled[index])
            remaining.push_back(index);

    // A poisoned point crashes whoever attempts it: run the target list
    // up to the first poisoned member, then die. Truncating up front
    // keeps the prefix deterministic whatever the thread count.
    std::size_t poison_at = remaining.size();
    for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (contains(poison, remaining[i])) {
            poison_at = i;
            break;
        }
    }
    const bool poisoned = poison_at != remaining.size();
    const std::size_t poisoned_index =
        poisoned ? remaining[poison_at] : 0;
    if (poisoned)
        remaining.resize(poison_at);

    WorkerResult result;
    result.resumedPoints = resumed;
    if (options.progress) {
        std::fprintf(stderr, "svc: %s: %zu journaled, %zu to run\n",
                     label.c_str(), resumed, remaining.size());
    }
    if (options.stallAt != 0 && resumed >= options.stallAt) {
        // A stalled worker pins its journal at stallAt points TOTAL:
        // relaunching it is barren by construction, which is what
        // walks the coordinator from lease revocation to stealing.
        for (;;)
            ::pause();
    }
    const std::size_t target_done =
        static_cast<std::size_t>(std::count_if(
            target.begin(), target.end(),
            [&](std::size_t index) { return journaled[index]; }));
    if (remaining.empty() && !poisoned) {
        writer.close();
        result.done = target_done == target.size();
        return result;
    }

    // Checkpoint one completed point. Callers serialize calls (the
    // sweep engine's sink lock / the chaos pool's mutex), so the plain
    // counters are safe. Returning false stops new scheduling.
    std::size_t fresh = 0;
    bool stopped = false;
    auto checkpoint = [&](std::size_t index, const std::string &payload,
                          bool job_ok) -> bool {
        writer.append(static_cast<std::uint32_t>(index), payload);
        ++fresh;
        if (!job_ok)
            ++result.failedJobs;
        // The frame is flushed; dying exactly here is the strongest
        // crash the journal must absorb, so the test hook dies here.
        if (options.killAfter != 0 && fresh >= options.killAfter)
            raise(SIGKILL);
        if (options.stallAt != 0 && resumed + fresh >= options.stallAt) {
            // Alive but making zero progress: the journal stops
            // growing, which is exactly what lease supervision sees.
            for (;;)
                ::pause();
        }
        if (options.stopAfter != 0 && fresh >= options.stopAfter) {
            stopped = true;
            return false;
        }
        return true;
    };

    if (plan.mode == RunMode::Sweep) {
        exp::SweepOptions sweep_opts;
        sweep_opts.threads = options.threads;
        sweep_opts.progress = options.progress;
        exp::SweepRunner(sweep_opts)
            .runIndices(plan.grid, remaining,
                        [&](std::size_t index, const exp::JobResult &job) {
                            return checkpoint(
                                index, exp::jobToJson(job).dump(),
                                job.ok);
                        });
    } else {
        // Chaos pairs run in a local pool mirroring exp::runChaos, with
        // the checkpoint spliced in under the same report mutex.
        const std::size_t total = remaining.size();
        unsigned threads = options.threads;
        if (threads == 0) {
            threads = std::thread::hardware_concurrency();
            if (threads == 0)
                threads = 1;
        }
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};
        std::mutex sink_mutex;
        std::size_t done_count = 0;
        // A journal append may throw (failing disk): capture the first
        // exception and rethrow it from this thread after the joins,
        // like SweepRunner::runIndices does for its sink.
        std::exception_ptr sink_error;
        auto chaos_worker = [&]() {
            for (;;) {
                if (stop.load())
                    return;
                const std::size_t slot = next.fetch_add(1);
                if (slot >= total)
                    return;
                const std::size_t index = remaining[slot];
                const exp::ChaosPointResult r = exp::runChaosPoint(
                    plan.grid.points[index], plan.preset);
                std::lock_guard<std::mutex> lock(sink_mutex);
                try {
                    if (!checkpoint(
                            index, exp::chaosPointToJson(r).dump(),
                            r.ok))
                        stop.store(true);
                } catch (...) {
                    if (!sink_error)
                        sink_error = std::current_exception();
                    stop.store(true);
                    return;
                }
                ++done_count;
                if (options.progress) {
                    std::fprintf(
                        stderr, "[%zu/%zu] %-52s %-6s %llu faults\n",
                        done_count, total, r.id.c_str(),
                        r.ok ? "ok" : "FAILED",
                        static_cast<unsigned long long>(
                            r.faultsInjected));
                }
            }
        };
        const unsigned n = static_cast<unsigned>(
            std::min<std::size_t>(threads, total));
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(chaos_worker);
        for (std::thread &t : pool)
            t.join();
        if (sink_error)
            std::rethrow_exception(sink_error);
    }

    if (poisoned && !stopped) {
        // Everything before the poisoned point is journaled and
        // flushed; the crash loses nothing but the poisoned attempt.
        fatal("svc: %s: poisoned point %zu crashed the worker",
              label.c_str(), poisoned_index);
    }

    writer.close();
    result.completedPoints = fresh;
    result.stopped = stopped;
    result.done = !stopped && target_done + fresh == target.size();
    return result;
}

} // namespace

WorkerResult
runShardWorker(const ShardPlan &plan, std::uint32_t shard,
               const std::string &journal_path,
               const WorkerOptions &options)
{
    if (shard >= plan.shardCount)
        fatal("svc: worker asked for shard %u of %u", shard,
              plan.shardCount);
    std::vector<std::size_t> skip = options.skipIndices;
    std::sort(skip.begin(), skip.end());

    std::vector<std::size_t> target;
    for (const std::size_t index : plan.shardIndices(shard))
        if (!contains(skip, index))
            target.push_back(index);
    return runAssignment(plan, plan.journalHeader(shard), journal_path,
                         target, options,
                         strprintf("shard %u/%u", shard,
                                   plan.shardCount));
}

std::vector<std::size_t>
stealSliceMembers(const ShardPlan &plan, std::uint32_t victim,
                  std::uint16_t slice, std::uint16_t slices,
                  const std::string &primary_path)
{
    if (victim >= plan.shardCount)
        fatal("svc: steal slice asked for shard %u of %u", victim,
              plan.shardCount);
    if (slices == 0 || slice >= slices)
        fatal("svc: steal slice %u of %u is out of range",
              static_cast<unsigned>(slice),
              static_cast<unsigned>(slices));

    // The victim's remainder, frozen: its primary journal no longer
    // grows once the lease was revoked, so every steal worker (and a
    // restarted coordinator) re-derives the identical remainder and
    // the identical slice membership from disk alone.
    std::vector<bool> journaled(plan.grid.points.size(), false);
    if (journalExists(primary_path)) {
        const JournalScan scan = scanJournal(primary_path);
        if (!scan.headerTorn) {
            requireMatchingHeader(scan.header, plan.journalHeader(victim),
                                  primary_path);
            for (const JournalFrame &frame : scan.frames)
                journaled[frame.index] = true;
        }
    }
    std::vector<std::size_t> remainder;
    for (const std::size_t index : plan.shardIndices(victim))
        if (!journaled[index])
            remainder.push_back(index);

    std::vector<std::size_t> members;
    for (std::size_t i = slice; i < remainder.size(); i += slices)
        members.push_back(remainder[i]);
    return members;
}

WorkerResult
runStealWorker(const ShardPlan &plan, std::uint32_t victim,
               std::uint16_t slice, std::uint16_t slices,
               const std::string &primary_path,
               const std::string &steal_path,
               const WorkerOptions &options)
{
    const std::vector<std::size_t> members =
        stealSliceMembers(plan, victim, slice, slices, primary_path);

    // The slice size goes in the header BEFORE quarantine filtering,
    // so the journal's identity depends only on the frozen primary and
    // the slice arithmetic -- a later quarantine narrows what gets run,
    // not what the file claims to be.
    const JournalHeader want = plan.stealJournalHeader(
        victim, slice, slices,
        static_cast<std::uint32_t>(members.size()));

    std::vector<std::size_t> skip = options.skipIndices;
    std::sort(skip.begin(), skip.end());
    std::vector<std::size_t> target;
    for (const std::size_t index : members)
        if (!contains(skip, index))
            target.push_back(index);
    return runAssignment(plan, want, steal_path, target, options,
                         strprintf("steal %u/%u of shard %u/%u",
                                   static_cast<unsigned>(slice),
                                   static_cast<unsigned>(slices), victim,
                                   plan.shardCount));
}

} // namespace mcsim::svc
