/**
 * @file
 * Reproduces paper Figure 9: the effect of hand-scheduling Relax's
 * stencil loads. For SC1 and WO1, at both cache sizes, prints the
 * run-time change of the model-specific optimal schedule and of a
 * deliberately bad schedule relative to the compiler's default order.
 *
 * The paper found up to ~8% swing between good and bad schedules, and
 * that the optimal order differs between SC (missing load issued last,
 * nothing after it) and WO (missing load issued first, used last).
 *
 * Usage: bench_fig9 [--full]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;
using workloads::RelaxSchedule;

int
main(int argc, char **argv)
{
    const bool full = parseFull(argc, argv);

    std::printf("Figure 9 reproduction: Relax scheduling, %% run-time "
                "change vs default schedule%s\n",
                full ? " (paper-size)" : " (scaled)");
    std::printf("(positive = faster than the default schedule)\n");
    printHeaderRule();

    struct Variant
    {
        core::Model model;
        RelaxSchedule optimal;
        RelaxSchedule bad;
    };
    const Variant variants[] = {
        {core::Model::SC1, RelaxSchedule::OptimalSC, RelaxSchedule::BadSC},
        {core::Model::WO1, RelaxSchedule::OptimalWO, RelaxSchedule::BadWO},
    };

    for (int big = 0; big < 2; ++big) {
        for (const auto &v : variants) {
            std::printf("\n%s, %s caches\n", core::modelName(v.model),
                        cacheLabel(full, big));
            std::printf("%-9s %10s %10s %10s\n", "schedule", "8B", "16B",
                        "64B");
            core::RunMetrics def[3], opt[3], bad[3];
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                auto cfg = baseConfig(full);
                cfg.cacheBytes = big ? largeCache(full) : smallCache(full);
                cfg.lineBytes = lineSizes[l];
                cfg.model = v.model;
                def[l] = run("Relax", cfg, full, RelaxSchedule::Default);
                opt[l] = run("Relax", cfg, full, v.optimal);
                bad[l] = run("Relax", cfg, full, v.bad);
            }
            std::printf("%-9s", "optimal");
            for (std::size_t l = 0; l < lineSizes.size(); ++l)
                std::printf(" %9.1f%%", core::percentGain(def[l], opt[l]));
            std::printf("\n%-9s", "bad");
            for (std::size_t l = 0; l < lineSizes.size(); ++l)
                std::printf(" %9.1f%%", core::percentGain(def[l], bad[l]));
            std::printf("\n");
        }
    }
    return 0;
}
