#include "axiom/trace.hh"

#include "sim/logging.hh"

namespace mcsim::axiom
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Read:
        return "R";
      case EventKind::Write:
        return "W";
      case EventKind::SyncRead:
        return "SyncR";
      case EventKind::SyncRmw:
        return "Rmw";
      case EventKind::SyncWrite:
        return "SyncW";
      case EventKind::Fence:
        return "Fence";
    }
    return "?";
}

std::string
Event::describe() const
{
    if (kind == EventKind::Fence) {
        return strprintf("p%u #%u Fence @%llu", proc, poSeq,
                         static_cast<unsigned long long>(perform));
    }
    return strprintf(
        "p%u #%u %s 0x%llx=%llu tag=%u issue=%llu bind=%llu perform=%llu",
        proc, poSeq, eventKindName(kind),
        static_cast<unsigned long long>(addr),
        static_cast<unsigned long long>(value), tag[0],
        static_cast<unsigned long long>(issue),
        static_cast<unsigned long long>(bind),
        static_cast<unsigned long long>(perform));
}

TraceRecorder::TraceRecorder(const TraceConfig &config, unsigned num_procs)
    : cfg(config), poCounters(num_procs, 0)
{
    trace.byProc.resize(num_procs);
}

Event &
TraceRecorder::makeEvent(ProcId p, EventKind kind, Addr addr,
                         std::uint8_t width, std::uint64_t value,
                         Tick issue_tick)
{
    MCSIM_ASSERT(!finished, "recording into a finished trace");
    if (trace.events.size() >= cfg.maxEvents) {
        fatal("trace recorder exceeded maxEvents=%zu; raise "
              "TraceConfig::maxEvents or shorten the run",
              cfg.maxEvents);
    }
    Event ev;
    ev.id = static_cast<std::uint32_t>(trace.events.size());
    ev.proc = p;
    ev.poSeq = poCounters[p]++;
    ev.kind = kind;
    ev.width = width;
    ev.addr = addr;
    ev.value = value;
    ev.issue = issue_tick;
    trace.events.push_back(ev);
    return trace.events.back();
}

void
TraceRecorder::sampleReadTags(Event &ev)
{
    for (unsigned i = 0; i < ev.granules(); ++i) {
        auto it = versions.find(ev.granule(i));
        ev.tag[i] = it == versions.end() ? 0 : it->second;
    }
}

void
TraceRecorder::bumpWriteTags(Event &ev)
{
    for (unsigned i = 0; i < ev.granules(); ++i)
        ev.tag[i] = ++versions[ev.granule(i)];
}

std::uint32_t
TraceRecorder::recordRead(ProcId p, Addr addr, std::uint8_t width,
                          std::uint64_t value, Tick issue_tick,
                          Tick bind_tick, Tick perform_tick)
{
    Event &ev = makeEvent(p, EventKind::Read, addr, width, value,
                          issue_tick);
    ev.bind = bind_tick;
    ev.perform = perform_tick;
    ev.orderTick = perform_tick;
    sampleReadTags(ev);
    return ev.id;
}

std::uint32_t
TraceRecorder::recordWrite(ProcId p, Addr addr, std::uint8_t width,
                           std::uint64_t value, Tick issue_tick,
                           Tick perform_tick)
{
    Event &ev = makeEvent(p, EventKind::Write, addr, width, value,
                          issue_tick);
    ev.bind = issue_tick;
    ev.perform = perform_tick;
    ev.orderTick = perform_tick;
    bumpWriteTags(ev);
    return ev.id;
}

std::uint32_t
TraceRecorder::recordPendingRead(ProcId p, EventKind kind, Addr addr,
                                 Tick issue_tick)
{
    MCSIM_ASSERT(kind == EventKind::SyncRead || kind == EventKind::SyncRmw,
                 "pending read must be a sync read or rmw");
    Event &ev = makeEvent(p, kind, addr, 8, 0, issue_tick);
    ev.pending = true;
    return ev.id;
}

std::uint32_t
TraceRecorder::recordPendingWrite(ProcId p, Addr addr, std::uint64_t value,
                                  Tick issue_tick)
{
    Event &ev = makeEvent(p, EventKind::SyncWrite, addr, 8, value,
                          issue_tick);
    ev.pending = true;
    return ev.id;
}

std::uint32_t
TraceRecorder::recordFence(ProcId p, Tick complete_tick)
{
    Event &ev = makeEvent(p, EventKind::Fence, 0, 8, 0, complete_tick);
    ev.bind = complete_tick;
    ev.perform = complete_tick;
    ev.orderTick = complete_tick;
    return ev.id;
}

void
TraceRecorder::bindRead(std::uint32_t id, std::uint64_t value,
                        Tick bind_tick)
{
    Event &ev = trace.events.at(id);
    MCSIM_ASSERT(ev.pending && isReadKind(ev.kind),
                 "bindRead on a non-pending event");
    ev.value = value;
    ev.bind = bind_tick;
    ev.perform = bind_tick;
    ev.orderTick = bind_tick;
    // Sample what the read observed *before* the rmw's own write bumps
    // the granule version; the write side then creates a new version.
    sampleReadTags(ev);
    if (ev.kind == EventKind::SyncRmw)
        bumpWriteTags(ev);
    ev.pending = false;
}

void
TraceRecorder::commitWrite(std::uint32_t id, Tick commit_tick)
{
    Event &ev = trace.events.at(id);
    MCSIM_ASSERT(ev.pending && ev.kind == EventKind::SyncWrite,
                 "commitWrite on a non-pending sync write");
    ev.bind = commit_tick;
    ev.perform = commit_tick;
    ev.orderTick = commit_tick;
    bumpWriteTags(ev);
    ev.pending = false;
}

void
TraceRecorder::setPerformed(std::uint32_t id, Tick perform_tick)
{
    Event &ev = trace.events.at(id);
    ev.perform = perform_tick;
    if (!ev.orderPinned)
        ev.orderTick = perform_tick;
}

void
TraceRecorder::setOrdered(std::uint32_t id, Tick order_tick)
{
    Event &ev = trace.events.at(id);
    ev.orderTick = order_tick;
    ev.orderPinned = true;
}

const Trace &
TraceRecorder::finish()
{
    if (finished)
        return trace;
    finished = true;
    for (auto &po : trace.byProc)
        po.clear();
    for (const Event &ev : trace.events) {
        MCSIM_ASSERT(!ev.pending,
                     "event %u still pending at finish (p%u %s 0x%llx)",
                     ev.id, ev.proc, eventKindName(ev.kind),
                     static_cast<unsigned long long>(ev.addr));
        trace.byProc.at(ev.proc).push_back(ev.id);
    }
    return trace;
}

} // namespace mcsim::axiom
