# Empty compiler generated dependencies file for test_loadown.
# This may be replaced when dependencies are built.
