# Empty dependencies file for bench_tables3_6.
# This may be replaced when dependencies are built.
