#include "mc/schedule.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "sim/logging.hh"

namespace mcsim::mc
{

bool
sleepContains(const std::vector<ChoiceOption> &moves,
              const ChoiceOption &move)
{
    return std::find(moves.begin(), moves.end(), move) != moves.end();
}

std::string
formatVector(const std::vector<unsigned> &vec)
{
    if (vec.empty())
        return "-";
    std::string s;
    for (std::size_t i = 0; i < vec.size(); ++i) {
        if (i > 0)
            s += ".";
        s += strprintf("%u", vec[i]);
    }
    return s;
}

bool
parseVector(const std::string &text, std::vector<unsigned> &out)
{
    out.clear();
    if (text.empty() || text == "-")
        return true;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t dot = text.find('.', pos);
        if (dot == std::string::npos)
            dot = text.size();
        if (dot == pos)
            return false;  // empty component ("1..2", leading/trailing dot)
        unsigned value = 0;
        for (std::size_t i = pos; i < dot; ++i) {
            const char c = text[i];
            if (c < '0' || c > '9')
                return false;
            value = value * 10 + static_cast<unsigned>(c - '0');
        }
        out.push_back(value);
        pos = dot + 1;
        if (dot == text.size())
            break;
    }
    return true;
}

VectorScheduler::VectorScheduler(std::vector<PrefixNode> pfx,
                                 bool use_sleep)
    : prefix(std::move(pfx)), useSleep(use_sleep)
{}

unsigned
VectorScheduler::choose(ChoiceKind kind, const ChoiceOption *options,
                        unsigned n)
{
    MCSIM_ASSERT(n >= 1, "choice point with no options");
    const std::size_t idx = recs.size();

    ChoiceRecord rec;
    rec.kind = kind;
    rec.options.assign(options, options + n);

    unsigned pick = 0;
    if (idx < prefix.size()) {
        // Forced part of the path: impose the branch node's accumulated
        // sleep set and take the decision the explorer scheduled.
        rec.sleep = prefix[idx].sleep;
        pick = prefix[idx].chosen;
        MCSIM_ASSERT(pick < n,
                     "scheduled choice %u of %u at node %zu: the run "
                     "diverged from its recording",
                     pick, n, idx);
    } else {
        // Fresh territory: inherit the propagated sleep set and take
        // the first move not sleeping there.
        rec.sleep = sleepNow;
        if (useSleep) {
            unsigned j = 0;
            while (j < n && sleepContains(rec.sleep, options[j]))
                ++j;
            if (j == n) {
                // Every enabled move sleeps: this execution only
                // re-derives an explored trace. We cannot abort a
                // coroutine-driven machine mid-run, so finish it (the
                // result is valid, just redundant) and let the
                // explorer count it.
                blocked = true;
                j = 0;
            }
            pick = j;
        }
    }

    rec.chosen = pick;
    // Child sleep set: sleeping moves that commute with the chosen one
    // stay asleep (Godefroid's sleep-set rule).
    sleepNow.clear();
    for (const ChoiceOption &m : rec.sleep) {
        if (independent(m, options[pick]))
            sleepNow.push_back(m);
    }
    recs.push_back(std::move(rec));
    return pick;
}

void
VectorScheduler::onDelivery(const DeliveryRecord &record)
{
    deliveries.push_back(record);
}

ReplayScheduler::ReplayScheduler(std::vector<unsigned> v)
    : vec(std::move(v))
{}

unsigned
ReplayScheduler::choose(ChoiceKind kind, const ChoiceOption *options,
                        unsigned n)
{
    (void)kind;
    (void)options;
    MCSIM_ASSERT(n >= 1, "choice point with no options");
    const std::size_t idx = picks.size();
    unsigned pick = idx < vec.size() ? vec[idx] : 0;
    if (pick >= n) {
        diverged += 1;
        pick = 0;
    }
    picks.push_back(pick);
    return pick;
}

void
ReplayScheduler::onDelivery(const DeliveryRecord &record)
{
    deliveries.push_back(record);
}

} // namespace mcsim::mc
