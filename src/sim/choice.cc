#include "sim/choice.hh"

namespace mcsim
{

const char *
choiceKindName(ChoiceKind kind)
{
    switch (kind) {
      case ChoiceKind::NetDeliver:
        return "net";
      case ChoiceKind::DirService:
        return "dir";
      case ChoiceKind::RetryDelay:
        return "retry";
    }
    return "?";
}

} // namespace mcsim
