/**
 * @file
 * Stateless model checker over the real Machine (DESIGN.md section 12).
 *
 * The explorer drives litmus programs through every reachable
 * interleaving of the simulator's nondeterministic choice points
 * (sim/choice.hh: network delivery order, directory waiter service
 * order, retry backoff) by depth-first search over the choice tree:
 * each iteration re-runs the machine from scratch under a
 * VectorScheduler that forces the path to the current branch node and
 * records everything beyond it. Sleep-set partial-order reduction
 * (Godefroid) prunes interleavings that only commute independent moves;
 * `dpor = false` gives the unreduced enumeration the reduction is
 * validated against.
 *
 * Every run is checked three ways: the machine's own invariant checkers
 * (src/check/, CheckMode::Fatal) plus deadlock/watchdog aborts surface
 * as FatalError; the recorded trace must satisfy the model's axiomatic
 * ordering rules (src/axiom/); and the litmus outcome must be in the
 * model's allowed set, at both the hardware and functional level. A
 * violating schedule is minimized (greedy zeroing + shortest-prefix
 * truncation -- locally minimal) and rendered as a replayable choice
 * vector plus a message timeline.
 */

#ifndef MCSIM_MC_EXPLORER_HH
#define MCSIM_MC_EXPLORER_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "axiom/litmus.hh"
#include "core/consistency.hh"
#include "core/machine_config.hh"
#include "mc/schedule.hh"

namespace mcsim::mc
{

/** One verification job: a model, a litmus test, and search bounds. */
struct McOptions
{
    core::Model model = core::Model::SC1;
    std::string litmus = "SB";
    /** Branch horizon: choice points at index >= maxDepth are followed
     *  but never branched. Large enough by default that small litmus
     *  configs explore exhaustively. */
    unsigned maxDepth = 100000;
    bool dpor = true;
    /** Schedule budget; the search reports incomplete when it hits it. */
    std::uint64_t maxSchedules = 200000;
    /** Workload execution-padding seed (fixed timing skeleton). */
    std::uint64_t seed = 1;
    /** Disable the processors' sync-ordering hardware (test hook):
     *  the checkers must then find a violation. */
    bool weaken = false;
};

/** Search counters (CI logs these; tests assert on them). */
struct McStats
{
    std::uint64_t schedulesRun = 0;      ///< full machine runs (search)
    std::uint64_t minimizationRuns = 0;  ///< replays spent shrinking
    std::uint64_t choicePoints = 0;      ///< records across all runs
    std::uint64_t branchPoints = 0;      ///< nodes with >1 option seen
    std::uint64_t sleepPruned = 0;       ///< alternatives pruned asleep
    std::uint64_t sleepBlockedRuns = 0;  ///< redundant runs (see schedule.hh)
    std::uint64_t maxDepthSeen = 0;      ///< longest run, in choice points
    bool depthClipped = false;           ///< branching hit maxDepth
    bool budgetExhausted = false;        ///< stopped at maxSchedules
};

/** A minimized, replayable counterexample. */
struct McViolation
{
    std::string kind;     ///< "fatal" | "axiom" | "forbidden-outcome"
    std::string message;
    std::vector<unsigned> vector;  ///< minimal choice vector
    std::string report;   ///< rendered vector + message timeline
};

/** Outcome of the whole search. */
struct McResult
{
    McStats stats;
    /** Whole choice tree explored within depth and budget. */
    bool complete = false;
    std::optional<McViolation> violation;
};

/** Outcome of one run under an arbitrary scheduler (replay, tests). */
struct RunOutcome
{
    bool violated = false;
    std::string kind;
    std::string message;
    axiom::LitmusRun run;
};

/** Look up a litmus test by name; nullptr when unknown. */
const axiom::LitmusTest *findLitmus(const std::string &name);

/** The small machine configuration the checker verifies: exactly the
 *  test's thread count in processors, two memory modules. */
core::MachineConfig mcConfig(const McOptions &opt,
                             const axiom::LitmusTest &test);

/** Run @p opt's litmus program once under @p sched and check it. */
RunOutcome runUnder(const McOptions &opt, ChoiceScheduler &sched);

/** Human-readable message timeline ("[t=12] req P0->M1 GetShared ..."). */
std::string renderTimeline(const std::vector<DeliveryRecord> &timeline);

/** Exhaustive search (see file header). */
McResult explore(const McOptions &opt);

} // namespace mcsim::mc

#endif // MCSIM_MC_EXPLORER_HH
