/**
 * @file
 * Unit tests for the small sim utilities: logging/formatting, the
 * deterministic RNG, StatSet, and the type helpers.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace mcsim;

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "ok"), "x=7 y=ok");
    EXPECT_EQ(strprintf("%%"), "%");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %d", 3), FatalError);
    try {
        fatal("value was %u", 42u);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value was 42");
    }
}

TEST(LoggingDeathTest, AssertMacroPanics)
{
    EXPECT_DEATH(MCSIM_ASSERT(1 == 2, "math broke: %d", 5), "math broke");
}

TEST(TypeHelpers, AlignDown)
{
    EXPECT_EQ(alignDown(0, 16), 0u);
    EXPECT_EQ(alignDown(15, 16), 0u);
    EXPECT_EQ(alignDown(16, 16), 16u);
    EXPECT_EQ(alignDown(255, 64), 192u);
}

TEST(TypeHelpers, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(1024), 10u);
}

TEST(TypeHelpers, LogCeil)
{
    EXPECT_EQ(logCeil(16, 4), 2u);   // 16 procs, 4x4 switches: 2 stages
    EXPECT_EQ(logCeil(32, 4), 3u);   // 32 procs: 3 stages (paper 3.1)
    EXPECT_EQ(logCeil(64, 4), 3u);
    EXPECT_EQ(logCeil(16, 2), 4u);
    EXPECT_EQ(logCeil(1, 4), 0u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123), c(124);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    EXPECT_EQ(r.below(0), 0u);
    EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(77);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(StatSet, SetAddGet)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0.0);
    EXPECT_FALSE(s.has("missing"));
    s.set("a", 2.0);
    s.add("a", 3.0);
    s.add("b", 1.0);
    EXPECT_EQ(s.get("a"), 5.0);
    EXPECT_EQ(s.get("b"), 1.0);
    EXPECT_TRUE(s.has("a"));
    EXPECT_EQ(s.size(), 2u);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.set("x", 1);
    a.set("y", 2);
    b.set("y", 3);
    b.set("z", 4);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 1.0);
    EXPECT_EQ(a.get("y"), 5.0);
    EXPECT_EQ(a.get("z"), 4.0);
}

TEST(StatSet, DumpFormatsLines)
{
    StatSet s;
    s.set("alpha", 1.5);
    std::ostringstream os;
    s.dump(os, "pfx.");
    EXPECT_EQ(os.str(), "pfx.alpha = 1.5\n");
}
