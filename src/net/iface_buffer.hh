/**
 * @file
 * The four-element buffer between a processor (or memory module) and its
 * network, per paper section 3.1, including the WO2 load-bypass behaviour
 * of section 3.2.
 *
 * Messages drain into the network one at a time; the buffer-to-network link
 * carries one flit per cycle, so a message of F flits holds the link for F
 * cycles and its head enters the stage-0 switch one cycle after it starts
 * draining. When bypassing is enabled, bypass-eligible messages (loads)
 * enter at the head of the waiting queue -- in front of waiting stores and
 * waiting loads alike, reproducing the paper's "simple, but slightly
 * flawed" implementation that its section 4.2.3 analyses.
 */

#ifndef MCSIM_NET_IFACE_BUFFER_HH
#define MCSIM_NET_IFACE_BUFFER_HH

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "net/message.hh"
#include "net/net_stats.hh"
#include "net/omega_network.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mcsim::net
{

/** FIFO (optionally load-bypassing) injection buffer for one network port. */
template <typename Payload>
class IfaceBuffer
{
  public:
    using Message = Msg<Payload>;

    /**
     * @param eq shared event queue
     * @param net network this buffer injects into
     * @param capacity maximum queued messages (paper: 4)
     * @param bypass_enabled WO2 load bypassing
     */
    IfaceBuffer(EventQueue &eq, OmegaNetwork<Payload> &net, unsigned capacity,
                bool bypass_enabled)
        : queue(eq), network(net), cap(capacity), bypassEnabled(bypass_enabled)
    {}

    IfaceBuffer(const IfaceBuffer &) = delete;
    IfaceBuffer &operator=(const IfaceBuffer &) = delete;

    /** True when no more messages can be accepted right now. */
    bool full() const { return waiting.size() >= cap; }

    /** Currently queued (not yet injected) messages. */
    std::size_t occupancy() const { return waiting.size(); }

    /** Buffer statistics. */
    const BufferStats &stats() const { return bufStats; }

    /**
     * Try to accept @p msg. Returns false (and counts a reject) when the
     * buffer is full; the caller should retry after registering an
     * onSpace() callback.
     */
    bool
    tryEnqueue(Message &&msg)
    {
        if (full()) {
            bufStats.fullRejects += 1;
            return false;
        }
        msg.createdAt = queue.now();
        bufStats.enqueued += 1;
        if (bypassEnabled && msg.bypassEligible && !waiting.empty()) {
            bufStats.bypasses += 1;
            bufStats.messagesJumped += waiting.size();
            waiting.push_front(std::move(msg));
        } else {
            waiting.push_back(std::move(msg));
        }
        pump();
        return true;
    }

    /**
     * Register a one-shot callback invoked the next time a queue slot
     * frees up. Callbacks fire in registration order.
     */
    void
    onSpace(std::function<void()> cb)
    {
        spaceWaiters.push_back(std::move(cb));
    }

  private:
    /**
     * Arrange for the head message to start draining once the link frees.
     * The head keeps its buffer slot until its drain actually starts, so a
     * bypass-eligible arrival can still jump in front of it meanwhile.
     */
    void
    pump()
    {
        if (pumping || waiting.empty())
            return;
        pumping = true;
        const Tick start = std::max(queue.now(), linkFree);
        queue.schedule(
            start, [this]() { drainHead(); }, EventQueue::prioDeliver);
    }

    /** Move the current head onto the buffer-to-network link. */
    void
    drainHead()
    {
        Message msg = std::move(waiting.front());
        waiting.pop_front();
        const Tick now = queue.now();
        bufStats.residencyCycles += now - msg.createdAt;
        linkFree = now + msg.flits();
        // Head flit reaches the stage-0 switch one cycle after the message
        // starts on the buffer-to-network link.
        queue.schedule(
            now + 1,
            [this, m = std::move(msg)]() mutable {
                network.inject(std::move(m));
            },
            EventQueue::prioDeliver);
        pumping = false;
        notifySpace();
        pump();
    }

    void
    notifySpace()
    {
        if (spaceWaiters.empty() || full())
            return;
        std::vector<std::function<void()>> cbs;
        cbs.swap(spaceWaiters);
        for (auto &cb : cbs)
            cb();
    }

    EventQueue &queue;
    OmegaNetwork<Payload> &network;
    unsigned cap;
    bool bypassEnabled;
    std::deque<Message> waiting;
    std::vector<std::function<void()>> spaceWaiters;
    Tick linkFree = 0;
    bool pumping = false;
    BufferStats bufStats;
};

} // namespace mcsim::net

#endif // MCSIM_NET_IFACE_BUFFER_HH
