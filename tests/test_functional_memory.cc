/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include "mem/functional_memory.hh"

using namespace mcsim;
using mem::FunctionalMemory;

TEST(FunctionalMemory, U64RoundTrip)
{
    FunctionalMemory m(64);
    m.writeU64(8, 0x1122334455667788ull);
    EXPECT_EQ(m.readU64(8), 0x1122334455667788ull);
}

TEST(FunctionalMemory, U32RoundTripAndOverlap)
{
    FunctionalMemory m(64);
    m.writeU64(0, ~0ull);
    m.writeU32(0, 5);
    EXPECT_EQ(m.readU32(0), 5u);
    EXPECT_EQ(m.readU32(4), 0xffffffffu);  // upper half untouched
}

TEST(FunctionalMemory, F64RoundTrip)
{
    FunctionalMemory m(64);
    m.writeF64(16, 3.25);
    EXPECT_DOUBLE_EQ(m.readF64(16), 3.25);
    m.writeF64(16, -0.0);
    EXPECT_EQ(m.readF64(16), 0.0);
}

TEST(FunctionalMemory, GrowsOnWrite)
{
    FunctionalMemory m(16);
    m.writeU64(1 << 20, 7);
    EXPECT_GE(m.size(), (1u << 20) + 8);
    EXPECT_EQ(m.readU64(1 << 20), 7u);
}

TEST(FunctionalMemory, UnbackedReadsAreZero)
{
    FunctionalMemory m(16);
    EXPECT_EQ(m.readU64(1 << 24), 0u);
    EXPECT_EQ(m.size(), 16u);  // const read does not grow
}

TEST(FunctionalMemory, EnsurePreallocates)
{
    FunctionalMemory m(16);
    m.ensure(1000);
    EXPECT_GE(m.size(), 1000u);
}

TEST(FunctionalMemory, TestAndSetSemantics)
{
    FunctionalMemory m(64);
    EXPECT_EQ(m.testAndSet(24), 0u);   // was free
    EXPECT_EQ(m.readU64(24), 1u);      // now held
    EXPECT_EQ(m.testAndSet(24), 1u);   // second attempt fails
    m.writeU64(24, 0);
    EXPECT_EQ(m.testAndSet(24), 0u);   // released, acquirable again
}

TEST(FunctionalMemory, ByteRangeAccess)
{
    FunctionalMemory m(64);
    const char data[] = "abcdef";
    m.write(3, data, 6);
    char out[6] = {};
    m.read(3, out, 6);
    EXPECT_EQ(std::string(out, 6), "abcdef");
}
