/**
 * @file
 * Observability subsystem (src/obs/): the exact stall-cause accounting
 * identity across the whole quick grid, the model-level sanity property
 * that SC1 spends at least the sync-stall share RC does on a high-sync
 * workload, the log2 histogram summaries, the bounded ring tracer, and
 * the Perfetto export.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/machine.hh"
#include "core/metrics.hh"
#include "exp/grid.hh"
#include "exp/json.hh"
#include "obs/histogram.hh"
#include "obs/perfetto.hh"
#include "obs/stall.hh"
#include "obs/tracer.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace mcsim;

namespace
{

/** Build, run, and return the machine for one sweep point (the pieces of
 *  workloads::runWorkload, kept apart so tests can inspect the machine). */
struct PointRun
{
    std::unique_ptr<workloads::Workload> workload;
    std::unique_ptr<core::Machine> machine;
    Tick last = 0;

    explicit PointRun(const exp::SweepPoint &point,
                      bool with_tracer = false)
        : workload(point.makeWorkload())
    {
        core::MachineConfig cfg = point.machineConfig();
        if (!workload->dataRaceFree())
            cfg.check.races = false;
        cfg.obs.tracer = with_tracer;
        machine = std::make_unique<core::Machine>(cfg);
        workload->setup(*machine);
        last = machine->run();
        workload->verify(*machine);
    }

    core::RunMetrics metrics() const
    {
        return core::RunMetrics::fromMachine(*machine, last);
    }
};

std::uint64_t
syncStall(const obs::StallBreakdown &b)
{
    return b.cause(obs::StallCause::FenceSync) +
           b.cause(obs::StallCause::Acquire) +
           b.cause(obs::StallCause::Release);
}

} // namespace

// The tentpole invariant: every non-busy cycle of every processor is
// charged to exactly one cause, for every machine type x workload of the
// CI grid. Per processor busy + stalls == finishedAt; machine-wide the
// breakdown plus post-finish idle time tiles cycles * numProcs.
TEST(StallAttribution, QuickGridTilesEveryCycleExactly)
{
    const exp::Grid grid = exp::namedGrid("quick", exp::Scale::Quick);
    ASSERT_FALSE(grid.points.empty());
    for (const exp::SweepPoint &point : grid.points) {
        const PointRun run(point);
        for (unsigned p = 0; p < run.machine->numProcs(); ++p) {
            const auto &ps = run.machine->proc(p).stats();
            EXPECT_EQ(ps.breakdown.accounted(), ps.finishedAt)
                << point.id() << " proc " << p;
        }
        const core::RunMetrics m = run.metrics();
        EXPECT_EQ(m.breakdown.accounted() + m.idleCycles,
                  static_cast<std::uint64_t>(run.last) *
                      run.machine->numProcs())
            << point.id();
        EXPECT_GT(m.breakdown.busyCycles, 0u) << point.id();
    }
}

// Paper section 4: the strong models pay for synchronization with stall
// time the relaxed models hide. On Psim (the paper's high-sync workload)
// SC1's share of cycles charged to sync causes must be at least RC's.
TEST(StallAttribution, Sc1SyncShareAtLeastRcOnPsim)
{
    auto share = [](core::Model model) {
        exp::SweepPoint point = exp::paperPoint(
            "Psim", model, exp::Scale::Quick, /*big_cache=*/false,
            /*line_bytes=*/16, /*procs=*/8);
        point.seed = point.derivedSeed();
        const core::RunMetrics m = PointRun(point).metrics();
        const std::uint64_t accounted = m.breakdown.accounted();
        EXPECT_GT(accounted, 0u);
        return static_cast<double>(syncStall(m.breakdown)) /
               static_cast<double>(accounted);
    };
    const double sc1 = share(core::Model::SC1);
    const double rc = share(core::Model::RC);
    EXPECT_GE(sc1, rc);
}

// The Buffer cause is reachable only with the SC store buffer enabled
// (no canonical model sets it): the single-outstanding wait for a store
// then ends at the interface-buffer hand-off, i.e. backpressure.
TEST(StallAttribution, ScStoreBufferChargesBufferBackpressure)
{
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.cacheBytes = 2048;
    cfg.model = core::Model::SC1;
    core::ModelParams params = core::modelParams(core::Model::SC1);
    params.scStoreBufferRelease = true;
    cfg.modelOverride = params;

    workloads::SyntheticParams sp;
    sp.refsPerProc = 400;
    sp.storeFraction = 0.5;
    // Back-to-back references: with compute between them the next access
    // would start after the store's buffer hand-off and never wait on it.
    sp.execBetween = 0;
    workloads::SyntheticWorkload workload(sp);
    const auto result = workloads::runWorkload(workload, cfg);

    EXPECT_GT(result.metrics.breakdown.cause(obs::StallCause::Buffer), 0u);
    // The identity holds with the override too.
    EXPECT_EQ(result.metrics.breakdown.accounted() +
                  result.metrics.idleCycles,
              static_cast<std::uint64_t>(result.metrics.cycles) *
                  cfg.numProcs);
}

TEST(LatencyHistogram, BucketEdgesAndQuantiles)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.quantile(0.5), 0u);  // empty

    h.record(0);
    EXPECT_EQ(h.counts[0], 1u);
    EXPECT_EQ(h.p50(), 0u);

    obs::LatencyHistogram g;
    g.record(1);
    g.record(2);
    g.record(3);
    g.record(100);
    // rank ceil(0.5*4)=2 lands in bucket 2 ([2,3]); upper edge 3.
    EXPECT_EQ(g.p50(), 3u);
    // rank 4 lands in bucket 7 ([64,127]); capped at the exact max.
    EXPECT_EQ(g.p99(), 100u);
    EXPECT_EQ(g.maxValue, 100u);
    EXPECT_DOUBLE_EQ(g.mean(), 106.0 / 4.0);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecordingAnyOrder)
{
    obs::LatencyHistogram all, a, b;
    const std::uint64_t values[] = {0, 1, 5, 18, 18, 40, 300, 7};
    unsigned i = 0;
    for (std::uint64_t v : values) {
        all.record(v);
        ((i++ % 2) ? a : b).record(v);
    }
    obs::LatencyHistogram ab = a;
    ab.merge(b);
    obs::LatencyHistogram ba = b;
    ba.merge(a);
    for (unsigned bkt = 0; bkt < obs::LatencyHistogram::numBuckets; ++bkt) {
        EXPECT_EQ(ab.counts[bkt], all.counts[bkt]);
        EXPECT_EQ(ba.counts[bkt], all.counts[bkt]);
    }
    EXPECT_EQ(ab.p90(), all.p90());
    EXPECT_EQ(ba.sum, all.sum);
    EXPECT_EQ(ab.maxValue, all.maxValue);
}

TEST(Tracer, RingKeepsNewestAndCountsDrops)
{
    obs::Tracer tracer(4);
    for (std::uint32_t i = 0; i < 6; ++i)
        tracer.span(obs::Track::Proc, i, obs::SpanKind::Busy, i * 10, 1);
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    std::uint32_t expect_id = 2;  // oldest two overwritten
    tracer.forEach([&](const obs::TraceEvent &e) {
        EXPECT_EQ(e.id, expect_id);
        EXPECT_EQ(e.begin, Tick(expect_id) * 10);
        ++expect_id;
    });
    EXPECT_EQ(expect_id, 6u);
}

TEST(Tracer, DisarmedSpanRecordsNothing)
{
    obs::Tracer tracer(8);
    tracer.arm(false);
    tracer.span(obs::Track::Proc, 0, obs::SpanKind::Busy, 0, 5);
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    tracer.arm(true);
    tracer.span(obs::Track::Proc, 0, obs::SpanKind::Busy, 0, 5);
    EXPECT_EQ(tracer.size(), 1u);
}

TEST(Perfetto, ExportsParseableTraceEvents)
{
    obs::Tracer tracer(16);
    tracer.span(obs::Track::Proc, 1, obs::SpanKind::Busy, 0, 3);
    tracer.span(obs::Track::Proc, 1, obs::SpanKind::StallLoadMiss, 3, 15);
    tracer.span(obs::Track::Cache, 1, obs::SpanKind::MissService, 4, 18,
                0x1f80);
    tracer.span(obs::Track::ReqSwitch, (2u << 8) | 3u,
                obs::SpanKind::PortBusy, 5, 2);

    const std::string json = obs::perfettoJson(tracer);
    std::string error;
    const exp::Json doc = exp::Json::parse(json, &error);
    ASSERT_TRUE(error.empty()) << error;
    const exp::Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    unsigned complete = 0, metadata = 0, with_addr = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const exp::Json &e = events->at(i);
        const exp::Json *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->asString() == "X") {
            ++complete;
            EXPECT_NE(e.find("ts"), nullptr);
            EXPECT_NE(e.find("dur"), nullptr);
            if (e.find("args"))
                ++with_addr;
        } else {
            EXPECT_EQ(ph->asString(), "M");
            ++metadata;
        }
    }
    EXPECT_EQ(complete, 4u);
    EXPECT_EQ(with_addr, 1u);
    // 5 process_name records plus one thread_name per (track, id) pair.
    EXPECT_EQ(metadata, 5u + 3u);
}

// End to end: a machine with the tracer wired retains spans from every
// component class, and a disarmed tracer retains none while the stall
// accounting still tiles (attribution never depends on the tracer).
TEST(Tracer, MachineWiresAllTracks)
{
    exp::SweepPoint point = exp::paperPoint(
        "Relax", core::Model::WO1, exp::Scale::Quick, /*big_cache=*/false,
        /*line_bytes=*/16, /*procs=*/8);
    point.seed = point.derivedSeed();

    const PointRun traced(point, /*with_tracer=*/true);
    const obs::Tracer *tracer = traced.machine->tracer();
    ASSERT_NE(tracer, nullptr);
    EXPECT_GT(tracer->size(), 0u);
    bool seen[obs::numTracks] = {};
    tracer->forEach([&](const obs::TraceEvent &e) {
        seen[static_cast<unsigned>(e.track)] = true;
    });
    for (unsigned t = 0; t < obs::numTracks; ++t) {
        EXPECT_TRUE(seen[t]) << obs::trackName(static_cast<obs::Track>(t));
    }
    const StatSet stats = traced.machine->collectStats();
    EXPECT_TRUE(stats.has("obs.trace_events"));

    exp::SweepPoint disarmed_point = point;
    PointRun disarmed(disarmed_point);
    core::MachineConfig cfg = disarmed_point.machineConfig();
    cfg.obs.tracer = true;
    cfg.obs.tracerArmed = false;
    auto workload = disarmed_point.makeWorkload();
    core::Machine machine(cfg);
    workload->setup(machine);
    const Tick last = machine.run();
    ASSERT_NE(machine.tracer(), nullptr);
    EXPECT_EQ(machine.tracer()->size(), 0u);
    const auto m = core::RunMetrics::fromMachine(machine, last);
    EXPECT_EQ(m.breakdown.accounted() + m.idleCycles,
              static_cast<std::uint64_t>(last) * machine.numProcs());
    // Identical timing with the tracer armed, disarmed, or absent.
    EXPECT_EQ(last, traced.last);
    EXPECT_EQ(last, disarmed.last);
}
