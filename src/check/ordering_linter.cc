#include "check/ordering_linter.hh"

#include "sim/logging.hh"

namespace mcsim::check
{

OrderingLinter::OrderingLinter(unsigned num_procs,
                               const core::ModelParams &model_params)
    : model(model_params), procs(num_procs)
{
}

std::string
OrderingLinter::issueCheck(ProcId p, bool is_sync, bool is_release)
{
    ProcState &st = procs[p];

    if (is_release) {
        // RC release issue: everything outstanding at the defer point
        // must have completed (the deferred-release contract).
        // mcsim-lint: order-insensitive(verdict equivalent for any hit)
        for (std::uint64_t cookie : st.releaseSnapshot) {
            if (st.outstanding.count(cookie) || st.background.count(cookie)) {
                return strprintf(
                    "p%u issued a release while reference %llu from its "
                    "defer point is still outstanding",
                    p, static_cast<unsigned long long>(cookie));
            }
        }
        return {};
    }

    if (model.syncDrains && is_sync && !st.outstanding.empty()) {
        return strprintf("p%u issued a sync operation with %zu data "
                         "references outstanding (drain-before-sync rule)",
                         p, st.outstanding.size());
    }

    if (model.singleOutstanding && !st.outstanding.empty()) {
        return strprintf("p%u issued an access with %zu references "
                         "outstanding (single-outstanding SC rule)",
                         p, st.outstanding.size());
    }
    return {};
}

void
OrderingLinter::refIssued(ProcId p, std::uint64_t cookie)
{
    const bool inserted = procs[p].outstanding.insert(cookie).second;
    MCSIM_ASSERT(inserted, "ordering linter saw cookie %llu issued twice",
                 static_cast<unsigned long long>(cookie));
}

void
OrderingLinter::refEarlyReleased(ProcId p, std::uint64_t cookie)
{
    ProcState &st = procs[p];
    if (st.outstanding.erase(cookie) > 0)
        st.background.insert(cookie);
}

void
OrderingLinter::refCompleted(ProcId p, std::uint64_t cookie)
{
    ProcState &st = procs[p];
    if (st.outstanding.erase(cookie) == 0)
        st.background.erase(cookie);
    st.releaseSnapshot.erase(cookie);
}

void
OrderingLinter::releaseDeferred(ProcId p)
{
    ProcState &st = procs[p];
    st.releasePending = true;
    st.releaseSnapshot = st.outstanding;
}

void
OrderingLinter::releaseDone(ProcId p)
{
    ProcState &st = procs[p];
    st.releasePending = false;
    st.releaseSnapshot.clear();
}

std::string
OrderingLinter::fenceCheck(ProcId p)
{
    // Under SC the single-outstanding rule already orders everything; a
    // fence is free and completes regardless of in-flight fills.
    if (model.singleOutstanding)
        return {};
    ProcState &st = procs[p];
    if (!st.outstanding.empty() || st.releasePending) {
        return strprintf("p%u completed a fence with %zu references "
                         "outstanding%s",
                         p, st.outstanding.size(),
                         st.releasePending ? " and a release pending" : "");
    }
    return {};
}

} // namespace mcsim::check
