/**
 * @file
 * The memory consistency models under study (paper Table 1) and the
 * hardware features each one enables.
 *
 * | System | Major features                                                |
 * |--------|---------------------------------------------------------------|
 * | SC1    | sequentially consistent, non-blocking loads                   |
 * | SC2    | SC1 + hardware-directed non-binding prefetch at stalls        |
 * | WO1    | hw-visible sync ops; no stall on access while refs outstanding |
 * | WO2    | WO1 + bypassing of pending messages by loads                   |
 * | RC     | WO1 + no stall while a release completes; no stall for         |
 * |        | outstanding accesses at an acquire                             |
 * | bSC1   | SC1 with blocking loads (section 5.1)                          |
 * | bWO1   | WO1 with blocking loads (section 5.1)                          |
 */

#ifndef MCSIM_CORE_CONSISTENCY_HH
#define MCSIM_CORE_CONSISTENCY_HH

#include <string>

namespace mcsim::core
{

/** The simulated system types. */
enum class Model
{
    SC1,
    SC2,
    WO1,
    WO2,
    RC,
    BSC1,  ///< blocking-load SC1
    BWO1,  ///< blocking-load WO1
};

/** All models, in the paper's presentation order. */
constexpr Model allModels[] = {Model::SC1,  Model::SC2, Model::WO1,
                               Model::WO2,  Model::RC,  Model::BSC1,
                               Model::BWO1};

/**
 * Hardware capabilities implied by a model; the Processor and Machine are
 * parameterized by this rather than by the enum so single features can be
 * ablated independently.
 */
struct ModelParams
{
    Model model = Model::SC1;
    /** MSHR count: 1 for SC1/bSC1, 2 for SC2 (demand + prefetch),
     *  5 for the relaxed models (paper section 3.2). */
    unsigned numMshrs = 1;
    /** Stall at the second access while one is outstanding (SC rule). */
    bool singleOutstanding = true;
    /** Loads stall until the line returns on a miss (bSC1/bWO1). */
    bool blockingLoads = false;
    /** Issue a non-binding prefetch for the access that caused a stall. */
    bool prefetchOnStall = false;
    /** Load requests bypass queued messages in the interface buffer. */
    bool loadBypass = false;
    /** Release-consistent treatment of acquires and releases. */
    bool releaseConsistent = false;
    /** Sync operations drain all outstanding accesses before issuing
     *  (weak ordering; under RC only fences and releases do). */
    bool syncDrains = false;
    /** Under the SC systems, a data-store miss stops counting as the
     *  outstanding reference once its request has been handed to the
     *  network interface buffer -- the paper's "(very) limited use of
     *  write buffers" that hides write latency "in all implementations"
     *  (sections 2.1 and 4.1.3). Ablatable via bench_ablation. */
    bool scStoreBufferRelease = false;
};

/** Canonical feature set for @p model (paper configuration). */
ModelParams modelParams(Model model, unsigned relaxed_mshrs = 5);

/** Display name ("SC1", "WO1", ...). */
const char *modelName(Model model);

/** Parse a model name; fatal() on unknown names. */
Model modelFromName(const std::string &name);

/** True for the two sequentially consistent systems (and bSC1). */
bool isSequentiallyConsistent(Model model);

} // namespace mcsim::core

#endif // MCSIM_CORE_CONSISTENCY_HH
