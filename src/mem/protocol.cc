#include "mem/protocol.hh"

#include "sim/logging.hh"

namespace mcsim::mem
{

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::GetShared: return "GetShared";
      case MsgKind::GetExclusive: return "GetExclusive";
      case MsgKind::Writeback: return "Writeback";
      case MsgKind::InvAck: return "InvAck";
      case MsgKind::RecallStale: return "RecallStale";
      case MsgKind::FlushData: return "FlushData";
      case MsgKind::DataReplyShared: return "DataReplyShared";
      case MsgKind::DataReplyExclusive: return "DataReplyExclusive";
      case MsgKind::Invalidate: return "Invalidate";
      case MsgKind::RecallShared: return "RecallShared";
      case MsgKind::RecallExclusive: return "RecallExclusive";
      case MsgKind::Nack: return "Nack";
      case MsgKind::WbAck: return "WbAck";
    }
    return "<unknown>";
}

void
unreachableMessage(const char *component, unsigned id, MsgKind kind)
{
    panic("[unreachable-message] %s %u received impossible message kind %s",
          component, id, msgKindName(kind));
}

const char *
validateMessage(const CoherenceMsg &msg, bool to_memory,
                unsigned num_procs, unsigned line_bytes)
{
    if (to_memory != isRequestKind(msg.kind))
        return "message kind does not match its network direction";
    if (line_bytes == 0 || msg.lineAddr % line_bytes != 0)
        return "message address is not line-aligned";
    if (msg.proc >= num_procs)
        return "message names a nonexistent processor";
    return nullptr;
}

} // namespace mcsim::mem
