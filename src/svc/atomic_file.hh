/**
 * @file
 * Atomic whole-file writes for results documents.
 *
 * Every canonical output (sweep JSON/CSV, golden documents, merged svc
 * results) is written to a sibling temporary file and renamed into
 * place, so a run killed at any instant can never leave a truncated
 * document behind: readers see either the previous complete file or the
 * new complete file, never a prefix. Checkpoint journals deliberately do
 * NOT use this -- they are append-only and crash-tolerant by framing
 * (src/svc/journal.hh).
 */

#ifndef MCSIM_SVC_ATOMIC_FILE_HH
#define MCSIM_SVC_ATOMIC_FILE_HH

#include <string>

namespace mcsim::svc
{

/**
 * Write @p content to @p path atomically: write "<path>.tmp", flush it
 * to the OS, and rename over @p path. fatal() on any I/O failure (the
 * temporary is removed on the way out, so no partial artifact lingers).
 * Concurrent writers to the same path race whole files, never bytes.
 */
void writeFileAtomic(const std::string &path, const std::string &content);

/**
 * Create @p path as a directory, making parents as needed (mkdir -p).
 * An existing directory is fine; fatal() when a component cannot be
 * created or exists as a non-directory.
 */
void ensureDirectory(const std::string &path);

/**
 * Recursively delete @p path (file or directory tree), in sorted entry
 * order for deterministic behaviour. A missing path is a no-op; fatal()
 * when something cannot be removed. Used by the chaos harness to reset
 * round directories.
 */
void removeTree(const std::string &path);

} // namespace mcsim::svc

#endif // MCSIM_SVC_ATOMIC_FILE_HH
