/**
 * @file
 * Cross-model property tests -- the heart of the reproduction's
 * correctness story:
 *
 *  1. Data-race-free programs produce identical functional results on
 *     every consistency model (each model appears sequentially
 *     consistent, paper section 2).
 *  2. After quiesce, every cache's line states agree with the directory.
 *  3. Runs are deterministic.
 *  4. Loose performance sanity: the relaxed models never lose badly to
 *     SC1 on overlap-friendly workloads.
 *
 * Parameterized across models x line sizes (TEST_P sweeps).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/machine.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using core::Model;

namespace
{

core::MachineConfig
config(Model m, unsigned line_bytes)
{
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = m;
    cfg.cacheBytes = 2048;
    cfg.lineBytes = line_bytes;
    cfg.maxCycles = 400'000'000ull;
    return cfg;
}

/**
 * Run the workload on a machine, drain residual protocol traffic, then
 * check cache/directory agreement. Returns (cycles, memory image hash).
 */
std::pair<Tick, std::uint64_t>
runAndCheck(workloads::Workload &w, const core::MachineConfig &cfg,
            Addr hash_limit)
{
    core::Machine machine(cfg);
    w.setup(machine);
    const Tick end = machine.run();
    w.verify(machine);

    // Quiesce: let in-flight writebacks and residual events land.
    machine.eventQueue().run();

    // Invariant: a Modified line in a cache must be registered Exclusive
    // with that owner; a Shared line must appear in the presence vector.
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        for (const auto &[line, state] : machine.cache(p).validLines()) {
            const unsigned mod =
                static_cast<unsigned>((line / cfg.lineBytes) %
                                      cfg.numModules);
            const auto dstate = machine.module(mod).dirState(line);
            if (state == mem::Cache::LineState::Modified) {
                EXPECT_EQ(dstate,
                          mem::MemoryModule::DirState::Exclusive)
                    << "line " << std::hex << line;
                EXPECT_EQ(machine.module(mod).ownerOf(line), p);
            } else {
                EXPECT_EQ(dstate, mem::MemoryModule::DirState::Shared)
                    << "line " << std::hex << line;
                EXPECT_TRUE(machine.module(mod).presenceMask(line) &
                            (std::uint64_t(1) << p));
            }
        }
        // No unfinished transactions anywhere.
        EXPECT_EQ(machine.proc(p).outstandingRefs(), 0u);
        EXPECT_FALSE(machine.proc(p).releaseInFlight());
    }
    for (unsigned mo = 0; mo < cfg.numModules; ++mo)
        EXPECT_EQ(machine.module(mo).openTransactions(), 0u);

    // FNV-style hash of the functional memory image.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (Addr a = 0; a < hash_limit; a += 8) {
        h ^= machine.memory().readU64(a);
        h *= 0x100000001b3ull;
    }
    return {end, h};
}

} // namespace

class ModelsByLine
    : public ::testing::TestWithParam<std::tuple<Model, unsigned>>
{};

TEST_P(ModelsByLine, GaussSameResultEveryModel)
{
    const auto [model, line] = GetParam();
    workloads::GaussParams gp;
    gp.n = 32;
    workloads::GaussWorkload w(gp);
    auto [cycles, hash] = runAndCheck(w, config(model, line), 32 * 32 * 8);
    // Compare against SC1 on the same line size.
    workloads::GaussWorkload w0(gp);
    auto [c0, h0] = runAndCheck(w0, config(Model::SC1, line), 32 * 32 * 8);
    EXPECT_EQ(hash, h0);
    (void)cycles;
    (void)c0;
}

TEST_P(ModelsByLine, QsortSortsAndQuiesces)
{
    const auto [model, line] = GetParam();
    workloads::QsortParams qp;
    qp.n = 3000;
    qp.parallelCutoff = 1024;
    workloads::QsortWorkload w(qp);
    auto [cycles, hash] = runAndCheck(w, config(model, line), 0);
    EXPECT_GT(cycles, 0u);
    (void)hash;
}

TEST_P(ModelsByLine, RelaxSameResultEveryModel)
{
    const auto [model, line] = GetParam();
    workloads::RelaxParams rp;
    rp.interior = 24;
    rp.iterations = 2;
    const Addr limit = 26 * 26 * 8 * 2;
    workloads::RelaxWorkload w(rp);
    auto [cycles, hash] = runAndCheck(w, config(model, line), limit);
    workloads::RelaxWorkload w0(rp);
    auto [c0, h0] = runAndCheck(w0, config(Model::SC1, line), limit);
    EXPECT_EQ(hash, h0);
    (void)cycles;
    (void)c0;
}

TEST_P(ModelsByLine, PsimDeliversAndQuiesces)
{
    const auto [model, line] = GetParam();
    workloads::PsimParams pp;
    pp.simProcs = 8;
    pp.packetsPerProc = 24;
    workloads::PsimWorkload w(pp);
    auto [cycles, hash] = runAndCheck(w, config(model, line), 0);
    EXPECT_GT(cycles, 0u);
    (void)hash;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelsByLine,
    ::testing::Combine(::testing::ValuesIn(core::allModels),
                       ::testing::Values(8u, 16u, 64u)),
    [](const auto &info) {
        return std::string(core::modelName(std::get<0>(info.param))) +
               "_line" + std::to_string(std::get<1>(info.param));
    });

TEST(Determinism, SameConfigSameCycleCount)
{
    auto run = []() {
        workloads::SyntheticParams p;
        p.refsPerProc = 1500;
        p.lockEvery = 40;
        p.barrierEvery = 300;
        workloads::SyntheticWorkload w(p);
        return workloads::runWorkload(w, config(Model::RC, 16))
            .metrics.cycles;
    };
    const Tick a = run();
    const Tick b = run();
    EXPECT_EQ(a, b);
}

TEST(PerformanceSanity, RelaxedModelsWinOnOverlapFriendlyStreams)
{
    workloads::SyntheticParams p;
    p.refsPerProc = 4000;
    p.storeFraction = 0.3;
    p.privateWords = 4096;  // much larger than the cache: miss-heavy
    p.execBetween = 3;
    std::map<Model, Tick> cycles;
    for (Model m : {Model::SC1, Model::WO1, Model::WO2, Model::RC}) {
        workloads::SyntheticWorkload w(p);
        cycles[m] =
            workloads::runWorkload(w, config(m, 16)).metrics.cycles;
    }
    EXPECT_LT(cycles[Model::WO1], cycles[Model::SC1]);
    EXPECT_LT(cycles[Model::RC], cycles[Model::SC1]);
    // WO2 is WO1 plus bypassing; it must stay in the same neighbourhood
    // (the paper found bypassing worth roughly nothing).
    const double wo2_vs_wo1 =
        static_cast<double>(cycles[Model::WO2]) /
        static_cast<double>(cycles[Model::WO1]);
    EXPECT_GT(wo2_vs_wo1, 0.9);
    EXPECT_LT(wo2_vs_wo1, 1.1);
}

TEST(PerformanceSanity, BlockingLoadsNeverBeatNonBlocking)
{
    workloads::SyntheticParams p;
    p.refsPerProc = 4000;
    p.storeFraction = 0.1;
    p.privateWords = 4096;
    p.execBetween = 2;
    auto run = [&](Model m) {
        workloads::SyntheticWorkload w(p);
        return workloads::runWorkload(w, config(m, 16)).metrics.cycles;
    };
    EXPECT_LE(run(Model::WO1), run(Model::BWO1));
}
