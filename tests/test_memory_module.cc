/**
 * @file
 * Unit tests for the directory/memory module: state transitions,
 * transaction blocking, invalidation-ack collection, recalls, the
 * writeback-vs-recall race, and DRAM occupancy timing.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/memory_module.hh"
#include "mem/outbox.hh"
#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "sim/event_queue.hh"

using namespace mcsim;
using mem::CoherenceMsg;
using mem::MemoryModule;
using mem::MsgKind;
using mem::NetMsg;

namespace
{

/** One module; outgoing messages captured instead of routed to caches. */
struct DirHarness
{
    EventQueue queue;
    net::OmegaNetwork<CoherenceMsg> respNet;
    net::IfaceBuffer<CoherenceMsg> respBuf;
    mem::Outbox outbox;
    MemoryModule module;

    struct Sent
    {
        MsgKind kind;
        Addr line;
        ProcId proc;
        Tick at;
    };
    std::vector<Sent> sent;

    explicit DirHarness(unsigned line_bytes = 16)
        : respNet(queue, 16, 4,
                  [this](NetMsg &&m) {
                      sent.push_back({m.payload.kind, m.payload.lineAddr,
                                      m.payload.proc, queue.now()});
                  }),
          respBuf(queue, respNet, 4, false), outbox(respBuf, false),
          module(queue, 0,
                 mem::MemoryParams{line_bytes, 7, 16}, outbox)
    {}

    void
    request(MsgKind kind, Addr line, ProcId proc, Tick when = 0)
    {
        queue.schedule(std::max(when, queue.now()), [this, kind, line,
                                                     proc]() {
            NetMsg m;
            m.src = proc;
            m.dst = 0;
            m.bytes = mem::messageBytes(kind, 16);
            m.payload = CoherenceMsg{kind, line, proc};
            module.handleRequest(std::move(m));
        });
    }

    void settle() { queue.run(); }

    /** Sent messages of one kind. */
    std::vector<Sent>
    ofKind(MsgKind kind) const
    {
        std::vector<Sent> out;
        for (const auto &s : sent)
            if (s.kind == kind)
                out.push_back(s);
        return out;
    }
};

} // namespace

TEST(MemoryModule, GetSharedFromUncached)
{
    DirHarness h;
    h.request(MsgKind::GetShared, 0x100, 3);
    h.settle();
    ASSERT_EQ(h.sent.size(), 1u);
    EXPECT_EQ(h.sent[0].kind, MsgKind::DataReplyShared);
    EXPECT_EQ(h.sent[0].proc, 3u);
    EXPECT_EQ(h.module.dirState(0x100), MemoryModule::DirState::Shared);
    EXPECT_EQ(h.module.presenceMask(0x100), 1u << 3);
    EXPECT_EQ(h.module.openTransactions(), 0u);
}

TEST(MemoryModule, FirstWordTimingSevenCyclesPlusBuffer)
{
    DirHarness h;
    h.request(MsgKind::GetShared, 0x100, 1, 10);
    h.settle();
    ASSERT_EQ(h.sent.size(), 1u);
    // Request delivered at t=10; first word at 17; buffer link +1; two
    // stages +2 => capture (delivery) at 20.
    EXPECT_EQ(h.sent[0].at, 20u);
}

TEST(MemoryModule, DramOccupancySerializesBackToBack)
{
    DirHarness h(64);  // 8 words per line
    h.request(MsgKind::GetShared, 0x000, 1, 10);
    h.request(MsgKind::GetShared, 0x040, 2, 10);
    h.settle();
    auto replies = h.ofKind(MsgKind::DataReplyShared);
    ASSERT_EQ(replies.size(), 2u);
    // Second access starts when the first's 7+8 busy window ends.
    EXPECT_GE(replies[1].at - replies[0].at, 8u);
    EXPECT_EQ(h.module.stats().busyCycles, 2u * (7 + 8));
}

TEST(MemoryModule, SharersAccumulate)
{
    DirHarness h;
    h.request(MsgKind::GetShared, 0x200, 0);
    h.request(MsgKind::GetShared, 0x200, 5);
    h.settle();
    EXPECT_EQ(h.module.presenceMask(0x200), (1u << 0) | (1u << 5));
}

TEST(MemoryModule, GetExclusiveInvalidatesSharers)
{
    DirHarness h;
    h.request(MsgKind::GetShared, 0x300, 1);
    h.request(MsgKind::GetShared, 0x300, 2);
    h.settle();
    h.request(MsgKind::GetExclusive, 0x300, 3);
    h.settle();
    // Two invalidates sent; the reply waits for both acks.
    auto invs = h.ofKind(MsgKind::Invalidate);
    ASSERT_EQ(invs.size(), 2u);
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyExclusive).size(), 0u);
    EXPECT_EQ(h.module.openTransactions(), 1u);

    h.request(MsgKind::InvAck, 0x300, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyExclusive).size(), 0u);
    h.request(MsgKind::InvAck, 0x300, 2);
    h.settle();
    ASSERT_EQ(h.ofKind(MsgKind::DataReplyExclusive).size(), 1u);
    EXPECT_EQ(h.module.dirState(0x300), MemoryModule::DirState::Exclusive);
    EXPECT_EQ(h.module.stats().invalidatesSent, 2u);
}

TEST(MemoryModule, RequesterAmongSharersNotInvalidated)
{
    DirHarness h;
    h.request(MsgKind::GetShared, 0x400, 1);
    h.settle();
    // Proc 1 upgrades (self-invalidated its S copy, sends GetExclusive):
    // no Invalidate should go anywhere.
    h.request(MsgKind::GetExclusive, 0x400, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::Invalidate).size(), 0u);
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyExclusive).size(), 1u);
}

TEST(MemoryModule, GetSharedRecallsDirtyOwner)
{
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0x500, 1);
    h.settle();
    h.request(MsgKind::GetShared, 0x500, 2);
    h.settle();
    ASSERT_EQ(h.ofKind(MsgKind::RecallShared).size(), 1u);
    EXPECT_EQ(h.ofKind(MsgKind::RecallShared)[0].proc, 1u);
    EXPECT_EQ(h.module.openTransactions(), 1u);
    // Owner flushes; requester gets data; owner stays a sharer.
    h.request(MsgKind::FlushData, 0x500, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyShared).size(), 1u);
    EXPECT_EQ(h.module.dirState(0x500), MemoryModule::DirState::Shared);
    EXPECT_EQ(h.module.presenceMask(0x500), (1u << 1) | (1u << 2));
}

TEST(MemoryModule, GetExclusiveRecallsAndTransfersOwnership)
{
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0x600, 1);
    h.settle();
    h.request(MsgKind::GetExclusive, 0x600, 2);
    h.settle();
    ASSERT_EQ(h.ofKind(MsgKind::RecallExclusive).size(), 1u);
    h.request(MsgKind::FlushData, 0x600, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyExclusive).size(), 2u);
    EXPECT_EQ(h.module.dirState(0x600), MemoryModule::DirState::Exclusive);
    EXPECT_EQ(h.module.presenceMask(0x600), 1u << 2);
}

TEST(MemoryModule, WritebackReturnsLineToMemory)
{
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0x700, 1);
    h.settle();
    h.request(MsgKind::Writeback, 0x700, 1);
    h.settle();
    EXPECT_EQ(h.module.dirState(0x700), MemoryModule::DirState::Uncached);
    EXPECT_EQ(h.module.stats().writebacks, 1u);
}

TEST(MemoryModule, WritebackRecallRaceSatisfiesRequester)
{
    // Owner's eviction writeback and a recall (triggered by another GetS)
    // cross on the wire: the directory must use the writeback as the
    // recall data and ignore the RecallStale.
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0x800, 1);
    h.settle();
    h.request(MsgKind::GetShared, 0x800, 2);  // triggers recall to 1
    h.settle();
    ASSERT_EQ(h.ofKind(MsgKind::RecallShared).size(), 1u);
    // Owner already evicted: its writeback arrives, then the stale notice.
    h.request(MsgKind::Writeback, 0x800, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyShared).size(), 1u);
    EXPECT_EQ(h.module.presenceMask(0x800), 1u << 2);  // owner dropped out
    h.request(MsgKind::RecallStale, 0x800, 1);
    h.settle();  // must be absorbed quietly
    EXPECT_EQ(h.module.openTransactions(), 0u);
}

TEST(MemoryModule, OwnerReRequestWaitsForOwnWriteback)
{
    // Owner evicts (writeback in flight) then re-requests the same line;
    // the directory sees GetShared from the registered owner and waits.
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0x900, 1);
    h.settle();
    h.request(MsgKind::GetShared, 0x900, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::RecallShared).size(), 0u);
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyShared).size(), 0u);
    EXPECT_EQ(h.module.openTransactions(), 1u);
    h.request(MsgKind::Writeback, 0x900, 1);
    h.settle();
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyShared).size(), 1u);
    EXPECT_EQ(h.module.dirState(0x900), MemoryModule::DirState::Shared);
}

TEST(MemoryModule, RequestsQueueBehindOpenTransaction)
{
    DirHarness h;
    h.request(MsgKind::GetExclusive, 0xa00, 1);
    h.settle();
    // Two competing requests while a recall is open.
    h.request(MsgKind::GetShared, 0xa00, 2);
    h.settle();
    h.request(MsgKind::GetShared, 0xa00, 3);
    h.settle();
    EXPECT_EQ(h.module.stats().queuedRequests, 1u);
    h.request(MsgKind::FlushData, 0xa00, 1);
    h.settle();
    // First waiter served from Shared state directly.
    EXPECT_EQ(h.ofKind(MsgKind::DataReplyShared).size(), 2u);
    EXPECT_EQ(h.module.presenceMask(0xa00),
              (1u << 1) | (1u << 2) | (1u << 3));
}

TEST(MemoryModule, RejectsBadConfig)
{
    mem::MemoryParams p;
    p.lineBytes = 10;
    EXPECT_THROW(p.validate(), FatalError);
    p = mem::MemoryParams{};
    p.numProcs = 65;
    EXPECT_THROW(p.validate(), FatalError);
}
