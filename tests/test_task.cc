/**
 * @file
 * Unit tests for the coroutine task types (SimTask, SubTask): lifecycle,
 * nesting with symmetric transfer, value passing, and exception flow.
 */

#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>
#include <vector>

#include "sim/task.hh"

using namespace mcsim;

namespace
{

/** A minimal awaitable that records its continuation for manual resume. */
struct ManualGate
{
    std::coroutine_handle<> waiting;

    struct Awaiter
    {
        ManualGate &gate;
        bool await_ready() const { return false; }
        void await_suspend(std::coroutine_handle<> h) { gate.waiting = h; }
        void await_resume() const {}
    };

    Awaiter wait() { return Awaiter{*this}; }

    void
    open()
    {
        auto h = waiting;
        waiting = nullptr;
        h.resume();
    }
};

SimTask
simpleTask(int &progress, ManualGate &gate)
{
    progress = 1;
    co_await gate.wait();
    progress = 2;
}

SimTask
throwingTask(ManualGate &gate)
{
    co_await gate.wait();
    throw std::runtime_error("boom");
}

SubTask<int>
valueRoutine(ManualGate &gate)
{
    co_await gate.wait();
    co_return 42;
}

SubTask<>
voidRoutine(std::vector<int> &log, ManualGate &gate)
{
    log.push_back(1);
    co_await gate.wait();
    log.push_back(2);
}

SimTask
nestedTask(std::vector<int> &log, ManualGate &gate)
{
    log.push_back(10);
    co_await voidRoutine(log, gate);
    log.push_back(11);
    const int v = co_await valueRoutine(gate);
    log.push_back(v);
}

SubTask<>
innerThrow(ManualGate &gate)
{
    co_await gate.wait();
    throw std::runtime_error("inner");
}

SimTask
catchingTask(bool &caught, ManualGate &gate)
{
    try {
        co_await innerThrow(gate);
    } catch (const std::runtime_error &) {
        caught = true;
    }
}

} // namespace

TEST(SimTask, DoesNotStartUntilResumed)
{
    int progress = 0;
    ManualGate gate;
    SimTask t = simpleTask(progress, gate);
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(t.done());
    EXPECT_EQ(progress, 0);
    t.resume();
    EXPECT_EQ(progress, 1);
    EXPECT_FALSE(t.done());
    gate.open();
    EXPECT_EQ(progress, 2);
    EXPECT_TRUE(t.done());
}

TEST(SimTask, MoveTransfersOwnership)
{
    int progress = 0;
    ManualGate gate;
    SimTask a = simpleTask(progress, gate);
    SimTask b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.resume();
    EXPECT_EQ(progress, 1);
}

TEST(SimTask, ExceptionCapturedAndRethrown)
{
    ManualGate gate;
    SimTask t = throwingTask(gate);
    t.resume();
    gate.open();  // runs to the throw
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.rethrowIfFailed(), std::runtime_error);
}

TEST(SubTask, NestedRoutinesResumeTransitively)
{
    std::vector<int> log;
    ManualGate gate;
    SimTask t = nestedTask(log, gate);
    t.resume();
    EXPECT_EQ(log, (std::vector<int>{10, 1}));
    gate.open();  // completes voidRoutine, continues into valueRoutine
    EXPECT_EQ(log, (std::vector<int>{10, 1, 2, 11}));
    gate.open();  // completes valueRoutine with 42
    EXPECT_EQ(log, (std::vector<int>{10, 1, 2, 11, 42}));
    EXPECT_TRUE(t.done());
}

TEST(SubTask, ExceptionPropagatesToParent)
{
    bool caught = false;
    ManualGate gate;
    SimTask t = catchingTask(caught, gate);
    t.resume();
    gate.open();
    EXPECT_TRUE(caught);
    EXPECT_TRUE(t.done());
    EXPECT_NO_THROW(t.rethrowIfFailed());
}

TEST(SimTask, DestructionOfSuspendedTaskIsClean)
{
    int progress = 0;
    ManualGate gate;
    {
        SimTask t = simpleTask(progress, gate);
        t.resume();
        // t destroyed while suspended at the gate.
    }
    EXPECT_EQ(progress, 1);
}
