/**
 * @file
 * The simulated processor: a RISC-like core that executes a workload
 * coroutine and applies the stall rules of the configured consistency
 * model (paper sections 3.2 and 5.1).
 *
 * Workloads issue abstract instructions by co_awaiting the factory methods
 * below. Non-blocking (delayed) loads are modeled by splitting a load into
 * issue (load()) and register read (use()); the processor keeps a register
 * scoreboard and stalls a use() until the value is available, exactly the
 * interlock the paper describes. All shared-data values are carried
 * functionally: data loads/stores execute against FunctionalMemory at
 * issue, synchronization operations at their timed completion (so lock
 * handoffs serialize in simulated-time order).
 */

#ifndef MCSIM_CPU_PROCESSOR_HH
#define MCSIM_CPU_PROCESSOR_HH

#include <bit>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/consistency.hh"
#include "mem/cache.hh"
#include "mem/functional_memory.hh"
#include "obs/stall.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace mcsim::check
{
class Checker;
} // namespace mcsim::check

namespace mcsim::axiom
{
class TraceRecorder;
} // namespace mcsim::axiom

namespace mcsim::cpu
{

/** Per-processor configuration. */
struct ProcParams
{
    ProcId id = 0;
    core::ModelParams model{};
    /** Delayed-load latency in cycles (paper: 4; section 5.3: 2). */
    unsigned loadDelay = 4;
    /** Branch delay in cycles (tracks loadDelay in the paper). */
    unsigned branchDelay = 4;
};

/** Per-processor execution statistics. */
struct ProcStats
{
    std::uint64_t instructions = 0;
    std::uint64_t execCycles = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t syncLoads = 0;
    std::uint64_t syncRmws = 0;
    std::uint64_t syncStores = 0;
    std::uint64_t fences = 0;

    /** Stalled at issue by the single-outstanding (SC) rule. */
    std::uint64_t issueStallCycles = 0;
    /** Stalled draining outstanding refs at a sync point (WO). */
    std::uint64_t drainStallCycles = 0;
    /** Stalled on the register interlock (or blocking-load wait). */
    std::uint64_t useStallCycles = 0;
    /** Stalled waiting for a sync operation itself to complete. */
    std::uint64_t syncStallCycles = 0;
    /** Stalled because the cache had no resources (MSHR/way conflict). */
    std::uint64_t blockedStallCycles = 0;

    std::uint64_t releasesDeferred = 0;
    Tick finishedAt = 0;

    /**
     * Exact cycle attribution (src/obs/): unlike the per-rule counters
     * above -- which mirror the paper's charges and overlap -- this
     * tiles [0, finishedAt) exactly: busy + every stall cause ==
     * finishedAt.
     */
    obs::StallBreakdown breakdown;

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        breakdown.addTo(out, prefix);
        out.add(prefix + "instructions", static_cast<double>(instructions));
        out.add(prefix + "exec_cycles", static_cast<double>(execCycles));
        out.add(prefix + "loads", static_cast<double>(loads));
        out.add(prefix + "stores", static_cast<double>(stores));
        out.add(prefix + "sync_loads", static_cast<double>(syncLoads));
        out.add(prefix + "sync_rmws", static_cast<double>(syncRmws));
        out.add(prefix + "sync_stores", static_cast<double>(syncStores));
        out.add(prefix + "fences", static_cast<double>(fences));
        out.add(prefix + "issue_stall_cycles",
                static_cast<double>(issueStallCycles));
        out.add(prefix + "drain_stall_cycles",
                static_cast<double>(drainStallCycles));
        out.add(prefix + "use_stall_cycles",
                static_cast<double>(useStallCycles));
        out.add(prefix + "sync_stall_cycles",
                static_cast<double>(syncStallCycles));
        out.add(prefix + "blocked_stall_cycles",
                static_cast<double>(blockedStallCycles));
        out.add(prefix + "releases_deferred",
                static_cast<double>(releasesDeferred));
    }
};

/** Reinterpret helpers for carrying doubles through 64-bit registers. @{ */
inline std::uint64_t asBits(double v) { return std::bit_cast<std::uint64_t>(v); }
inline double asF64(std::uint64_t v) { return std::bit_cast<double>(v); }
/** @} */

/**
 * One simulated processor.
 */
class Processor
{
  public:
    /** Abstract instruction kinds issued by workloads. */
    enum class OpKind : std::uint8_t
    {
        Exec,       ///< register-register computation, N cycles
        Load,       ///< non-blocking load; result is a register token
        Use,        ///< read a register token; result is the loaded value
        LoadUse,    ///< load followed immediately by its use
        Store,      ///< non-blocking store
        SyncLoad,   ///< strongly-ordered load (acquire under RC)
        SyncRmw,    ///< test-and-set (acquire under RC)
        SyncStore,  ///< sync write (release under RC)
        Fence,      ///< SYNC instruction
    };

    /** One abstract instruction. */
    struct Op
    {
        OpKind kind{OpKind::Exec};
        Addr addr = 0;
        std::uint64_t value = 0;
        std::uint32_t cycles = 0;
        std::uint64_t token = 0;
        /** Functional access width in bytes (4 or 8); timing unaffected. */
        std::uint8_t width = 8;
        /** Loads only: fetch with ownership (read-exclusive). */
        bool own = false;
    };

    /**
     * Observer of the workload's instruction stream at the issue
     * boundary (src/trace/ capture). Sees every op exactly once, in
     * program order, before any stall rule applies; purely
     * observational, so wiring one can never change timing.
     */
    class IssueSink
    {
      public:
        virtual ~IssueSink() = default;
        virtual void onIssue(const Op &op) = 0;
    };

    /** Awaitable returned by all instruction factories. */
    class [[nodiscard]] Awaiter
    {
      public:
        Awaiter(Processor &p, Op op) : proc(p), op(op) {}
        bool await_ready() const { return false; }

        bool
        await_suspend(std::coroutine_handle<> h)
        {
            return proc.beginOp(op, h);
        }

        std::uint64_t await_resume() const { return proc.opResult; }

      private:
        Processor &proc;
        Op op;
    };

    Processor(EventQueue &eq, const ProcParams &params, mem::Cache &cache,
              mem::FunctionalMemory &memory);

    Processor(const Processor &) = delete;
    Processor &operator=(const Processor &) = delete;

    /** Bind the workload and schedule its first instruction at tick 0. */
    void start(SimTask &&t);

    /** True once the workload coroutine has returned. */
    bool done() const { return finished; }

    /** Invoked when the workload finishes (Machine bookkeeping). */
    void setDoneHandler(std::function<void()> fn) { doneFn = std::move(fn); }

    /** Instruction factories (co_await the result). @{ */
    Awaiter exec(std::uint32_t cycles) { return {*this, Op{OpKind::Exec, 0, 0, cycles, 0}}; }
    Awaiter branch() { return exec(cfg.branchDelay); }
    Awaiter load(Addr a) { return {*this, Op{OpKind::Load, a, 0, 0, 0}}; }
    Awaiter use(std::uint64_t token) { return {*this, Op{OpKind::Use, 0, 0, 0, token}}; }
    Awaiter loadUse(Addr a) { return {*this, Op{OpKind::LoadUse, a, 0, 0, 0}}; }
    Awaiter store(Addr a, std::uint64_t v) { return {*this, Op{OpKind::Store, a, v, 0, 0}}; }
    /** 32-bit variants (the paper's benchmarks mix int and double data). @{ */
    Awaiter load32(Addr a) { return {*this, Op{OpKind::Load, a, 0, 0, 0, 4}}; }
    Awaiter loadUse32(Addr a) { return {*this, Op{OpKind::LoadUse, a, 0, 0, 0, 4}}; }
    Awaiter store32(Addr a, std::uint32_t v) { return {*this, Op{OpKind::Store, a, v, 0, 0, 4}}; }
    /** @} */
    /** Read-with-ownership variants: fetch the line exclusive so a later
     *  store hits instead of self-invalidating (paper section 3.3's
     *  "usefulness of a read with ownership request"). @{ */
    Awaiter loadOwn(Addr a) { return {*this, Op{OpKind::Load, a, 0, 0, 0, 8, true}}; }
    Awaiter loadUseOwn(Addr a) { return {*this, Op{OpKind::LoadUse, a, 0, 0, 0, 8, true}}; }
    /** @} */
    Awaiter syncLoad(Addr a) { return {*this, Op{OpKind::SyncLoad, a, 0, 0, 0}}; }
    Awaiter testAndSet(Addr a) { return {*this, Op{OpKind::SyncRmw, a, 0, 0, 0}}; }
    Awaiter syncStore(Addr a, std::uint64_t v) { return {*this, Op{OpKind::SyncStore, a, v, 0, 0}}; }
    Awaiter fence() { return {*this, Op{OpKind::Fence, 0, 0, 0, 0}}; }
    /** @} */

    /** Direct functional-memory access (initialization / verification). */
    mem::FunctionalMemory &memory() { return mem; }

    Tick now() const { return queue.now(); }
    ProcId id() const { return cfg.id; }
    const ProcParams &params() const { return cfg; }
    const ProcStats &stats() const { return procStats; }

    /** Shared accesses currently outstanding (tests/diagnostics). */
    unsigned outstandingRefs() const { return outstanding; }
    bool releaseInFlight() const { return releasePending; }

    /** Wire the invariant checker (Machine; nullptr = no checking). */
    void setChecker(check::Checker *c) { checker = c; }

    /** Wire the axiomatic trace recorder (Machine; nullptr = off). */
    void setRecorder(axiom::TraceRecorder *r) { recorder = r; }

    /** Wire the event tracer (Machine; nullptr = no tracing). */
    void setTracer(obs::Tracer *t) { tracer = t; }

    /** Wire the issue-boundary observer (trace capture; nullptr = off). */
    void setIssueSink(IssueSink *s) { issueSink = s; }

    /**
     * Fault injection (tests only): ignore the drain gate at the next sync
     * operation that would stall on it, issuing the sync op with references
     * still outstanding -- the ordering linter must catch this.
     */
    void injectSkipNextDrainForTest() { skipNextDrain = true; }

    /**
     * Fault injection (tests only): persistently disable every
     * sync-ordering wait -- the WO drain-before-sync gate, the RC
     * deferred-release wait, and the fence drain -- yielding a machine
     * that issues syncs and releases while data references are still
     * outstanding. The axiomatic checker must reject its traces.
     */
    void injectDisableSyncOrderingForTest() { syncOrderingDisabled = true; }

  private:
    friend class Awaiter;

    /** Why the current op is suspended. */
    enum class WaitKind : std::uint8_t
    {
        None,        ///< scheduled resume, nothing to check
        Gated,       ///< waiting for an issue gate to clear
        Completion,  ///< waiting for a specific cache transaction
        Register,    ///< use() waiting for an unknown-latency load
    };

    enum class Gate : std::uint8_t
    {
        None,
        SingleOutstanding,  ///< SC rule
        Drain,              ///< WO sync point / fence
        ReleaseBusy,        ///< RC: a release is already pending
        CacheBlocked,       ///< no MSHR / way conflict
    };

    struct TokenState
    {
        std::uint64_t value = 0;
        Tick ready = maxTick;
        bool readyKnown = false;
    };

    struct InFlight
    {
        OpKind kind{OpKind::Load};
        Addr addr = 0;
        std::uint64_t value = 0;
        std::uint64_t token = 0;
        bool releaseTagged = false;
        bool isRelease = false;
        /** Outstanding slot already freed at buffer hand-off (SC). */
        bool earlyReleased = false;
        /** Trace event awaiting its perform timestamp (recorder). */
        std::uint32_t traceId = noTraceId;
    };

    /** InFlight::traceId when recording is off. */
    static constexpr std::uint32_t noTraceId = UINT32_MAX;

    std::uint64_t readMem(Addr addr, std::uint8_t width) const;
    void writeMem(Addr addr, std::uint64_t value, std::uint8_t width);

    struct Active
    {
        Op op;
        std::coroutine_handle<> h;
        Tick startTick = 0;
        WaitKind wait = WaitKind::None;
        Gate gate = Gate::None;
        Tick gateStart = 0;
        /** Stall cause the open gate span is charged to (set when the
         *  span starts, so a later completion cannot re-classify it). */
        obs::StallCause gateCause = obs::StallCause::LoadMiss;
        /** Start of the current Completion/Register wait (attribution:
         *  the gate spans already cover [startTick, issue)). */
        Tick waitStart = 0;
        std::uint64_t waitCookie = 0;
        std::uint64_t waitToken = 0;
        bool prefetched = false;
    };

    /** Entry from Awaiter::await_suspend; true means stay suspended. */
    bool beginOp(const Op &op, std::coroutine_handle<> h);

    /** (Re)try issuing the active memory op; updates wait/gate state. */
    void attemptMem();

    /** Cache access result handling. @{ */
    void handleHit();
    void handleIssued(std::uint64_t cookie);
    /** @} */

    /** Cache transaction completion (cookie). */
    void onCompletion(std::uint64_t cookie);
    /** Cache resource-retry notification. */
    void onRetry();

    /** RC release machinery. @{ */
    void deferRelease(const Op &op);
    void tryIssueRelease();
    /** @} */

    /** Charge gate-stall time and clear the gate. */
    void clearGate();

    /** Exact attribution charges (ProcStats::breakdown + tracer). @{ */
    void chargeBusy(std::uint64_t cycles);
    void chargeStall(obs::StallCause cause, Tick from, Tick until);
    /** The cause a gate span opening now is charged to (per-model). */
    obs::StallCause gateCauseFor(Gate gate) const;
    /** @} */

    /** Finish the active op: resume at @p when with @p result. */
    void finishAt(Tick when, std::uint64_t result);
    /** Finish at @p when with a result computed at resume time. */
    void finishAtEval(Tick when, std::function<std::uint64_t()> eval);
    /** Resume the suspended coroutine right now with @p result. */
    void resumeNow(std::uint64_t result);
    void afterResume();

    mem::AccessType accessTypeFor(OpKind kind) const;
    void countOp(const Op &op);

    EventQueue &queue;
    ProcParams cfg;
    mem::Cache &cache;
    mem::FunctionalMemory &mem;

    SimTask task;
    bool started = false;
    bool finished = false;
    std::function<void()> doneFn;

    std::optional<Active> active;
    std::uint64_t opResult = 0;

    std::unordered_map<std::uint64_t, TokenState> tokens;
    std::unordered_map<std::uint64_t, InFlight> inFlight;
    std::uint64_t nextToken = 1;
    std::uint64_t nextCookie = 1;
    unsigned outstanding = 0;

    /** Tracing (enabled via MCSIM_TRACE env var): sync-op timeline. */
    static bool traceEnabled();
    void trace(const char *what, Addr addr, std::uint64_t value) const;

    /** RC release state: at most one pending release at a time. */
    bool releasePending = false;
    std::optional<Op> deferredRelease;  ///< release not yet issued to cache
    unsigned releaseCounter = 0;        ///< tagged refs still outstanding

    check::Checker *checker = nullptr;
    axiom::TraceRecorder *recorder = nullptr;
    obs::Tracer *tracer = nullptr;
    IssueSink *issueSink = nullptr;
    /** Trace id of the deferred RC release (at most one pending). */
    std::uint32_t releaseTraceId = noTraceId;
    bool skipNextDrain = false;  ///< fault injection, tests only
    bool syncOrderingDisabled = false;  ///< fault injection, tests only

    ProcStats procStats;
};

} // namespace mcsim::cpu

#endif // MCSIM_CPU_PROCESSOR_HH
