/**
 * @file
 * Bump allocator for laying benchmark data out in the shared segment.
 *
 * Lines interleave across memory modules by address, so layout decisions
 * directly shape module utilization (Psim's hot spots) and false sharing.
 * Synchronization variables are always allocated in lines of their own.
 */

#ifndef MCSIM_WORKLOADS_LAYOUT_HH
#define MCSIM_WORKLOADS_LAYOUT_HH

#include <cstddef>

#include "cpu/sync.hh"
#include "sim/types.hh"

namespace mcsim::workloads
{

/** Sequential allocator over the simulated shared address space. */
class SharedLayout
{
  public:
    /**
     * @param line_bytes machine line size (alignment unit for sync vars)
     * @param base first usable address
     */
    explicit SharedLayout(unsigned line_bytes, Addr base = 64);

    /** Allocate @p bytes aligned to @p align (power of two). */
    Addr alloc(std::size_t bytes, std::size_t align = 8);

    /** Allocate an array of @p n 64-bit words, line-aligned. */
    Addr allocWords(std::size_t n);

    /** Allocate a lock in a private line (no false sharing). */
    cpu::LockVar allocLock();

    /** Allocate a barrier; lock, count and sense in separate lines. */
    cpu::BarrierVar allocBarrier();

    /** Allocate a barrier of the given kind for @p n_procs processors. */
    cpu::BarrierObj allocBarrierObj(cpu::BarrierKind kind,
                                    unsigned n_procs);

    /** First unused address. */
    Addr top() const { return next; }

    unsigned lineBytes() const { return line; }

  private:
    unsigned line;
    Addr next;
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_LAYOUT_HH
