/**
 * @file
 * Minimal JSON value type with a canonical writer and a strict parser.
 *
 * The sweep engine's contract is that the same grid produces a
 * byte-identical results document no matter how many worker threads ran
 * it, so the writer is deliberately canonical: object keys keep
 * insertion order (builders insert deterministically), numbers that are
 * exactly integral print without a decimal point, and everything else
 * prints with round-trippable %.17g. No locale dependence, no
 * timestamps, no pointers.
 *
 * The parser accepts standard JSON (it reads back our own output plus
 * hand-edited golden files) and reports the first error with its byte
 * offset.
 */

#ifndef MCSIM_EXP_JSON_HH
#define MCSIM_EXP_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mcsim::exp
{

/** One JSON value (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), boolean(b) {}
    Json(double v) : kind_(Kind::Number), number(v) {}
    Json(int v) : kind_(Kind::Number), number(v) {}
    Json(unsigned v) : kind_(Kind::Number), number(v) {}
    Json(std::uint64_t v)
        : kind_(Kind::Number), number(static_cast<double>(v))
    {}
    Json(const char *s) : kind_(Kind::String), string(s) {}
    Json(std::string s) : kind_(Kind::String), string(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolean; }
    double asNumber() const { return number; }
    const std::string &asString() const { return string; }

    /** Array element count / object member count. */
    std::size_t size() const
    {
        return kind_ == Kind::Array ? items.size() : members.size();
    }

    /** Array access. @{ */
    void push(Json v) { items.push_back(std::move(v)); }
    const Json &at(std::size_t i) const { return items.at(i); }
    const std::vector<Json> &elements() const { return items; }
    std::vector<Json> &elements() { return items; }
    /** @} */

    /** Object access: insert-or-fetch, preserving insertion order. */
    Json &operator[](const std::string &key);
    /** Member lookup; nullptr when absent (or not an object). */
    const Json *find(const std::string &key) const;
    /** Members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &pairs() const
    {
        return members;
    }

    /** Canonical serialization (2-space indent, trailing newline at the
     *  top level is the caller's choice). */
    std::string dump() const;

    /**
     * Parse @p text. On failure returns a Null value and, when @p error
     * is non-null, stores a message with the byte offset of the problem.
     */
    static Json parse(const std::string &text, std::string *error);

  private:
    void write(std::string &out, int depth) const;
    static void writeEscaped(std::string &out, const std::string &s);
    static void writeNumber(std::string &out, double v);

    Kind kind_ = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<Json> items;
    std::vector<std::pair<std::string, Json>> members;
};

} // namespace mcsim::exp

#endif // MCSIM_EXP_JSON_HH
