#include "trace/generators.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace mcsim::trace
{

namespace
{

/** Shared-data region base; keeps address 0 free as a null-ish hole. */
constexpr Addr dataBase = 4096;

/** Record constructors. @{ */
Record
execRec(std::uint32_t cycles)
{
    Record r;
    r.kind = OpKind::Exec;
    r.cycles = cycles;
    return r;
}

Record
loadRec(Addr addr)
{
    Record r;
    r.kind = OpKind::Load;
    r.addr = addr;
    return r;
}

Record
useRec(std::uint64_t token)
{
    Record r;
    r.kind = OpKind::Use;
    r.token = token;
    return r;
}

Record
loadUseRec(Addr addr)
{
    Record r;
    r.kind = OpKind::LoadUse;
    r.addr = addr;
    return r;
}

Record
storeRec(Addr addr, std::uint64_t value)
{
    Record r;
    r.kind = OpKind::Store;
    r.addr = addr;
    r.value = value;
    return r;
}

Record
syncRec(OpKind kind, Addr addr, std::uint64_t value = 0)
{
    Record r;
    r.kind = kind;
    r.addr = addr;
    r.value = value;
    return r;
}
/** @} */

/**
 * One processor's emission context: the writer plus the load-token
 * counter mirroring the replaying processor's sequential numbering.
 */
struct ProcEmit
{
    TraceWriter &writer;
    unsigned proc;
    std::uint64_t emitted = 0;
    std::uint64_t nextToken = 1;

    void
    put(const Record &rec)
    {
        writer.append(proc, rec);
        emitted += 1;
    }

    /** Issue a non-blocking load; returns its replay-time token. */
    std::uint64_t
    load(Addr addr)
    {
        put(loadRec(addr));
        return nextToken++;
    }
};

/** Per-proc deterministic rng stream, decorrelated from neighbours. */
Rng
procRng(std::uint64_t seed, unsigned proc)
{
    return Rng(splitmix64(seed ^ (0x9e3779b97f4a7c15ull * (proc + 1))));
}

/**
 * Cumulative zipfian weights over n keys (weight of key i proportional
 * to 1/(i+1)^skew), scaled to uint64 fixed point for exact sampling.
 */
std::vector<std::uint64_t>
zipfCumulative(unsigned n, double skew)
{
    std::vector<double> weights(n);
    double total = 0.0;
    for (unsigned i = 0; i < n; ++i) {
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
        total += weights[i];
    }
    std::vector<std::uint64_t> cumulative(n);
    double run = 0.0;
    const double scale =
        static_cast<double>(std::uint64_t(1) << 62) / total;
    for (unsigned i = 0; i < n; ++i) {
        run += weights[i];
        cumulative[i] = static_cast<std::uint64_t>(run * scale);
    }
    cumulative[n - 1] = std::uint64_t(1) << 62;
    return cumulative;
}

unsigned
zipfSample(const std::vector<std::uint64_t> &cumulative, Rng &rng)
{
    const std::uint64_t u = rng.next() >> 2;  // uniform in [0, 2^62)
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<unsigned>(it - cumulative.begin());
}

void
emitZipf(const GeneratorParams &p, ProcEmit &out, Rng &rng,
         const std::vector<std::uint64_t> &cumulative)
{
    while (out.emitted < p.opsPerProc) {
        // A small train of overlapped references, then their uses: the
        // non-blocking-load overlap is where relaxed models pull ahead.
        const unsigned train = 1 + static_cast<unsigned>(rng.below(4));
        std::vector<std::uint64_t> trainTokens;
        for (unsigned i = 0; i < train; ++i) {
            const Addr addr =
                dataBase + Addr(zipfSample(cumulative, rng)) * 8;
            if (rng.chance(p.storeFraction))
                out.put(storeRec(addr, rng.next() & 0xFFFFu));
            else
                trainTokens.push_back(out.load(addr));
        }
        out.put(execRec(1 + static_cast<std::uint32_t>(rng.below(4))));
        for (std::uint64_t token : trainTokens)
            out.put(useRec(token));
        if (rng.chance(0.02))
            out.put(syncRec(OpKind::Fence, 0));
    }
}

void
emitBurst(const GeneratorParams &p, ProcEmit &out, Rng &rng)
{
    constexpr unsigned objectCount = 256;
    while (out.emitted < p.opsPerProc) {
        out.put(execRec(1 + static_cast<std::uint32_t>(
                                rng.below(p.idleMax))));
        const unsigned burst =
            1 + static_cast<unsigned>(rng.below(p.burstMax));
        for (unsigned r = 0; r < burst && out.emitted < p.opsPerProc;
             ++r) {
            const Addr object = dataBase + rng.below(objectCount) * 64;
            std::vector<std::uint64_t> objectTokens;
            objectTokens.reserve(p.objectWords);
            for (unsigned w = 0; w < p.objectWords; ++w)
                objectTokens.push_back(out.load(object + Addr(w) * 8));
            out.put(execRec(2));
            for (std::uint64_t token : objectTokens)
                out.put(useRec(token));
            if (rng.chance(0.3))
                out.put(storeRec(object, rng.next() & 0xFFFFu));
        }
    }
}

void
emitRing(const GeneratorParams &p, ProcEmit &out, Rng &rng)
{
    // Ring r is filled by proc r and drained by its right neighbour.
    const auto ringBase = [](unsigned ring) {
        return dataBase + Addr(ring) * 8192;
    };
    const auto flagAddr = [&](unsigned ring, unsigned slot) {
        return ringBase(ring) + Addr(slot) * 64;
    };
    const auto payloadAddr = [&](unsigned ring, unsigned slot,
                                 unsigned word) {
        return ringBase(ring) + 4096 + Addr(slot) * 64 + Addr(word) * 8;
    };
    const unsigned self = out.proc;
    const unsigned upstream = (self + p.procs - 1) % p.procs;
    std::uint64_t iteration = 0;
    while (out.emitted < p.opsPerProc) {
        const unsigned slot =
            static_cast<unsigned>(iteration % p.ringSlots);
        // Produce: payload first, then publish through the sync flag
        // (release-shaped; RC can overlap the payload stores).
        for (unsigned w = 0; w < p.payloadWords; ++w) {
            out.put(storeRec(payloadAddr(self, slot, w),
                             iteration * 8 + w));
        }
        out.put(syncRec(OpKind::SyncStore, flagAddr(self, slot),
                        iteration + 1));
        // Consume the matching slot of the upstream ring: sync flag
        // read (acquire-shaped), then the payload words.
        out.put(syncRec(OpKind::SyncLoad, flagAddr(upstream, slot)));
        for (unsigned w = 0; w < p.payloadWords; ++w)
            out.put(loadUseRec(payloadAddr(upstream, slot, w)));
        out.put(execRec(1 + static_cast<std::uint32_t>(rng.below(8))));
        iteration += 1;
    }
}

void
emitLockStorm(const GeneratorParams &p, ProcEmit &out, Rng &rng)
{
    const auto lockAddr = [](unsigned lock) {
        return dataBase + Addr(lock) * 64;
    };
    const auto dataAddr = [&](unsigned lock, unsigned word) {
        return dataBase + 16384 + Addr(lock) * 64 + Addr(word) * 8;
    };
    while (out.emitted < p.opsPerProc) {
        const unsigned lock = static_cast<unsigned>(rng.below(p.locks));
        // Test-and-test&set acquire shape (cpu/sync.hh) without the
        // data-dependent retry loop: one test read, one rmw.
        out.put(syncRec(OpKind::SyncLoad, lockAddr(lock)));
        out.put(syncRec(OpKind::SyncRmw, lockAddr(lock)));
        for (unsigned h = 0; h < p.holdOps; ++h) {
            const Addr addr = dataAddr(lock, h % 8);
            if (rng.chance(0.5))
                out.put(loadUseRec(addr));
            else
                out.put(storeRec(addr, rng.next() & 0xFFFFu));
        }
        out.put(syncRec(OpKind::SyncStore, lockAddr(lock), 0));
        out.put(execRec(1 + static_cast<std::uint32_t>(rng.below(16))));
    }
}

void
validateParams(const GeneratorParams &p)
{
    if (p.procs == 0 || (p.procs & (p.procs - 1)) != 0)
        fatal("generator procs must be a power of two (got %u)", p.procs);
    if (p.opsPerProc == 0)
        fatal("generator ops-per-proc must be positive");
    if (p.hotKeys == 0 || p.hotKeys > 65536)
        fatal("zipf hot-keys must be in [1, 65536] (got %u)", p.hotKeys);
    if (p.zipfSkew < 0.0 || p.zipfSkew > 4.0)
        fatal("zipf skew must be in [0, 4] (got %g)", p.zipfSkew);
    if (p.storeFraction < 0.0 || p.storeFraction > 1.0)
        fatal("store fraction must be in [0, 1] (got %g)",
              p.storeFraction);
    if (p.burstMax == 0 || p.idleMax == 0)
        fatal("burst/idle maxima must be positive");
    if (p.objectWords == 0 || p.objectWords > 8)
        fatal("object words must be in [1, 8] (got %u)", p.objectWords);
    if (p.ringSlots == 0 || p.ringSlots > 64)
        fatal("ring slots must be in [1, 64] (got %u)", p.ringSlots);
    if (p.payloadWords == 0 || p.payloadWords > 8)
        fatal("payload words must be in [1, 8] (got %u)",
              p.payloadWords);
    if (p.kind == Generator::Ring && p.procs < 2)
        fatal("ring generator needs at least 2 procs");
    if (p.locks == 0 || p.locks > 64)
        fatal("lock count must be in [1, 64] (got %u)", p.locks);
    if (p.holdOps == 0 || p.holdOps > 16)
        fatal("hold ops must be in [1, 16] (got %u)", p.holdOps);
    if (p.kind == Generator::Captured)
        fatal("'captured' is not a generator (use trace_runner record)");
}

} // namespace

TraceHeader
generatorHeader(const GeneratorParams &params)
{
    TraceHeader header;
    header.procCount = params.procs;
    header.seed = params.seed;
    header.generator = params.kind;
    header.source = generatorName(params.kind);
    return header;
}

void
generateTrace(const GeneratorParams &params, ByteSink &sink)
{
    validateParams(params);
    TraceWriter writer(generatorHeader(params), sink);

    std::vector<std::uint64_t> cumulative;
    if (params.kind == Generator::Zipfian)
        cumulative = zipfCumulative(params.hotKeys, params.zipfSkew);

    for (unsigned p = 0; p < params.procs; ++p) {
        ProcEmit out{writer, p};
        Rng rng = procRng(params.seed, p);
        switch (params.kind) {
          case Generator::Zipfian:
            emitZipf(params, out, rng, cumulative);
            break;
          case Generator::Bursty:
            emitBurst(params, out, rng);
            break;
          case Generator::Ring:
            emitRing(params, out, rng);
            break;
          case Generator::LockStorm:
            emitLockStorm(params, out, rng);
            break;
          case Generator::Captured:
            panic("captured traces are not generated");
        }
    }
    writer.finish();
}

std::vector<std::uint8_t>
generateTraceBytes(const GeneratorParams &params)
{
    MemorySink sink;
    generateTrace(params, sink);
    return sink.take();
}

} // namespace mcsim::trace
