/**
 * @file
 * Tests for the axiomatic layer (src/axiom/): the trace recorder's
 * schema bookkeeping, the checker's verdicts on hand-built traces (clean
 * accepted, temporal violations and happens-before cycles rejected with
 * a witness), machine-recorded traces across every model and workload,
 * and the deliberately weakened machine whose broken sync ordering the
 * checker must catch.
 */

#include <gtest/gtest.h>

#include "axiom/axiom_checker.hh"
#include "axiom/trace.hh"
#include "core/consistency.hh"
#include "core/machine.hh"
#include "sim/task.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using namespace mcsim::axiom;
using core::Model;

namespace
{

constexpr Addr dataAddr = 0x1000;
constexpr Addr flagAddr = 0x2000;

TraceConfig
recordOn()
{
    TraceConfig cfg;
    cfg.record = true;
    return cfg;
}

core::MachineConfig
tracedConfig(Model model, unsigned procs = 2)
{
    core::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.numModules = procs;
    cfg.model = model;
    cfg.cacheBytes = 1024;
    cfg.lineBytes = 16;
    cfg.trace.record = true;
    return cfg;
}

SimTask
handoffWriter(cpu::Processor &p)
{
    co_await p.store(dataAddr, 42);
    co_await p.syncStore(flagAddr, 1);
}

SimTask
handoffReader(cpu::Processor &p, std::uint64_t &seen)
{
    for (;;) {
        const std::uint64_t f = co_await p.syncLoad(flagAddr);
        if (f == 1)
            break;
        co_await p.branch();
    }
    seen = co_await p.loadUse(dataAddr);
}

/** A clean message-passing trace: every timestamp obeys every model. */
Trace
cleanHandoffTrace()
{
    TraceRecorder rec(recordOn(), 2);
    rec.recordWrite(0, dataAddr, 8, 42, 10, 20);
    const std::uint32_t wf = rec.recordPendingWrite(0, flagAddr, 1, 30);
    rec.commitWrite(wf, 40);
    const std::uint32_t rf =
        rec.recordPendingRead(1, EventKind::SyncRead, flagAddr, 50);
    rec.bindRead(rf, 1, 60);
    rec.recordRead(1, dataAddr, 8, 42, 70, 70, 70);
    return rec.finish();
}

/**
 * A message-passing trace from a machine that skipped its sync ordering:
 * the data write performs globally at tick 200, long after the flag was
 * released (50) and the reader's data read performed (80) against its
 * stale copy. Every model forbids this shape.
 */
Trace
staleReadTrace()
{
    TraceRecorder rec(recordOn(), 2);
    rec.recordWrite(0, dataAddr, 8, 1, 10, 200);
    const std::uint32_t wf = rec.recordPendingWrite(0, flagAddr, 1, 20);
    rec.commitWrite(wf, 50);
    const std::uint32_t rf =
        rec.recordPendingRead(1, EventKind::SyncRead, flagAddr, 60);
    rec.bindRead(rf, 1, 70);
    rec.recordRead(1, dataAddr, 8, 1, 80, 80, 80);
    return rec.finish();
}

} // namespace

TEST(TraceRecorder, RecordsProgramOrderAndVersionTags)
{
    TraceRecorder rec(recordOn(), 2);
    const std::uint32_t w1 = rec.recordWrite(0, dataAddr, 8, 7, 10, 10);
    const std::uint32_t w2 = rec.recordWrite(1, dataAddr, 8, 9, 20, 20);
    const std::uint32_t r1 = rec.recordRead(0, dataAddr, 8, 9, 30, 30, 30);
    const Trace &t = rec.finish();

    ASSERT_EQ(t.events.size(), 3u);
    // Per-processor program order and sequence numbers.
    ASSERT_EQ(t.byProc.size(), 2u);
    EXPECT_EQ(t.byProc[0], (std::vector<std::uint32_t>{w1, r1}));
    EXPECT_EQ(t.byProc[1], (std::vector<std::uint32_t>{w2}));
    EXPECT_EQ(t.events[w1].poSeq, 0u);
    EXPECT_EQ(t.events[r1].poSeq, 1u);
    // An 8-byte access covers two granules; versions advance per write.
    EXPECT_EQ(t.events[w1].granules(), 2u);
    EXPECT_EQ(t.events[w1].tag[0], 1u);
    EXPECT_EQ(t.events[w2].tag[0], 2u);
    EXPECT_EQ(t.events[r1].tag[0], 2u);  // read sampled after both writes
    EXPECT_FALSE(t.events[r1].pending);
    EXPECT_NE(t.events[r1].describe().find("R 0x1000"), std::string::npos);
}

TEST(TraceRecorder, PendingEventsPatchInPlace)
{
    TraceRecorder rec(recordOn(), 1);
    const std::uint32_t w =
        rec.recordPendingWrite(0, dataAddr, 5, /*issue=*/10);
    const std::uint32_t r =
        rec.recordPendingRead(0, EventKind::SyncRmw, dataAddr, 20);
    rec.commitWrite(w, 30);
    rec.bindRead(r, 5, 40);
    const Trace &t = rec.finish();

    // The sync write keeps its program-order slot but binds late.
    EXPECT_EQ(t.events[w].poSeq, 0u);
    EXPECT_EQ(t.events[w].issue, Tick{10});
    EXPECT_EQ(t.events[w].bind, Tick{30});
    EXPECT_EQ(t.events[w].perform, Tick{30});
    EXPECT_FALSE(t.events[w].pending);
    // The rmw read the sync write's version, then wrote the next one.
    EXPECT_EQ(t.events[r].value, 5u);
    EXPECT_EQ(t.events[r].tag[0], 2u);
    EXPECT_FALSE(t.events[r].pending);
}

TEST(TraceRecorder, SetOrderedPinsOrderTick)
{
    TraceRecorder rec(recordOn(), 1);
    const std::uint32_t w = rec.recordWrite(0, dataAddr, 8, 1, 10, 10);
    rec.setOrdered(w, 15);    // SC store-buffer hand-off
    rec.setPerformed(w, 90);  // global perform must not clobber it
    const Trace &t = rec.finish();
    EXPECT_EQ(t.events[w].orderTick, Tick{15});
    EXPECT_EQ(t.events[w].perform, Tick{90});
}

TEST(AxiomChecker, AcceptsCleanHandoffOnEveryModel)
{
    const Trace trace = cleanHandoffTrace();
    for (Model model : core::allModels) {
        const AxiomResult res =
            checkTrace(trace, core::modelParams(model));
        EXPECT_TRUE(res.ok) << core::modelName(model) << "\n" << res.message;
        EXPECT_TRUE(res.cycle.empty());
        EXPECT_TRUE(res.temporal.empty());
        EXPECT_GT(res.edgeCount, 0u);
        // The data read observed the data write's value at the hardware
        // level, not just functionally.
        EXPECT_EQ(res.hwValues[3], 42u) << core::modelName(model);
        EXPECT_EQ(res.hwReadsFrom[3], 0u);
    }
}

TEST(AxiomChecker, FlagsTemporalViolationUnderSc)
{
    // A second access issues while the first is still outstanding: legal
    // under the weak models, a single-outstanding violation under SC.
    TraceRecorder rec(recordOn(), 1);
    const std::uint32_t a = rec.recordRead(0, dataAddr, 8, 0, 10, 10, 10);
    rec.setPerformed(a, 100);
    rec.recordRead(0, flagAddr, 8, 0, 20, 20, 20);
    const Trace &t = rec.finish();

    const AxiomResult sc = checkTrace(t, core::modelParams(Model::SC1));
    EXPECT_FALSE(sc.ok);
    ASSERT_FALSE(sc.temporal.empty());
    EXPECT_NE(sc.temporal[0].rule.find("single-outstanding"),
              std::string::npos);
    EXPECT_NE(sc.message.find("temporal"), std::string::npos);
    // No cycle: the overlap is one-sided, which is exactly why the
    // generator edges carry timestamp obligations.
    EXPECT_TRUE(sc.cycle.empty());

    const AxiomResult wo = checkTrace(t, core::modelParams(Model::WO1));
    EXPECT_TRUE(wo.ok) << wo.message;
}

TEST(AxiomChecker, StaleReadCycleRejectedOnEveryModel)
{
    const Trace trace = staleReadTrace();
    for (Model model : core::allModels) {
        const AxiomResult res =
            checkTrace(trace, core::modelParams(model));
        EXPECT_FALSE(res.ok) << core::modelName(model);
        // The reader's data read hardware-observed the initial state.
        EXPECT_EQ(res.hwValues[3], 0u);
        EXPECT_EQ(res.hwReadsFrom[3], UINT32_MAX);
        // Minimal witness: W data -> W flag -> R flag -> R data -> W data.
        ASSERT_EQ(res.cycle.size(), 4u) << core::modelName(model);
        EXPECT_EQ(res.cycle[0].from, res.cycle[3].to);
        EXPECT_NE(res.message.find("happens-before cycle"),
                  std::string::npos);
        bool has_rf = false;
        bool has_fr = false;
        for (const HbEdge &e : res.cycle) {
            has_rf = has_rf || e.rel == EdgeRel::Rf;
            has_fr = has_fr || e.rel == EdgeRel::Fr;
        }
        EXPECT_TRUE(has_rf && has_fr) << core::modelName(model);
    }
}

TEST(AxiomChecker, MachineHandoffTraceAcceptedOnEveryModel)
{
    for (Model model : core::allModels) {
        core::MachineConfig cfg = tracedConfig(model);
        core::Machine m(cfg);
        ASSERT_NE(m.traceRecorder(), nullptr);
        std::uint64_t seen = 0;
        m.startWorkload(0, handoffWriter(m.proc(0)));
        m.startWorkload(1, handoffReader(m.proc(1), seen));
        m.run();
        EXPECT_EQ(seen, 42u);

        const Trace &trace = m.traceRecorder()->finish();
        EXPECT_GT(trace.events.size(), 3u);
        const AxiomResult res = checkTrace(trace, cfg.modelParams());
        EXPECT_TRUE(res.ok) << core::modelName(model) << "\n"
                            << res.message;

        // The reader's final data load must have hardware-observed the
        // handed-off value, not just the functional one.
        const auto &po = trace.byProc[1];
        ASSERT_FALSE(po.empty());
        const Event &last = trace.events[po.back()];
        EXPECT_EQ(last.kind, EventKind::Read);
        EXPECT_EQ(res.hwValues[last.id], 42u) << core::modelName(model);

        EXPECT_GT(m.collectStats().get("axiom.events"), 0.0);
    }
}

TEST(AxiomChecker, RecordingOffBuildsNoRecorder)
{
    core::MachineConfig cfg = tracedConfig(Model::SC1);
    cfg.trace.record = false;
    core::Machine m(cfg);
    EXPECT_EQ(m.traceRecorder(), nullptr);
    std::uint64_t seen = 0;
    m.startWorkload(0, handoffWriter(m.proc(0)));
    m.startWorkload(1, handoffReader(m.proc(1), seen));
    m.run();
    EXPECT_EQ(seen, 42u);
    EXPECT_FALSE(m.collectStats().has("axiom.events"));
}

// Acceptance sweep: every model x every paper workload (small sizes),
// recorded and checked. The axiomatic layer must accept every trace a
// correct machine produces.
TEST(AxiomChecker, AcceptanceSweepAllModelsAllWorkloads)
{
    for (Model model : core::allModels) {
        core::MachineConfig cfg;
        cfg.numProcs = 4;
        cfg.numModules = 4;
        cfg.model = model;
        cfg.cacheBytes = 2048;
        cfg.lineBytes = 16;
        cfg.maxCycles = 400'000'000ull;
        cfg.trace.record = true;

        workloads::GaussParams gp;
        gp.n = 24;
        workloads::GaussWorkload gauss(gp);
        workloads::QsortParams qp;
        qp.n = 2048;
        qp.parallelCutoff = 512;
        workloads::QsortWorkload qsort(qp);
        workloads::RelaxParams rp;
        rp.interior = 24;
        rp.iterations = 2;
        workloads::RelaxWorkload relax(rp);
        workloads::PsimParams pp;
        pp.simProcs = 8;
        pp.packetsPerProc = 16;
        workloads::PsimWorkload psim(pp);

        workloads::Workload *all[] = {&gauss, &qsort, &relax, &psim};
        for (workloads::Workload *w : all) {
            core::Machine m(cfg);
            w->setup(m);
            m.run();
            w->verify(m);
            const Trace &trace = m.traceRecorder()->finish();
            ASSERT_GT(trace.events.size(), 0u);
            const AxiomResult res = checkTrace(trace, cfg.modelParams());
            EXPECT_TRUE(res.ok)
                << core::modelName(model) << " / " << w->name() << "\n"
                << res.message;
        }
    }
}

namespace
{

/**
 * The weakened-machine scenario (fault injection): the writer's sync
 * ordering is disabled, so its flag release issues while the data write
 * is still stuck behind hammer traffic jamming the data line's memory
 * module -- a temporal ppo violation. The reader additionally drops the
 * invalidate for its pre-warmed Shared data line, so its post-flag data
 * read hits the stale copy and performs long before the data write does
 * -- a forbidden message-passing outcome at the hardware level, which
 * closes a happens-before cycle for the checker.
 */
AxiomResult
runWeakenedMp(Model model)
{
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.model = model;
    cfg.cacheBytes = 1024;
    cfg.lineBytes = 16;
    cfg.memInitCycles = 50;  // widen the window the jam creates
    cfg.trace.record = true;
    // The ordering linter and coherence auditor would (correctly) trip
    // on the injected faults; here the axiomatic layer does the
    // detecting. The data handoff is no longer actually synchronized, so
    // the race detector would trip too -- the broken machine makes the
    // program racy.
    cfg.check.ordering = false;
    cfg.check.coherence = false;
    cfg.check.races = false;
    core::Machine m(cfg);

    m.proc(0).injectDisableSyncOrderingForTest();
    m.cache(1).injectIgnoreNextInvalidateForTest();

    // dataAddr's line sits in module 0; hammer lines map there as well
    // (module = (addr / lineBytes) % numModules). flagAddr lands in
    // module 2, which stays fast.
    constexpr Addr data = 0x1000;
    constexpr Addr flag = 0x1020;
    m.memory().writeU64(data, 0);
    m.memory().writeU64(flag, 0);

    // Writer: data store jams behind the hammer, flag release does not
    // wait for it (the injected fault).
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(600);
        co_await p.store(data, 1);
        co_await p.syncStore(flag, 1);
    }(m.proc(0)));

    // Reader: pre-warm the data line (Shared), then spin on the flag and
    // read the data through the stale local copy.
    std::uint64_t seen = 0;
    m.startWorkload(1, [](cpu::Processor &p, std::uint64_t &out) -> SimTask {
        co_await p.loadUse(data);  // Shared copy of the line
        for (;;) {
            const std::uint64_t f = co_await p.syncLoad(flag);
            if (f == 1)
                break;
            co_await p.branch();
        }
        out = co_await p.loadUse(data);
    }(m.proc(1), seen));

    // Hammer: keep module 0 busy with non-blocking misses to distinct
    // lines (up to the MSHR limit in flight) so the writer's
    // GetExclusive (and its invalidate) sits in the module queue. The
    // closing fence drains the last loads before the workload exits.
    m.startWorkload(2, [](cpu::Processor &p) -> SimTask {
        co_await p.exec(100);
        for (unsigned i = 0; i < 40; ++i) {
            const Addr stride = 16 * 4;  // every line in module 0
            co_await p.load(0x8000 + i * stride);
        }
        co_await p.fence();
    }(m.proc(2)));

    m.run();
    EXPECT_EQ(seen, 1u);  // functional value flow is unaffected
    const Trace &trace = m.traceRecorder()->finish();
    if (std::getenv("AXIOM_DUMP") != nullptr) {
        for (const Event &e : trace.events)
            if (e.proc < 2)
                std::fprintf(stderr, "%s\n", e.describe().c_str());
    }
    return checkTrace(trace, cfg.modelParams());
}

} // namespace

TEST(WeakenedMachine, DisabledSyncOrderingRejectedUnderWo)
{
    const AxiomResult res = runWeakenedMp(Model::WO1);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.temporal.empty()) << res.message;
    EXPECT_FALSE(res.cycle.empty()) << res.message;
    EXPECT_NE(res.message.find("happens-before cycle"), std::string::npos)
        << res.message;
}

TEST(WeakenedMachine, DisabledSyncOrderingRejectedUnderRc)
{
    const AxiomResult res = runWeakenedMp(Model::RC);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.temporal.empty()) << res.message;
    EXPECT_FALSE(res.cycle.empty()) << res.message;
    EXPECT_NE(res.message.find("happens-before cycle"), std::string::npos)
        << res.message;
}
