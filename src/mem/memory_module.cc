#include "mem/memory_module.hh"

#include <bit>
#include <utility>
#include <vector>

#include "check/checker.hh"
#include "sim/logging.hh"

namespace mcsim::mem
{

namespace
{

constexpr std::uint64_t
bitOf(ProcId p)
{
    return std::uint64_t(1) << p;
}

} // namespace

void
MemoryParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 8)
        fatal("memory line size must be a power of two >= 8 (got %u)",
              lineBytes);
    if (numProcs == 0 || numProcs > 64)
        fatal("directory presence vector supports 1..64 processors (got %u)",
              numProcs);
}

MemoryModule::MemoryModule(EventQueue &eq, ModuleId id,
                           const MemoryParams &params, Outbox &outbox)
    : queue(eq), moduleId(id), cfg(params), out(outbox)
{
    cfg.validate();
}

MemoryModule::DirState
MemoryModule::dirState(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? DirState::Uncached : it->second.state;
}

std::uint64_t
MemoryModule::presenceMask(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? 0 : it->second.presence;
}

std::vector<std::pair<Addr, MemoryModule::DirState>>
MemoryModule::knownLines() const
{
    std::vector<std::pair<Addr, DirState>> out;
    for (const auto &[addr, entry] : dir)
        out.emplace_back(addr, entry.state);
    return out;
}

ProcId
MemoryModule::ownerOf(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? 0 : it->second.owner;
}

void
MemoryModule::corruptDirEntryForTest(Addr line_addr, DirState state,
                                     ProcId owner, std::uint64_t presence)
{
    DirEntry &entry = dir[line_addr];
    entry.state = state;
    entry.owner = owner;
    entry.presence = presence;
}

Tick
MemoryModule::reserveRead()
{
    const Tick start = std::max(queue.now(), busyUntil);
    modStats.queueHist.record(start - queue.now());
    const Tick first_word = start + cfg.initCycles;
    busyUntil = first_word + cfg.lineWords();
    modStats.busyCycles += busyUntil - start;
    if (tracer) {
        tracer->span(obs::Track::Module, moduleId, obs::SpanKind::DramBusy,
                     start, busyUntil - start);
    }
    return first_word;
}

void
MemoryModule::reserveWrite()
{
    const Tick start = std::max(queue.now(), busyUntil);
    modStats.queueHist.record(start - queue.now());
    busyUntil = start + cfg.initCycles + cfg.lineWords();
    modStats.busyCycles += busyUntil - start;
    if (tracer) {
        tracer->span(obs::Track::Module, moduleId, obs::SpanKind::DramBusy,
                     start, busyUntil - start);
    }
}

void
MemoryModule::sendToProc(MsgKind kind, Addr line_addr, ProcId proc,
                         Tick when)
{
    NetMsg msg;
    msg.src = moduleId;
    msg.dst = proc;
    msg.bytes = messageBytes(kind, cfg.lineBytes);
    msg.payload = CoherenceMsg{kind, line_addr, proc};
    if (checker)
        checker->onProtocolMessage(msg.payload, /*to_memory=*/false);
    if (when <= queue.now()) {
        out.send(std::move(msg));
    } else {
        queue.schedule(
            when, [this, m = msg]() mutable { out.send(std::move(m)); },
            EventQueue::prioDeliver);
    }
}

void
MemoryModule::handleRequest(NetMsg &&msg)
{
    const CoherenceMsg cm = msg.payload;
    switch (cm.kind) {
      case MsgKind::GetShared:
      case MsgKind::GetExclusive: {
        auto it = txns.find(cm.lineAddr);
        if (it != txns.end()) {
            modStats.queuedRequests += 1;
            it->second.waiters.push_back(Waiter{std::move(msg), queue.now()});
            return;
        }
        startTransaction(std::move(msg));
        return;
      }

      case MsgKind::Writeback: {
        modStats.writebacks += 1;
        auto it = txns.find(cm.lineAddr);
        if (it != txns.end()) {
            MCSIM_ASSERT(it->second.waitingData,
                         "writeback during non-recall transaction");
            handleDataArrival(cm.lineAddr, false);
            return;
        }
        DirEntry &entry = dir[cm.lineAddr];
        MCSIM_ASSERT(entry.state == DirState::Exclusive &&
                         entry.owner == cm.proc,
                     "writeback from non-owner %u", cm.proc);
        entry.state = DirState::Uncached;
        entry.presence = 0;
        reserveWrite();
        if (checker)
            checker->onDirectoryEvent(moduleId, cm.lineAddr);
        return;
      }

      case MsgKind::FlushData: {
        MCSIM_ASSERT(txns.count(cm.lineAddr) &&
                         txns.at(cm.lineAddr).waitingData,
                     "flush data without a recall transaction");
        handleDataArrival(cm.lineAddr, true);
        return;
      }

      case MsgKind::RecallStale: {
        // The recall target surrendered the line before our recall reached
        // it; its Writeback (already in flight) completes the transaction
        // when it arrives, so nothing to record here.
        return;
      }

      case MsgKind::InvAck:
        handleInvAck(cm.lineAddr, cm.proc);
        return;

      default:
        panic("memory module %u received unexpected message kind %s",
              moduleId, msgKindName(cm.kind));
    }
}

void
MemoryModule::startTransaction(NetMsg &&msg)
{
    const CoherenceMsg cm = msg.payload;
    const ProcId req = cm.proc;
    DirEntry &entry = dir[cm.lineAddr];
    Txn &txn = txns[cm.lineAddr];
    txn.reqKind = cm.kind;
    txn.requester = req;

    if (cm.kind == MsgKind::GetShared) {
        switch (entry.state) {
          case DirState::Uncached:
          case DirState::Shared:
            finish(cm.lineAddr, reserveRead(), false);
            return;
          case DirState::Exclusive:
            txn.waitingData = true;
            txn.owner = entry.owner;
            if (entry.owner == req) {
                // The owner wrote the line back and re-requested it before
                // the writeback arrived; just wait for the writeback.
                txn.keepOwnerShared = false;
            } else {
                txn.keepOwnerShared = true;
                modStats.recallsSent += 1;
                sendToProc(MsgKind::RecallShared, cm.lineAddr, entry.owner,
                           queue.now());
            }
            return;
        }
        return;
    }

    // GetExclusive
    switch (entry.state) {
      case DirState::Uncached:
        finish(cm.lineAddr, reserveRead(), false);
        return;

      case DirState::Shared: {
        entry.presence &= ~bitOf(req);
        if (entry.presence == 0) {
            finish(cm.lineAddr, reserveRead(), false);
            return;
        }
        unsigned sharers = 0;
        for (ProcId p = 0; p < cfg.numProcs; ++p) {
            if (entry.presence & bitOf(p)) {
                sendToProc(MsgKind::Invalidate, cm.lineAddr, p, queue.now());
                ++sharers;
            }
        }
        modStats.invalidatesSent += sharers;
        txn.acksLeft = sharers;
        txn.memReadDone = true;
        txn.dataReadyTick = reserveRead();
        return;
      }

      case DirState::Exclusive:
        txn.waitingData = true;
        txn.owner = entry.owner;
        txn.keepOwnerShared = false;
        if (entry.owner != req) {
            modStats.recallsSent += 1;
            sendToProc(MsgKind::RecallExclusive, cm.lineAddr, entry.owner,
                       queue.now());
        }
        return;
    }
}

void
MemoryModule::handleDataArrival(Addr line_addr, bool via_flush)
{
    Txn &txn = txns.at(line_addr);
    MCSIM_ASSERT(txn.waitingData, "data arrival without recall");
    txn.waitingData = false;
    const bool owner_shares = txn.keepOwnerShared && via_flush;
    // The arriving line is written to memory and streamed to the requester
    // in one reservation.
    finish(line_addr, reserveRead(), owner_shares);
}

void
MemoryModule::handleInvAck(Addr line_addr, ProcId from)
{
    auto it = txns.find(line_addr);
    MCSIM_ASSERT(it != txns.end() && it->second.acksLeft > 0,
                 "unexpected InvAck from %u", from);
    Txn &txn = it->second;
    txn.acksLeft -= 1;
    if (txn.acksLeft == 0) {
        MCSIM_ASSERT(txn.memReadDone, "acks complete before read issued");
        finish(line_addr, std::max(queue.now(), txn.dataReadyTick), false);
    }
}

void
MemoryModule::finish(Addr line_addr, Tick reply_tick, bool owner_shares)
{
    queue.schedule(
        reply_tick,
        [this, line_addr, owner_shares]() {
            Txn &txn = txns.at(line_addr);
            DirEntry &entry = dir[line_addr];
            const ProcId req = txn.requester;

            if (txn.reqKind == MsgKind::GetShared) {
                if (entry.state == DirState::Exclusive)
                    entry.presence = 0;
                entry.state = DirState::Shared;
                entry.presence |= bitOf(req);
                if (owner_shares)
                    entry.presence |= bitOf(txn.owner);
                sendToProc(MsgKind::DataReplyShared, line_addr, req,
                           queue.now());
            } else {
                entry.state = DirState::Exclusive;
                entry.owner = req;
                entry.presence = bitOf(req);
                sendToProc(MsgKind::DataReplyExclusive, line_addr, req,
                           queue.now());
            }
            modStats.requests += 1;
            if (checker)
                checker->onDirectoryEvent(moduleId, line_addr);

            std::deque<Waiter> waiters = std::move(txn.waiters);
            txns.erase(line_addr);
            for (auto &w : waiters) {
                // Per-segment delay: a request re-queued behind the next
                // transaction for the line records each segment separately.
                modStats.queueHist.record(queue.now() - w.arrival);
                if (tracer) {
                    tracer->span(obs::Track::Module, moduleId,
                                 obs::SpanKind::DirQueue, w.arrival,
                                 queue.now() - w.arrival, line_addr);
                }
                handleRequest(std::move(w.msg));
            }
        },
        EventQueue::prioDeliver);
}

} // namespace mcsim::mem
