/**
 * @file
 * Golden-baseline regression tests: the quick grid (all seven
 * consistency models x the four paper workloads at one small
 * configuration, per-point derived seeds) must reproduce the committed
 * tests/golden/quick.json cycle-for-cycle. The simulator is
 * deterministic, so integral counters match exactly; derived doubles get
 * 1e-9 relative slack only.
 *
 * Regenerate the baseline after an intentional behavior change with:
 *   sweep_runner --grid quick --golden-out tests/golden
 */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "exp/golden.hh"
#include "exp/grid.hh"
#include "exp/sweep.hh"

using namespace mcsim;

namespace
{

/** The quick sweep, run once and shared across tests. */
const exp::SweepOutcomes &
quickOutcomes()
{
    static const exp::SweepOutcomes out = [] {
        exp::SweepOptions opts;
        opts.progress = false;
        return exp::runGrid(exp::namedGrid("quick", exp::Scale::Quick),
                            opts);
    }();
    return out;
}

exp::Json
loadGolden()
{
    std::ifstream in(std::string(MCSIM_GOLDEN_DIR) + "/quick.json");
    EXPECT_TRUE(in.good()) << "missing golden file";
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    exp::Json doc = exp::Json::parse(text.str(), &error);
    EXPECT_TRUE(error.empty()) << error;
    return doc;
}

} // namespace

TEST(Golden, QuickGridMatchesCommittedBaseline)
{
    const exp::GoldenDiff diff = exp::checkAgainstGoldenDir(
        quickOutcomes().toJson(), MCSIM_GOLDEN_DIR, "quick");
    EXPECT_TRUE(diff.ok) << diff.report;
    EXPECT_EQ(diff.divergences, 0u);
}

TEST(Golden, CycleCountsMatchExactly)
{
    // Belt-and-braces on top of the full diff: cycle counts under the
    // fixed per-point seeds are bitwise-reproducible, not just close.
    const exp::Json golden = loadGolden();
    const exp::Json *grids = golden.find("grids");
    ASSERT_NE(grids, nullptr);
    const exp::Json *jobs = grids->find("quick");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->size(), 28u);  // 7 models x 4 workloads

    const auto &results = quickOutcomes().gridResults("quick");
    ASSERT_EQ(results.size(), jobs->size());
    for (std::size_t i = 0; i < jobs->size(); ++i) {
        const exp::Json &job = jobs->at(i);
        ASSERT_NE(job.find("id"), nullptr);
        ASSERT_EQ(job.find("id")->asString(), results[i].point.id());
        EXPECT_TRUE(results[i].ok) << results[i].error;
        const exp::Json *metrics = job.find("metrics");
        ASSERT_NE(metrics, nullptr);
        ASSERT_NE(metrics->find("cycles"), nullptr);
        EXPECT_EQ(static_cast<double>(results[i].metrics.cycles),
                  metrics->find("cycles")->asNumber())
            << "cycle drift in " << results[i].point.id();
    }
}

TEST(Golden, TraceQuickGridMatchesCommittedBaseline)
{
    // The trace-replay counterpart of the quick baseline: all seven
    // models x the four synthetic generators. Regenerate after an
    // intentional change with:
    //   sweep_runner --grid trace-quick --golden-out tests/golden
    exp::SweepOptions opts;
    opts.progress = false;
    const exp::SweepOutcomes out = exp::runGrid(
        exp::namedGrid("trace-quick", exp::Scale::Quick), opts);
    ASSERT_EQ(out.gridResults("trace-quick").size(), 28u);
    const exp::GoldenDiff diff = exp::checkAgainstGoldenDir(
        out.toJson(), MCSIM_GOLDEN_DIR, "trace-quick");
    EXPECT_TRUE(diff.ok) << diff.report;
    EXPECT_EQ(diff.divergences, 0u);
}

TEST(Golden, PerturbedBaselineNamesFirstDivergentMetric)
{
    exp::Json golden = loadGolden();
    exp::Json &job = golden["grids"]["quick"].elements().at(0);
    const std::string id = job["id"].asString();
    job["metrics"]["cycles"] =
        exp::Json(job["metrics"]["cycles"].asNumber() + 1);

    const exp::GoldenDiff diff =
        exp::compareToGolden(quickOutcomes().toJson(), golden, "quick");
    EXPECT_FALSE(diff.ok);
    EXPECT_GE(diff.divergences, 1u);
    EXPECT_NE(diff.report.find("cycles"), std::string::npos)
        << diff.report;
    EXPECT_NE(diff.report.find(id), std::string::npos) << diff.report;
}

TEST(Golden, TolerancePolicy)
{
    // Event counters are exact; derived doubles get 1e-9 relative.
    EXPECT_EQ(exp::metricTolerance("cycles"), 0.0);
    EXPECT_EQ(exp::metricTolerance("totalMisses"), 0.0);
    EXPECT_EQ(exp::metricTolerance("mshrBusyCycles"), 0.0);
    EXPECT_EQ(exp::metricTolerance("avgMissLatency"), 1e-9);
    EXPECT_EQ(exp::metricTolerance("hitRate"), 1e-9);
}

TEST(Golden, MissingGoldenFileFailsLoudly)
{
    const exp::GoldenDiff diff = exp::checkAgainstGoldenDir(
        quickOutcomes().toJson(), MCSIM_GOLDEN_DIR, "no_such_grid");
    EXPECT_FALSE(diff.ok);
    EXPECT_NE(diff.report.find("no_such_grid"), std::string::npos);
}
