/**
 * @file
 * Reproduces paper Figure 8: the blocking-loads study (SC1, bWO1, WO1
 * vs bSC1) at the large caches. With high hit rates the differences
 * shrink; the paper notes Gauss's variations here are "so small as to
 * be unimportant".
 *
 * Usage: bench_fig8 [--full]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const bool full = parseFull(argc, argv);
    const std::vector<core::Model> models = {
        core::Model::SC1, core::Model::BWO1, core::Model::WO1};

    std::printf("Figure 8 reproduction: %% gain over bSC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(full, true), full ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        core::RunMetrics base[3];
        for (std::size_t l = 0; l < lineSizes.size(); ++l) {
            auto cfg = baseConfig(full);
            cfg.cacheBytes = largeCache(full);
            cfg.lineBytes = lineSizes[l];
            cfg.model = core::Model::BSC1;
            base[l] = run(name, cfg, full);
        }
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                auto cfg = baseConfig(full);
                cfg.cacheBytes = largeCache(full);
                cfg.lineBytes = lineSizes[l];
                cfg.model = model;
                const auto m = run(name, cfg, full);
                std::printf(" %9.1f%%", core::percentGain(base[l], m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
