/**
 * @file
 * Tests for the model checker (src/mc/): exhaustive verification of the
 * consistency models against the litmus suite, sleep-set DPOR pruning
 * versus naive enumeration, schedule-replay determinism, counterexample
 * discovery on a deliberately weakened machine, and the choice-vector
 * codec.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/consistency.hh"
#include "mc/explorer.hh"
#include "mc/schedule.hh"

using namespace mcsim;
using namespace mcsim::mc;
using core::Model;

namespace
{

McOptions
options(Model model, const std::string &litmus)
{
    McOptions opt;
    opt.model = model;
    opt.litmus = litmus;
    return opt;
}

// -------------------------------------------------------------------------
// Choice-vector codec.

TEST(McSchedule, FormatVector)
{
    EXPECT_EQ(formatVector({}), "-");
    EXPECT_EQ(formatVector({0}), "0");
    EXPECT_EQ(formatVector({2, 0, 1}), "2.0.1");
}

TEST(McSchedule, ParseVectorRoundTrip)
{
    for (const std::vector<unsigned> &vec :
         {std::vector<unsigned>{}, {0}, {2, 0, 1}, {10, 3}}) {
        std::vector<unsigned> out;
        ASSERT_TRUE(parseVector(formatVector(vec), out));
        EXPECT_EQ(out, vec);
    }
}

TEST(McSchedule, ParseVectorRejectsGarbage)
{
    std::vector<unsigned> out;
    EXPECT_FALSE(parseVector("1..2", out));
    EXPECT_FALSE(parseVector("1.x", out));
    EXPECT_FALSE(parseVector(".", out));
    EXPECT_FALSE(parseVector("1.", out));
}

TEST(McSchedule, IndependenceIsPerObject)
{
    const ChoiceOption a{0x1000, 0};
    const ChoiceOption b{0x1000, 7};
    const ChoiceOption c{0x2000, 0};
    EXPECT_FALSE(independent(a, b));  // same line, any tiebreak
    EXPECT_TRUE(independent(a, c));
}

// -------------------------------------------------------------------------
// Exhaustive verification: every model against the core litmus shapes
// explores to completion with zero violations. IRIW (4 procs, ~1.2k
// schedules per pair) is sampled on two representative models to keep
// sanitizer runtimes bounded; the CI mc-verify job runs the full
// matrix through mc_runner.

TEST(McExplore, AllModelsVerifyCoreLitmusShapes)
{
    for (const Model model : core::allModels) {
        for (const char *name : {"SB", "MP", "MP+sync", "LB", "CoRR"}) {
            const McResult res = explore(options(model, name));
            EXPECT_TRUE(res.complete)
                << core::modelName(model) << " / " << name;
            EXPECT_FALSE(res.violation.has_value())
                << core::modelName(model) << " / " << name << ": "
                << (res.violation ? res.violation->report : "");
            EXPECT_GT(res.stats.schedulesRun, 0u);
        }
    }
}

TEST(McExplore, WeakModelsVerifyFourProcShapes)
{
    for (const Model model : {Model::WO1, Model::RC}) {
        for (const char *name : {"WRC", "IRIW"}) {
            const McResult res = explore(options(model, name));
            EXPECT_TRUE(res.complete)
                << core::modelName(model) << " / " << name;
            EXPECT_FALSE(res.violation.has_value())
                << core::modelName(model) << " / " << name << ": "
                << (res.violation ? res.violation->report : "");
            // Four processors racing two lines must branch the choice
            // tree; a single-schedule "exhaustive" result would mean
            // the delivery pools never held concurrent messages.
            EXPECT_GT(res.stats.branchPoints, 0u);
            EXPECT_GT(res.stats.schedulesRun, 10u);
        }
    }
}

// -------------------------------------------------------------------------
// DPOR: sleep sets must prune schedules relative to naive enumeration
// while reaching the same verdict.

TEST(McExplore, DporExploresFewerSchedulesThanNaive)
{
    McOptions dpor = options(Model::WO1, "MP");
    McOptions naive = dpor;
    naive.dpor = false;

    const McResult with = explore(dpor);
    const McResult without = explore(naive);

    ASSERT_TRUE(with.complete);
    ASSERT_TRUE(without.complete);
    EXPECT_FALSE(with.violation.has_value());
    EXPECT_FALSE(without.violation.has_value());
    EXPECT_GT(without.stats.schedulesRun, 1u);
    EXPECT_LT(with.stats.schedulesRun, without.stats.schedulesRun);
    EXPECT_GT(with.stats.sleepPruned, 0u);
}

// -------------------------------------------------------------------------
// Replay determinism: a recorded choice vector replayed twice produces
// byte-identical timelines and identical outcomes.

TEST(McReplay, SameVectorTwiceIsByteIdentical)
{
    const McOptions opt = options(Model::RC, "IRIW");
    const std::vector<unsigned> vec = {1, 0, 2, 1};

    ReplayScheduler first(vec);
    const RunOutcome a = runUnder(opt, first);
    ReplayScheduler second(vec);
    const RunOutcome b = runUnder(opt, second);

    EXPECT_EQ(a.violated, b.violated);
    EXPECT_EQ(a.run.hwReads, b.run.hwReads);
    EXPECT_EQ(a.run.funcReads, b.run.funcReads);
    EXPECT_EQ(a.run.runTicks, b.run.runTicks);
    EXPECT_EQ(first.executed(), second.executed());
    EXPECT_EQ(renderTimeline(first.timeline()),
              renderTimeline(second.timeline()));
    EXPECT_GT(first.timeline().size(), 0u);
}

TEST(McReplay, OutOfRangeEntriesCountAsDivergence)
{
    const McOptions opt = options(Model::SC1, "CoRR");
    ReplayScheduler replay({0, 0, 99});
    const RunOutcome out = runUnder(opt, replay);
    EXPECT_FALSE(out.violated);
    EXPECT_GT(replay.divergences(), 0u);
}

// -------------------------------------------------------------------------
// Weakened machine: disabling sync ordering must yield a violation with
// a minimal vector whose replay reproduces the exact same failure.

TEST(McWeaken, FindsReplayableCounterexample)
{
    McOptions opt = options(Model::WO1, "MP+sync");
    opt.weaken = true;

    const McResult res = explore(opt);
    ASSERT_TRUE(res.violation.has_value());
    const McViolation &v = *res.violation;
    EXPECT_FALSE(v.kind.empty());
    EXPECT_FALSE(v.message.empty());
    EXPECT_NE(v.report.find("replay vector:"), std::string::npos);

    ReplayScheduler replay(v.vector);
    const RunOutcome out = runUnder(opt, replay);
    EXPECT_TRUE(out.violated);
    EXPECT_EQ(out.kind, v.kind);
    EXPECT_EQ(out.message, v.message);
}

TEST(McWeaken, HealthyMachineStaysClean)
{
    // Identical exploration without the weakening: no violation.
    const McResult res = explore(options(Model::WO1, "MP+sync"));
    EXPECT_TRUE(res.complete);
    EXPECT_FALSE(res.violation.has_value());
}

} // namespace
