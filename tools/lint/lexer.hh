/**
 * @file
 * C++ lexer for mcsim-lint (tools/lint/README in DESIGN.md section 13).
 *
 * mcsim-lint's checks are syntactic-plus-symbol-table: they need a
 * faithful token stream (comments, string literals, raw strings, and
 * preprocessor lines must never leak identifiers into the checks) but
 * not a full semantic AST. The container ships no clang development
 * headers, so the linter carries this small self-contained lexer
 * instead of LibTooling; the trade-off is recorded in DESIGN.md.
 *
 * Two outputs per file:
 *  - the token stream (identifiers, numbers, literals, punctuation),
 *    each token tagged with its line and whether it sits inside a
 *    preprocessor directive, and
 *  - the suppression table parsed from `// mcsim-lint: check(reason)`
 *    comments, keyed by comment line.
 */

#ifndef MCSIM_TOOLS_LINT_LEXER_HH
#define MCSIM_TOOLS_LINT_LEXER_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mcsim::lint
{

/** Token classification; checks mostly dispatch on Ident vs Punct. */
enum class Tok : unsigned char
{
    Ident,    ///< identifier or keyword
    Number,   ///< numeric literal (incl. digit separators, suffixes)
    String,   ///< string literal (ordinary or raw), text excluded
    CharLit,  ///< character literal
    Punct,    ///< operator/punctuator (multi-char units, see lexer.cc)
};

/** One lexed token. `text` views into the owning LexedFile's buffer. */
struct Token
{
    Tok kind{Tok::Punct};
    std::string_view text;
    unsigned line = 0;
    /** True when the token is part of a preprocessor directive. */
    bool pp = false;

    bool is(std::string_view t) const { return text == t; }
    bool isIdent(std::string_view t) const
    {
        return kind == Tok::Ident && text == t;
    }
};

/** One parsed `// mcsim-lint: check(reason)` annotation. */
struct Suppression
{
    std::string check;   ///< check name as written (e.g. order-insensitive)
    std::string reason;  ///< text between the parentheses, trimmed
    unsigned line = 0;   ///< line the comment sits on
    bool malformed = false;  ///< marker present but unparsable
};

/** A lexed source file. Owns the text the tokens view into. */
struct LexedFile
{
    std::string path;    ///< effective (classification/report) path
    std::string source;  ///< file contents
    std::vector<Token> tokens;
    /** Suppressions keyed by the line their comment appears on. */
    std::map<unsigned, std::vector<Suppression>> suppressions;
};

/**
 * Lex @p source (reported as @p path) into tokens + suppressions.
 * Never fails: unterminated constructs lex to end-of-file.
 */
LexedFile lex(std::string path, std::string source);

} // namespace mcsim::lint

#endif // MCSIM_TOOLS_LINT_LEXER_HH
