#include "workloads/relax.hh"

#include <array>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/layout.hh"

namespace mcsim::workloads
{

namespace
{

struct Offset
{
    int di;
    int dj;
};

/** Stencil neighbours with the south-east (missing) point identified. */
constexpr Offset missOffset{+1, +1};

constexpr std::array<Offset, 8> otherOffsets = {{
    {0, -1}, {0, 0}, {0, +1},
    {+1, -1}, {+1, 0},
    {-1, -1}, {-1, 0}, {-1, +1},
}};

/** Issue order: position of the missing load among the nine. */
unsigned
missIssuePosition(RelaxSchedule s)
{
    switch (s) {
      case RelaxSchedule::Default:
      case RelaxSchedule::OptimalSC:
      case RelaxSchedule::BadWO:
        // Row-major stencil order: the south-east point is issued last,
        // which is where a compiler walking the stencil lands it.
        return 8;
      case RelaxSchedule::OptimalWO:
      case RelaxSchedule::BadSC:
        return 0;  // first
    }
    return 8;
}

/**
 * Use order for the nine summands. The default compiler sums the values
 * in the order it loaded them; the hand-optimized schedules consume the
 * missing value last, the deliberately bad ones consume it first.
 */
enum class UseOrder { IssueOrder, MissLast, MissFirst };

UseOrder
useOrderOf(RelaxSchedule s)
{
    switch (s) {
      case RelaxSchedule::Default:
        return UseOrder::IssueOrder;
      case RelaxSchedule::OptimalSC:
      case RelaxSchedule::OptimalWO:
        return UseOrder::MissLast;
      case RelaxSchedule::BadSC:
      case RelaxSchedule::BadWO:
        return UseOrder::MissFirst;
    }
    return UseOrder::IssueOrder;
}

} // namespace

const char *
relaxScheduleName(RelaxSchedule s)
{
    switch (s) {
      case RelaxSchedule::Default: return "default";
      case RelaxSchedule::OptimalSC: return "optimal-SC";
      case RelaxSchedule::OptimalWO: return "optimal-WO";
      case RelaxSchedule::BadSC: return "bad-SC";
      case RelaxSchedule::BadWO: return "bad-WO";
    }
    return "?";
}

RelaxWorkload::RelaxWorkload(RelaxParams params) : cfg(params)
{
    // Pacing calibration against paper Table 9 (reads every ~12.8
    // cycles under SC1): the compiled stencil carries heavy addressing
    // and induction overhead per load.
    costs.fpAdd = 3;
    costs.addrCalc = 4;
    costs.loopOverhead = 8;
    if (cfg.interior < 2)
        fatal("Relax needs interior >= 2 (got %u)", cfg.interior);
    if (cfg.iterations < 1)
        fatal("Relax needs at least one iteration");
}

void
RelaxWorkload::setup(core::Machine &machine)
{
    const unsigned d = dim();
    SharedLayout layout(machine.config().lineBytes);
    mainBase = layout.allocWords(static_cast<std::size_t>(d) * d);
    tempBase = layout.allocWords(static_cast<std::size_t>(d) * d);
    barrier = layout.allocBarrierObj(cfg.barrierKind, machine.numProcs());
    machine.memory().ensure(layout.top());

    Rng rng(cfg.seed);
    std::vector<double> grid(static_cast<std::size_t>(d) * d, 0.0);
    for (unsigned i = 0; i < d; ++i) {
        for (unsigned j = 0; j < d; ++j) {
            const double v = rng.uniform() * 100.0;
            grid[static_cast<std::size_t>(i) * d + j] = v;
            machine.memory().writeF64(mainAddr(i, j), v);
        }
    }

    // Reference computation: same operation order as the simulated code.
    expected = grid;
    std::vector<double> temp = grid;
    for (unsigned iter = 0; iter < cfg.iterations; ++iter) {
        for (unsigned i = 1; i <= cfg.interior; ++i) {
            for (unsigned j = 1; j <= cfg.interior; ++j) {
                double sum = 0.0;
                for (const auto &o : otherOffsets)
                    sum += expected[static_cast<std::size_t>(i + o.di) * d +
                                    (j + o.dj)];
                sum += expected[static_cast<std::size_t>(i + missOffset.di) *
                                    d +
                                (j + missOffset.dj)];
                temp[static_cast<std::size_t>(i) * d + j] = sum / 9.0;
            }
        }
        for (unsigned i = 1; i <= cfg.interior; ++i)
            for (unsigned j = 1; j <= cfg.interior; ++j)
                expected[static_cast<std::size_t>(i) * d + j] =
                    temp[static_cast<std::size_t>(i) * d + j];
    }

    barrierCtx.assign(machine.numProcs(), {});
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), *this, p, machine.numProcs()));
    }
}

SimTask
RelaxWorkload::body(cpu::Processor &proc, RelaxWorkload &w, unsigned pid,
                    unsigned n_procs)
{
    using cpu::asBits;
    using cpu::asF64;
    const unsigned n = w.cfg.interior;
    const OpCosts &c = w.costs;
    const unsigned miss_pos = missIssuePosition(w.cfg.schedule);
    const UseOrder use_order = useOrderOf(w.cfg.schedule);

    // Precompute the consumption order of the nine tokens.
    unsigned order[9];
    {
        unsigned n_out = 0;
        if (use_order == UseOrder::MissFirst)
            order[n_out++] = miss_pos;
        for (unsigned pos = 0; pos < 9; ++pos) {
            if (pos == miss_pos && use_order != UseOrder::IssueOrder)
                continue;
            if (pos == miss_pos && use_order == UseOrder::IssueOrder) {
                order[n_out++] = pos;
                continue;
            }
            order[n_out++] = pos;
        }
        if (use_order == UseOrder::MissLast)
            order[n_out++] = miss_pos;
    }

    // Row-block partition of interior rows [1, n].
    const unsigned rows_per = (n + n_procs - 1) / n_procs;
    const unsigned lo = 1 + pid * rows_per;
    const unsigned hi = std::min(n + 1, lo + rows_per);

    for (unsigned iter = 0; iter < w.cfg.iterations; ++iter) {
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned j = 1; j <= n; ++j) {
                // Build the issue order with the (potentially) missing
                // south-east load at the schedule's position.
                std::uint64_t tokens[9];
                bool is_miss[9];
                unsigned other_idx = 0;
                for (unsigned pos = 0; pos < 9; ++pos) {
                    Offset o;
                    if (pos == miss_pos) {
                        o = missOffset;
                        is_miss[pos] = true;
                    } else {
                        o = otherOffsets[other_idx++];
                        is_miss[pos] = false;
                    }
                    co_await proc.exec(c.addrCalc);
                    tokens[pos] = co_await proc.load(
                        w.mainAddr(i + o.di, j + o.dj));
                }

                // Sum phase in the schedule's consumption order.
                double sum = 0.0;
                for (unsigned u = 0; u < 9; ++u) {
                    sum += asF64(co_await proc.use(tokens[order[u]]));
                    co_await proc.exec(c.fpAdd);
                }
                (void)is_miss;
                co_await proc.exec(c.fpMul);
                co_await proc.store(w.tempAddr(i, j), asBits(sum / 9.0));
                co_await proc.exec(c.loopOverhead);
                co_await proc.branch();
            }
        }
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);

        // Copy phase: one read miss and one write miss per line.
        for (unsigned i = lo; i < hi; ++i) {
            for (unsigned j = 1; j <= n; ++j) {
                co_await proc.exec(c.addrCalc);
                const std::uint64_t v =
                    co_await proc.loadUse(w.tempAddr(i, j));
                co_await proc.store(w.mainAddr(i, j), v);
                co_await proc.exec(c.loopOverhead);
                co_await proc.branch();
            }
        }
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);
    }
}

void
RelaxWorkload::verify(core::Machine &machine) const
{
    const unsigned d = dim();
    for (unsigned i = 0; i < d; ++i) {
        for (unsigned j = 0; j < d; ++j) {
            const double got = machine.memory().readF64(mainAddr(i, j));
            const double want = expected[static_cast<std::size_t>(i) * d + j];
            const double tol =
                1e-9 * std::max(1.0, std::max(std::fabs(got),
                                              std::fabs(want)));
            if (std::fabs(got - want) > tol) {
                fatal("Relax result mismatch at (%u,%u): got %g want %g",
                      i, j, got, want);
            }
        }
    }
}

} // namespace mcsim::workloads
