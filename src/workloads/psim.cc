#include "workloads/psim.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/layout.hh"

namespace mcsim::workloads
{

PsimWorkload::PsimWorkload(PsimParams params)
    : cfg(params), topo(params.simProcs, 2)
{
    if (!isPowerOf2(cfg.simProcs) || cfg.simProcs < 4 || cfg.simProcs > 64)
        fatal("Psim simProcs must be a power of two in [4,64] (got %u)",
              cfg.simProcs);
    if (cfg.ringCap < 1 || cfg.ringCap > 16)
        fatal("Psim ringCap must be in [1,16] (got %u)", cfg.ringCap);
    if (cfg.payloadWords < 1 || cfg.payloadWords > 32)
        fatal("Psim payloadWords must be in [1,32]");
    if (cfg.hotDests >= cfg.simProcs)
        fatal("Psim hotDests must be < simProcs");
}

void
PsimWorkload::setup(core::Machine &machine)
{
    SharedLayout layout(machine.config().lineBytes);
    queuesBase = layout.allocWords(
        static_cast<std::size_t>(numSwitches()) * 2 *
        (1 + static_cast<std::size_t>(cfg.ringCap) * slotWords()));
    statsBase = layout.allocWords(
        static_cast<std::size_t>(numSwitches()) * statWords);
    statesBase = layout.allocWords(
        static_cast<std::size_t>(cfg.simProcs) * stateWords);
    localBase = layout.allocWords(
        static_cast<std::size_t>(machine.numProcs()) * cfg.localWords);
    deliveredAddr = layout.allocWords(1);
    deliveredLock = layout.allocLock();
    switchLocks.clear();
    for (unsigned g = 0; g < numSwitches(); ++g)
        switchLocks.push_back(layout.allocLock());
    barrier = layout.allocBarrierObj(cfg.barrierKind, machine.numProcs());
    machine.memory().ensure(layout.top());

    // Deterministic, hot-spot-skewed packet destinations.
    Rng rng(cfg.seed);
    packetDests.assign(cfg.simProcs, {});
    for (unsigned sp = 0; sp < cfg.simProcs; ++sp) {
        packetDests[sp].reserve(cfg.packetsPerProc);
        for (unsigned k = 0; k < cfg.packetsPerProc; ++k) {
            unsigned dest;
            if (rng.chance(cfg.hotFraction)) {
                dest = static_cast<unsigned>(rng.below(cfg.hotDests));
            } else {
                dest = static_cast<unsigned>(rng.below(cfg.simProcs));
            }
            packetDests[sp].push_back(dest);
        }
    }

    barrierCtx.assign(machine.numProcs(), {});
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), *this, p, machine.numProcs()));
    }
}

SimTask
PsimWorkload::body(cpu::Processor &proc, PsimWorkload &w, unsigned pid,
                   unsigned n_procs)
{
    const OpCosts &c = w.costs;
    const unsigned n_stages = w.stages();
    const unsigned per_stage = w.switchesPerStage();
    const unsigned slot_words = w.slotWords();
    const std::uint64_t target =
        static_cast<std::uint64_t>(w.cfg.simProcs) * w.cfg.packetsPerProc;

    // Private injection cursors for the sim inputs this processor owns.
    std::vector<unsigned> next_packet(w.cfg.simProcs, 0);

    for (;;) {
        std::uint64_t my_delivered = 0;
        std::uint64_t my_moved = 0;

        // ---- Deliver from the last stage (owned switches) ----
        for (unsigned idx = 0; idx < per_stage; ++idx) {
            const unsigned g = w.swId(n_stages - 1, idx);
            if (g % n_procs != pid)
                continue;
            co_await cpu::lockAcquire(proc, w.switchLocks[g]);
            for (unsigned port = 0; port < 2; ++port) {
                co_await proc.exec(c.addrCalc);
                const std::uint64_t cnt =
                    co_await proc.loadUse(w.countAddr(g, port));
                for (std::uint64_t k = 0; k < cnt; ++k) {
                    const Addr slot =
                        w.slotAddr(g, port, static_cast<unsigned>(k));
                    // Consume header + payload: all loads issued before
                    // the adds (compiler-scheduled), then summed.
                    std::uint64_t toks[33];
                    toks[0] = co_await proc.load(slot);  // header
                    for (unsigned pw = 0; pw < w.cfg.payloadWords; ++pw)
                        toks[1 + pw] =
                            co_await proc.load(slot + 8 + pw * 8);
                    std::uint64_t sum = 0;
                    for (unsigned pw = 0; pw <= w.cfg.payloadWords; ++pw) {
                        sum += co_await proc.use(toks[pw]);
                        co_await proc.exec(c.intOp);
                    }
                    const std::uint64_t acc = co_await proc.loadUse(
                        w.statAddr(g, statWords - 1));
                    co_await proc.store(w.statAddr(g, statWords - 1),
                                        acc + sum);
                    ++my_delivered;
                    co_await proc.branch();
                }
                if (cnt > 0)
                    co_await proc.store(w.countAddr(g, port), 0);
            }
            co_await cpu::lockRelease(proc, w.switchLocks[g]);
        }

        // ---- Advance packets one stage (owned source switches) ----
        for (unsigned s = n_stages - 1; s-- > 0;) {
            for (unsigned idx = 0; idx < per_stage; ++idx) {
                const unsigned g = w.swId(s, idx);
                if (g % n_procs != pid)
                    continue;
                for (unsigned port = 0; port < 2; ++port) {
                    co_await proc.exec(c.addrCalc);
                    // Peek the count without the lock (test-and-test&set
                    // style); re-checked under the lock below.
                    const std::uint64_t peek =
                        co_await proc.syncLoad(w.countAddr(g, port));
                    if (peek == 0)
                        continue;
                    const unsigned out_link = idx * 2 + port;

                    // Move up to movesPerPort head packets; the
                    // destination switch is a function of each packet's
                    // own destination field.
                    for (unsigned mv = 0; mv < w.cfg.movesPerPort; ++mv) {
                    co_await cpu::lockAcquire(proc, w.switchLocks[g]);
                    const std::uint64_t cnt =
                        co_await proc.loadUse(w.countAddr(g, port));
                    if (cnt == 0) {
                        co_await cpu::lockRelease(proc, w.switchLocks[g]);
                        break;
                    }
                    const Addr head = w.slotAddr(g, port, 0);
                    // Issue the header and payload loads back to back
                    // (split load/use), then read the registers.
                    std::uint64_t ptoks[32];
                    const std::uint64_t htok = co_await proc.load(head);
                    for (unsigned pw = 0; pw < w.cfg.payloadWords; ++pw)
                        ptoks[pw] =
                            co_await proc.load(head + 8 + pw * 8);
                    const std::uint64_t dest_field =
                        co_await proc.use(htok);
                    std::uint64_t payload[32];
                    for (unsigned pw = 0; pw < w.cfg.payloadWords; ++pw)
                        payload[pw] = co_await proc.use(ptoks[pw]);

                    const auto hop = w.topo.hop(
                        s + 1, out_link,
                        static_cast<unsigned>(dest_field));
                    const unsigned dg = w.swId(s + 1, hop.switchIdx);

                    // Ordered two-lock protocol: we hold g; dg is in a
                    // later stage so dg > g and ordering is consistent.
                    co_await cpu::lockAcquire(proc, w.switchLocks[dg]);
                    const std::uint64_t dcnt = co_await proc.loadUse(
                        w.countAddr(dg, hop.outPort));
                    bool pushed = false;
                    if (dcnt < w.cfg.ringCap) {
                        const Addr dst = w.slotAddr(
                            dg, hop.outPort,
                            static_cast<unsigned>(dcnt));
                        co_await proc.store(dst, dest_field);
                        for (unsigned pw = 0; pw < w.cfg.payloadWords;
                             ++pw)
                            co_await proc.store(dst + 8 + pw * 8,
                                                payload[pw]);
                        co_await proc.store(w.countAddr(dg, hop.outPort),
                                            dcnt + 1);
                        pushed = true;
                        ++my_moved;
                    }
                    co_await cpu::lockRelease(proc, w.switchLocks[dg]);

                    if (pushed) {
                        // Compact the source ring by one slot.
                        for (std::uint64_t k = 1; k < cnt; ++k) {
                            const Addr from = w.slotAddr(
                                g, port, static_cast<unsigned>(k));
                            const Addr to = w.slotAddr(
                                g, port, static_cast<unsigned>(k - 1));
                            for (unsigned pw = 0; pw < slot_words; ++pw) {
                                const std::uint64_t v =
                                    co_await proc.loadUse(from + pw * 8);
                                co_await proc.store(to + pw * 8, v);
                            }
                        }
                        co_await proc.store(w.countAddr(g, port),
                                            cnt - 1);
                    }
                    co_await cpu::lockRelease(proc, w.switchLocks[g]);
                    if (!pushed)
                        break;
                    }
                }
            }
        }

        // ---- Inject one packet per owned sim input ----
        for (unsigned sp = 0; sp < w.cfg.simProcs; ++sp) {
            if (sp % n_procs != pid)
                continue;
            if (next_packet[sp] >= w.cfg.packetsPerProc)
                continue;
            const unsigned dest = w.packetDests[sp][next_packet[sp]];
            const auto hop = w.topo.hop(0, sp, dest);
            const unsigned g = w.swId(0, hop.switchIdx);
            co_await cpu::lockAcquire(proc, w.switchLocks[g]);
            const std::uint64_t cnt =
                co_await proc.loadUse(w.countAddr(g, hop.outPort));
            if (cnt < w.cfg.ringCap) {
                const Addr dst = w.slotAddr(g, hop.outPort,
                                            static_cast<unsigned>(cnt));
                co_await proc.store(dst, dest);
                for (unsigned pw = 0; pw < w.cfg.payloadWords; ++pw)
                    co_await proc.store(dst + 8 + pw * 8,
                                        (sp + 1) * 1000ull + pw);
                co_await proc.store(w.countAddr(g, hop.outPort), cnt + 1);
                next_packet[sp] += 1;
            }
            co_await cpu::lockRelease(proc, w.switchLocks[g]);

            // Per-input bookkeeping: high-locality private-line updates.
            for (unsigned sw_word = 0; sw_word < stateWords; ++sw_word) {
                const std::uint64_t v = co_await proc.loadUse(
                    w.stateAddr(sp, sw_word));
                co_await proc.store(w.stateAddr(sp, sw_word), v + 1);
            }
        }

        // ---- Per-switch statistics (owner-only, high locality) ----
        for (unsigned g = 0; g < w.numSwitches(); ++g) {
            if (g % n_procs != pid)
                continue;
            for (unsigned word = 0; word < statWords; ++word) {
                const std::uint64_t v =
                    co_await proc.loadUse(w.statAddr(g, word));
                co_await proc.store(w.statAddr(g, word),
                                    v + (word == 0 ? my_moved : 1));
                co_await proc.exec(c.intOp);
            }
        }

        // ---- Private event-list maintenance (high-locality refs) ----
        for (unsigned word = 0; word < w.cfg.localWords; ++word) {
            const Addr a = w.localBase +
                           (static_cast<Addr>(pid) * w.cfg.localWords +
                            word) *
                               8;
            const std::uint64_t v = co_await proc.loadUse(a);
            co_await proc.store(a, v + 1);
            co_await proc.exec(c.intOp);
        }

        // ---- Publish delivered count, synchronize, test termination ----
        if (my_delivered > 0) {
            co_await cpu::lockAcquire(proc, w.deliveredLock);
            const std::uint64_t d =
                co_await proc.loadUse(w.deliveredAddr);
            co_await proc.store(w.deliveredAddr, d + my_delivered);
            co_await cpu::lockRelease(proc, w.deliveredLock);
        }
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);
        const std::uint64_t done = co_await proc.loadUse(w.deliveredAddr);
        co_await proc.exec(c.intOp);
        const bool finished = done >= target;
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);
        if (finished)
            co_return;
    }
}

void
PsimWorkload::verify(core::Machine &machine) const
{
    const std::uint64_t target =
        static_cast<std::uint64_t>(cfg.simProcs) * cfg.packetsPerProc;
    const std::uint64_t delivered =
        machine.memory().readU64(deliveredAddr);
    if (delivered != target) {
        fatal("Psim delivered %llu packets, expected %llu",
              static_cast<unsigned long long>(delivered),
              static_cast<unsigned long long>(target));
    }
    for (unsigned g = 0; g < numSwitches(); ++g) {
        for (unsigned port = 0; port < 2; ++port) {
            if (machine.memory().readU64(countAddr(g, port)) != 0)
                fatal("Psim queue (%u,%u) not drained", g, port);
        }
    }
}

std::uint64_t
PsimWorkload::resultFingerprint(core::Machine &machine) const
{
    const auto &memory = machine.memory();
    std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
    auto mix = [&h](std::uint64_t v) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(memory.readU64(deliveredAddr));
    for (unsigned g = 0; g < numSwitches(); ++g)
        for (unsigned port = 0; port < 2; ++port)
            mix(memory.readU64(countAddr(g, port)));
    return h;
}

} // namespace mcsim::workloads
