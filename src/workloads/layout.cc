#include "workloads/layout.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mcsim::workloads
{

SharedLayout::SharedLayout(unsigned line_bytes, Addr base)
    : line(line_bytes), next(base)
{
    if (!isPowerOf2(line_bytes) || line_bytes < 8)
        fatal("layout line size must be a power of two >= 8 (got %u)",
              line_bytes);
    // Keep the base itself line-aligned so array rows start on lines.
    next = (next + line - 1) & ~static_cast<Addr>(line - 1);
}

Addr
SharedLayout::alloc(std::size_t bytes, std::size_t align)
{
    MCSIM_ASSERT(isPowerOf2(align), "alignment must be a power of two");
    next = (next + align - 1) & ~static_cast<Addr>(align - 1);
    const Addr at = next;
    next += bytes;
    return at;
}

Addr
SharedLayout::allocWords(std::size_t n)
{
    return alloc(n * 8, line);
}

cpu::LockVar
SharedLayout::allocLock()
{
    return cpu::LockVar{alloc(line, line)};
}

cpu::BarrierVar
SharedLayout::allocBarrier()
{
    cpu::BarrierVar b;
    b.lock = alloc(line, line);
    b.count = alloc(line, line);
    b.sense = alloc(line, line);
    return b;
}

cpu::BarrierObj
SharedLayout::allocBarrierObj(cpu::BarrierKind kind, unsigned n_procs)
{
    cpu::BarrierObj obj;
    obj.kind = kind;
    if (kind == cpu::BarrierKind::Central) {
        obj.central = allocBarrier();
    } else {
        obj.diss.nProcs = n_procs;
        obj.diss.rounds = std::max(1u, logCeil(n_procs, 2));
        obj.diss.flagsBase =
            allocWords(static_cast<std::size_t>(obj.diss.rounds) * n_procs);
    }
    return obj;
}

} // namespace mcsim::workloads
