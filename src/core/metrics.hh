/**
 * @file
 * Derived, paper-facing metrics for one simulation run: run time, hit
 * rates by access type, reference pacing, hot-spot skew -- the quantities
 * Tables 2-9 and Figures 2-9 are built from.
 */

#ifndef MCSIM_CORE_METRICS_HH
#define MCSIM_CORE_METRICS_HH

#include <cstdint>
#include <string>

#include "core/machine.hh"
#include "obs/histogram.hh"
#include "obs/stall.hh"
#include "sim/types.hh"

namespace mcsim::core
{

/** Summary of one completed run. */
struct RunMetrics
{
    Tick cycles = 0;

    /** Per-processor averages (the paper reports per-proc thousands). */
    double readsPerProc = 0;
    double writesPerProc = 0;
    double syncOpsPerProc = 0;

    /** Hit rates over all processors, in [0,1]. */
    double readHitRate = 0;
    double writeHitRate = 0;
    double hitRate = 0;

    std::uint64_t totalReads = 0;
    std::uint64_t totalWrites = 0;
    std::uint64_t totalSyncOps = 0;
    std::uint64_t invalidationMisses = 0;
    std::uint64_t totalMisses = 0;

    std::uint64_t bufferBypasses = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;
    std::uint64_t releasesDeferred = 0;

    /** Invariant-checker results (zero when checking is disabled). @{ */
    std::uint64_t checkViolations = 0;   ///< all kinds summed
    std::uint64_t checkLineAudits = 0;
    std::uint64_t checkAccessesChecked = 0;
    std::uint64_t checkOrderingChecked = 0;
    /** @} */

    /** Fault injection and recovery (src/fault/); all zero when faults
     *  are off, which the golden baseline checks exactly. @{ */
    std::uint64_t faultsInjected = 0;     ///< FaultStats::total()
    std::uint64_t protocolRetries = 0;    ///< cache re-sends (timeout/NACK)
    std::uint64_t protocolNacks = 0;      ///< NACKs received by caches
    std::uint64_t staleProtocolMsgs = 0;  ///< discarded as stale/duplicate
    /** @} */

    /** Memory-module busy-cycle skew: max/min utilization ratio. */
    double moduleSkew = 1.0;
    /** Mean response-network message latency (cycles). */
    double avgRespLatency = 0;
    /** Mean miss service time seen by the caches (cycles); the
     *  uncontended floor is 18 at 16 processors. */
    double avgMissLatency = 0;
    /** Cycle-weighted busy-MSHR integral summed over all caches. */
    std::uint64_t mshrBusyCycles = 0;
    /** Mean busy MSHRs per processor over the run (in [0, numMshrs]). */
    double avgMshrOccupancy = 0;

    /** Exact stall-cause attribution summed over all processors; per
     *  processor busy + stalls == finishedAt, so machine-wide
     *  breakdown.accounted() + idleCycles == cycles * numProcs. */
    obs::StallBreakdown breakdown;
    /** Cycles after a processor's workload finished, to the run end. */
    std::uint64_t idleCycles = 0;

    /** Merged log2 latency histograms (fixed component order, so the
     *  summaries are identical across sweep thread counts). @{ */
    obs::LatencyHistogram missLatencyHist;  ///< all caches
    obs::LatencyHistogram netTransitHist;   ///< request + response nets
    obs::LatencyHistogram memQueueHist;     ///< all memory modules
    /** @} */

    /** Mean cycles between successive reads / writes (paper Table 9). */
    double cyclesBetweenReads() const
    {
        return readsPerProc > 0 ? static_cast<double>(cycles) / readsPerProc
                                : 0.0;
    }
    double cyclesBetweenWrites() const
    {
        return writesPerProc > 0
                   ? static_cast<double>(cycles) / writesPerProc
                   : 0.0;
    }

    /** Extract from a machine that has finished running. */
    static RunMetrics fromMachine(const Machine &machine, Tick run_ticks);

    /** One compact human-readable line. */
    std::string summary() const;

    /**
     * Flat name -> value export of every field above (names match the
     * member names). This is the canonical machine-readable form of one
     * run: the sweep engine (src/exp/) serializes it to JSON and the
     * golden-baseline checker diffs it metric by metric.
     */
    StatSet toStatSet() const;
};

/**
 * Relative performance gain of @p other over @p base in percent
 * (the y-axis of paper Figures 4-8): positive when @p other is faster.
 */
double percentGain(const RunMetrics &base, const RunMetrics &other);

/** Absolute benefit in kilocycles (paper Tables 3-6). */
double absoluteGainKCycles(const RunMetrics &base, const RunMetrics &other);

} // namespace mcsim::core

#endif // MCSIM_CORE_METRICS_HH
