/**
 * @file
 * Bounded ring-buffer event tracer (DESIGN.md section 10).
 *
 * Components emit fixed-size duration spans (processor busy/stall
 * intervals, cache miss services, switch port occupancy, DRAM
 * reservations, directory queueing). The ring overwrites the oldest
 * events when full, so memory use is bounded and a trace of the *end*
 * of a run is always available.
 *
 * Two kill switches keep the off path near-free:
 *  - runtime: span() is a single predictable-branch early return while
 *    the tracer is disarmed (and components hold a nullptr when no
 *    tracer is wired at all);
 *  - compile time: defining MCSIM_OBS_NO_TRACING compiles span() to
 *    nothing.
 */

#ifndef MCSIM_OBS_TRACER_HH
#define MCSIM_OBS_TRACER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace mcsim::obs
{

/** Component class a span belongs to (one Perfetto process each). */
enum class Track : std::uint8_t
{
    Proc,        ///< processor timeline (busy / stall-cause spans)
    Cache,       ///< per-cache miss-service spans
    ReqSwitch,   ///< request-network switch output ports
    RespSwitch,  ///< response-network switch output ports
    Module,      ///< memory-module DRAM and directory-queue spans
};

inline constexpr unsigned numTracks = 5;

const char *trackName(Track track);

/** What a span represents. The six Stall* kinds mirror StallCause in
 *  order, so processors can translate a cause directly into a kind. */
enum class SpanKind : std::uint8_t
{
    Busy,
    StallLoadMiss,
    StallStoreMshr,
    StallBuffer,
    StallFenceSync,
    StallAcquire,
    StallRelease,
    MissService,  ///< cache: request issue to consumer completion
    PortBusy,     ///< switch output port occupied by a message's flits
    DramBusy,     ///< module: DRAM reservation (read or writeback)
    DirQueue,     ///< module: request queued behind a blocked line
    FaultRetry,   ///< cache: timeout/NACK-driven re-issue (src/fault/)
};

const char *spanKindName(SpanKind kind);

/** One recorded span: [begin, begin + dur) on track/id. */
struct TraceEvent
{
    Tick begin = 0;
    Tick dur = 0;
    Addr arg = 0;  ///< line address (memory-side spans); else 0
    std::uint32_t id = 0;
    Track track = Track::Proc;
    SpanKind kind = SpanKind::Busy;
};

/** The bounded ring of TraceEvents. */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity_events);

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Runtime kill switch. @{ */
    bool armed() const { return on; }
    void arm(bool enable) { on = enable; }
    /** @} */

    /** Record a span; near-free when disarmed or compiled out. */
    void
    span(Track track, std::uint32_t id, SpanKind kind, Tick begin,
         Tick dur, Addr arg = 0)
    {
#ifdef MCSIM_OBS_NO_TRACING
        (void)track;
        (void)id;
        (void)kind;
        (void)begin;
        (void)dur;
        (void)arg;
#else
        if (!on)
            return;
        push(TraceEvent{begin, dur, arg, id, track, kind});
#endif
    }

    std::size_t size() const { return count; }
    std::size_t capacity() const { return buf.size(); }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return drops; }

    /** Visit the retained events oldest-first. */
    void forEach(const std::function<void(const TraceEvent &)> &fn) const;

  private:
    void push(const TraceEvent &event);

    std::vector<TraceEvent> buf;
    std::size_t head = 0;  ///< index of the oldest event
    std::size_t count = 0;
    std::uint64_t drops = 0;
    bool on = true;
};

} // namespace mcsim::obs

#endif // MCSIM_OBS_TRACER_HH
