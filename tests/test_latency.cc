/**
 * @file
 * Latency calibration tests (DESIGN.md): the uncontended first-word miss
 * latency must be 18 cycles on the 16-processor machine and 20 on the
 * 32-processor machine (paper section 3.1), load hits must exhibit the
 * delayed-load latency, and coherence round trips must cost more.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "cpu/processor.hh"
#include "sim/task.hh"

using namespace mcsim;

namespace
{

SimTask
timedLoad(cpu::Processor &p, Addr addr, Tick &start, Tick &end)
{
    start = p.now();
    (void)co_await p.loadUse(addr);
    end = p.now();
}

SimTask
timedStoreThenLoad(cpu::Processor &p, Addr addr, Tick &start, Tick &end)
{
    co_await p.store(addr, 1);  // brings the line in (Modified)
    co_await p.exec(100);       // let the fill settle
    start = p.now();
    (void)co_await p.loadUse(addr + 8);
    end = p.now();
}

SimTask
oneStore(cpu::Processor &p, Addr addr, bool &flag)
{
    co_await p.store(addr, 42);
    // Wait long enough for the fill to settle before finishing.
    co_await p.exec(200);
    flag = true;
}

core::MachineConfig
config(unsigned procs)
{
    core::MachineConfig cfg;
    cfg.numProcs = procs;
    cfg.numModules = procs == 32 ? 32 : 16;
    cfg.cacheBytes = 2048;
    cfg.lineBytes = 16;
    return cfg;
}

} // namespace

TEST(Latency, UncontendedMissIs18CyclesWith16Procs)
{
    core::Machine machine(config(16));
    Tick start = 0, end = 0;
    machine.startWorkload(0, timedLoad(machine.proc(0), 0x1000, start,
                                       end));
    machine.run();
    EXPECT_EQ(end - start, 18u);
}

TEST(Latency, UncontendedMissIs20CyclesWith32Procs)
{
    core::Machine machine(config(32));
    Tick start = 0, end = 0;
    machine.startWorkload(0, timedLoad(machine.proc(0), 0x1000, start,
                                       end));
    machine.run();
    EXPECT_EQ(end - start, 20u);
}

TEST(Latency, MissLatencyIndependentOfLineSize)
{
    // Pipelined network + critical-word-first fill: the first word takes
    // 18 cycles regardless of line size (paper section 3.1).
    for (unsigned line : {8u, 16u, 64u}) {
        auto cfg = config(16);
        cfg.lineBytes = line;
        core::Machine machine(cfg);
        Tick start = 0, end = 0;
        machine.startWorkload(0, timedLoad(machine.proc(0), 0x1000, start,
                                           end));
        machine.run();
        EXPECT_EQ(end - start, 18u) << "line=" << line;
    }
}

TEST(Latency, HitTakesLoadDelay)
{
    auto cfg = config(16);
    core::Machine machine(cfg);
    Tick start = 0, end = 0;
    // The store misses and installs the line M; the load to the same
    // line then hits with the 4-cycle delayed-load latency.
    machine.startWorkload(0, timedStoreThenLoad(machine.proc(0), 0x2000,
                                                start, end));
    machine.run();
    EXPECT_EQ(end - start, cfg.loadDelay);
}

TEST(Latency, TwoCycleDelayVariant)
{
    auto cfg = config(16);
    cfg.loadDelay = 2;
    cfg.branchDelay = 2;
    core::Machine machine(cfg);
    Tick start = 0, end = 0;
    machine.startWorkload(0, timedStoreThenLoad(machine.proc(0), 0x2000,
                                                start, end));
    machine.run();
    EXPECT_EQ(end - start, 2u);
}

TEST(Latency, DirtyRemoteMissCostsARecallRoundTrip)
{
    auto cfg = config(16);
    core::Machine machine(cfg);
    bool stored = false;
    Tick start = 0, end = 0;
    machine.startWorkload(0, oneStore(machine.proc(0), 0x3000, stored));
    machine.run();
    ASSERT_TRUE(stored);

    auto cfg2 = config(16);
    // The cross-processor handoff below is deliberately unsynchronized
    // (we are timing the recall, not modeling a correct program), so
    // keep coherence auditing on but mute the race detector.
    cfg2.check.races = false;
    core::Machine machine2(cfg2);
    // Reuse a fresh machine: first store on proc 0, then timed load on
    // proc 1 AFTER the store settles, so the line is dirty-remote.
    bool stored2 = false;
    machine2.startWorkload(0, oneStore(machine2.proc(0), 0x3000, stored2));
    machine2.startWorkload(1, [](cpu::Processor &p, Addr a, Tick &s,
                                 Tick &e) -> SimTask {
        co_await p.exec(300);  // let proc 0 finish its store + fill
        s = p.now();
        (void)co_await p.loadUse(a);
        e = p.now();
    }(machine2.proc(1), 0x3000, start, end));
    machine2.run();
    EXPECT_GT(end - start, 18u);  // recall adds a third network traversal
    EXPECT_LE(end - start, 45u);
}
