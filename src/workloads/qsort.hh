/**
 * @file
 * Qsort: dynamically scheduled parallel quicksort (paper section 3.3;
 * original is Kahan & Ruzzo's "parallel quicksand" sorting 500,000
 * integers).
 *
 * Work units (segments of the array) are pushed onto and popped off a
 * lock-protected shared stack on a FCFS basis. Because any timing change
 * alters which processor pops which segment, the partitioning of work --
 * and hence the reference counts -- varies between consistency models,
 * exactly the run-to-run variability the paper discusses. Sequential
 * partition scans over a data set much larger than the cache give the low
 * hit rates of Table 2.
 *
 * Substitution note (DESIGN.md): the original cooperates on a single
 * parallel partition; we use the standard shared-stack formulation, which
 * preserves dynamic scheduling, sequential scanning, and the cache-capacity
 * regime.
 */

#ifndef MCSIM_WORKLOADS_QSORT_HH
#define MCSIM_WORKLOADS_QSORT_HH

#include <vector>

#include "cpu/sync.hh"
#include "workloads/costs.hh"
#include "workloads/workload.hh"

namespace mcsim::workloads
{

/** Qsort configuration. */
struct QsortParams
{
    /** Elements to sort (paper: 500,000; scaled default: 65,536). */
    unsigned n = 65536;
    /** Below this size a processor sorts the segment locally. */
    unsigned threshold = 64;
    /** Segments at least this large are partitioned cooperatively by all
     *  processors with strided scans (the paper's "every nth element"
     *  phase). 0 disables the cooperative phase. */
    unsigned parallelCutoff = 8192;
    std::uint64_t seed = 424242;
    /** Barrier used by the cooperative partition phase. */
    cpu::BarrierKind barrierKind = cpu::BarrierKind::Dissemination;
};

/** Parallel quicksort benchmark. */
class QsortWorkload : public Workload
{
  public:
    explicit QsortWorkload(QsortParams params = {});

    std::string name() const override { return "Qsort"; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;

    /** The sorted array only: the work stack and partition scratch
     *  record which processor popped which segment, which legitimately
     *  varies with timing. */
    std::uint64_t
    resultFingerprint(core::Machine &machine) const override
    {
        return machine.memory().fingerprint(dataBase,
                                            std::size_t(cfg.n) * 4);
    }

  private:
    static SimTask body(cpu::Processor &proc, QsortWorkload &w,
                        unsigned pid, unsigned n_procs);

    /** Elements are 4-byte integers, as in the paper's Qsort. */
    Addr elemAddr(std::uint64_t idx) const { return dataBase + idx * 4; }

    QsortParams cfg;
    OpCosts costs;
    Addr dataBase = 0;
    /** Shared work stack: top index then packed (lo, hi) words. */
    Addr stackTop = 0;
    Addr stackBase = 0;
    /** Count of segments not yet fully sorted (termination detection). */
    Addr workCount = 0;
    /** Cooperative-partition scratch: aux copy and per-proc counts. */
    Addr auxBase = 0;
    Addr countsBase = 0;
    cpu::LockVar stackLock{};
    cpu::BarrierObj barrier{};
    std::vector<cpu::BarrierCtx> barrierCtx;
    std::uint64_t checksum = 0;  ///< input multiset checksum
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_QSORT_HH
