/**
 * @file
 * Omega (shuffle-exchange) network topology and destination-tag routing.
 *
 * The network is built from radix x radix crossbar switches arranged in
 * ceil(log_radix(nPorts)) stages, with a radix-way perfect shuffle ahead of
 * every stage. Routing is destination-tag: at stage s the switch output port
 * is digit (stages-1-s) of the destination, written base radix. The path
 * between any (input, output) pair is unique, which is what produces the
 * blocking behaviour and hot-spot contention the paper discusses for Psim.
 */

#ifndef MCSIM_NET_TOPOLOGY_HH
#define MCSIM_NET_TOPOLOGY_HH

#include <cstdint>

#include "sim/types.hh"

namespace mcsim::net
{

/** Pure routing math for one Omega network; no timing state. */
class OmegaTopology
{
  public:
    /**
     * @param n_ports number of usable input/output ports (processors or
     *                memory modules); need not be a power of the radix
     * @param radix switch arity (the paper uses 4x4 switches)
     */
    OmegaTopology(unsigned n_ports, unsigned radix);

    /** Usable ports. */
    unsigned ports() const { return nPorts; }

    /** Switch arity. */
    unsigned radix() const { return switchRadix; }

    /** Number of switch stages (paper: 2 for 16 procs, 3 for 32). */
    unsigned stages() const { return nStages; }

    /** Link count per stage boundary: radix^stages >= ports. */
    unsigned width() const { return linkWidth; }

    /** Switches per stage. */
    unsigned switchesPerStage() const { return linkWidth / switchRadix; }

    /** Radix-way perfect shuffle applied ahead of each stage. */
    unsigned shuffle(unsigned link) const;

    /** Destination digit consumed at stage @p stage (0 = first stage). */
    unsigned destDigit(unsigned dest, unsigned stage) const;

    /** One stage traversal: which switch/ports a message uses. */
    struct Hop
    {
        unsigned switchIdx;  ///< switch within the stage
        unsigned inPort;     ///< switch input port
        unsigned outPort;    ///< switch output port (routing decision)
        unsigned outLink;    ///< global link id entering the next stage
    };

    /**
     * Compute the hop taken at @p stage by a message currently on global
     * link @p link and destined for output port @p dest.
     */
    Hop hop(unsigned stage, unsigned link, unsigned dest) const;

    /**
     * Full route check: the link a message ends on after all stages.
     * Must equal @p dest for every (src, dest) pair; unit tested.
     */
    unsigned route(unsigned src, unsigned dest) const;

  private:
    unsigned nPorts;
    unsigned switchRadix;
    unsigned nStages;
    unsigned linkWidth;
};

} // namespace mcsim::net

#endif // MCSIM_NET_TOPOLOGY_HH
