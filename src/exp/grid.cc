#include "exp/grid.hh"

#include "fault/fault_config.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trace/generators.hh"
#include "trace/reader.hh"
#include "trace/replay.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/synthetic.hh"

namespace mcsim::exp
{

const char *
scaleName(Scale scale)
{
    switch (scale) {
      case Scale::Quick: return "quick";
      case Scale::Scaled: return "scaled";
      case Scale::Full: return "full";
    }
    return "?";
}

Scale
scaleFromName(const std::string &name)
{
    if (name == "quick")
        return Scale::Quick;
    if (name == "scaled")
        return Scale::Scaled;
    if (name == "full")
        return Scale::Full;
    fatal("unknown scale '%s' (quick/scaled/full)", name.c_str());
}

unsigned
smallCache(Scale scale)
{
    switch (scale) {
      case Scale::Quick: return 4 * 1024;
      case Scale::Scaled: return 8 * 1024;
      case Scale::Full: return 16 * 1024;
    }
    return 0;
}

unsigned
largeCache(Scale scale)
{
    switch (scale) {
      case Scale::Quick: return 8 * 1024;
      case Scale::Scaled: return 32 * 1024;
      case Scale::Full: return 64 * 1024;
    }
    return 0;
}

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {"Gauss", "Qsort",
                                                   "Relax", "Psim"};
    return names;
}

const std::vector<std::string> &
traceBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "TraceZipf", "TraceBurst", "TraceRing", "TraceLock"};
    return names;
}

std::string
SweepPoint::id() const
{
    std::string base =
        strprintf("%s/%s/p%u/c%u/l%u/d%u/%s/s%llu", benchmark.c_str(),
                  core::modelName(model), numProcs, cacheBytes, lineBytes,
                  delay, workloads::relaxScheduleName(schedule),
                  static_cast<unsigned long long>(seed));
    // The "off" preset is behaviorally identical to no preset at all;
    // keeping the ids (and hence the derived seeds) equal lets a
    // fault-off sweep be checked against the golden baseline point for
    // point, proving the fault plumbing causes zero drift when disabled.
    if (!faultPreset.empty() && faultPreset != "off")
        base += strprintf("/F%s", faultPreset.c_str());
    return base;
}

std::uint64_t
SweepPoint::derivedSeed() const
{
    SweepPoint seedless = *this;
    seedless.seed = 0;
    // splitmix64 spreads the hash so workloads that fold the seed with
    // small constants still see well-mixed high bits.
    return splitmix64(fnv1a(seedless.id()));
}

core::MachineConfig
SweepPoint::machineConfig() const
{
    core::MachineConfig cfg;
    cfg.numProcs = numProcs;
    cfg.numModules = numProcs;
    cfg.model = model;
    cfg.cacheBytes = cacheBytes;
    cfg.lineBytes = lineBytes;
    cfg.loadDelay = delay;
    cfg.branchDelay = delay;
    if (maxCycles) {
        cfg.maxCycles = maxCycles;
    } else if (scale == Scale::Quick) {
        // The per-job timeout: a diverging quick job fails fast instead
        // of eating the 4G-cycle global default.
        cfg.maxCycles = 100'000'000ull;
    }
    cfg.check.mode =
        runChecks ? check::CheckMode::Fatal : check::CheckMode::Off;
    cfg.trace.record = recordTrace;
    if (!faultPreset.empty()) {
        cfg.fault = fault::faultPreset(faultPreset);
        // A distinct chain from the workload seed, so fault decisions and
        // workload data never correlate.
        cfg.fault.seed = splitmix64(derivedSeed() ^ 0xFA171FA171FA171Full);
    }
    return cfg;
}

namespace
{

/** Synthetic fuzz parameters, all derived from the point seed. */
workloads::SyntheticParams
syntheticParams(std::uint64_t seed)
{
    Rng rng(seed);
    workloads::SyntheticParams p;
    p.seed = seed;
    p.refsPerProc =
        static_cast<unsigned>(rng.between(600, 1200));
    p.storeFraction = 0.1 + 0.4 * rng.uniform();
    p.sharedFraction = 0.1 + 0.3 * rng.uniform();
    p.sharedWords = static_cast<unsigned>(rng.between(128, 512));
    p.execBetween = static_cast<unsigned>(rng.between(0, 8));
    p.lockEvery =
        rng.chance(0.5) ? static_cast<unsigned>(rng.between(16, 64)) : 0;
    p.barrierEvery =
        rng.chance(0.5) ? static_cast<unsigned>(rng.between(64, 256)) : 0;
    return p;
}

/**
 * Generator knobs for a trace-replay sweep point. Everything derives
 * from the point (benchmark, scale, procs, seed), so two makeWorkload
 * calls on equal points produce byte-identical traces -- which is what
 * lets the chaos harness compare a faulted twin's fingerprint against
 * its baseline's.
 */
trace::GeneratorParams
tracePointParams(const std::string &benchmark, Scale scale,
                 unsigned procs, std::uint64_t seed)
{
    trace::GeneratorParams p;
    if (benchmark == "TraceZipf")
        p.kind = trace::Generator::Zipfian;
    else if (benchmark == "TraceBurst")
        p.kind = trace::Generator::Bursty;
    else if (benchmark == "TraceRing")
        p.kind = trace::Generator::Ring;
    else if (benchmark == "TraceLock")
        p.kind = trace::Generator::LockStorm;
    else
        fatal("unknown trace benchmark '%s'", benchmark.c_str());
    p.procs = procs;
    p.opsPerProc = scale == Scale::Full ? 20000
                   : scale == Scale::Scaled ? 4000
                                            : 800;
    p.seed = seed ? seed : 1;
    return p;
}

} // namespace

std::unique_ptr<workloads::Workload>
SweepPoint::makeWorkload() const
{
    if (benchmark.rfind("Trace", 0) == 0) {
        auto bytes = trace::generateTraceBytes(
            tracePointParams(benchmark, scale, numProcs, seed));
        return std::make_unique<trace::TraceWorkload>(
            std::make_shared<trace::MemorySource>(std::move(bytes)),
            benchmark);
    }
    if (benchmark == "Gauss") {
        workloads::GaussParams p;
        p.n = scale == Scale::Full ? 250
              : scale == Scale::Scaled ? 150
                                       : 64;
        if (seed)
            p.seed = seed;
        return std::make_unique<workloads::GaussWorkload>(p);
    }
    if (benchmark == "Qsort") {
        workloads::QsortParams p;
        p.n = scale == Scale::Full ? 500000
              : scale == Scale::Scaled ? 65536
                                       : 8192;
        if (scale == Scale::Quick)
            p.parallelCutoff = 2048;
        if (seed)
            p.seed = seed;
        return std::make_unique<workloads::QsortWorkload>(p);
    }
    if (benchmark == "Relax") {
        workloads::RelaxParams p;
        p.interior = scale == Scale::Full ? 512
                     : scale == Scale::Scaled ? 192
                                              : 64;
        p.iterations = scale == Scale::Full ? 8
                       : scale == Scale::Scaled ? 3
                                                : 2;
        p.schedule = schedule;
        if (seed)
            p.seed = seed;
        return std::make_unique<workloads::RelaxWorkload>(p);
    }
    if (benchmark == "Psim") {
        workloads::PsimParams p;
        p.simProcs = scale == Scale::Quick ? 8 : 16;
        p.packetsPerProc = scale == Scale::Full ? 513
                           : scale == Scale::Scaled ? 96
                                                    : 24;
        if (seed)
            p.seed = seed;
        return std::make_unique<workloads::PsimWorkload>(p);
    }
    if (benchmark == "Synthetic")
        return std::make_unique<workloads::SyntheticWorkload>(
            syntheticParams(seed ? seed : 99));
    fatal("unknown benchmark '%s'", benchmark.c_str());
}

SweepPoint
paperPoint(const std::string &benchmark, core::Model model, Scale scale,
           bool big_cache, unsigned line_bytes, unsigned procs,
           unsigned delay, workloads::RelaxSchedule schedule)
{
    SweepPoint p;
    p.benchmark = benchmark;
    p.model = model;
    p.scale = scale;
    p.numProcs = procs;
    p.cacheBytes = big_cache ? largeCache(scale) : smallCache(scale);
    p.lineBytes = line_bytes;
    p.delay = delay;
    p.schedule = schedule;
    return p;
}

namespace
{

const std::vector<unsigned> &
lineSizes()
{
    static const std::vector<unsigned> sizes = {8, 16, 64};
    return sizes;
}

/** benchmark x model x cache x line cross product. */
void
crossInto(Grid &grid, const std::vector<std::string> &benchmarks,
          const std::vector<core::Model> &models, Scale scale,
          const std::vector<bool> &caches, unsigned procs = 16,
          unsigned delay = 4)
{
    for (const auto &bench : benchmarks)
        for (core::Model model : models)
            for (bool big : caches)
                for (unsigned line : lineSizes())
                    grid.points.push_back(paperPoint(
                        bench, model, scale, big, line, procs, delay));
}

Grid
quickGrid()
{
    Grid grid{"quick", {}};
    for (const auto &bench : benchmarkNames()) {
        for (core::Model model : core::allModels) {
            SweepPoint p = paperPoint(bench, model, Scale::Quick,
                                      /*big_cache=*/false,
                                      /*line_bytes=*/16, /*procs=*/8);
            p.seed = p.derivedSeed();
            grid.points.push_back(std::move(p));
        }
    }
    return grid;
}

/** quick's shape over the 4 trace generators (golden-pinned like it). */
Grid
traceQuickGrid()
{
    Grid grid{"trace-quick", {}};
    for (const auto &bench : traceBenchmarkNames()) {
        for (core::Model model : core::allModels) {
            SweepPoint p = paperPoint(bench, model, Scale::Quick,
                                      /*big_cache=*/false,
                                      /*line_bytes=*/16, /*procs=*/8);
            p.seed = p.derivedSeed();
            grid.points.push_back(std::move(p));
        }
    }
    return grid;
}

} // namespace

const std::vector<std::string> &
gridNames()
{
    static const std::vector<std::string> names = {
        "quick", "trace-quick", "fig2", "fig4",   "fig5",      "fig6",
        "fig7",  "fig8",        "fig9", "table2", "tables3_6"};
    return names;
}

Grid
namedGrid(const std::string &name, Scale scale)
{
    using core::Model;
    Grid grid{name, {}};
    if (name == "quick")
        return quickGrid();
    if (name == "trace-quick")
        return traceQuickGrid();
    if (name == "fig2" || name == "table2") {
        crossInto(grid, benchmarkNames(), {Model::SC1}, scale,
                  {false, true});
        return grid;
    }
    if (name == "fig4" || name == "fig5") {
        crossInto(grid, benchmarkNames(),
                  {Model::SC1, Model::SC2, Model::WO1, Model::WO2,
                   Model::RC},
                  scale, {name == "fig5"});
        return grid;
    }
    if (name == "fig6") {
        crossInto(grid, {"Gauss"},
                  {Model::SC1, Model::SC2, Model::WO1, Model::RC}, scale,
                  {false, true}, /*procs=*/32);
        return grid;
    }
    if (name == "fig7" || name == "fig8") {
        crossInto(grid, benchmarkNames(),
                  {Model::BSC1, Model::SC1, Model::BWO1, Model::WO1},
                  scale, {name == "fig8"});
        return grid;
    }
    if (name == "fig9") {
        using workloads::RelaxSchedule;
        const struct
        {
            Model model;
            RelaxSchedule schedule;
        } variants[] = {
            {Model::SC1, RelaxSchedule::Default},
            {Model::SC1, RelaxSchedule::OptimalSC},
            {Model::SC1, RelaxSchedule::BadSC},
            {Model::WO1, RelaxSchedule::Default},
            {Model::WO1, RelaxSchedule::OptimalWO},
            {Model::WO1, RelaxSchedule::BadWO},
        };
        for (bool big : {false, true})
            for (const auto &v : variants)
                for (unsigned line : lineSizes())
                    grid.points.push_back(
                        paperPoint("Relax", v.model, scale, big, line, 16,
                                   4, v.schedule));
        return grid;
    }
    if (name == "tables3_6") {
        for (unsigned delay : {2u, 4u})
            crossInto(grid, benchmarkNames(), {Model::SC1, Model::WO1},
                      scale, {false, true}, 16, delay);
        return grid;
    }
    fatal("unknown grid '%s'", name.c_str());
}

Grid
fuzzGrid(unsigned count, std::uint64_t base_seed)
{
    Grid grid{"fuzz", {}};
    for (unsigned i = 0; i < count; ++i) {
        SweepPoint p;
        p.benchmark = "Synthetic";
        p.scale = Scale::Quick;
        p.numProcs = 4;
        p.cacheBytes = 2048;
        p.lineBytes = 16;
        p.seed = splitmix64(base_seed + i);
        // Vary the model with the seed so the fuzz sweep exercises every
        // implementation's ordering rules.
        p.model = core::allModels[p.seed % std::size(core::allModels)];
        p.recordTrace = true;
        p.runChecks = true;
        grid.points.push_back(std::move(p));
    }
    return grid;
}

} // namespace mcsim::exp
