/**
 * @file
 * Randomized stress tests: adversarial access streams hammer the
 * coherence protocol across every consistency model, then the machine
 * must quiesce with caches and directory in agreement and all functional
 * invariants intact. These are the tests that shake out protocol races
 * (recall-vs-writeback, invalidate-during-fill, MSHR merge windows).
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/machine.hh"
#include "cpu/sync.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "workloads/layout.hh"

using namespace mcsim;
using core::Model;

namespace
{

/**
 * Hammer a tiny shared region (heavy false sharing, constant recalls and
 * invalidations) with a per-processor deterministic mix of loads, split
 * load/use pairs, and stores. Lock-protected slots carry a functional
 * check: each slot counts increments and must total exactly the number
 * of increments performed.
 */
SimTask
hammer(cpu::Processor &p, Addr region, unsigned region_words,
       cpu::LockVar lock, Addr counter, unsigned ops, unsigned pid,
       std::uint64_t *done_increments)
{
    Rng rng(0xfeedULL + pid * 7919);
    std::uint64_t increments = 0;
    for (unsigned i = 0; i < ops; ++i) {
        const Addr addr = region + rng.below(region_words) * 8;
        switch (rng.below(4)) {
          case 0:
            (void)co_await p.loadUse(addr);
            break;
          case 1: {
            const auto tok = co_await p.load(addr);
            co_await p.exec(static_cast<std::uint32_t>(rng.below(6)));
            (void)co_await p.use(tok);
            break;
          }
          case 2:
            co_await p.store(addr, rng.next());
            break;
          case 3: {
            co_await cpu::lockAcquire(p, lock);
            const std::uint64_t v = co_await p.loadUse(counter);
            co_await p.store(counter, v + 1);
            co_await cpu::lockRelease(p, lock);
            ++increments;
            break;
          }
        }
    }
    *done_increments = increments;
}

void
checkQuiesced(core::Machine &machine, const core::MachineConfig &cfg)
{
    machine.eventQueue().run();
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        for (const auto &[line, state] : machine.cache(p).validLines()) {
            const unsigned mod = static_cast<unsigned>(
                (line / cfg.lineBytes) % cfg.numModules);
            if (state == mem::Cache::LineState::Modified) {
                ASSERT_EQ(machine.module(mod).dirState(line),
                          mem::MemoryModule::DirState::Exclusive);
                ASSERT_EQ(machine.module(mod).ownerOf(line), p);
            } else {
                ASSERT_EQ(machine.module(mod).dirState(line),
                          mem::MemoryModule::DirState::Shared);
                ASSERT_TRUE(machine.module(mod).presenceMask(line) &
                            (std::uint64_t(1) << p));
            }
        }
        ASSERT_EQ(machine.proc(p).outstandingRefs(), 0u);
    }
    for (unsigned m = 0; m < cfg.numModules; ++m)
        ASSERT_EQ(machine.module(m).openTransactions(), 0u);
}

} // namespace

class StressSweep
    : public ::testing::TestWithParam<std::tuple<Model, unsigned, unsigned>>
{};

TEST_P(StressSweep, FalseSharingHammerQuiesces)
{
    const auto [model, line, cache_bytes] = GetParam();
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = model;
    cfg.lineBytes = line;
    cfg.cacheBytes = cache_bytes;
    cfg.maxCycles = 400'000'000ull;
    // The hammer mixes plain loads/stores on shared words by design;
    // keep coherence/ordering auditing on but mute the race detector.
    cfg.check.races = false;
    core::Machine machine(cfg);

    workloads::SharedLayout layout(cfg.lineBytes);
    // Region much smaller than one cache: pure sharing traffic.
    const unsigned region_words = 32;
    const Addr region = layout.allocWords(region_words);
    const cpu::LockVar lock = layout.allocLock();
    const Addr counter = layout.allocWords(1);
    machine.memory().ensure(layout.top());

    std::vector<std::uint64_t> incs(cfg.numProcs, 0);
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        machine.startWorkload(
            p, hammer(machine.proc(p), region, region_words, lock,
                      counter, 400, p, &incs[p]));
    }
    machine.run();
    checkQuiesced(machine, cfg);

    std::uint64_t expected = 0;
    for (const auto v : incs)
        expected += v;
    EXPECT_EQ(machine.memory().readU64(counter), expected);
    EXPECT_EQ(machine.memory().readU64(lock.addr), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Models, StressSweep,
    ::testing::Combine(::testing::ValuesIn(core::allModels),
                       ::testing::Values(16u, 64u),
                       ::testing::Values(512u, 4096u)),
    [](const auto &info) {
        return std::string(core::modelName(std::get<0>(info.param))) +
               "_l" + std::to_string(std::get<1>(info.param)) + "_c" +
               std::to_string(std::get<2>(info.param));
    });

TEST(Stress, SetThrashingWithTinyCache)
{
    // One-set cache: every distinct line fights for two ways, maximizing
    // eviction/writeback/refetch churn.
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.model = Model::WO1;
    cfg.lineBytes = 16;
    cfg.cacheBytes = 32;  // 1 set x 2 ways
    cfg.check.races = false;  // deliberately unsynchronized churn
    core::Machine machine(cfg);
    machine.memory().ensure(1 << 16);

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        machine.startWorkload(p, [](cpu::Processor &proc,
                                    unsigned pid) -> SimTask {
            Rng rng(pid + 1);
            for (unsigned i = 0; i < 600; ++i) {
                const Addr a = rng.below(64) * 16;
                if (rng.chance(0.5))
                    co_await proc.store(a, i);
                else
                    (void)co_await proc.loadUse(a);
            }
        }(machine.proc(p), p));
    }
    machine.run();
    checkQuiesced(machine, cfg);
    EXPECT_GT(machine.cache(0).stats().writebacks, 0u);
}

TEST(Stress, SingleLineTotalContention)
{
    // Everyone reads and writes ONE line: continuous recall/invalidate
    // ping-pong, the protocol's worst case.
    core::MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.numModules = 16;
    cfg.model = Model::RC;
    cfg.lineBytes = 64;
    cfg.cacheBytes = 2048;
    cfg.check.races = false;  // deliberately unsynchronized ping-pong
    core::Machine machine(cfg);
    machine.memory().ensure(4096);

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        machine.startWorkload(p, [](cpu::Processor &proc,
                                    unsigned pid) -> SimTask {
            for (unsigned i = 0; i < 200; ++i) {
                if ((i + pid) % 3 == 0)
                    co_await proc.store(0x40 + (pid % 8) * 8, i);
                else
                    (void)co_await proc.loadUse(0x40);
                co_await proc.exec(1);
            }
        }(machine.proc(p), p));
    }
    machine.run();
    checkQuiesced(machine, cfg);
    std::uint64_t recalls = 0;
    for (unsigned m = 0; m < cfg.numModules; ++m)
        recalls += machine.module(m).stats().recallsSent;
    EXPECT_GT(recalls, 100u);
}

TEST(Stress, BuffersAtDepthOne)
{
    // Minimum-depth interface buffers force constant backpressure
    // through the Outbox overflow path.
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = Model::WO1;
    cfg.bufferEntries = 1;
    cfg.lineBytes = 64;
    cfg.cacheBytes = 1024;
    cfg.check.races = false;  // deliberately unsynchronized traffic
    core::Machine machine(cfg);
    machine.memory().ensure(1 << 16);

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        machine.startWorkload(p, [](cpu::Processor &proc,
                                    unsigned pid) -> SimTask {
            Rng rng(pid * 13 + 1);
            for (unsigned i = 0; i < 400; ++i) {
                const Addr a = rng.below(512) * 64;
                if (rng.chance(0.4))
                    co_await proc.store(a, i);
                else
                    (void)co_await proc.loadUse(a);
            }
        }(machine.proc(p), p));
    }
    machine.run();
    checkQuiesced(machine, cfg);
}
