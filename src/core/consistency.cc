#include "core/consistency.hh"

#include "sim/logging.hh"

namespace mcsim::core
{

ModelParams
modelParams(Model model, unsigned relaxed_mshrs)
{
    ModelParams p;
    p.model = model;
    switch (model) {
      case Model::SC1:
        p.numMshrs = 1;
        p.singleOutstanding = true;
        break;
      case Model::BSC1:
        p.numMshrs = 1;
        p.singleOutstanding = true;
        p.blockingLoads = true;
        break;
      case Model::SC2:
        p.numMshrs = 2;  // one demand reference + one prefetch
        p.singleOutstanding = true;
        p.prefetchOnStall = true;
        break;
      case Model::WO1:
        p.numMshrs = relaxed_mshrs;
        p.singleOutstanding = false;
        p.syncDrains = true;
        break;
      case Model::BWO1:
        p.numMshrs = relaxed_mshrs;
        p.singleOutstanding = false;
        p.syncDrains = true;
        p.blockingLoads = true;
        break;
      case Model::WO2:
        p.numMshrs = relaxed_mshrs;
        p.singleOutstanding = false;
        p.syncDrains = true;
        p.loadBypass = true;
        break;
      case Model::RC:
        p.numMshrs = relaxed_mshrs;
        p.singleOutstanding = false;
        p.releaseConsistent = true;
        break;
    }
    return p;
}

const char *
modelName(Model model)
{
    switch (model) {
      case Model::SC1: return "SC1";
      case Model::SC2: return "SC2";
      case Model::WO1: return "WO1";
      case Model::WO2: return "WO2";
      case Model::RC: return "RC";
      case Model::BSC1: return "bSC1";
      case Model::BWO1: return "bWO1";
    }
    return "<model>";
}

Model
modelFromName(const std::string &name)
{
    for (Model m : allModels)
        if (name == modelName(m))
            return m;
    fatal("unknown consistency model '%s'", name.c_str());
}

bool
isSequentiallyConsistent(Model model)
{
    return model == Model::SC1 || model == Model::SC2 ||
           model == Model::BSC1;
}

} // namespace mcsim::core
