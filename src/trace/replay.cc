#include "trace/replay.hh"

#include "sim/logging.hh"

namespace mcsim::trace
{

TraceWorkload::TraceWorkload(std::shared_ptr<const TraceSource> source,
                             std::string name)
    : reader(std::move(source)), summary(reader.validate()),
      label(std::move(name)),
      retired(std::make_shared<std::vector<std::uint64_t>>())
{
    if (label.empty()) {
        label = strprintf("Trace(%s)", reader.header().source.empty()
                                           ? "unnamed"
                                           : reader.header().source.c_str());
    }
}

std::unique_ptr<TraceWorkload>
TraceWorkload::fromFile(const std::string &path, std::string label)
{
    return std::make_unique<TraceWorkload>(
        std::make_shared<FileSource>(path), std::move(label));
}

namespace
{

/** Reconstruct the processor op a record stands for. */
cpu::Processor::Op
opFor(const Record &rec)
{
    cpu::Processor::Op op;
    op.kind = rec.kind;
    op.addr = rec.addr;
    op.value = rec.value;
    op.cycles = rec.cycles;
    op.token = rec.token;
    op.width = rec.width;
    op.own = rec.own;
    return op;
}

} // namespace

SimTask
TraceWorkload::body(cpu::Processor &proc, TraceReader::Stream stream,
                    std::uint64_t *count)
{
    Record rec;
    while (stream.next(rec)) {
        co_await cpu::Processor::Awaiter(proc, opFor(rec));
        *count += 1;
    }
}

void
TraceWorkload::setup(core::Machine &machine)
{
    const TraceHeader &head = reader.header();
    if (machine.numProcs() != head.procCount) {
        fatal("trace: recorded for %u procs but the machine has %u "
              "(replay does not rescale traces)",
              head.procCount, machine.numProcs());
    }
    machine.memory().ensure(summary.addrLimit);
    retired->assign(head.procCount, 0);
    for (unsigned p = 0; p < head.procCount; ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), reader.stream(p), &(*retired)[p]));
    }
}

void
TraceWorkload::verify(core::Machine &) const
{
    for (unsigned p = 0; p < reader.header().procCount; ++p) {
        const std::uint64_t expect = reader.procRecords(p);
        if ((*retired)[p] != expect) {
            fatal("trace replay: proc %u retired %llu of %llu records",
                  p, static_cast<unsigned long long>((*retired)[p]),
                  static_cast<unsigned long long>(expect));
        }
    }
}

} // namespace mcsim::trace
