#include "mem/memory_module.hh"

#include <algorithm>
#include <bit>
#include <utility>
#include <vector>

#include "check/checker.hh"
#include "sim/logging.hh"

namespace mcsim::mem
{

namespace
{

constexpr std::uint64_t
bitOf(ProcId p)
{
    return std::uint64_t(1) << p;
}

} // namespace

void
MemoryParams::validate() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 8)
        fatal("memory line size must be a power of two >= 8 (got %u)",
              lineBytes);
    if (numProcs == 0 || numProcs > 64)
        fatal("directory presence vector supports 1..64 processors (got %u)",
              numProcs);
}

MemoryModule::MemoryModule(EventQueue &eq, ModuleId id,
                           const MemoryParams &params, Outbox &outbox)
    : queue(eq), moduleId(id), cfg(params), out(outbox)
{
    cfg.validate();
}

MemoryModule::DirState
MemoryModule::dirState(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? DirState::Uncached : it->second.state;
}

std::uint64_t
MemoryModule::presenceMask(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? 0 : it->second.presence;
}

std::vector<std::pair<Addr, MemoryModule::DirState>>
MemoryModule::knownLines() const
{
    std::vector<std::pair<Addr, DirState>> out;
    out.reserve(dir.size());
    // mcsim-lint: order-insensitive(sorted drain below canonicalizes)
    for (const auto &[addr, entry] : dir)
        out.emplace_back(addr, entry.state);
    // Sorted drain: callers (coherence auditor, tests) see a canonical
    // order independent of hash-table layout.
    std::sort(out.begin(), out.end());
    return out;
}

ProcId
MemoryModule::ownerOf(Addr line_addr) const
{
    auto it = dir.find(line_addr);
    return it == dir.end() ? 0 : it->second.owner;
}

void
MemoryModule::corruptDirEntryForTest(Addr line_addr, DirState state,
                                     ProcId owner, std::uint64_t presence)
{
    DirEntry &entry = dir[line_addr];
    entry.state = state;
    entry.owner = owner;
    entry.presence = presence;
}

Tick
MemoryModule::reserveRead()
{
    const Tick start = std::max(queue.now(), busyUntil);
    modStats.queueHist.record(start - queue.now());
    const Tick first_word = start + cfg.initCycles;
    busyUntil = first_word + cfg.lineWords();
    modStats.busyCycles += busyUntil - start;
    if (tracer) {
        tracer->span(obs::Track::Module, moduleId, obs::SpanKind::DramBusy,
                     start, busyUntil - start);
    }
    return first_word;
}

void
MemoryModule::reserveWrite()
{
    const Tick start = std::max(queue.now(), busyUntil);
    modStats.queueHist.record(start - queue.now());
    busyUntil = start + cfg.initCycles + cfg.lineWords();
    modStats.busyCycles += busyUntil - start;
    if (tracer) {
        tracer->span(obs::Track::Module, moduleId, obs::SpanKind::DramBusy,
                     start, busyUntil - start);
    }
}

void
MemoryModule::sendToProc(MsgKind kind, Addr line_addr, ProcId proc,
                         Tick when, std::uint32_t seq)
{
    if (plan &&
        (kind == MsgKind::DataReplyShared ||
         kind == MsgKind::DataReplyExclusive) &&
        plan->loseReply(moduleId)) {
        // Lost reply: the directory has already committed the grant, so
        // the requester's timeout retry finds "Exclusive, owner == self"
        // (or a Shared presence bit) and is re-granted idempotently.
        return;
    }
    NetMsg msg;
    msg.src = moduleId;
    msg.dst = proc;
    msg.bytes = messageBytes(kind, cfg.lineBytes);
    msg.payload = CoherenceMsg{kind, line_addr, proc, seq};
    if (checker)
        checker->onProtocolMessage(msg.payload, /*to_memory=*/false);
    if (when <= queue.now()) {
        out.send(std::move(msg));
    } else {
        queue.schedule(
            when, [this, m = msg]() mutable { out.send(std::move(m)); },
            EventQueue::prioDeliver);
    }
}

void
MemoryModule::handleRequest(NetMsg &&msg)
{
    if (plan) {
        // Blackout: the module is down; defer (never drop) every arrival
        // to the outage end, where it re-enters this check.
        const Tick until = plan->blackoutUntil(moduleId, queue.now());
        if (until > queue.now()) {
            queue.schedule(
                until,
                [this, m = std::move(msg)]() mutable {
                    handleRequest(std::move(m));
                },
                EventQueue::prioDeliver);
            return;
        }
        // Transient stall: this arrival is processed late, once.
        if (const Tick stall = plan->stallCycles(moduleId)) {
            queue.scheduleIn(
                stall,
                [this, m = std::move(msg)]() mutable {
                    dispatchRequest(std::move(m));
                },
                EventQueue::prioDeliver);
            return;
        }
    }
    dispatchRequest(std::move(msg));
}

void
MemoryModule::dispatchRequest(NetMsg &&msg)
{
    const CoherenceMsg cm = msg.payload;
    switch (cm.kind) {
      case MsgKind::GetShared:
      case MsgKind::GetExclusive: {
        auto it = txns.find(cm.lineAddr);
        if (it != txns.end()) {
            if (plan && plan->config().nackThreshold > 0 &&
                it->second.waiters.size() >=
                    plan->config().nackThreshold) {
                // Hardened: refuse instead of queueing ever deeper; the
                // requester re-sends after backoff.
                modStats.nacksSent += 1;
                sendToProc(MsgKind::Nack, cm.lineAddr, cm.proc,
                           queue.now());
                return;
            }
            modStats.queuedRequests += 1;
            it->second.waiters.push_back(Waiter{std::move(msg), queue.now()});
            return;
        }
        startTransaction(std::move(msg));
        return;
      }

      case MsgKind::Writeback: {
        if (plan) {
            // Hardened: validate against the registered grant; a
            // Writeback that lost a race with a completed recall (its
            // grant seq was superseded) is acknowledged but discarded.
            // Every Writeback gets a WbAck so the owner's limbo clears.
            auto it = txns.find(cm.lineAddr);
            DirEntry &entry = dir[cm.lineAddr];
            const bool valid = entry.state == DirState::Exclusive &&
                               entry.owner == cm.proc &&
                               cm.seq == entry.seq;
            if (valid && it != txns.end() && it->second.waitingData) {
                modStats.writebacks += 1;
                handleDataArrival(cm.lineAddr, false);
            } else if (valid) {
                modStats.writebacks += 1;
                entry.state = DirState::Uncached;
                entry.presence = 0;
                reserveWrite();
                if (checker)
                    checker->onDirectoryEvent(moduleId, cm.lineAddr);
            } else {
                modStats.staleMessages += 1;
            }
            sendToProc(MsgKind::WbAck, cm.lineAddr, cm.proc, queue.now());
            return;
        }
        modStats.writebacks += 1;
        auto it = txns.find(cm.lineAddr);
        if (it != txns.end()) {
            MCSIM_ASSERT(it->second.waitingData,
                         "writeback during non-recall transaction");
            handleDataArrival(cm.lineAddr, false);
            return;
        }
        DirEntry &entry = dir[cm.lineAddr];
        MCSIM_ASSERT(entry.state == DirState::Exclusive &&
                         entry.owner == cm.proc,
                     "writeback from non-owner %u", cm.proc);
        entry.state = DirState::Uncached;
        entry.presence = 0;
        reserveWrite();
        if (checker)
            checker->onDirectoryEvent(moduleId, cm.lineAddr);
        return;
      }

      case MsgKind::FlushData: {
        if (plan) {
            auto it = txns.find(cm.lineAddr);
            if (it == txns.end() || !it->second.waitingData) {
                // Hardened: the transaction was already completed (e.g.
                // by a RecallStale recovery); the data is functionally
                // current in memory anyway.
                modStats.staleMessages += 1;
                return;
            }
            handleDataArrival(cm.lineAddr, true);
            return;
        }
        MCSIM_ASSERT(txns.count(cm.lineAddr) &&
                         txns.at(cm.lineAddr).waitingData,
                     "flush data without a recall transaction");
        handleDataArrival(cm.lineAddr, true);
        return;
      }

      case MsgKind::RecallStale: {
        if (plan) {
            // Hardened: "stale" can also mean the target's grant was lost
            // or its Writeback already consumed -- then no data is coming
            // and waiting would wedge the line. Memory's copy is current
            // (functional/timing split), so complete the recall with it.
            // A Writeback genuinely still in flight later fails the grant
            // seq check above and is discarded. The echoed recall stamp
            // (this transaction's grant-to-be) rejects a long-delayed
            // RecallStale left over from an earlier recall of the same
            // processor, which would otherwise close this transaction
            // while its own recall -- and the copy it governs -- is
            // still in flight.
            auto it = txns.find(cm.lineAddr);
            if (it != txns.end() && it->second.waitingData &&
                it->second.owner == cm.proc &&
                cm.seq == dir[cm.lineAddr].seq + 1) {
                handleDataArrival(cm.lineAddr, false);
            } else {
                modStats.staleMessages += 1;
            }
            return;
        }
        // The recall target surrendered the line before our recall reached
        // it; its Writeback (already in flight) completes the transaction
        // when it arrives, so nothing to record here.
        return;
      }

      case MsgKind::InvAck:
        handleInvAck(cm.lineAddr, cm.proc);
        return;

      case MsgKind::DataReplyShared:
      case MsgKind::DataReplyExclusive:
      case MsgKind::Invalidate:
      case MsgKind::RecallShared:
      case MsgKind::RecallExclusive:
      case MsgKind::Nack:
      case MsgKind::WbAck:
        // Response-network kinds; the request network never carries them
        // (validateMessage rejects them at injection).
        unreachableMessage("memory module", moduleId, cm.kind);
    }
}

void
MemoryModule::startTransaction(NetMsg &&msg)
{
    const CoherenceMsg cm = msg.payload;
    const ProcId req = cm.proc;
    DirEntry &entry = dir[cm.lineAddr];
    Txn &txn = txns[cm.lineAddr];
    txn.reqKind = cm.kind;
    txn.requester = req;

    if (cm.kind == MsgKind::GetShared) {
        switch (entry.state) {
          case DirState::Uncached:
          case DirState::Shared:
            finish(cm.lineAddr, reserveRead(), false);
            return;
          case DirState::Exclusive:
            if (plan && entry.owner == req) {
                // Hardened: a duplicated/stale Get can leave this entry
                // registered to a requester whose copy (or grant) is
                // long gone, and that requester may legitimately fetch
                // again. Recall the requester itself: a live Modified
                // copy flushes and the transaction completes normally; a
                // clean or missing copy answers RecallStale and memory's
                // current image (functional/timing split) completes it.
                // Either way the line converges -- discarding here would
                // starve a genuine re-fetch forever.
                txn.waitingData = true;
                txn.owner = req;
                txn.keepOwnerShared = true;
                modStats.recallsSent += 1;
                sendToProc(MsgKind::RecallShared, cm.lineAddr, req,
                           queue.now(), entry.seq + 1);
                return;
            }
            txn.waitingData = true;
            txn.owner = entry.owner;
            if (entry.owner == req) {
                // The owner wrote the line back and re-requested it before
                // the writeback arrived; just wait for the writeback.
                txn.keepOwnerShared = false;
            } else {
                txn.keepOwnerShared = true;
                modStats.recallsSent += 1;
                sendToProc(MsgKind::RecallShared, cm.lineAddr, entry.owner,
                           queue.now(), entry.seq + 1);
            }
            return;
        }
        return;
    }

    // GetExclusive
    switch (entry.state) {
      case DirState::Uncached:
        finish(cm.lineAddr, reserveRead(), false);
        return;

      case DirState::Shared: {
        entry.presence &= ~bitOf(req);
        if (entry.presence == 0) {
            finish(cm.lineAddr, reserveRead(), false);
            return;
        }
        unsigned sharers = 0;
        for (ProcId p = 0; p < cfg.numProcs; ++p) {
            if (entry.presence & bitOf(p)) {
                sendToProc(MsgKind::Invalidate, cm.lineAddr, p, queue.now(),
                           entry.seq + 1);
                ++sharers;
            }
        }
        modStats.invalidatesSent += sharers;
        txn.acksLeft = sharers;
        txn.memReadDone = true;
        txn.dataReadyTick = reserveRead();
        return;
      }

      case DirState::Exclusive:
        if (plan && entry.owner == req) {
            // Hardened: writeback limbo makes "GetExclusive from the
            // registered owner" unambiguous -- its grant (or a duplicate
            // of the request) was lost in flight, never an eviction
            // race. Re-grant idempotently with the SAME seq so a copy
            // installed from either reply surrenders consistently.
            txns.erase(cm.lineAddr);
            sendToProc(MsgKind::DataReplyExclusive, cm.lineAddr, req,
                       reserveRead(), entry.seq);
            return;
        }
        txn.waitingData = true;
        txn.owner = entry.owner;
        txn.keepOwnerShared = false;
        if (entry.owner != req) {
            modStats.recallsSent += 1;
            sendToProc(MsgKind::RecallExclusive, cm.lineAddr, entry.owner,
                       queue.now(), entry.seq + 1);
        }
        return;
    }
}

void
MemoryModule::handleDataArrival(Addr line_addr, bool via_flush)
{
    Txn &txn = txns.at(line_addr);
    MCSIM_ASSERT(txn.waitingData, "data arrival without recall");
    txn.waitingData = false;
    const bool owner_shares = txn.keepOwnerShared && via_flush;
    // The arriving line is written to memory and streamed to the requester
    // in one reservation.
    finish(line_addr, reserveRead(), owner_shares);
}

void
MemoryModule::handleInvAck(Addr line_addr, ProcId from)
{
    auto it = txns.find(line_addr);
    if (plan && (it == txns.end() || it->second.acksLeft == 0)) {
        modStats.staleMessages += 1;
        return;
    }
    MCSIM_ASSERT(it != txns.end() && it->second.acksLeft > 0,
                 "unexpected InvAck from %u", from);
    Txn &txn = it->second;
    txn.acksLeft -= 1;
    if (txn.acksLeft == 0) {
        MCSIM_ASSERT(txn.memReadDone, "acks complete before read issued");
        finish(line_addr, std::max(queue.now(), txn.dataReadyTick), false);
    }
}

void
MemoryModule::finish(Addr line_addr, Tick reply_tick, bool owner_shares)
{
    queue.schedule(
        reply_tick,
        [this, line_addr, owner_shares]() {
            Txn &txn = txns.at(line_addr);
            DirEntry &entry = dir[line_addr];
            const ProcId req = txn.requester;

            entry.seq += 1;  // this grant's sequence number
            if (txn.reqKind == MsgKind::GetShared) {
                if (entry.state == DirState::Exclusive)
                    entry.presence = 0;
                entry.state = DirState::Shared;
                entry.presence |= bitOf(req);
                if (owner_shares)
                    entry.presence |= bitOf(txn.owner);
                sendToProc(MsgKind::DataReplyShared, line_addr, req,
                           queue.now(), entry.seq);
            } else {
                entry.state = DirState::Exclusive;
                entry.owner = req;
                entry.presence = bitOf(req);
                sendToProc(MsgKind::DataReplyExclusive, line_addr, req,
                           queue.now(), entry.seq);
            }
            modStats.requests += 1;
            if (checker)
                checker->onDirectoryEvent(moduleId, line_addr);

            std::deque<Waiter> waiters = std::move(txn.waiters);
            txns.erase(line_addr);
            if (chooser && !waiters.empty()) {
                // DirService choice point: which parked waiter the
                // reopened line services first. The runners-up re-park
                // behind the new transaction, where the next reopening
                // chooses again, so one pick here reaches every order.
                std::vector<ChoiceOption> options;
                options.reserve(waiters.size());
                for (const Waiter &w : waiters)
                    options.push_back(
                        ChoiceOption{line_addr, w.msg.payload.proc});
                const unsigned pick = chooser->choose(
                    ChoiceKind::DirService, options.data(),
                    static_cast<unsigned>(options.size()));
                MCSIM_ASSERT(pick < waiters.size(),
                             "dir service choice %u of %zu", pick,
                             waiters.size());
                if (pick > 0) {
                    std::rotate(waiters.begin(), waiters.begin() + pick,
                                waiters.begin() + pick + 1);
                }
            }
            for (auto &w : waiters) {
                // Per-segment delay: a request re-queued behind the next
                // transaction for the line records each segment separately.
                modStats.queueHist.record(queue.now() - w.arrival);
                if (tracer) {
                    tracer->span(obs::Track::Module, moduleId,
                                 obs::SpanKind::DirQueue, w.arrival,
                                 queue.now() - w.arrival, line_addr);
                }
                handleRequest(std::move(w.msg));
            }
        },
        EventQueue::prioDeliver);
}

} // namespace mcsim::mem
