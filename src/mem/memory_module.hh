/**
 * @file
 * Global memory module with a full-map directory (Censier & Feautrier).
 *
 * Each module owns an interleaved slice of the shared address space and
 * keeps, per line, a presence bit vector and an exclusive-owner record.
 * The directory is blocking per line: while a transaction (recall or
 * invalidation collection) is in flight for a line, later requests for
 * that line queue at the module in arrival order.
 *
 * Timing (paper section 3.1): a memory access takes 7 cycles to initiate,
 * after which the first word goes onto the response network; the module
 * stays busy one further cycle per 8-byte word of the line. Latency of the
 * first word is thus independent of line size while module occupancy --
 * which produces Psim's hot-spot behaviour -- is proportional to it.
 */

#ifndef MCSIM_MEM_MEMORY_MODULE_HH
#define MCSIM_MEM_MEMORY_MODULE_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>
#include <string>
#include <unordered_map>

#include "fault/fault.hh"
#include "mem/outbox.hh"
#include "sim/choice.hh"
#include "mem/protocol.hh"
#include "obs/histogram.hh"
#include "obs/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcsim::check
{
class Checker;
} // namespace mcsim::check

namespace mcsim::mem
{

/** Static memory-module parameters. */
struct MemoryParams
{
    std::uint32_t lineBytes = 16;
    /** Cycles to initiate an access before the first word is available. */
    std::uint32_t initCycles = 7;
    /** Number of processors (presence-vector width, <= 64). */
    std::uint32_t numProcs = 16;

    void validate() const;

    std::uint32_t lineWords() const { return std::max(lineBytes / 8u, 1u); }
};

/** Per-module statistics. */
struct ModuleStats
{
    std::uint64_t requests = 0;        ///< GetShared + GetExclusive served
    std::uint64_t writebacks = 0;
    std::uint64_t recallsSent = 0;
    std::uint64_t invalidatesSent = 0;
    std::uint64_t queuedRequests = 0;  ///< arrived while line blocked
    std::uint64_t busyCycles = 0;      ///< DRAM occupancy

    /** Hardened protocol under fault injection (src/fault/); all zero
     *  on perfect hardware. @{ */
    std::uint64_t nacksSent = 0;       ///< Get* refused, deep waiter queue
    std::uint64_t staleMessages = 0;   ///< superseded/duplicate, discarded
    /** @} */

    /** Distribution of module queueing delays: the DRAM-busy wait of each
     *  reservation (zero waits included) plus, per directory-blocked
     *  request, each blocked segment spent in a line's waiter queue. */
    obs::LatencyHistogram queueHist;

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "requests", static_cast<double>(requests));
        out.add(prefix + "writebacks", static_cast<double>(writebacks));
        out.add(prefix + "recalls_sent", static_cast<double>(recallsSent));
        out.add(prefix + "invalidates_sent",
                static_cast<double>(invalidatesSent));
        out.add(prefix + "queued_requests",
                static_cast<double>(queuedRequests));
        out.add(prefix + "busy_cycles", static_cast<double>(busyCycles));
        out.add(prefix + "nacks_sent", static_cast<double>(nacksSent));
        out.add(prefix + "stale_messages",
                static_cast<double>(staleMessages));
    }
};

/** One memory module plus its slice of the directory. */
class MemoryModule
{
  public:
    /**
     * @param eq shared event queue
     * @param id this module's response-network source port
     * @param params timing parameters
     * @param outbox response-network injection queue
     */
    MemoryModule(EventQueue &eq, ModuleId id, const MemoryParams &params,
                 Outbox &outbox);

    MemoryModule(const MemoryModule &) = delete;
    MemoryModule &operator=(const MemoryModule &) = delete;

    /** Request-network delivery entry point (wired by the Machine). */
    void handleRequest(NetMsg &&msg);

    /** Statistics. */
    const ModuleStats &stats() const { return modStats; }

    /** Directory state of a line (tests/diagnostics). */
    enum class DirState : std::uint8_t { Uncached, Shared, Exclusive };
    DirState dirState(Addr line_addr) const;
    std::uint64_t presenceMask(Addr line_addr) const;

    /** Open transactions (should be zero at quiesce; tests). */
    std::size_t openTransactions() const { return txns.size(); }

    /** Snapshot of all known directory lines (tests/invariant checks). */
    std::vector<std::pair<Addr, DirState>> knownLines() const;
    /** Registered exclusive owner of @p line_addr (valid when Exclusive). */
    ProcId ownerOf(Addr line_addr) const;

    /** Wire the invariant checker (Machine; nullptr = no checking). */
    void setChecker(check::Checker *c) { checker = c; }

    /** Wire the event tracer (Machine; nullptr = no tracing). */
    void setTracer(obs::Tracer *t) { tracer = t; }

    /**
     * Wire the fault plan (Machine; nullptr = perfect hardware). A wired
     * plan arms this module's injection sites (blackout deferral,
     * transient DRAM stalls, lost replies) and switches the directory
     * onto the hardened protocol: tolerant validation of stale
     * writebacks/acks, WbAck generation, idempotent re-grants to the
     * registered owner, and NACKs once a line's waiter queue runs deep.
     */
    void setFaultPlan(fault::FaultPlan *p) { plan = p; }

    /** Wire the model checker's choice scheduler (Machine; nullptr =
     *  deterministic arrival-order waiter service). With a scheduler
     *  installed, the scheduler picks which parked waiter a reopened
     *  line services first (ChoiceKind::DirService). */
    void setChoiceScheduler(ChoiceScheduler *s) { chooser = s; }

    /**
     * Fault injection (tests only): overwrite a directory entry so it no
     * longer reflects the caches, which the coherence auditor must catch.
     */
    void corruptDirEntryForTest(Addr line_addr, DirState state, ProcId owner,
                                std::uint64_t presence);

  private:
    struct DirEntry
    {
        DirState state = DirState::Uncached;
        std::uint64_t presence = 0;  ///< sharer bit per processor
        ProcId owner = 0;            ///< valid when Exclusive
        /** Grant sequence number: bumped before every grant for the line;
         *  stamps replies, revocations (seq+1 at send time) and expected
         *  surrenders. Maintained unconditionally; only the hardened
         *  protocol reads it (see CoherenceMsg::seq). */
        std::uint32_t seq = 0;
    };

    /** A request parked behind a blocked line, with its arrival tick. */
    struct Waiter
    {
        NetMsg msg;
        Tick arrival = 0;
    };

    struct Txn
    {
        MsgKind reqKind{MsgKind::GetShared};
        ProcId requester = 0;
        ProcId owner = 0;            ///< recall target, when waitingData
        bool waitingData = false;    ///< FlushData/Writeback expected
        bool keepOwnerShared = false;///< GetShared recall downgrades owner
        unsigned acksLeft = 0;
        bool memReadDone = false;
        Tick dataReadyTick = 0;
        std::deque<Waiter> waiters;  ///< blocked requests for this line
    };

    /** Reserve the DRAM for a read; returns the first-word tick. */
    Tick reserveRead();
    /** Reserve the DRAM for a (writeback) write. */
    void reserveWrite();

    /** handleRequest proper, after any fault-injection deferral. */
    void dispatchRequest(NetMsg &&msg);
    void startTransaction(NetMsg &&msg);
    void handleDataArrival(Addr line_addr, bool via_flush);
    void handleInvAck(Addr line_addr, ProcId from);
    void finish(Addr line_addr, Tick reply_tick, bool owner_shares);
    void sendToProc(MsgKind kind, Addr line_addr, ProcId proc, Tick when,
                    std::uint32_t seq = 0);

    EventQueue &queue;
    ModuleId moduleId;
    MemoryParams cfg;
    Outbox &out;

    std::unordered_map<Addr, DirEntry> dir;
    std::unordered_map<Addr, Txn> txns;
    Tick busyUntil = 0;
    ModuleStats modStats;
    check::Checker *checker = nullptr;
    obs::Tracer *tracer = nullptr;
    fault::FaultPlan *plan = nullptr;  ///< nullptr = legacy protocol
    ChoiceScheduler *chooser = nullptr;  ///< nullptr = arrival order
};

} // namespace mcsim::mem

#endif // MCSIM_MEM_MEMORY_MODULE_HH
