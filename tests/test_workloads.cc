/**
 * @file
 * Workload-level tests: functional correctness against independent
 * references, parameter validation, reference-count sanity, and the
 * Relax schedule variants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/machine.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using core::Model;

namespace
{

core::MachineConfig
testConfig(Model m = Model::WO1)
{
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = m;
    cfg.cacheBytes = 2048;
    cfg.lineBytes = 16;
    cfg.maxCycles = 400'000'000ull;
    return cfg;
}

} // namespace

TEST(GaussWorkload, MatchesReferenceElimination)
{
    workloads::GaussParams p;
    p.n = 40;
    workloads::GaussWorkload w(p);
    // runWorkload verifies against the reference internally; a wrong
    // element raises FatalError.
    EXPECT_NO_THROW(workloads::runWorkload(w, testConfig()));
}

TEST(GaussWorkload, ReferenceCountsScaleWithN)
{
    auto count = [](unsigned n) {
        workloads::GaussParams p;
        p.n = n;
        workloads::GaussWorkload w(p);
        auto r = workloads::runWorkload(w, testConfig());
        return r.metrics.totalReads + r.metrics.totalWrites;
    };
    const auto refs24 = count(24);
    const auto refs48 = count(48);
    // Work grows roughly with n^3.
    EXPECT_GT(refs48, 5 * refs24);
    EXPECT_LT(refs48, 12 * refs24);
}

TEST(GaussWorkload, RejectsTinyMatrix)
{
    workloads::GaussParams p;
    p.n = 1;
    EXPECT_THROW(workloads::GaussWorkload w(p), FatalError);
}

TEST(QsortWorkload, SortsAllModels)
{
    for (Model m : {Model::SC1, Model::WO2, Model::RC}) {
        workloads::QsortParams p;
        p.n = 4000;
        p.parallelCutoff = 1024;
        workloads::QsortWorkload w(p);
        EXPECT_NO_THROW(workloads::runWorkload(w, testConfig(m)))
            << core::modelName(m);
    }
}

TEST(QsortWorkload, SortsWithoutCooperativePhase)
{
    workloads::QsortParams p;
    p.n = 4000;
    p.parallelCutoff = 0;
    workloads::QsortWorkload w(p);
    EXPECT_NO_THROW(workloads::runWorkload(w, testConfig()));
}

TEST(QsortWorkload, DynamicSchedulingVariesAcrossModels)
{
    // The paper notes reference counts shift between models because work
    // partitioning is timing-dependent. Just assert both run and sort.
    workloads::QsortParams p;
    p.n = 6000;
    workloads::QsortWorkload a(p), b(p);
    auto ra = workloads::runWorkload(a, testConfig(Model::SC1));
    auto rb = workloads::runWorkload(b, testConfig(Model::RC));
    EXPECT_GT(ra.metrics.totalReads, 0u);
    EXPECT_GT(rb.metrics.totalReads, 0u);
}

TEST(QsortWorkload, RejectsBadParams)
{
    workloads::QsortParams p;
    p.threshold = 1;
    EXPECT_THROW(workloads::QsortWorkload w(p), FatalError);
    workloads::QsortParams q;
    q.parallelCutoff = 10;
    q.threshold = 32;
    EXPECT_THROW(workloads::QsortWorkload w(q), FatalError);
}

TEST(RelaxWorkload, MatchesReferenceStencil)
{
    workloads::RelaxParams p;
    p.interior = 20;
    p.iterations = 3;
    workloads::RelaxWorkload w(p);
    EXPECT_NO_THROW(workloads::runWorkload(w, testConfig()));
}

TEST(RelaxWorkload, AllSchedulesProduceTheSameAnswer)
{
    using workloads::RelaxSchedule;
    for (RelaxSchedule s :
         {RelaxSchedule::Default, RelaxSchedule::OptimalSC,
          RelaxSchedule::OptimalWO, RelaxSchedule::BadSC,
          RelaxSchedule::BadWO}) {
        workloads::RelaxParams p;
        p.interior = 16;
        p.iterations = 2;
        p.schedule = s;
        workloads::RelaxWorkload w(p);
        EXPECT_NO_THROW(workloads::runWorkload(w, testConfig()))
            << workloads::relaxScheduleName(s);
    }
}

TEST(RelaxWorkload, ScheduleNamesAreDistinct)
{
    using workloads::RelaxSchedule;
    std::vector<std::string> names;
    for (RelaxSchedule s :
         {RelaxSchedule::Default, RelaxSchedule::OptimalSC,
          RelaxSchedule::OptimalWO, RelaxSchedule::BadSC,
          RelaxSchedule::BadWO}) {
        names.push_back(workloads::relaxScheduleName(s));
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(PsimWorkload, DeliversEveryPacket)
{
    workloads::PsimParams p;
    p.simProcs = 16;
    p.packetsPerProc = 32;
    workloads::PsimWorkload w(p);
    EXPECT_NO_THROW(workloads::runWorkload(w, testConfig()));
}

TEST(PsimWorkload, HotSpotsSkewModuleUtilization)
{
    workloads::PsimParams p;
    p.simProcs = 16;
    p.packetsPerProc = 48;
    p.hotFraction = 0.5;
    workloads::PsimWorkload w(p);
    auto cfg = testConfig();
    cfg.numProcs = 16;
    cfg.numModules = 16;
    auto r = workloads::runWorkload(w, cfg);
    // The paper reports a factor-of-six spread; require a visible skew.
    EXPECT_GT(r.metrics.moduleSkew, 1.5);
}

TEST(PsimWorkload, MostMissesAreInvalidationMisses)
{
    workloads::PsimParams p;
    p.simProcs = 16;
    p.packetsPerProc = 48;
    workloads::PsimWorkload w(p);
    auto cfg = testConfig();
    cfg.numProcs = 16;
    cfg.numModules = 16;
    cfg.cacheBytes = 8192;
    auto r = workloads::runWorkload(w, cfg);
    EXPECT_GT(static_cast<double>(r.metrics.invalidationMisses),
              0.3 * static_cast<double>(r.metrics.totalMisses));
}

TEST(PsimWorkload, RejectsBadParams)
{
    workloads::PsimParams p;
    p.simProcs = 12;  // not a power of two
    EXPECT_THROW(workloads::PsimWorkload w(p), FatalError);
    workloads::PsimParams q;
    q.hotDests = 99;
    EXPECT_THROW(workloads::PsimWorkload w(q), FatalError);
}

TEST(SyntheticWorkload, LockCounterExact)
{
    workloads::SyntheticParams p;
    p.refsPerProc = 600;
    p.lockEvery = 30;
    workloads::SyntheticWorkload w(p);
    // verify() checks the lock-protected counter total internally.
    EXPECT_NO_THROW(workloads::runWorkload(w, testConfig(Model::RC)));
}

TEST(Workloads, PsimMissLatencyExceedsUncontendedFloor)
{
    // Paper section 3.3: Psim's sharing and hot spots give it "a much
    // higher actual memory latency" than the uncontended 18 cycles.
    workloads::PsimParams p;
    p.packetsPerProc = 48;
    workloads::PsimWorkload w(p);
    auto cfg = testConfig();
    cfg.numProcs = 16;
    cfg.numModules = 16;
    auto r = workloads::runWorkload(w, cfg);
    EXPECT_GT(r.metrics.avgMissLatency, 18.0);
}

TEST(Workloads, StatsArePopulated)
{
    workloads::GaussParams p;
    p.n = 24;
    workloads::GaussWorkload w(p);
    auto r = workloads::runWorkload(w, testConfig());
    EXPECT_GT(r.stats.get("cache.total.loads"), 0.0);
    EXPECT_GT(r.stats.get("proc.total.instructions"), 0.0);
    EXPECT_GT(r.stats.get("mem.total.requests"), 0.0);
    EXPECT_GT(r.stats.get("reqnet.messages"), 0.0);
    EXPECT_GT(r.stats.get("machine.run_ticks"), 0.0);
    EXPECT_GT(r.metrics.cyclesBetweenReads(), 0.0);
    EXPECT_GT(r.metrics.cyclesBetweenWrites(), 0.0);
}
