/**
 * @file
 * Hardware-visible synchronization primitives used by the workloads:
 * a test-and-test&set spin lock and a sense-reversing centralized barrier.
 *
 * Under weak ordering every operation here is a synchronization point
 * (processor drains outstanding references, then blocks until the sync op
 * performs); under release consistency the lock acquire / spin reads are
 * acquires and the lock release / sense flip are releases; under the SC
 * systems they are ordinary strongly-ordered accesses. The Processor
 * applies the model-specific treatment -- workload code is identical
 * across models, exactly as in the paper.
 */

#ifndef MCSIM_CPU_SYNC_HH
#define MCSIM_CPU_SYNC_HH

#include "cpu/processor.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace mcsim::cpu
{

/** Shared-memory addresses making up one lock (one 64-bit word). */
struct LockVar
{
    Addr addr = 0;
};

/** Shared-memory addresses making up one barrier. */
struct BarrierVar
{
    Addr lock = 0;   ///< protects the arrival counter
    Addr count = 0;  ///< arrivals this episode
    Addr sense = 0;  ///< episode parity flag
};

/**
 * Acquire @p lock with test-and-test&set: spin reading the (cached) lock
 * word, attempt the atomic only when it reads free. Losers of a
 * test-and-set race back off exponentially (Anderson-style) so a release
 * under contention is not immediately stormed by fifteen GetExclusive
 * requests -- without this, lock handoff cost dominates at large line
 * sizes and drowns the consistency-model differences under study.
 */
inline SubTask<>
lockAcquire(Processor &p, LockVar lock)
{
    std::uint32_t backoff = 8;
    for (;;) {
        const std::uint64_t v = co_await p.syncLoad(lock.addr);
        if (v == 0) {
            const std::uint64_t old = co_await p.testAndSet(lock.addr);
            if (old == 0)
                co_return;
            // Lost the race: idle before rejoining the fray.
            co_await p.exec(backoff);
            if (backoff < 512)
                backoff *= 2;
        }
        co_await p.branch();  // spin-loop back edge
    }
}

/** Release @p lock (a release operation under RC). */
inline SubTask<>
lockRelease(Processor &p, LockVar lock)
{
    co_await p.syncStore(lock.addr, 0);
}

/**
 * Sense-reversing centralized barrier across @p n_procs processors.
 * @p local_sense is the caller's private sense word (plain C++ state,
 * standing in for a private-memory variable).
 */
inline SubTask<>
barrierWait(Processor &p, BarrierVar b, std::uint64_t n_procs,
            std::uint64_t &local_sense)
{
    local_sense ^= 1;
    co_await lockAcquire(p, LockVar{b.lock});
    const std::uint64_t arrived = co_await p.loadUse(b.count) + 1;
    if (arrived == n_procs) {
        co_await p.store(b.count, 0);
        co_await lockRelease(p, LockVar{b.lock});
        // Releasing write: every prior reference must be performed before
        // other processors can observe the flipped sense.
        co_await p.syncStore(b.sense, local_sense);
        co_return;
    }
    co_await p.store(b.count, arrived);
    co_await lockRelease(p, LockVar{b.lock});
    for (;;) {
        const std::uint64_t s = co_await p.syncLoad(b.sense);
        if (s == local_sense)
            co_return;
        co_await p.branch();
    }
}

/**
 * Dissemination barrier (Hensgen, Finkel & Manber 1988): ceil(log2 P)
 * rounds; in round r each processor signals the peer 2^r ahead of it and
 * spins on its own flag. No lock, so arrival cost is O(log P) sync
 * operations instead of a serialized critical-section convoy. Under RC
 * the flag writes are releases and the spin reads acquires.
 */
struct DissBarrierVar
{
    Addr flagsBase = 0;  ///< rounds x nProcs 64-bit flag words
    std::uint32_t nProcs = 0;
    std::uint32_t rounds = 0;

    Addr
    flagAddr(unsigned round, unsigned proc) const
    {
        return flagsBase +
               (static_cast<Addr>(round) * nProcs + proc) * 8;
    }
};

/**
 * Pass the dissemination barrier. @p episode is the caller's private
 * episode counter (one per processor, monotonically increasing).
 */
inline SubTask<>
dissBarrierWait(Processor &p, DissBarrierVar b, unsigned pid,
                std::uint64_t &episode)
{
    episode += 1;
    for (unsigned r = 0; r < b.rounds; ++r) {
        const unsigned partner = (pid + (1u << r)) % b.nProcs;
        co_await p.syncStore(b.flagAddr(r, partner), episode);
        for (;;) {
            const std::uint64_t v = co_await p.syncLoad(b.flagAddr(r, pid));
            if (v >= episode)
                break;
            co_await p.branch();
        }
    }
}

/** Barrier implementation selector (ablated in bench_ablation). */
enum class BarrierKind
{
    Central,        ///< lock-protected counter + sense-reversing flag
    Dissemination,  ///< log-round flag exchange
};

/** A barrier of either kind plus the per-processor state it needs. */
struct BarrierObj
{
    BarrierKind kind = BarrierKind::Dissemination;
    BarrierVar central{};
    DissBarrierVar diss{};
};

/** Per-processor barrier context (private memory). */
struct BarrierCtx
{
    std::uint64_t sense = 0;
    std::uint64_t episode = 0;
};

/** Pass @p barrier, whichever kind it is. */
inline SubTask<>
barrierWait(Processor &p, const BarrierObj &barrier, unsigned n_procs,
            unsigned pid, BarrierCtx &ctx)
{
    if (barrier.kind == BarrierKind::Central) {
        co_await barrierWait(p, barrier.central, n_procs, ctx.sense);
    } else {
        co_await dissBarrierWait(p, barrier.diss, pid, ctx.episode);
    }
}

} // namespace mcsim::cpu

#endif // MCSIM_CPU_SYNC_HH
