/**
 * @file
 * Shard worker: executes one assignment of a plan, checkpointing every
 * completed point into the assignment's journal (DESIGN.md sections 15
 * and 16).
 *
 * The worker is crash-oblivious by design: it opens (or creates) its
 * journal, re-derives its target point list from the plan, skips every
 * point that already has a valid frame, and runs the rest, appending a
 * flushed frame per completion. Being SIGKILLed at any instant and
 * relaunched with the same arguments therefore always makes forward
 * progress, and finishing twice is idempotent. A journal written by a
 * different plan (fingerprint mismatch) is refused, never overwritten.
 *
 * Two assignment shapes exist: a PRIMARY worker owns a whole shard and
 * journals into the shard's own file; a STEAL worker owns one slice of
 * a revoked shard's un-journaled remainder (frozen at revocation, i.e.
 * re-derived from the victim's primary journal, which no longer grows)
 * and journals into a separate steal journal, so it never contends with
 * the victim's file.
 */

#ifndef MCSIM_SVC_WORKER_HH
#define MCSIM_SVC_WORKER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "svc/shard.hh"

namespace mcsim::svc
{

/** Worker knobs (threads within the worker process, test hooks). */
struct WorkerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Print per-point progress to stderr. */
    bool progress = true;
    /**
     * Chaos-engineering hook: raise(SIGKILL) immediately after
     * journaling this many NEW points (0 = never). The kill lands after
     * the frame flush, so exactly the journaled work survives -- this is
     * how the CI kill/resume gate makes crashes reproducible.
     */
    std::size_t killAfter = 0;
    /** Stop scheduling new points after journaling this many new ones
     *  (0 = run to completion). A clean in-process variant of killAfter
     *  for tests; in-flight points still complete and journal. */
    std::size_t stopAfter = 0;
    /**
     * Chaos-engineering hook: once this journal holds this many points
     * TOTAL (resumed + new), stall forever without journaling anything
     * further (0 = never). The worker stays alive but makes zero
     * progress -- exactly the failure lease supervision detects -- and
     * because the cap is a total, every relaunch stalls again
     * immediately, which walks the coordinator through revocation,
     * barren strikes, and finally work stealing.
     */
    std::size_t stallAt = 0;
    /** Quarantined grid-global indices: excluded from the target list
     *  (the degraded merge reports them; nobody re-runs them). */
    std::vector<std::size_t> skipIndices;
    /**
     * Chaos-engineering hook: grid-global indices that crash the worker
     * when reached. The worker runs its target list up to (not
     * including) the first poisoned point, then dies with a fatal
     * error -- the deterministic analogue of a point that reliably
     * kills whoever attempts it.
     */
    std::vector<std::size_t> poisonIndices;
};

/** What one worker attempt accomplished. */
struct WorkerResult
{
    /** Points already journaled when the attempt started. */
    std::size_t resumedPoints = 0;
    /** New points journaled by this attempt. */
    std::size_t completedPoints = 0;
    /** Journaled points whose job/pair FAILED (recorded, not fatal:
     *  merge reproduces the failure byte-for-byte). */
    std::size_t failedJobs = 0;
    /** Every target point is journaled. */
    bool done = false;
    /** Cut short by stopAfter (never set together with done). */
    bool stopped = false;
};

/**
 * Run shard @p shard of @p plan against the journal at @p journal_path.
 * fatal() on I/O failure, a corrupt journal, or a plan mismatch.
 */
WorkerResult runShardWorker(const ShardPlan &plan, std::uint32_t shard,
                            const std::string &journal_path,
                            const WorkerOptions &options = {});

/**
 * Grid-global indices of steal slice @p slice of @p slices over shard
 * @p victim's remainder: the victim's points with no frame in the
 * primary journal at @p primary_path (missing or header-torn primary
 * means the whole shard), sliced round-robin by position. This is THE
 * slice-membership function -- steal workers, the coordinator, and the
 * chaos driver all derive membership through it, so an assignment
 * means the same points to everyone.
 */
std::vector<std::size_t> stealSliceMembers(const ShardPlan &plan,
                                           std::uint32_t victim,
                                           std::uint16_t slice,
                                           std::uint16_t slices,
                                           const std::string &primary_path);

/**
 * Run steal slice @p slice of @p slices over shard @p victim's
 * remainder: the victim's un-journaled points (per its primary journal
 * at @p primary_path, which is frozen once the victim's lease was
 * revoked; a missing or header-torn primary means the whole shard is
 * the remainder), sliced round-robin by position, journaled into the
 * steal journal at @p steal_path. Crash-oblivious and idempotent like
 * a primary worker. fatal() on I/O failure, corruption, plan mismatch,
 * or slice >= slices.
 */
WorkerResult runStealWorker(const ShardPlan &plan, std::uint32_t victim,
                            std::uint16_t slice, std::uint16_t slices,
                            const std::string &primary_path,
                            const std::string &steal_path,
                            const WorkerOptions &options = {});

} // namespace mcsim::svc

#endif // MCSIM_SVC_WORKER_HH
