/**
 * @file
 * Trace replay: a Workload that re-issues a stored instruction stream,
 * making any trace -- captured or generated -- runnable on all seven
 * consistency models through the unchanged timing machinery.
 *
 * Replay is exact for the configuration a trace was captured on: the
 * timing model consumes only (kind, addr, width, own, cycles) and the
 * processor hands out load tokens sequentially per Load in program
 * order, so re-issuing the recorded stream reproduces the captured
 * run's cycle counts bit for bit. On other models the same stream is a
 * well-defined traffic pattern: no replayed op ever waits on a data
 * value, so replay terminates on every model.
 */

#ifndef MCSIM_TRACE_REPLAY_HH
#define MCSIM_TRACE_REPLAY_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/reader.hh"
#include "workloads/workload.hh"

namespace mcsim::trace
{

/** Replays one trace; construction fully validates the input. */
class TraceWorkload : public workloads::Workload
{
  public:
    /**
     * @p label names the workload in results ("TraceZipf", ...); empty
     * derives one from the trace's source field. fatal() -- a
     * recoverable FatalError, no machine started -- on any malformed
     * trace.
     */
    explicit TraceWorkload(std::shared_ptr<const TraceSource> source,
                           std::string label = "");

    /** Open + validate a trace file. */
    static std::unique_ptr<TraceWorkload>
    fromFile(const std::string &path, std::string label = "");

    std::string name() const override { return label; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;

    /**
     * A trace is a traffic pattern, not a synchronized program: on
     * models other than the capture source the stream may overlap what
     * were critical sections, so the happens-before detector does not
     * apply. Coherence and ordering checks stay on.
     */
    bool dataRaceFree() const override { return false; }

    /**
     * The chaos fingerprint is the trace content hash: what replay
     * computes is traffic, and the invariant faults must preserve is
     * "the same trace fully retired under checkers" -- the final memory
     * image legitimately varies with timing when racing stores land in
     * a different order. verify() separately asserts full retirement.
     */
    std::uint64_t resultFingerprint(core::Machine &) const override
    {
        return summary.contentHash;
    }

    const TraceHeader &header() const { return reader.header(); }
    const TraceSummary &traceSummary() const { return summary; }

  private:
    static SimTask body(cpu::Processor &proc, TraceReader::Stream stream,
                        std::uint64_t *retired);

    TraceReader reader;
    TraceSummary summary;
    std::string label;
    /** Records each proc retired (shared: verify() is const). */
    std::shared_ptr<std::vector<std::uint64_t>> retired;
};

} // namespace mcsim::trace

#endif // MCSIM_TRACE_REPLAY_HH
