/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out. Each
 * section varies exactly one machine or model parameter around the paper
 * configuration and reports Gauss (or the named workload) run time:
 *
 *   1. MSHR count for the relaxed models (paper: 5)
 *   2. Interface buffer depth (paper: 4 entries)
 *   3. WO2 load bypassing on/off
 *   4. The SC store-buffer release reading (see ModelParams)
 *   5. SC2 prefetch permission mode is exercised implicitly (shared for
 *      loads, exclusive for stores) -- reported as prefetch utility
 *   6. Switch arity 2x2 vs 4x4 (stage count vs per-stage contention)
 *   7. Barrier implementation: dissemination vs central lock-based
 *
 * Usage: bench_ablation [--full]
 */

#include "bench_common.hh"

#include "workloads/gauss.hh"
#include "workloads/synthetic.hh"

using namespace mcsim;
using namespace mcsim::bench;

namespace
{

double
mcyc(const core::RunMetrics &m)
{
    return static_cast<double>(m.cycles) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const bool full = isFull(args);

    std::printf("Ablation studies (Gauss, 16 procs, %s caches, 16B "
                "lines)\n",
                cacheLabel(args, false));
    printHeaderRule();

    // 1. MSHR count under WO1.
    std::printf("\n[1] WO1 MSHR count (paper: 5)\n%-8s %12s\n", "mshrs",
                "Mcycles");
    for (unsigned mshrs : {1u, 2u, 3u, 5u, 8u, 16u}) {
        auto cfg = baseConfig(args);
        cfg.model = core::Model::WO1;
        cfg.relaxedMshrs = mshrs;
        std::printf("%-8u %12.3f\n", mshrs, mcyc(run("Gauss", cfg, args)));
    }

    // 2. Interface buffer depth.
    std::printf("\n[2] Interface buffer depth (paper: 4)\n%-8s %12s\n",
                "entries", "Mcycles");
    for (unsigned depth : {1u, 2u, 4u, 8u, 16u}) {
        auto cfg = baseConfig(args);
        cfg.model = core::Model::WO1;
        cfg.bufferEntries = depth;
        std::printf("%-8u %12.3f\n", depth, mcyc(run("Gauss", cfg, args)));
    }

    // 3. Load bypassing (WO1 vs WO2) on a store-heavy stream.
    std::printf("\n[3] WO2 load bypassing (Qsort)\n%-10s %12s\n", "bypass",
                "Mcycles");
    for (bool bypass : {false, true}) {
        auto cfg = baseConfig(args);
        cfg.model = bypass ? core::Model::WO2 : core::Model::WO1;
        std::printf("%-10s %12.3f\n", bypass ? "on (WO2)" : "off (WO1)",
                    mcyc(run("Qsort", cfg, args)));
    }

    // 4. SC store-buffer release.
    std::printf("\n[4] SC1 store-buffer release (Relax)\n%-10s %12s\n",
                "buffered", "Mcycles");
    for (bool buffered : {true, false}) {
        auto cfg = baseConfig(args);
        cfg.model = core::Model::SC1;
        auto mp = core::modelParams(core::Model::SC1);
        mp.scStoreBufferRelease = buffered;
        cfg.modelOverride = mp;
        std::printf("%-10s %12.3f\n", buffered ? "on" : "off",
                    mcyc(run("Relax", cfg, args)));
    }

    // 5. SC2 prefetch utility.
    {
        auto cfg = baseConfig(args);
        cfg.model = core::Model::SC2;
        const auto m = run("Gauss", cfg, args);
        std::printf("\n[5] SC2 prefetches: issued=%llu useful=%llu "
                    "(%.0f%%)\n",
                    (unsigned long long)m.prefetchesIssued,
                    (unsigned long long)m.prefetchesUseful,
                    m.prefetchesIssued
                        ? 100.0 * static_cast<double>(m.prefetchesUseful) /
                              static_cast<double>(m.prefetchesIssued)
                        : 0.0);
    }

    // 6. Switch arity.
    std::printf("\n[6] Switch arity (paper: 4x4)\n%-8s %12s\n", "radix",
                "Mcycles");
    for (unsigned radix : {2u, 4u}) {
        auto cfg = baseConfig(args);
        cfg.model = core::Model::WO1;
        cfg.switchRadix = radix;
        std::printf("%ux%u      %12.3f\n", radix, radix,
                    mcyc(run("Gauss", cfg, args)));
    }

    // 7b. Sequential next-line prefetch (extension; paper conclusion
    // suggests combining relaxed consistency with better prefetching).
    std::printf("\n[8] Next-line prefetch (Gauss)\n%-14s %-8s %12s\n",
                "model", "nlpf", "Mcycles");
    for (core::Model model : {core::Model::SC1, core::Model::WO1}) {
        for (bool nlpf : {false, true}) {
            auto cfg = baseConfig(args);
            cfg.model = model;
            cfg.nextLinePrefetch = nlpf;
            std::printf("%-14s %-8s %12.3f\n", core::modelName(model),
                        nlpf ? "on" : "off",
                        mcyc(run("Gauss", cfg, args)));
        }
    }

    // 9. Read-with-ownership for Gauss's own-row loads (paper 3.3).
    std::printf("\n[9] Gauss read-with-ownership (WO1)\n%-8s %12s\n",
                "readOwn", "Mcycles");
    for (bool own : {false, true}) {
        workloads::GaussParams gp;
        gp.n = full ? 250 : 150;
        gp.readOwn = own;
        workloads::GaussWorkload w(gp);
        auto cfg = baseConfig(args);
        cfg.model = core::Model::WO1;
        const auto r = workloads::runWorkload(w, cfg);
        std::printf("%-8s %12.3f\n", own ? "on" : "off",
                    mcyc(r.metrics));
    }

    // 7. Barrier implementation (synthetic barrier-heavy stream).
    std::printf("\n[7] Barrier implementation (barrier-heavy synthetic)\n"
                "%-15s %12s\n",
                "barrier", "Mcycles");
    for (auto kind : {cpu::BarrierKind::Dissemination,
                      cpu::BarrierKind::Central}) {
        workloads::SyntheticParams p;
        p.refsPerProc = 4000;
        p.barrierEvery = 100;
        p.privateWords = 1024;
        p.barrierKind = kind;
        workloads::SyntheticWorkload w(p);
        auto cfg = baseConfig(args);
        cfg.model = core::Model::WO1;
        const auto r = workloads::runWorkload(w, cfg);
        std::printf("%-15s %12.3f\n",
                    kind == cpu::BarrierKind::Central ? "central"
                                                      : "dissemination",
                    mcyc(r.metrics));
    }
    return 0;
}
