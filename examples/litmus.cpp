/**
 * @file
 * Litmus demo: why synchronization must be visible to the hardware on a
 * relaxed machine (paper section 2).
 *
 * Two processors run Dekker-style flag signaling:
 *
 *     P0: data = 42;  flag = 1;         P1: while (flag != 1) spin;
 *                                           r = data;
 *
 * Variant A uses plain stores for `flag` (synchronization invisible to
 * the hardware). Under weak ordering the store to `flag` may be
 * performed while the store to `data` is still in flight -- the reader
 * can observe flag == 1 with stale data. The simulator's functional
 * model executes plain stores in issue order, so to expose the hazard we
 * time the protocol instead: the tool reports how long the data store is
 * still *globally unperformed* after the flag becomes visible.
 *
 * Variant B uses a SYNC-visible release store for `flag`: every model
 * guarantees the data store performed first (zero exposure window).
 *
 * Usage: litmus [model]     (default WO1)
 */

#include <cstdio>
#include <cstdlib>

#include "core/machine.hh"
#include "core/machine_config.hh"
#include "sim/task.hh"

using namespace mcsim;

namespace
{

constexpr Addr dataAddr = 0x1000;
constexpr Addr flagAddr = 0x2000;

struct Probe
{
    Tick dataPerformed = 0;  ///< when the data store completed globally
    Tick flagSeen = 0;       ///< when the reader observed flag == 1
    std::uint64_t readData = 0;
};

SimTask
writerPlain(cpu::Processor &p, Probe &probe)
{
    co_await p.store(dataAddr, 42);
    // Plain store to the flag: the hardware does not know this is a
    // synchronization operation.
    co_await p.store(flagAddr, 1);
    // Wait until everything drains, then note when the data performed.
    co_await p.fence();
    probe.dataPerformed = p.now();
}

SimTask
writerRelease(cpu::Processor &p, Probe &probe)
{
    co_await p.store(dataAddr, 42);
    // Hardware-visible release: under WO the processor drains the data
    // store first; under RC the release is deferred behind it.
    co_await p.syncStore(flagAddr, 1);
    co_await p.fence();
    probe.dataPerformed = p.now();
}

SimTask
reader(cpu::Processor &p, Probe &probe)
{
    for (;;) {
        const std::uint64_t f = co_await p.syncLoad(flagAddr);
        if (f == 1)
            break;
        co_await p.branch();
    }
    probe.flagSeen = p.now();
    probe.readData = co_await p.loadUse(dataAddr);
}

Probe
runVariant(core::Model model, bool visible_sync)
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    cfg.model = model;
    cfg.cacheBytes = 1024;
    cfg.lineBytes = 16;
    // Variant A signals through a plain store on purpose -- a textbook
    // data race -- so the race detector must not abort the demo.
    cfg.check.races = false;
    core::Machine m(cfg);
    Probe probe;
    if (visible_sync)
        m.startWorkload(0, writerRelease(m.proc(0), probe));
    else
        m.startWorkload(0, writerPlain(m.proc(0), probe));
    m.startWorkload(1, reader(m.proc(1), probe));
    m.run();
    return probe;
}

} // namespace

int
main(int argc, char **argv)
{
    const core::Model model =
        argc > 1 ? core::modelFromName(argv[1]) : core::Model::WO1;

    std::printf("Dekker-style flag handoff under %s\n",
                core::modelName(model));
    std::printf("(writer: data = 42; flag = 1    reader: spin on flag; "
                "read data)\n\n");

    for (bool visible : {false, true}) {
        const Probe p = runVariant(model, visible);
        const long long window =
            static_cast<long long>(p.dataPerformed) -
            static_cast<long long>(p.flagSeen);
        std::printf("%-28s flag seen @%-6llu data performed @%-6llu "
                    "read=%llu\n",
                    visible ? "release store (hw-visible):"
                            : "plain store (invisible):",
                    (unsigned long long)p.flagSeen,
                    (unsigned long long)p.dataPerformed,
                    (unsigned long long)p.readData);
        if (!visible && window > 0) {
            std::printf(
                "  -> HAZARD: the data store was still unperformed %lld "
                "cycles after the flag\n"
                "     was observed. On real relaxed hardware the reader "
                "could see stale data;\n"
                "     this is why programs for WO/RC machines must use "
                "hardware-visible sync.\n",
                window);
        } else if (visible) {
            std::printf(
                "  -> SAFE: the release completed only after the data "
                "store performed\n"
                "     (window %lld <= 0); every model orders the handoff "
                "correctly.\n",
                window);
        } else {
            std::printf("  -> this model kept the stores ordered (SC "
                        "behaviour).\n");
        }
        std::printf("\n");
    }
    return 0;
}
