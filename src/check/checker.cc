#include "check/checker.hh"

#include <utility>

#include "sim/logging.hh"

namespace mcsim::check
{

void
CheckStats::addTo(StatSet &out, const std::string &prefix) const
{
    out.add(prefix + "coherence_violations",
            static_cast<double>(coherenceViolations));
    out.add(prefix + "ordering_violations",
            static_cast<double>(orderingViolations));
    out.add(prefix + "race_violations",
            static_cast<double>(raceViolations));
    out.add(prefix + "protocol_violations",
            static_cast<double>(protocolViolations));
    out.add(prefix + "line_audits", static_cast<double>(lineAudits));
    out.add(prefix + "accesses_checked",
            static_cast<double>(accessesChecked));
    out.add(prefix + "ordering_checks",
            static_cast<double>(orderingChecked));
    out.add(prefix + "messages_checked",
            static_cast<double>(messagesChecked));
}

Checker::Checker(const CheckConfig &config, const core::ModelParams &model,
                 unsigned num_procs, unsigned num_modules,
                 unsigned line_bytes)
    : cfg(config), numProcs(num_procs), lineBytes(line_bytes)
{
    if (cfg.coherence) {
        coherence = std::make_unique<CoherenceAuditor>(num_procs,
                                                       num_modules,
                                                       line_bytes);
    }
    if (cfg.ordering)
        ordering = std::make_unique<OrderingLinter>(num_procs, model);
    if (cfg.races)
        races = std::make_unique<RaceDetector>(num_procs);
}

void
Checker::attach(std::vector<const mem::Cache *> caches,
                std::vector<const mem::MemoryModule *> modules)
{
    if (coherence)
        coherence->attach(std::move(caches), std::move(modules));
}

void
Checker::report(std::uint64_t CheckStats::*counter, const char *kind,
                const std::string &what)
{
    checkStats.*counter += 1;
    if (cfg.mode == CheckMode::Fatal)
        fatal("%s violation: %s", kind, what.c_str());
    // Count mode: make the first few visible without flooding stderr.
    if (warningsEmitted < 8) {
        warningsEmitted += 1;
        warn("%s violation: %s", kind, what.c_str());
    }
}

void
Checker::onCacheLineEvent(ProcId p, Addr line_addr)
{
    (void)p;
    if (!coherence)
        return;
    std::string r = coherence->auditLine(line_addr);
    checkStats.lineAudits = coherence->auditsRun();
    if (!r.empty())
        report(&CheckStats::coherenceViolations, "coherence", r);
}

void
Checker::onDirectoryEvent(unsigned module, Addr line_addr)
{
    (void)module;
    if (!coherence)
        return;
    std::string r = coherence->auditLine(line_addr);
    checkStats.lineAudits = coherence->auditsRun();
    if (!r.empty())
        report(&CheckStats::coherenceViolations, "coherence", r);
}

void
Checker::onProtocolMessage(const mem::CoherenceMsg &msg, bool to_memory)
{
    if (!cfg.coherence)
        return;
    checkStats.messagesChecked += 1;
    const char *err =
        mem::validateMessage(msg, to_memory, numProcs, lineBytes);
    if (err != nullptr) {
        report(&CheckStats::protocolViolations, "protocol",
               strprintf("%s message %s for line 0x%llx proc %u: %s",
                         to_memory ? "proc->mem" : "mem->proc",
                         mem::msgKindName(msg.kind),
                         static_cast<unsigned long long>(msg.lineAddr),
                         msg.proc, err));
    }
    if (!to_memory && (msg.kind == mem::MsgKind::DataReplyShared ||
                       msg.kind == mem::MsgKind::DataReplyExclusive)) {
        // Grant-sequence monotonicity: the directory bumps a line's
        // sequence number before every grant, so the grant stream for a
        // line must never go backwards (equal = idempotent re-grant).
        std::uint32_t &high = grantSeqHigh[msg.lineAddr];
        if (msg.seq < high) {
            report(&CheckStats::protocolViolations, "protocol",
                   strprintf("grant sequence regression on line 0x%llx: "
                             "%s to proc %u carries seq %u after seq %u",
                             static_cast<unsigned long long>(msg.lineAddr),
                             mem::msgKindName(msg.kind), msg.proc, msg.seq,
                             high));
        } else {
            high = msg.seq;
        }
    }
}

void
Checker::onDataRead(ProcId p, Addr addr, unsigned width)
{
    if (!races)
        return;
    std::string r = races->read(p, addr, width);
    checkStats.accessesChecked = races->accessesChecked();
    if (!r.empty())
        report(&CheckStats::raceViolations, "data race", r);
}

void
Checker::onDataWrite(ProcId p, Addr addr, unsigned width)
{
    if (!races)
        return;
    std::string r = races->write(p, addr, width);
    checkStats.accessesChecked = races->accessesChecked();
    if (!r.empty())
        report(&CheckStats::raceViolations, "data race", r);
}

void
Checker::onAcquire(ProcId p, Addr sync_addr)
{
    if (races)
        races->acquire(p, sync_addr);
}

void
Checker::onRelease(ProcId p, Addr sync_addr)
{
    if (races)
        races->release(p, sync_addr);
}

void
Checker::onIssueCheck(ProcId p, bool is_sync, bool is_release)
{
    if (!ordering)
        return;
    checkStats.orderingChecked += 1;
    std::string r = ordering->issueCheck(p, is_sync, is_release);
    if (!r.empty())
        report(&CheckStats::orderingViolations, "ordering", r);
}

void
Checker::onRefIssued(ProcId p, std::uint64_t cookie)
{
    if (ordering)
        ordering->refIssued(p, cookie);
}

void
Checker::onRefEarlyReleased(ProcId p, std::uint64_t cookie)
{
    if (ordering)
        ordering->refEarlyReleased(p, cookie);
}

void
Checker::onRefCompleted(ProcId p, std::uint64_t cookie)
{
    if (ordering)
        ordering->refCompleted(p, cookie);
}

void
Checker::onReleaseDeferred(ProcId p)
{
    if (ordering)
        ordering->releaseDeferred(p);
}

void
Checker::onReleaseDone(ProcId p)
{
    if (ordering)
        ordering->releaseDone(p);
}

void
Checker::onFenceComplete(ProcId p)
{
    if (!ordering)
        return;
    checkStats.orderingChecked += 1;
    std::string r = ordering->fenceCheck(p);
    if (!r.empty())
        report(&CheckStats::orderingViolations, "ordering", r);
}

void
Checker::finalAudit()
{
    if (!coherence)
        return;
    std::string r = coherence->auditAll();
    checkStats.lineAudits = coherence->auditsRun();
    if (!r.empty())
        report(&CheckStats::coherenceViolations, "coherence", r);
}

} // namespace mcsim::check
