/**
 * @file
 * sweep_runner: run named configuration grids through the parallel
 * sweep engine (src/exp/) and emit canonical JSON/CSV results, or check
 * them against committed golden baselines.
 *
 * Usage:
 *   sweep_runner [--grid NAME[,NAME...]]... [--scale quick|scaled|full]
 *                [--threads N] [--out FILE] [--csv FILE]
 *                [--check DIR] [--golden-out DIR]
 *                [--list] [--no-progress]
 *
 * Defaults: --grid quick, --threads hardware, --out
 * results/BENCH_sweep.json when any grid ran and --out was not given
 * explicitly pass --out "" to suppress writing.
 *
 * The JSON document is byte-identical for a given grid list regardless
 * of --threads (results are serialized in grid order; nothing
 * wall-clock-derived is recorded). --check DIR compares each grid
 * against DIR/<grid>.json under the per-metric tolerance policy
 * (src/exp/golden.hh) and prints the first divergent metric by name.
 *
 * Exit status: 0 all jobs ok (and all checks clean), 1 on any failed
 * job or golden divergence, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/golden.hh"
#include "exp/grid.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

using namespace mcsim;

namespace
{

struct Options
{
    std::vector<std::string> grids;
    exp::Scale scale = exp::Scale::Scaled;
    unsigned threads = 0;
    std::string out = "results/BENCH_sweep.json";
    std::string csv;
    std::string checkDir;
    std::string goldenOut;
    bool list = false;
    bool progress = true;
};

void
usage(const char *argv0)
{
    std::string names;
    for (const std::string &name : exp::gridNames())
        names += (names.empty() ? "" : "|") + name;
    std::fprintf(
        stderr,
        "usage: %s [--grid NAME[,NAME...]]... [--scale quick|scaled|full]\n"
        "          [--threads N] [--out FILE] [--csv FILE]\n"
        "          [--check DIR] [--golden-out DIR] [--list]\n"
        "          [--no-progress]\n"
        "  --grid        grid(s) to run: %s, or all (default: quick)\n"
        "  --scale       problem/cache scale for the paper grids\n"
        "                (default scaled; the quick grid is always quick)\n"
        "  --threads     worker threads (default: hardware concurrency)\n"
        "  --out         results JSON path (default "
        "results/BENCH_sweep.json;\n"
        "                \"\" suppresses writing)\n"
        "  --csv         also write a flat CSV of every job\n"
        "  --check       diff each grid against DIR/<grid>.json golden\n"
        "                baselines; non-zero exit on divergence\n"
        "  --golden-out  write one per-grid golden document into DIR\n"
        "  --list        print the known grid names and exit\n",
        argv0, names.c_str());
}

void
splitGrids(const std::string &arg, std::vector<std::string> &out)
{
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string name =
            arg.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (name == "all") {
            for (const std::string &g : exp::gridNames())
                out.push_back(g);
        } else if (!name.empty()) {
            out.push_back(name);
        }
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--grid") {
            splitGrids(next(), opt.grids);
        } else if (arg == "--scale") {
            opt.scale = exp::scaleFromName(next());
        } else if (arg == "--threads") {
            opt.threads = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--csv") {
            opt.csv = next();
        } else if (arg == "--check") {
            opt.checkDir = next();
        } else if (arg == "--golden-out") {
            opt.goldenOut = next();
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--no-progress") {
            opt.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            std::exit(2);
        }
    }
    if (opt.grids.empty())
        opt.grids.push_back("quick");
    return opt;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
    }
    out << content;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (opt.list) {
        for (const std::string &name : exp::gridNames())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    exp::SweepOutcomes outcomes;
    try {
        for (const std::string &name : opt.grids) {
            const exp::Grid grid = exp::namedGrid(name, opt.scale);
            std::fprintf(stderr, "grid %s: %zu jobs on %u thread(s)\n",
                         grid.name.c_str(), grid.points.size(),
                         opt.threads
                             ? opt.threads
                             : std::thread::hardware_concurrency());
            exp::SweepOptions sweep_opts;
            sweep_opts.threads = opt.threads;
            sweep_opts.progress = opt.progress;
            outcomes.add(grid,
                         exp::SweepRunner(sweep_opts).run(grid));
        }
    } catch (const FatalError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 2;
    }

    const exp::Json doc = outcomes.toJson();
    if (!opt.out.empty() && !writeFile(opt.out, doc.dump() + "\n"))
        return 1;
    if (!opt.csv.empty() && !writeFile(opt.csv, outcomes.toCsv()))
        return 1;
    if (!opt.goldenOut.empty()) {
        // One self-contained document per grid, the format --check
        // consumes.
        const exp::Json *grids = doc.find("grids");
        for (const std::string &name : outcomes.gridsRun()) {
            exp::Json gdoc = exp::Json::object();
            gdoc["schema"] = exp::Json("mcsim-sweep-v1");
            exp::Json one = exp::Json::object();
            if (const exp::Json *g = grids ? grids->find(name) : nullptr)
                one[name] = *g;
            else
                one[name] = exp::Json::array();
            gdoc["grids"] = std::move(one);
            if (!writeFile(opt.goldenOut + "/" + name + ".json",
                           gdoc.dump() + "\n"))
                return 1;
        }
    }

    bool check_ok = true;
    if (!opt.checkDir.empty()) {
        for (const std::string &name : outcomes.gridsRun()) {
            const exp::GoldenDiff diff =
                exp::checkAgainstGoldenDir(doc, opt.checkDir, name);
            std::fputs(diff.report.c_str(), stdout);
            check_ok = check_ok && diff.ok;
        }
    }

    const std::size_t failed = outcomes.failedJobs();
    std::printf("sweep_runner: %zu/%zu job(s) ok%s\n",
                outcomes.totalJobs() - failed, outcomes.totalJobs(),
                check_ok ? "" : ", golden check FAILED");
    if (failed) {
        for (const std::string &name : outcomes.gridsRun())
            for (const exp::JobResult &job : outcomes.gridResults(name))
                if (!job.ok)
                    std::printf("  FAILED %s: %s\n",
                                job.point.id().c_str(),
                                job.error.c_str());
    }
    return failed == 0 && check_ok ? 0 : 1;
}
