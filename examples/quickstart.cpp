/**
 * @file
 * Quickstart: build a 16-processor machine, run the Gauss benchmark under
 * each consistency model, and print the relative performance gains --
 * a miniature of the paper's Figure 4.
 *
 * Usage: quickstart [matrix-n] [cache-bytes] [line-bytes]
 */

#include <cstdio>
#include <cstdlib>

#include "core/consistency.hh"
#include "core/machine_config.hh"
#include "core/metrics.hh"
#include "workloads/gauss.hh"
#include "workloads/workload.hh"

using namespace mcsim;

int
main(int argc, char **argv)
{
    unsigned n = argc > 1 ? std::atoi(argv[1]) : 64;
    unsigned cache_bytes = argc > 2 ? std::atoi(argv[2]) : 4 * 1024;
    unsigned line_bytes = argc > 3 ? std::atoi(argv[3]) : 16;

    core::MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.numModules = 16;
    cfg.cacheBytes = cache_bytes;
    cfg.lineBytes = line_bytes;

    std::printf("Gauss %ux%u, %u procs, %uK cache, %uB lines\n", n, n,
                cfg.numProcs, cache_bytes / 1024, line_bytes);
    std::printf("%-6s %12s %8s %8s %8s %10s\n", "model", "cycles", "hit%",
                "rdhit%", "wrhit%", "gain/SC1");

    core::RunMetrics base;
    for (core::Model m : core::allModels) {
        cfg.model = m;
        workloads::GaussWorkload w(workloads::GaussParams{n, 12345});
        auto r = workloads::runWorkload(w, cfg);
        if (m == core::Model::SC1)
            base = r.metrics;
        std::printf("%-6s %12llu %8.1f %8.1f %8.1f %9.1f%%\n",
                    core::modelName(m),
                    static_cast<unsigned long long>(r.metrics.cycles),
                    100.0 * r.metrics.hitRate,
                    100.0 * r.metrics.readHitRate,
                    100.0 * r.metrics.writeHitRate,
                    core::percentGain(base, r.metrics));
    }
    return 0;
}
