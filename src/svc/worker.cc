#include "svc/worker.hh"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/chaos.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

namespace mcsim::svc
{

WorkerResult
runShardWorker(const ShardPlan &plan, std::uint32_t shard,
               const std::string &journal_path,
               const WorkerOptions &options)
{
    if (shard >= plan.shardCount)
        fatal("svc: worker asked for shard %u of %u", shard,
              plan.shardCount);
    const JournalHeader want = plan.journalHeader(shard);

    // Open-or-create: a valid existing journal is the resume state, a
    // torn header (killed during creation) is recreated from scratch.
    std::vector<bool> journaled(plan.grid.points.size(), false);
    std::size_t resumed = 0;
    std::uint64_t valid_bytes = 0;
    bool resuming = false;
    if (journalExists(journal_path)) {
        const JournalScan scan = scanJournal(journal_path);
        if (!scan.headerTorn) {
            requireMatchingHeader(scan.header, want, journal_path);
            for (const JournalFrame &frame : scan.frames)
                journaled[frame.index] = true;
            resumed = scan.frames.size();
            valid_bytes = scan.validBytes;
            resuming = true;
            if (options.progress && scan.tornBytes > 0) {
                std::fprintf(stderr,
                             "svc: shard %u/%u: dropping %llu torn "
                             "byte(s) from '%s'\n",
                             shard, plan.shardCount,
                             static_cast<unsigned long long>(
                                 scan.tornBytes),
                             journal_path.c_str());
            }
        }
    }
    JournalWriter writer =
        resuming ? JournalWriter::resume(journal_path, valid_bytes)
                 : JournalWriter::create(journal_path, want);

    std::vector<std::size_t> remaining;
    for (const std::size_t index : plan.shardIndices(shard))
        if (!journaled[index])
            remaining.push_back(index);

    WorkerResult result;
    result.resumedPoints = resumed;
    if (options.progress) {
        std::fprintf(stderr,
                     "svc: shard %u/%u: %zu journaled, %zu to run\n",
                     shard, plan.shardCount, resumed, remaining.size());
    }
    if (remaining.empty()) {
        writer.close();
        result.done = true;
        return result;
    }

    // Checkpoint one completed point. Callers serialize calls (the
    // sweep engine's sink lock / the chaos pool's mutex), so the plain
    // counters are safe. Returning false stops new scheduling.
    std::size_t fresh = 0;
    bool stopped = false;
    auto checkpoint = [&](std::size_t index, const std::string &payload,
                          bool job_ok) -> bool {
        writer.append(static_cast<std::uint32_t>(index), payload);
        ++fresh;
        if (!job_ok)
            ++result.failedJobs;
        // The frame is flushed; dying exactly here is the strongest
        // crash the journal must absorb, so the test hook dies here.
        if (options.killAfter != 0 && fresh >= options.killAfter)
            raise(SIGKILL);
        if (options.stopAfter != 0 && fresh >= options.stopAfter) {
            stopped = true;
            return false;
        }
        return true;
    };

    if (plan.mode == RunMode::Sweep) {
        exp::SweepOptions sweep_opts;
        sweep_opts.threads = options.threads;
        sweep_opts.progress = options.progress;
        exp::SweepRunner(sweep_opts)
            .runIndices(plan.grid, remaining,
                        [&](std::size_t index, const exp::JobResult &job) {
                            return checkpoint(
                                index, exp::jobToJson(job).dump(),
                                job.ok);
                        });
    } else {
        // Chaos pairs run in a local pool mirroring exp::runChaos, with
        // the checkpoint spliced in under the same report mutex.
        const std::size_t total = remaining.size();
        unsigned threads = options.threads;
        if (threads == 0) {
            threads = std::thread::hardware_concurrency();
            if (threads == 0)
                threads = 1;
        }
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};
        std::mutex sink_mutex;
        std::size_t done_count = 0;
        auto chaos_worker = [&]() {
            for (;;) {
                if (stop.load())
                    return;
                const std::size_t slot = next.fetch_add(1);
                if (slot >= total)
                    return;
                const std::size_t index = remaining[slot];
                const exp::ChaosPointResult r = exp::runChaosPoint(
                    plan.grid.points[index], plan.preset);
                std::lock_guard<std::mutex> lock(sink_mutex);
                if (!checkpoint(index,
                                exp::chaosPointToJson(r).dump(), r.ok))
                    stop.store(true);
                ++done_count;
                if (options.progress) {
                    std::fprintf(
                        stderr, "[%zu/%zu] %-52s %-6s %llu faults\n",
                        done_count, total, r.id.c_str(),
                        r.ok ? "ok" : "FAILED",
                        static_cast<unsigned long long>(
                            r.faultsInjected));
                }
            }
        };
        const unsigned n = static_cast<unsigned>(
            std::min<std::size_t>(threads, total));
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (unsigned t = 0; t < n; ++t)
            pool.emplace_back(chaos_worker);
        for (std::thread &t : pool)
            t.join();
    }

    writer.close();
    result.completedPoints = fresh;
    result.stopped = stopped;
    result.done = resumed + fresh == plan.shardPoints(shard);
    return result;
}

} // namespace mcsim::svc
