/**
 * @file
 * Unit tests for the lockup-free write-back cache against a real
 * directory/memory back end: hit/miss classification, the
 * write-to-shared-line policy, LRU and writeback on eviction, MSHR
 * merging and conflicts, and coherence request handling.
 */

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "mem/cache.hh"
#include "mem/memory_module.hh"
#include "mem/outbox.hh"
#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "sim/event_queue.hh"

using namespace mcsim;
using mem::AccessOutcome;
using mem::AccessType;
using mem::Cache;

namespace
{

/** Two caches + four modules wired through real networks. */
struct MemHarness
{
    static constexpr unsigned numPorts = 4;

    EventQueue queue;
    net::OmegaNetwork<mem::CoherenceMsg> reqNet;
    net::OmegaNetwork<mem::CoherenceMsg> respNet;
    std::vector<std::unique_ptr<net::IfaceBuffer<mem::CoherenceMsg>>> reqBufs;
    std::vector<std::unique_ptr<net::IfaceBuffer<mem::CoherenceMsg>>> respBufs;
    std::vector<std::unique_ptr<mem::Outbox>> procOut;
    std::vector<std::unique_ptr<mem::Outbox>> memOut;
    std::vector<std::unique_ptr<mem::MemoryModule>> modules;
    std::vector<std::unique_ptr<Cache>> caches;
    std::vector<std::vector<std::pair<std::uint64_t, Tick>>> completions;

    explicit MemHarness(mem::CacheParams cache_params = {})
        : reqNet(queue, numPorts, 4,
                 [this](mem::NetMsg &&m) {
                     modules[m.dst]->handleRequest(std::move(m));
                 }),
          respNet(queue, numPorts, 4, [this](mem::NetMsg &&m) {
              caches[m.dst]->handleResponse(std::move(m));
          })
    {
        mem::MemoryParams mp;
        mp.lineBytes = cache_params.lineBytes;
        mp.numProcs = numPorts;
        for (unsigned i = 0; i < numPorts; ++i) {
            respBufs.push_back(
                std::make_unique<net::IfaceBuffer<mem::CoherenceMsg>>(
                    queue, respNet, 4, false));
            memOut.push_back(
                std::make_unique<mem::Outbox>(*respBufs.back(), false));
            modules.push_back(std::make_unique<mem::MemoryModule>(
                queue, i, mp, *memOut.back()));
        }
        completions.resize(2);
        for (unsigned p = 0; p < 2; ++p) {
            reqBufs.push_back(
                std::make_unique<net::IfaceBuffer<mem::CoherenceMsg>>(
                    queue, reqNet, 4, cache_params.bypassLoads));
            procOut.push_back(std::make_unique<mem::Outbox>(
                *reqBufs.back(), cache_params.bypassLoads));
            caches.push_back(std::make_unique<Cache>(
                queue, p, cache_params, *procOut.back(), numPorts));
            caches.back()->setCompletionHandler(
                [this, p](std::uint64_t cookie) {
                    completions[p].emplace_back(cookie, queue.now());
                });
        }
    }

    Cache &c0() { return *caches[0]; }
    Cache &c1() { return *caches[1]; }

    void settle() { queue.run(); }
};

mem::CacheParams
smallParams()
{
    mem::CacheParams p;
    p.cacheBytes = 512;  // 16 sets x 2 ways x 16B
    p.lineBytes = 16;
    p.numMshrs = 5;
    return p;
}

} // namespace

TEST(Cache, ParamsValidation)
{
    mem::CacheParams p = smallParams();
    p.lineBytes = 12;
    EXPECT_THROW(p.validate(), FatalError);
    p = smallParams();
    p.numMshrs = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = smallParams();
    p.cacheBytes = 500;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Cache, ColdMissThenHit)
{
    MemHarness h(smallParams());
    EXPECT_EQ(h.c0().access(0x100, AccessType::Load, 1),
              AccessOutcome::Miss);
    h.settle();
    ASSERT_EQ(h.completions[0].size(), 1u);
    EXPECT_EQ(h.completions[0][0].first, 1u);
    EXPECT_EQ(h.c0().lineState(0x100), Cache::LineState::Shared);
    EXPECT_EQ(h.c0().access(0x108, AccessType::Load, 2),
              AccessOutcome::Hit);  // same 16B line
    EXPECT_EQ(h.c0().stats().loads, 2u);
    EXPECT_EQ(h.c0().stats().loadHits, 1u);
}

TEST(Cache, StoreMissInstallsModified)
{
    MemHarness h(smallParams());
    EXPECT_EQ(h.c0().access(0x200, AccessType::Store, 1),
              AccessOutcome::Miss);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x200), Cache::LineState::Modified);
    EXPECT_EQ(h.c0().access(0x208, AccessType::Store, 2),
              AccessOutcome::Hit);
}

TEST(Cache, WriteToSharedLineIsAWriteMiss)
{
    // Paper section 3.3: a write to a line held read-only invalidates the
    // local copy and refetches with write permission.
    MemHarness h(smallParams());
    h.c0().access(0x300, AccessType::Load, 1);
    h.settle();
    ASSERT_EQ(h.c0().lineState(0x300), Cache::LineState::Shared);
    EXPECT_EQ(h.c0().access(0x300, AccessType::Store, 2),
              AccessOutcome::Miss);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x300), Cache::LineState::Modified);
    EXPECT_EQ(h.c0().stats().stores, 1u);
    EXPECT_EQ(h.c0().stats().storeHits, 0u);
}

TEST(Cache, LoadsMergeOntoPendingFill)
{
    MemHarness h(smallParams());
    EXPECT_EQ(h.c0().access(0x400, AccessType::Load, 1),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x408, AccessType::Load, 2),
              AccessOutcome::Merged);
    h.settle();
    ASSERT_EQ(h.completions[0].size(), 2u);
    // Both complete at the same fill.
    EXPECT_EQ(h.completions[0][0].second, h.completions[0][1].second);
    EXPECT_EQ(h.c0().stats().mergedAccesses, 1u);
}

TEST(Cache, StoreOntoPendingSharedFillBlocks)
{
    MemHarness h(smallParams());
    EXPECT_EQ(h.c0().access(0x500, AccessType::Load, 1),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x500, AccessType::Store, 2),
              AccessOutcome::Blocked);
    h.settle();
    // After the fill the store can retry and becomes a write miss.
    EXPECT_EQ(h.c0().access(0x500, AccessType::Store, 3),
              AccessOutcome::Miss);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x500), Cache::LineState::Modified);
}

TEST(Cache, StoreMergesOntoPendingExclusiveFill)
{
    MemHarness h(smallParams());
    EXPECT_EQ(h.c0().access(0x600, AccessType::Store, 1),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x608, AccessType::Store, 2),
              AccessOutcome::Merged);
    EXPECT_EQ(h.c0().access(0x600, AccessType::Load, 3),
              AccessOutcome::Merged);
    h.settle();
    EXPECT_EQ(h.completions[0].size(), 3u);
}

TEST(Cache, MshrExhaustionBlocks)
{
    mem::CacheParams p = smallParams();
    p.numMshrs = 2;
    MemHarness h(p);
    // Distinct sets: stride by line*numSets = 16*16 = 256... use distinct
    // lines in distinct sets.
    EXPECT_EQ(h.c0().access(0x000, AccessType::Load, 1),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x010, AccessType::Load, 2),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x020, AccessType::Load, 3),
              AccessOutcome::Blocked);
    EXPECT_EQ(h.c0().freeMshrs(), 0u);
    h.settle();
    EXPECT_EQ(h.c0().freeMshrs(), 2u);
    EXPECT_EQ(h.c0().stats().blockedAccesses, 1u);
}

TEST(Cache, SetConflictWithPendingWaysBlocks)
{
    mem::CacheParams p = smallParams();  // 16 sets, 2 ways
    MemHarness h(p);
    // Three lines in the same set (stride = 16 lines * 16B = 256).
    EXPECT_EQ(h.c0().access(0x1000, AccessType::Load, 1),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x1100, AccessType::Load, 2),
              AccessOutcome::Miss);
    EXPECT_EQ(h.c0().access(0x1200, AccessType::Load, 3),
              AccessOutcome::Blocked);  // both ways pending
    h.settle();
    EXPECT_EQ(h.c0().access(0x1200, AccessType::Load, 4),
              AccessOutcome::Miss);  // now evicts LRU
    h.settle();
}

TEST(Cache, LruEvictionAndWriteback)
{
    MemHarness h(smallParams());
    auto step = [&]() { h.queue.runUntil(h.queue.now() + 1); };
    // Fill both ways of one set; dirty the first.
    h.c0().access(0x1000, AccessType::Store, 1);
    h.settle();
    h.c0().access(0x1100, AccessType::Load, 2);
    h.settle();
    // Distinct-tick touches: 0x1100 becomes MRU, 0x1000 LRU... then
    // re-touch 0x1000 so the clean 0x1100 is the LRU victim.
    step();
    h.c0().access(0x1100, AccessType::Load, 3);
    step();
    h.c0().access(0x1000, AccessType::Load, 4);
    step();
    h.c0().access(0x1200, AccessType::Load, 5);
    h.settle();
    EXPECT_EQ(h.c0().stats().writebacks, 0u);
    EXPECT_EQ(h.c0().lineState(0x1100), Cache::LineState::Invalid);
    // Next eviction removes dirty 0x1000: a writeback goes out.
    step();
    h.c0().access(0x1100, AccessType::Load, 6);
    h.settle();
    EXPECT_EQ(h.c0().stats().writebacks, 1u);
    EXPECT_EQ(h.c0().lineState(0x1000), Cache::LineState::Invalid);
}

TEST(Cache, InvalidationOnSharedLine)
{
    MemHarness h(smallParams());
    h.c0().access(0x700, AccessType::Load, 1);
    h.settle();
    // Cache 1 writes the same line: directory invalidates cache 0.
    h.c1().access(0x700, AccessType::Store, 1);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x700), Cache::LineState::Invalid);
    EXPECT_EQ(h.c1().lineState(0x700), Cache::LineState::Modified);
    EXPECT_EQ(h.c0().stats().invalidationsReceived, 1u);
    // Re-reading it is an invalidation miss.
    h.c0().access(0x700, AccessType::Load, 2);
    h.settle();
    EXPECT_EQ(h.c0().stats().invalidationMisses, 1u);
}

TEST(Cache, RecallSharedDowngradesOwner)
{
    MemHarness h(smallParams());
    h.c0().access(0x800, AccessType::Store, 1);
    h.settle();
    ASSERT_EQ(h.c0().lineState(0x800), Cache::LineState::Modified);
    h.c1().access(0x800, AccessType::Load, 1);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x800), Cache::LineState::Shared);
    EXPECT_EQ(h.c1().lineState(0x800), Cache::LineState::Shared);
    EXPECT_EQ(h.c0().stats().recallsServed, 1u);
}

TEST(Cache, RecallExclusiveInvalidatesOwner)
{
    MemHarness h(smallParams());
    h.c0().access(0x900, AccessType::Store, 1);
    h.settle();
    h.c1().access(0x900, AccessType::Store, 1);
    h.settle();
    EXPECT_EQ(h.c0().lineState(0x900), Cache::LineState::Invalid);
    EXPECT_EQ(h.c1().lineState(0x900), Cache::LineState::Modified);
}

TEST(Cache, PrefetchSharedAndDemandMerge)
{
    MemHarness h(smallParams());
    EXPECT_TRUE(h.c0().prefetch(0xa00, false));
    EXPECT_EQ(h.c0().stats().prefetchesIssued, 1u);
    // A demand load arriving while the prefetch is in flight merges and
    // converts it to a demand fetch.
    EXPECT_EQ(h.c0().access(0xa00, AccessType::Load, 1),
              AccessOutcome::Merged);
    h.settle();
    EXPECT_EQ(h.c0().stats().prefetchesUseful, 1u);
    ASSERT_EQ(h.completions[0].size(), 1u);
}

TEST(Cache, PrefetchDoesNotDisturbValidLines)
{
    MemHarness h(smallParams());
    h.c0().access(0xb00, AccessType::Load, 1);
    h.settle();
    EXPECT_FALSE(h.c0().prefetch(0xb00, true));  // present: no-op
    EXPECT_EQ(h.c0().lineState(0xb00), Cache::LineState::Shared);
}

TEST(Cache, PrefetchCompletionFiresNoConsumer)
{
    MemHarness h(smallParams());
    EXPECT_TRUE(h.c0().prefetch(0xc00, true));
    h.settle();
    EXPECT_TRUE(h.completions[0].empty());
    EXPECT_EQ(h.c0().lineState(0xc00), Cache::LineState::Modified);
}

TEST(Cache, SyncAccessesCountedSeparately)
{
    MemHarness h(smallParams());
    h.c0().access(0xd00, AccessType::SyncRmw, 1);
    h.settle();
    h.c0().access(0xd00, AccessType::SyncLoad, 2);
    h.c0().access(0xd00, AccessType::SyncStore, 3);
    EXPECT_EQ(h.c0().stats().syncAccesses, 3u);
    EXPECT_EQ(h.c0().stats().syncHits, 2u);
    EXPECT_EQ(h.c0().stats().loads, 0u);
    EXPECT_EQ(h.c0().stats().stores, 0u);
}
