/**
 * @file
 * Unit tests for the Outbox (controller-side overflow queue in front of
 * an interface buffer).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/outbox.hh"
#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "sim/event_queue.hh"

using namespace mcsim;
using mem::CoherenceMsg;
using mem::NetMsg;

namespace
{

struct Harness
{
    EventQueue queue;
    std::vector<int> delivered;  // payload lineAddr as id
    net::OmegaNetwork<CoherenceMsg> network;
    net::IfaceBuffer<CoherenceMsg> buffer;
    mem::Outbox outbox;

    explicit Harness(unsigned capacity = 2, bool bypass = false)
        : network(queue, 16, 4,
                  [this](NetMsg &&m) {
                      delivered.push_back(
                          static_cast<int>(m.payload.lineAddr));
                  }),
          buffer(queue, network, capacity, bypass),
          outbox(buffer, bypass)
    {}

    NetMsg
    make(int id, std::uint32_t bytes = 72, bool bypass = false)
    {
        NetMsg m;
        m.src = 0;
        m.dst = 3;
        m.bytes = bytes;
        m.bypassEligible = bypass;
        m.payload.lineAddr = static_cast<Addr>(id);
        return m;
    }
};

} // namespace

TEST(Outbox, OverflowsBeyondBufferCapacity)
{
    Harness h(2);
    h.queue.schedule(1, [&]() {
        for (int i = 0; i < 6; ++i)
            h.outbox.send(h.make(i));
        EXPECT_GT(h.outbox.backlog(), 0u);
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(h.outbox.backlog(), 0u);
}

TEST(Outbox, BypassAppliesInOverflowQueue)
{
    Harness h(1, /*bypass=*/true);
    h.queue.schedule(1, [&]() {
        h.outbox.send(h.make(0));        // into the buffer
        h.outbox.send(h.make(1));        // overflow
        h.outbox.send(h.make(2));        // overflow
        h.outbox.send(h.make(3, 8, true));  // load: jumps the overflow
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 4u);
    EXPECT_EQ(h.delivered[0], 0);
    EXPECT_EQ(h.delivered[1], 3);
    EXPECT_EQ(h.delivered[2], 1);
    EXPECT_EQ(h.delivered[3], 2);
}

TEST(Outbox, NoBypassReordersNothing)
{
    Harness h(1, /*bypass=*/false);
    h.queue.schedule(1, [&]() {
        for (int i = 0; i < 4; ++i)
            h.outbox.send(h.make(i, 72, i == 3));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)], i);
}
