#include "svc/merge.hh"

#include <utility>

#include "exp/chaos.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

namespace mcsim::svc
{

namespace
{

/** Parse one journaled payload; fatal() names the point on failure. */
exp::Json
parsePayload(const std::string &payload, const std::string &path,
             std::uint32_t index)
{
    std::string error;
    exp::Json doc = exp::Json::parse(payload, &error);
    if (!error.empty())
        fatal("svc: journal '%s' point %u payload is not JSON: %s",
              path.c_str(), index, error.c_str());
    return doc;
}

/**
 * Validate a steal journal's header against @p plan. shardPoints (the
 * slice size) is deliberately NOT checked here: recomputing it would
 * need the victim's frozen remainder, and the scan already enforces
 * that every frame is in range and victim-owned, which is what merge
 * correctness actually rests on.
 */
void
requireStealHeader(const JournalHeader &got, const ShardPlan &plan,
                   const std::string &path)
{
    if (got.planFingerprint != plan.journalHeader(0).planFingerprint) {
        fatal("svc: journal '%s' belongs to plan %016llx, this plan is "
              "%016llx (grid, scale, overrides, preset, or shard count "
              "changed; remove stale journals or fix the flags)",
              path.c_str(),
              static_cast<unsigned long long>(got.planFingerprint),
              static_cast<unsigned long long>(
                  plan.journalHeader(0).planFingerprint));
    }
    if (got.kind != JournalKind::Steal || got.mode != plan.mode ||
        got.shardCount != plan.shardCount ||
        got.gridPoints != plan.grid.points.size()) {
        fatal("svc: journal '%s' header disagrees with the plan "
              "(%s %s shard %u/%u)",
              path.c_str(), journalKindName(got.kind),
              runModeName(got.mode), got.shardIndex, got.shardCount);
    }
}

} // namespace

MergeResult
mergeJournals(const ShardPlan &plan,
              const std::vector<std::string> &journal_paths,
              const MergeOptions &options)
{
    if (journal_paths.size() < plan.shardCount) {
        fatal("svc: merge got %zu journal(s) for %u shard(s)",
              journal_paths.size(), plan.shardCount);
    }

    const std::size_t total = plan.grid.points.size();
    std::vector<std::string> payloads(total);
    std::vector<bool> covered(total, false);
    // Which file first covered each point, for duplicate diagnostics
    // and accurate error attribution later.
    std::vector<std::size_t> coveredBy(total, 0);

    // A missing or header-torn file only matters if it leaves points
    // uncovered: a revoked shard's primary may be dead (or never got
    // past creation) while steal journals cover everything it owned.
    // The first unusable file is remembered so an ACTUAL shortfall can
    // name it instead of just the first uncovered point.
    std::string unusable;

    for (std::size_t file = 0; file < journal_paths.size(); ++file) {
        const std::string &path = journal_paths[file];
        const bool primary_slot = file < plan.shardCount;
        if (!journalExists(path)) {
            if (unusable.empty()) {
                unusable = strprintf(
                    "%s journal '%s' does not exist (did the %s ever "
                    "run?)",
                    primary_slot ? "shard" : "steal", path.c_str(),
                    primary_slot ? "shard" : "steal worker");
            }
            continue;
        }
        const JournalScan scan = scanJournal(path);
        if (scan.headerTorn) {
            if (unusable.empty()) {
                unusable = strprintf(
                    "journal '%s' has a torn header (the worker died "
                    "during creation; resume the run)",
                    path.c_str());
            }
            continue;
        }
        if (primary_slot) {
            requireMatchingHeader(
                scan.header,
                plan.journalHeader(static_cast<std::uint32_t>(file)),
                path);
        } else {
            requireStealHeader(scan.header, plan, path);
        }
        // The scan guarantees in-range, owner-consistent, in-file
        // unique indices. ACROSS files a point may legitimately appear
        // twice (victim primary + steal journal both hold it after a
        // revocation race) -- but only byte-identically: results are
        // deterministic, so disagreement means corruption.
        for (const JournalFrame &frame : scan.frames) {
            if (covered[frame.index]) {
                if (payloads[frame.index] != frame.payload) {
                    fatal("svc: journals '%s' and '%s' disagree on "
                          "point %u (results are deterministic; this "
                          "is corruption or a foreign journal)",
                          journal_paths[coveredBy[frame.index]].c_str(),
                          path.c_str(), frame.index);
                }
                continue;
            }
            payloads[frame.index] = frame.payload;
            covered[frame.index] = true;
            coveredBy[frame.index] = file;
        }
    }

    MergeResult result;
    for (std::size_t i = 0; i < total; ++i) {
        if (covered[i])
            continue;
        if (!options.degraded) {
            if (!unusable.empty())
                fatal("svc: %s", unusable.c_str());
            fatal("svc: no journal covers point %zu (%s); the plan is "
                  "incomplete (resume the run, or merge --degraded to "
                  "quarantine permanently failed points)",
                  i, plan.grid.points[i].id().c_str());
        }
        result.quarantined.push_back(i);
    }
    result.degraded = !result.quarantined.empty();
    result.totalJobs = total - result.quarantined.size();

    // The quarantine section: {index, id} per uncovered point, grid
    // order. Only a degraded merge that actually quarantined something
    // emits it, so a fully covered degraded merge stays byte-identical
    // to a strict one.
    exp::Json failed = exp::Json::array();
    for (const std::size_t i : result.quarantined) {
        exp::Json entry = exp::Json::object();
        entry["index"] = exp::Json(static_cast<double>(i));
        entry["id"] = exp::Json(plan.grid.points[i].id());
        failed.push(std::move(entry));
    }

    if (plan.mode == RunMode::Sweep) {
        // Splice the journaled canonical payloads, in grid order, into
        // exactly the document SweepOutcomes::toJson() builds.
        exp::Json jobs = exp::Json::array();
        result.csv = exp::csvHeader();
        for (std::size_t i = 0; i < total; ++i) {
            if (!covered[i])
                continue;
            exp::Json job =
                parsePayload(payloads[i], journal_paths[coveredBy[i]],
                             static_cast<std::uint32_t>(i));
            const exp::Json *status = job.find("status");
            if (status == nullptr || !status->isString())
                fatal("svc: point %zu payload lacks a status field", i);
            if (status->asString() != "ok")
                ++result.failedJobs;
            result.csv += exp::csvRowFromJson(plan.grid.name, job);
            jobs.push(std::move(job));
        }
        exp::Json grids = exp::Json::object();
        grids[plan.grid.name] = std::move(jobs);
        exp::Json doc = exp::Json::object();
        doc["schema"] = exp::Json("mcsim-sweep-v1");
        doc["grids"] = std::move(grids);
        if (result.degraded)
            doc["failed"] = std::move(failed);
        result.document = std::move(doc);
        return result;
    }

    // Chaos: rebuild the report object and let ITS serialization and
    // verdict logic speak, so the merged document and the exit status
    // match a single-process `sweep_runner --chaos` run exactly.
    exp::ChaosReport report;
    report.grid = plan.grid.name;
    report.preset = plan.preset;
    report.points.reserve(result.totalJobs);
    for (std::size_t i = 0; i < total; ++i) {
        if (!covered[i])
            continue;
        report.points.push_back(exp::chaosPointFromJson(
            parsePayload(payloads[i], journal_paths[coveredBy[i]],
                         static_cast<std::uint32_t>(i))));
    }
    result.failedJobs = report.failures();
    result.chaosOk = report.ok();
    result.chaosSummary = report.summary();
    exp::Json reports = exp::Json::array();
    reports.push(report.toJson());
    exp::Json doc = exp::Json::object();
    doc["schema"] = exp::Json("mcsim-chaos-v1");
    doc["reports"] = std::move(reports);
    if (result.degraded)
        doc["failed"] = std::move(failed);
    result.document = std::move(doc);
    return result;
}

} // namespace mcsim::svc
