/**
 * @file
 * svc_runner: the distributed, resumable face of the sweep engine
 * (src/svc/) -- partition a named grid into shards, run them as
 * supervised worker processes with checkpoint journals, survive kills,
 * resume, and merge the journals into the byte-identical canonical
 * results document a single-process sweep_runner run would emit.
 *
 * Usage:
 *   svc_runner plan    PLANFLAGS
 *   svc_runner worker  PLANFLAGS --shard N --dir DIR [--steal K/M]
 *                      [--threads N] [--kill-after N] [--stall-at N]
 *                      [--skip I]... [--poison I]... [--no-progress]
 *   svc_runner run     PLANFLAGS --dir DIR [--workers N]
 *                      [--max-retries N] [--backoff-ms N]
 *                      [--lease-ms N] [--poll-ms N] [--steal-fanout N]
 *                      [--threads N] [--kill-after N] [--stall-at N]
 *                      [--resume] [--out FILE] [--csv FILE]
 *                      [--check DIR] [--no-progress]
 *   svc_runner merge   PLANFLAGS --dir DIR [--degraded] [--out FILE]
 *                      [--csv FILE] [--check DIR]
 *   svc_runner chaos   PLANFLAGS --dir DIR [--rounds N] [--seed N]
 *                      [--preset light|standard|heavy] [--poison I]...
 *                      [--max-retries N] [--steal-fanout N]
 *                      [--keep-journals] [--out FILE] [--no-progress]
 *   svc_runner compact --journal FILE [--out FILE]
 *   svc_runner inspect --journal FILE
 *
 * PLANFLAGS identify the plan everywhere: --grid NAME (default quick),
 * --scale quick|scaled|full, --shards N (default 1), --faults PRESET,
 * --chaos, --procs/--cache-bytes/--line-bytes overrides. The same flags
 * always derive the same plan fingerprint, so coordinator, workers, and
 * merge agree on the partition with no shared state but the journal
 * directory.
 *
 * `run` refuses a directory that already holds journals for this plan
 * unless --resume is given (resume skips every journaled point).
 * --lease-ms N arms lease supervision: a worker whose journal stops
 * growing for N ms is SIGKILLed and judged like any other death.
 * --steal-fanout M (default 2) lets a shard that exhausts its retries
 * hand its un-journaled remainder to up to M steal workers, each
 * journaling into its own steal journal; merge picks those up
 * automatically. `merge --degraded` quarantines points no journal
 * covers into the document's "failed" section instead of failing, and
 * exits 1 to flag the loss. `chaos` replays seeded process-fault
 * histories (kills, stalls, torn tails, short writes, failed flushes,
 * coordinator crashes) against an in-process model of the supervised
 * run and requires every round to merge byte-identical to a fault-free
 * reference. `compact` rewrites a journal to its canonical minimal
 * form (same merge bytes, atomically published).
 *
 * Exit status: 0 all jobs ok (and checks clean), 1 on failed jobs,
 * failed shards, degraded merges, golden divergence, or chaos failure,
 * 2 on usage or configuration errors.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/golden.hh"
#include "exp/grid.hh"
#include "sim/logging.hh"
#include "svc/atomic_file.hh"
#include "svc/chaos_svc.hh"
#include "svc/coordinator.hh"
#include "svc/journal.hh"
#include "svc/merge.hh"
#include "svc/shard.hh"
#include "svc/worker.hh"

#include "../common/cli.hh"

using namespace mcsim;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s plan    PLANFLAGS\n"
        "       %s worker  PLANFLAGS --shard N --dir DIR [--steal K/M]\n"
        "                  [--threads N] [--kill-after N] [--stall-at N]\n"
        "                  [--skip I]... [--poison I]... [--no-progress]\n"
        "       %s run     PLANFLAGS --dir DIR [--workers N]\n"
        "                  [--max-retries N] [--backoff-ms N]\n"
        "                  [--lease-ms N] [--poll-ms N]\n"
        "                  [--steal-fanout N] [--threads N]\n"
        "                  [--kill-after N] [--stall-at N] [--resume]\n"
        "                  [--out FILE] [--csv FILE] [--check DIR]\n"
        "                  [--no-progress]\n"
        "       %s merge   PLANFLAGS --dir DIR [--degraded] [--out FILE]\n"
        "                  [--csv FILE] [--check DIR]\n"
        "       %s chaos   PLANFLAGS --dir DIR [--rounds N] [--seed N]\n"
        "                  [--preset light|standard|heavy] [--poison I]...\n"
        "                  [--max-retries N] [--steal-fanout N]\n"
        "                  [--keep-journals] [--out FILE] [--no-progress]\n"
        "       %s compact --journal FILE [--out FILE]\n"
        "       %s inspect --journal FILE\n"
        "PLANFLAGS: [--grid NAME] [--scale quick|scaled|full]\n"
        "           [--shards N] [--faults PRESET] [--chaos]\n"
        "           [--procs N] [--cache-bytes N] [--line-bytes N]\n",
        argv0, argv0, argv0, argv0, argv0, argv0, argv0);
}

[[noreturn]] void
configError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "svc_runner: %s\n", message.c_str());
    usage(argv0);
    std::exit(2);
}

/** Everything any subcommand accepts; each validates its own subset. */
struct Options
{
    std::string subcommand;
    svc::PlanOptions plan;
    bool chaos = false;
    std::string faults;
    std::string dir;
    std::string journal;
    std::string out;
    std::string csv;
    std::string checkDir;
    unsigned shard = 0;
    bool shardSet = false;
    bool stealSet = false;
    unsigned stealSlice = 0;
    unsigned stealSlices = 0;
    unsigned workers = 0;
    unsigned maxRetries = 3;
    unsigned backoffMs = 200;
    unsigned leaseMs = 0;
    unsigned pollMs = 50;
    unsigned stealFanout = 2;
    unsigned threads = 0;
    unsigned killAfter = 0;
    unsigned stallAt = 0;
    std::vector<std::size_t> skip;
    std::vector<std::size_t> poison;
    bool degraded = false;
    unsigned rounds = 5;
    std::uint64_t seed = 1;
    std::string preset = "standard";
    bool keepJournals = false;
    bool resume = false;
    bool progress = true;
};

Options
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        configError(argv[0], "missing subcommand");
    Options opt;
    opt.subcommand = argv[1];
    if (opt.subcommand != "plan" && opt.subcommand != "worker" &&
        opt.subcommand != "run" && opt.subcommand != "merge" &&
        opt.subcommand != "chaos" && opt.subcommand != "compact" &&
        opt.subcommand != "inspect") {
        if (opt.subcommand == "--help" || opt.subcommand == "-h") {
            usage(argv[0]);
            std::exit(0);
        }
        configError(argv[0],
                    "unknown subcommand '" + opt.subcommand +
                        "' (plan/worker/run/merge/chaos/compact/"
                        "inspect)");
    }

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                configError(argv[0], arg + " expects a value");
            return argv[++i];
        };
        auto nextUnsigned = [&]() -> unsigned {
            unsigned value = 0;
            if (!tools::parseUnsigned(next(), value))
                configError(argv[0],
                            arg + " expects a non-negative integer, "
                                  "got '" + argv[i] + "'");
            return value;
        };
        if (arg == "--grid") {
            opt.plan.grid = next();
        } else if (arg == "--scale") {
            try {
                opt.plan.scale = exp::scaleFromName(next());
            } catch (const FatalError &err) {
                configError(argv[0], err.what());
            }
        } else if (arg == "--shards") {
            opt.plan.shards = nextUnsigned();
        } else if (arg == "--faults") {
            opt.faults = next();
        } else if (arg == "--chaos") {
            opt.chaos = true;
        } else if (arg == "--procs") {
            opt.plan.procs = nextUnsigned();
        } else if (arg == "--cache-bytes") {
            opt.plan.cacheBytes = nextUnsigned();
        } else if (arg == "--line-bytes") {
            opt.plan.lineBytes = nextUnsigned();
        } else if (arg == "--dir") {
            opt.dir = next();
        } else if (arg == "--journal") {
            opt.journal = next();
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--csv") {
            opt.csv = next();
        } else if (arg == "--check") {
            opt.checkDir = next();
        } else if (arg == "--shard") {
            opt.shard = nextUnsigned();
            opt.shardSet = true;
        } else if (arg == "--steal") {
            unsigned k = 0, m = 0;
            if (std::sscanf(next(), "%u/%u", &k, &m) != 2 || m == 0 ||
                k >= m) {
                configError(argv[0],
                            "--steal expects K/M with K < M, got '" +
                                std::string(argv[i]) + "'");
            }
            opt.stealSet = true;
            opt.stealSlice = k;
            opt.stealSlices = m;
        } else if (arg == "--workers") {
            opt.workers = nextUnsigned();
        } else if (arg == "--max-retries") {
            opt.maxRetries = nextUnsigned();
        } else if (arg == "--backoff-ms") {
            opt.backoffMs = nextUnsigned();
        } else if (arg == "--lease-ms") {
            opt.leaseMs = nextUnsigned();
        } else if (arg == "--poll-ms") {
            opt.pollMs = nextUnsigned();
        } else if (arg == "--steal-fanout") {
            opt.stealFanout = nextUnsigned();
        } else if (arg == "--threads") {
            opt.threads = nextUnsigned();
        } else if (arg == "--kill-after") {
            opt.killAfter = nextUnsigned();
        } else if (arg == "--stall-at") {
            opt.stallAt = nextUnsigned();
        } else if (arg == "--skip") {
            opt.skip.push_back(nextUnsigned());
        } else if (arg == "--poison") {
            opt.poison.push_back(nextUnsigned());
        } else if (arg == "--degraded") {
            opt.degraded = true;
        } else if (arg == "--rounds") {
            opt.rounds = nextUnsigned();
        } else if (arg == "--seed") {
            char *end = nullptr;
            opt.seed = std::strtoull(next(), &end, 0);
            if (end == nullptr || *end != '\0')
                configError(argv[0], "--seed expects an integer, got '" +
                                         std::string(argv[i]) + "'");
        } else if (arg == "--preset") {
            opt.preset = next();
        } else if (arg == "--keep-journals") {
            opt.keepJournals = true;
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--no-progress") {
            opt.progress = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            configError(argv[0], "unknown argument: " + arg);
        }
    }

    opt.plan.mode = opt.chaos ? svc::RunMode::Chaos : svc::RunMode::Sweep;
    opt.plan.preset = opt.faults;
    if (opt.chaos && opt.faults.empty())
        opt.plan.preset = "standard";
    return opt;
}

/** Build the plan, converting any validation fatal into exit 2. */
svc::ShardPlan
buildPlanOrDie(const char *argv0, const Options &opt)
{
    try {
        return svc::buildShardPlan(opt.plan);
    } catch (const FatalError &err) {
        configError(argv0, err.what());
    }
}

std::vector<std::string>
journalPaths(const svc::ShardPlan &plan, const std::string &dir)
{
    std::vector<std::string> paths;
    paths.reserve(plan.shardCount);
    for (std::uint32_t s = 0; s < plan.shardCount; ++s)
        paths.push_back(plan.journalPath(dir, s));
    return paths;
}

/** Primary journals in shard order, then whatever steal journals the
 *  directory holds: the full merge input set. */
std::vector<std::string>
allJournalPaths(const svc::ShardPlan &plan, const std::string &dir)
{
    std::vector<std::string> paths = journalPaths(plan, dir);
    for (const std::string &path : svc::findStealJournals(plan, dir))
        paths.push_back(path);
    return paths;
}

/** This binary's path, for the coordinator to exec workers from. */
std::string
selfPath(const char *argv0)
{
    char buf[4096];
    const ssize_t got =
        readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (got > 0) {
        buf[got] = '\0';
        return buf;
    }
    return argv0;
}

int
runPlanCommand(const Options &opt, const svc::ShardPlan &plan)
{
    std::printf("plan:        %s grid '%s', scale %s, %zu point(s)\n",
                svc::runModeName(plan.mode), plan.grid.name.c_str(),
                exp::scaleName(plan.scale), plan.grid.points.size());
    if (!plan.preset.empty() || !opt.faults.empty())
        std::printf("preset:      %s\n",
                    plan.mode == svc::RunMode::Chaos
                        ? plan.preset.c_str()
                        : opt.faults.c_str());
    std::printf("fingerprint: %016llx\n",
                static_cast<unsigned long long>(plan.fingerprint()));
    std::printf("shards:      %u\n", plan.shardCount);
    for (std::uint32_t s = 0; s < plan.shardCount; ++s) {
        std::printf("  shard %-3u %4u point(s)  %s\n", s,
                    plan.shardPoints(s),
                    plan.journalFileName(s).c_str());
    }
    return 0;
}

int
runWorkerCommand(const char *argv0, const Options &opt,
                 const svc::ShardPlan &plan)
{
    if (!opt.shardSet)
        configError(argv0, "worker requires --shard");
    if (opt.dir.empty())
        configError(argv0, "worker requires --dir");
    if (opt.shard >= plan.shardCount)
        configError(argv0,
                    strprintf("--shard %u: plan has %u shard(s)",
                              opt.shard, plan.shardCount));
    svc::ensureDirectory(opt.dir);
    svc::WorkerOptions worker_opts;
    worker_opts.threads = opt.threads;
    worker_opts.progress = opt.progress;
    worker_opts.killAfter = opt.killAfter;
    worker_opts.stallAt = opt.stallAt;
    worker_opts.skipIndices = opt.skip;
    worker_opts.poisonIndices = opt.poison;
    const std::string primary = plan.journalPath(opt.dir, opt.shard);
    const svc::WorkerResult result =
        opt.stealSet
            ? svc::runStealWorker(
                  plan, opt.shard,
                  static_cast<std::uint16_t>(opt.stealSlice),
                  static_cast<std::uint16_t>(opt.stealSlices), primary,
                  plan.stealJournalPath(
                      opt.dir, opt.shard,
                      static_cast<std::uint16_t>(opt.stealSlice),
                      static_cast<std::uint16_t>(opt.stealSlices)),
                  worker_opts)
            : svc::runShardWorker(plan, opt.shard, primary, worker_opts);
    return result.done ? 0 : 1;
}

/**
 * Merge, write outputs atomically, check goldens, report. Shared by
 * `run` (after coordination) and `merge`; returns the process exit.
 * A degraded merge that actually quarantined points always exits 1:
 * the document records the loss, the exit status flags it.
 */
int
mergeAndReport(const Options &opt, const svc::ShardPlan &plan)
{
    svc::MergeOptions merge_opts;
    merge_opts.degraded = opt.degraded;
    const svc::MergeResult merged = svc::mergeJournals(
        plan, allJournalPaths(plan, opt.dir), merge_opts);

    if (!opt.out.empty())
        svc::writeFileAtomic(opt.out, merged.document.dump() + "\n");
    if (!opt.csv.empty()) {
        if (plan.mode == svc::RunMode::Chaos)
            fatal("--csv applies to sweep plans only");
        svc::writeFileAtomic(opt.csv, merged.csv);
    }

    if (merged.degraded) {
        for (const std::size_t index : merged.quarantined)
            std::printf("svc_runner: point %zu (%s) QUARANTINED (no "
                        "journal covers it)\n",
                        index, plan.grid.points[index].id().c_str());
    }

    int exit_code = 0;
    if (plan.mode == svc::RunMode::Chaos) {
        std::fputs(merged.chaosSummary.c_str(), stdout);
        exit_code = merged.chaosOk ? 0 : 1;
    } else {
        bool check_ok = true;
        if (!opt.checkDir.empty()) {
            const exp::GoldenDiff diff = exp::checkAgainstGoldenDir(
                merged.document, opt.checkDir, plan.grid.name);
            std::fputs(diff.report.c_str(), stdout);
            check_ok = check_ok && diff.ok;
        }
        std::printf(
            "svc_runner: %zu/%zu job(s) ok across %u shard(s)%s%s\n",
            merged.totalJobs - merged.failedJobs, merged.totalJobs,
            plan.shardCount, check_ok ? "" : ", golden check FAILED",
            merged.degraded ? ", DEGRADED" : "");
        exit_code = merged.failedJobs == 0 && check_ok ? 0 : 1;
    }
    return merged.degraded ? 1 : exit_code;
}

int
runRunCommand(const char *argv0, const Options &opt,
              const svc::ShardPlan &plan)
{
    if (opt.dir.empty())
        configError(argv0, "run requires --dir");
    svc::ensureDirectory(opt.dir);
    const std::vector<std::string> paths = journalPaths(plan, opt.dir);
    if (!opt.resume) {
        for (const std::string &path : paths) {
            if (svc::journalExists(path))
                configError(
                    argv0,
                    strprintf("journal '%s' already exists; pass "
                              "--resume to continue that run or remove "
                              "the journals",
                              path.c_str()));
        }
    }

    const std::string self = selfPath(argv0);
    auto worker_argv = [&](const svc::Assignment &asg) {
        std::vector<std::string> args = {
            self,
            "worker",
            "--grid",
            opt.plan.grid,
            "--scale",
            exp::scaleName(opt.plan.scale),
            "--shards",
            strprintf("%u", plan.shardCount),
            "--shard",
            strprintf("%u", asg.shard),
            "--dir",
            opt.dir,
            "--threads",
            strprintf("%u", opt.threads),
        };
        if (asg.steal) {
            args.push_back("--steal");
            args.push_back(strprintf("%u/%u",
                                     static_cast<unsigned>(asg.slice),
                                     static_cast<unsigned>(asg.slices)));
        }
        if (!opt.faults.empty()) {
            args.push_back("--faults");
            args.push_back(opt.faults);
        }
        if (opt.chaos)
            args.push_back("--chaos");
        if (opt.plan.procs) {
            args.push_back("--procs");
            args.push_back(strprintf("%u", opt.plan.procs));
        }
        if (opt.plan.cacheBytes) {
            args.push_back("--cache-bytes");
            args.push_back(strprintf("%u", opt.plan.cacheBytes));
        }
        if (opt.plan.lineBytes) {
            args.push_back("--line-bytes");
            args.push_back(strprintf("%u", opt.plan.lineBytes));
        }
        if (opt.killAfter) {
            args.push_back("--kill-after");
            args.push_back(strprintf("%u", opt.killAfter));
        }
        if (opt.stallAt) {
            args.push_back("--stall-at");
            args.push_back(strprintf("%u", opt.stallAt));
        }
        if (!opt.progress)
            args.push_back("--no-progress");
        return args;
    };

    svc::CoordinatorOptions coord_opts;
    coord_opts.workers = opt.workers;
    coord_opts.maxRetries = opt.maxRetries;
    coord_opts.backoffMs = opt.backoffMs;
    coord_opts.leaseMs = opt.leaseMs;
    coord_opts.pollMs = opt.pollMs;
    coord_opts.stealFanout = opt.stealFanout;
    coord_opts.progress = opt.progress;
    const svc::CoordinatorReport report = svc::runCoordinator(
        plan, opt.dir, paths, worker_argv, coord_opts);
    if (!report.ok) {
        for (const svc::ShardStatus &status : report.shards) {
            if (!status.done)
                std::printf("svc_runner: shard %u FAILED after %u "
                            "attempt(s): %s\n",
                            status.shard, status.attempts,
                            status.error.c_str());
        }
        std::printf("svc_runner: run incomplete; journals kept in %s "
                    "(re-run with --resume, or merge --degraded)\n",
                    opt.dir.c_str());
        return 1;
    }
    return mergeAndReport(opt, plan);
}

int
runChaosCommand(const char *argv0, const Options &opt,
                const svc::ShardPlan &plan)
{
    if (opt.dir.empty())
        configError(argv0, "chaos requires --dir");
    if (opt.rounds == 0)
        configError(argv0, "chaos requires --rounds >= 1");
    bool known = false;
    for (const std::string &name : svc::svcChaosPresetNames())
        known = known || name == opt.preset;
    if (!known)
        configError(argv0, "unknown chaos preset '" + opt.preset +
                               "' (light/standard/heavy)");
    for (const std::size_t index : opt.poison) {
        if (index >= plan.grid.points.size())
            configError(argv0,
                        strprintf("--poison %zu: grid has %zu point(s)",
                                  index, plan.grid.points.size()));
    }

    svc::SvcChaosConfig config;
    config.seed = opt.seed;
    config.rounds = opt.rounds;
    config.preset = opt.preset;
    config.poison = opt.poison;
    config.maxRetries = opt.maxRetries;
    config.stealFanout = opt.stealFanout;
    config.progress = opt.progress;
    config.keepJournals = opt.keepJournals;

    const svc::SvcChaosReport report =
        svc::runSvcChaos(plan, opt.dir, config);
    if (!opt.out.empty())
        svc::writeFileAtomic(opt.out, report.toJson().dump() + "\n");
    std::printf("%s\n", report.summary().c_str());
    return report.ok() ? 0 : 1;
}

int
runCompactCommand(const char *argv0, const Options &opt)
{
    if (opt.journal.empty())
        configError(argv0, "compact requires --journal");
    if (!svc::journalExists(opt.journal))
        configError(argv0,
                    "journal '" + opt.journal + "' does not exist");
    const std::string out = opt.out.empty() ? opt.journal : opt.out;
    if (out != opt.journal && svc::journalExists(out)) {
        // Only overwrite an output that is demonstrably an earlier
        // compaction of the SAME journal; anything else is protected.
        const svc::JournalScan in_scan = svc::scanJournal(opt.journal);
        const svc::JournalScan out_scan =
            svc::scanJournal(out, svc::ScanPolicy::Lenient);
        bool same = !in_scan.headerTorn && !out_scan.headerTorn;
        if (same) {
            try {
                svc::requireMatchingHeader(out_scan.header,
                                           in_scan.header, out);
            } catch (const FatalError &) {
                same = false;
            }
        }
        if (!same) {
            configError(argv0,
                        "refusing to overwrite '" + out +
                            "': it is not a journal of the same "
                            "assignment (remove it first)");
        }
    }
    const svc::CompactStats stats =
        svc::compactJournal(opt.journal, out);
    std::printf("compacted:   %s -> %s\n", opt.journal.c_str(),
                out.c_str());
    std::printf("frames:      %zu kept, %zu superseded dropped\n",
                stats.frames, stats.supersededFrames);
    std::printf("torn tail:   %llu byte(s) dropped\n",
                static_cast<unsigned long long>(stats.tornBytes));
    std::printf("bytes:       %llu -> %llu\n",
                static_cast<unsigned long long>(stats.bytesBefore),
                static_cast<unsigned long long>(stats.bytesAfter));
    return 0;
}

int
runInspectCommand(const char *argv0, const Options &opt)
{
    if (opt.journal.empty())
        configError(argv0, "inspect requires --journal");
    const svc::JournalScan scan = svc::scanJournal(opt.journal);
    std::printf("journal:     %s\n", opt.journal.c_str());
    if (scan.emptyFile) {
        // A zero-length file is a journal that was created (or
        // truncated) but never written: common after a kill during
        // creation, and a resume handles it by rewriting the header.
        std::printf("state:       empty (0 bytes; no header was ever "
                    "written)\n");
        std::printf("points:      0 journaled\n");
        return 0;
    }
    if (scan.headerTorn) {
        std::printf("header:      TORN (%llu byte(s); the worker died "
                    "during creation)\n",
                    static_cast<unsigned long long>(scan.tornBytes));
        return 0;
    }
    const svc::JournalHeader &h = scan.header;
    std::printf("kind:        %s\n", svc::journalKindName(h.kind));
    std::printf("mode:        %s\n", svc::runModeName(h.mode));
    std::printf("grid:        %s\n", h.grid.c_str());
    if (h.kind == svc::JournalKind::Steal) {
        std::printf("victim:      shard %u of %u\n", h.shardIndex,
                    h.shardCount);
        std::printf("slice:       %u of %u\n",
                    static_cast<unsigned>(h.stealSlice),
                    static_cast<unsigned>(h.stealSlices));
    } else {
        std::printf("shard:       %u of %u\n", h.shardIndex,
                    h.shardCount);
    }
    std::printf("fingerprint: %016llx\n",
                static_cast<unsigned long long>(h.planFingerprint));
    std::printf("points:      %zu journaled of %u (grid total %u)\n",
                scan.frames.size(), h.shardPoints, h.gridPoints);
    std::printf("valid bytes: %llu\n",
                static_cast<unsigned long long>(scan.validBytes));
    if (scan.tornBytes > 0)
        std::printf("torn tail:   %llu byte(s) (in-flight point lost; "
                    "resume truncates it)\n",
                    static_cast<unsigned long long>(scan.tornBytes));
    for (const svc::JournalFrame &frame : scan.frames)
        std::printf("  point %-5u %zu byte(s)\n", frame.index,
                    frame.payload.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    try {
        if (opt.subcommand == "inspect")
            return runInspectCommand(argv[0], opt);
        if (opt.subcommand == "compact")
            return runCompactCommand(argv[0], opt);
        const svc::ShardPlan plan = buildPlanOrDie(argv[0], opt);
        if (opt.subcommand == "plan")
            return runPlanCommand(opt, plan);
        if (opt.subcommand == "worker")
            return runWorkerCommand(argv[0], opt, plan);
        if (opt.subcommand == "run")
            return runRunCommand(argv[0], opt, plan);
        if (opt.subcommand == "chaos")
            return runChaosCommand(argv[0], opt, plan);
        if (opt.dir.empty())
            configError(argv[0], "merge requires --dir");
        return mergeAndReport(opt, plan);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "svc_runner: %s\n", err.what());
        return 1;
    }
}
