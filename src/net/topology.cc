#include "net/topology.hh"

#include "sim/logging.hh"

namespace mcsim::net
{

OmegaTopology::OmegaTopology(unsigned n_ports, unsigned radix)
    : nPorts(n_ports), switchRadix(radix)
{
    if (radix < 2)
        fatal("omega network radix must be >= 2 (got %u)", radix);
    if (n_ports < 1)
        fatal("omega network needs at least one port");
    nStages = logCeil(n_ports, radix);
    if (nStages == 0)
        nStages = 1;
    linkWidth = 1;
    for (unsigned s = 0; s < nStages; ++s)
        linkWidth *= switchRadix;
}

unsigned
OmegaTopology::shuffle(unsigned link) const
{
    // Left-rotate the base-radix digits of the link id by one position:
    // the most-significant digit becomes least significant.
    const unsigned msd_weight = linkWidth / switchRadix;
    const unsigned msd = link / msd_weight;
    return (link % msd_weight) * switchRadix + msd;
}

unsigned
OmegaTopology::destDigit(unsigned dest, unsigned stage) const
{
    // Stage 0 consumes the most-significant digit.
    unsigned weight = linkWidth / switchRadix;
    for (unsigned s = 0; s < stage; ++s)
        weight /= switchRadix;
    return (dest / weight) % switchRadix;
}

OmegaTopology::Hop
OmegaTopology::hop(unsigned stage, unsigned link, unsigned dest) const
{
    MCSIM_ASSERT(stage < nStages, "stage %u out of range", stage);
    MCSIM_ASSERT(link < linkWidth, "link %u out of range", link);
    MCSIM_ASSERT(dest < linkWidth, "dest %u out of range", dest);

    const unsigned shuffled = shuffle(link);
    Hop h;
    h.switchIdx = shuffled / switchRadix;
    h.inPort = shuffled % switchRadix;
    h.outPort = destDigit(dest, stage);
    h.outLink = h.switchIdx * switchRadix + h.outPort;
    return h;
}

unsigned
OmegaTopology::route(unsigned src, unsigned dest) const
{
    unsigned link = src;
    for (unsigned s = 0; s < nStages; ++s)
        link = hop(s, link, dest).outLink;
    return link;
}

} // namespace mcsim::net
