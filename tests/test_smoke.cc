/**
 * @file
 * End-to-end smoke tests: every benchmark runs to completion and verifies
 * on a small machine under a couple of representative models.
 */

#include <gtest/gtest.h>

#include "core/machine_config.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace mcsim;

namespace
{

core::MachineConfig
smallConfig(core::Model model)
{
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.model = model;
    cfg.cacheBytes = 2 * 1024;
    cfg.lineBytes = 16;
    cfg.maxCycles = 200'000'000ull;
    return cfg;
}

} // namespace

TEST(Smoke, SyntheticSC1)
{
    workloads::SyntheticParams p;
    p.refsPerProc = 500;
    p.lockEvery = 50;
    p.barrierEvery = 125;
    workloads::SyntheticWorkload w(p);
    auto result = workloads::runWorkload(w, smallConfig(core::Model::SC1));
    EXPECT_GT(result.metrics.cycles, 0u);
    EXPECT_GT(result.metrics.totalReads, 0u);
}

TEST(Smoke, SyntheticAllModels)
{
    for (core::Model m : core::allModels) {
        workloads::SyntheticParams p;
        p.refsPerProc = 300;
        p.lockEvery = 30;
        workloads::SyntheticWorkload w(p);
        auto result = workloads::runWorkload(w, smallConfig(m));
        EXPECT_GT(result.metrics.cycles, 0u) << core::modelName(m);
    }
}

TEST(Smoke, GaussSmall)
{
    workloads::GaussParams p;
    p.n = 24;
    workloads::GaussWorkload w(p);
    auto result = workloads::runWorkload(w, smallConfig(core::Model::WO1));
    EXPECT_GT(result.metrics.totalReads, 0u);
}

TEST(Smoke, QsortSmall)
{
    workloads::QsortParams p;
    p.n = 2000;
    workloads::QsortWorkload w(p);
    auto result = workloads::runWorkload(w, smallConfig(core::Model::RC));
    EXPECT_GT(result.metrics.totalReads, 0u);
}

TEST(Smoke, RelaxSmall)
{
    workloads::RelaxParams p;
    p.interior = 24;
    p.iterations = 2;
    workloads::RelaxWorkload w(p);
    auto result = workloads::runWorkload(w, smallConfig(core::Model::SC2));
    EXPECT_GT(result.metrics.totalReads, 0u);
}

TEST(Smoke, PsimSmall)
{
    workloads::PsimParams p;
    p.simProcs = 8;
    p.packetsPerProc = 16;
    workloads::PsimWorkload w(p);
    auto result = workloads::runWorkload(w, smallConfig(core::Model::WO2));
    EXPECT_GT(result.metrics.totalSyncOps, 0u);
}
