// Canary fixture for mcsim-lint's suppression-audit check: an empty
// reason, an unknown check name, and an unparsable annotation must all
// be reported -- the suppression table is the reviewed registry of
// every waiver, so it has to stay well-formed. NOT compiled into any
// target.

#include <unordered_map>

std::unordered_map<int, int> table;

int
auditedSum()
{
    int total = 0;
    // mcsim-lint: order-insensitive()
    for (const auto &kv : table)  // violation: empty suppression reason
        total += kv.second;
    return total;
}

// violation: suppression naming an unknown check
// mcsim-lint: no-such-check(this check does not exist)
int stray = 0;

// violation: marker present but unparsable
// mcsim-lint: ???
int malformed = 0;
