/**
 * @file
 * Reproduces paper Figure 6: Gauss on 32 processors -- % gain over SC1
 * for SC2, WO1 and RC at both cache sizes (the paper skipped WO2 at 32
 * processors). The extra network stage raises memory latency (18 -> 20
 * cycles), so the paper found slightly larger gains than at 16
 * processors.
 *
 * Usage: bench_fig6 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig6", args);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::RC};

    std::printf("Figure 6 reproduction: Gauss, 32 processors, %% gain "
                "over SC1%s\n",
                isFull(args) ? " (paper-size)" : " (scaled)");
    printHeaderRule();

    for (int big = 0; big < 2; ++big) {
        std::printf("\n%s caches\n", cacheLabel(args, big));
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (unsigned line : lineSizes) {
                const auto &base = res.metrics(
                    exp::paperPoint("Gauss", core::Model::SC1, args.scale,
                                    big, line, /*procs=*/32));
                const auto &m = res.metrics(
                    exp::paperPoint("Gauss", model, args.scale, big, line,
                                    /*procs=*/32));
                std::printf(" %9.1f%%", core::percentGain(base, m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
