/**
 * @file
 * Trace consumption: a random-access byte source (memory buffer or
 * file), the block-index reader, per-processor streaming record
 * decoders, and the full validation pass.
 *
 * Construction validates structure only (header + block framing walk,
 * no payload reads), so opening a large trace is cheap; streams then
 * buffer one block per processor at a time, never the whole file. All
 * malformed input is rejected with fatal() -- a structured, recoverable
 * FatalError -- before it can reach a Processor assert.
 */

#ifndef MCSIM_TRACE_READER_HH
#define MCSIM_TRACE_READER_HH

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace mcsim::trace
{

/** Random-access view of trace bytes. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    virtual std::uint64_t size() const = 0;
    /** Read exactly @p n bytes at @p offset; fatal() on short reads. */
    virtual void read(std::uint64_t offset, void *out,
                      std::size_t n) const = 0;
};

/** In-memory trace bytes (generator output, tests). */
class MemorySource : public TraceSource
{
  public:
    explicit MemorySource(std::vector<std::uint8_t> data)
        : buffer(std::move(data))
    {}

    std::uint64_t size() const override { return buffer.size(); }
    void read(std::uint64_t offset, void *out,
              std::size_t n) const override;

  private:
    std::vector<std::uint8_t> buffer;
};

/** Trace file on disk; fatal() if it cannot be opened or read. */
class FileSource : public TraceSource
{
  public:
    explicit FileSource(const std::string &path);
    ~FileSource() override;

    FileSource(const FileSource &) = delete;
    FileSource &operator=(const FileSource &) = delete;

    std::uint64_t size() const override { return fileSize; }
    void read(std::uint64_t offset, void *out,
              std::size_t n) const override;

  private:
    std::string path;
    std::FILE *file = nullptr;
    std::uint64_t fileSize = 0;
};

/** Location of one record block inside the file. */
struct BlockRef
{
    std::uint64_t payloadOffset = 0;
    std::uint32_t records = 0;
    std::uint32_t bytes = 0;
    std::uint32_t crc = 0;
};

/** Aggregate statistics from a full validation pass. */
struct TraceSummary
{
    std::uint64_t records = 0;
    /** Per-OpKind record counts, indexed by the wire opcode order. */
    std::array<std::uint64_t, 9> perKind{};
    /** One past the highest byte touched (memory sizing for replay). */
    Addr addrLimit = 0;
    /** fnv1a over the complete byte stream: the identity of the trace
     *  content, independent of any machine or model it replays on. */
    std::uint64_t contentHash = 0;
};

/**
 * A validated-at-the-frame-level trace plus per-processor streaming
 * access to its records.
 */
class TraceReader
{
  public:
    /** Parses header and block framing; fatal() on malformed input. */
    explicit TraceReader(std::shared_ptr<const TraceSource> source);

    const TraceHeader &header() const { return head; }

    /** Records belonging to processor @p proc (from the block index). */
    std::uint64_t procRecords(unsigned proc) const
    {
        return recordsPerProc.at(proc);
    }

    /** Sequential decoder over one processor's records. Self-contained:
     *  holds the source alive and buffers one block at a time. */
    class Stream
    {
      public:
        /** Decode the next record into @p out; false at end of trace. */
        bool next(Record &out);

      private:
        friend class TraceReader;
        Stream(std::shared_ptr<const TraceSource> source,
               std::vector<BlockRef> blocks, unsigned proc);
        void loadBlock();

        std::shared_ptr<const TraceSource> source;
        std::vector<BlockRef> blocks;
        std::string context;
        std::vector<std::uint8_t> payload;
        CodecState state;
        std::size_t blockIndex = 0;
        std::size_t pos = 0;
        std::uint32_t left = 0;
    };

    Stream stream(unsigned proc) const;

    /**
     * Decode and check every record of every processor: payload CRCs,
     * clean record boundaries, address alignment, and the load-token
     * discipline the replaying processor will enforce with asserts
     * (every Use names a live token from an earlier Load). fatal() on
     * the first violation; returns aggregate statistics otherwise.
     */
    TraceSummary validate() const;

  private:
    std::shared_ptr<const TraceSource> source;
    TraceHeader head;
    std::vector<std::vector<BlockRef>> blocksPerProc;
    std::vector<std::uint64_t> recordsPerProc;
};

} // namespace mcsim::trace

#endif // MCSIM_TRACE_READER_HH
