/**
 * @file
 * Tests of the read-with-ownership extension (paper section 3.3).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sim/task.hh"
#include "workloads/gauss.hh"
#include "workloads/workload.hh"

using namespace mcsim;

TEST(ReadWithOwnership, LineInstallsModifiedAndStoreHits)
{
    core::MachineConfig cfg;
    cfg.numProcs = 2;
    cfg.numModules = 2;
    cfg.model = core::Model::WO1;
    core::Machine m(cfg);
    m.startWorkload(0, [](cpu::Processor &p) -> SimTask {
        (void)co_await p.loadUseOwn(0x1000);
        co_await p.exec(8);           // let the exclusive fill settle
        co_await p.store(0x1000, 7);  // must hit: line already exclusive
    }(m.proc(0)));
    m.run();
    EXPECT_EQ(m.cache(0).lineState(0x1000),
              mem::Cache::LineState::Modified);
    EXPECT_EQ(m.cache(0).stats().stores, 1u);
    EXPECT_EQ(m.cache(0).stats().storeHits, 1u);
    EXPECT_EQ(m.cache(0).stats().loads, 1u);
    EXPECT_EQ(m.memory().readU64(0x1000), 7u);
}

TEST(ReadWithOwnership, GaussVariantVerifiesAndRaisesWriteHits)
{
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = core::Model::WO1;
    cfg.cacheBytes = 2048;
    cfg.lineBytes = 16;

    auto run_gauss = [&](bool own) {
        workloads::GaussParams gp;
        gp.n = 48;
        gp.readOwn = own;
        workloads::GaussWorkload w(gp);
        return workloads::runWorkload(w, cfg).metrics;
    };
    const auto plain = run_gauss(false);
    const auto owned = run_gauss(true);
    // Fetching own rows exclusive converts the write misses into hits.
    EXPECT_GT(owned.writeHitRate, plain.writeHitRate + 0.2);
}
