#include "trace/writer.hh"

#include <cstring>

#include "sim/logging.hh"

namespace mcsim::trace
{

void
MemorySink::write(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buffer.insert(buffer.end(), p, p + size);
}

void
MemorySink::patch(std::uint64_t offset, const void *data, std::size_t size)
{
    MCSIM_ASSERT(offset + size <= buffer.size(),
                 "memory sink patch out of range");
    std::memcpy(buffer.data() + offset, data, size);
}

FileSink::FileSink(const std::string &p) : path(p)
{
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("trace: cannot open '%s' for writing", path.c_str());
}

FileSink::~FileSink()
{
    if (file)
        std::fclose(file);
}

void
FileSink::write(const void *data, std::size_t size)
{
    if (std::fwrite(data, 1, size, file) != size)
        fatal("trace: short write to '%s'", path.c_str());
    cursor += size;
}

void
FileSink::patch(std::uint64_t offset, const void *data, std::size_t size)
{
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fwrite(data, 1, size, file) != size ||
        std::fseek(file, static_cast<long>(cursor), SEEK_SET) != 0) {
        fatal("trace: patch write to '%s' failed", path.c_str());
    }
}

void
FileSink::close()
{
    if (!file)
        return;
    const int status = std::fclose(file);
    file = nullptr;
    if (status != 0)
        fatal("trace: error closing '%s'", path.c_str());
}

TraceWriter::TraceWriter(const TraceHeader &hdr, ByteSink &out)
    : header(hdr), sink(out)
{
    MCSIM_ASSERT(header.procCount > 0, "trace writer needs >= 1 proc");
    pending.resize(header.procCount);
    header.totalRecords = 0;
    const std::vector<std::uint8_t> bytes = encodeHeader(header);
    sink.write(bytes.data(), bytes.size());
}

void
TraceWriter::append(unsigned proc, const Record &rec)
{
    MCSIM_ASSERT(!finished, "append to a finished trace writer");
    MCSIM_ASSERT(proc < header.procCount,
                 "trace writer: proc %u out of range", proc);
    pending[proc].push_back(rec);
    total += 1;
    if (pending[proc].size() >= blockRecordLimit)
        flushProc(proc);
}

void
TraceWriter::flushProc(unsigned proc)
{
    std::vector<Record> &run = pending[proc];
    if (run.empty())
        return;

    std::vector<std::uint8_t> payload;
    payload.reserve(run.size() * 4);
    CodecState state;
    for (const Record &rec : run)
        encodeRecord(payload, state, rec);
    MCSIM_ASSERT(payload.size() <= maxBlockPayload,
                 "trace block payload overflow");

    std::vector<std::uint8_t> head;
    head.reserve(blockHeaderBytes);
    putU32(head, blockMagic);
    putU32(head, proc);
    putU32(head, static_cast<std::uint32_t>(run.size()));
    putU32(head, static_cast<std::uint32_t>(payload.size()));
    putU32(head, crc32(payload.data(), payload.size()));
    sink.write(head.data(), head.size());
    sink.write(payload.data(), payload.size());
    run.clear();
}

void
TraceWriter::finish()
{
    if (finished)
        return;
    finished = true;
    for (unsigned p = 0; p < header.procCount; ++p)
        flushProc(p);
    header.totalRecords = total;
    const std::vector<std::uint8_t> bytes = encodeHeader(header);
    sink.patch(0, bytes.data(), bytes.size());
}

} // namespace mcsim::trace
