#include "workloads/qsort.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/layout.hh"

namespace mcsim::workloads
{

namespace
{
/** Shared work-stack capacity (segments); generous for the default size. */
constexpr std::uint64_t stackCap = 16384;
} // namespace

QsortWorkload::QsortWorkload(QsortParams params) : cfg(params)
{
    if (cfg.n < 4)
        fatal("Qsort needs n >= 4 (got %u)", cfg.n);
    if (cfg.threshold < 2)
        fatal("Qsort threshold must be >= 2");
    if (cfg.parallelCutoff > 0 && cfg.parallelCutoff <= cfg.threshold)
        fatal("Qsort parallelCutoff must exceed threshold");
}

void
QsortWorkload::setup(core::Machine &machine)
{
    SharedLayout layout(machine.config().lineBytes);
    dataBase = layout.alloc(static_cast<std::size_t>(cfg.n) * 4,
                            machine.config().lineBytes);
    auxBase = layout.alloc(static_cast<std::size_t>(cfg.n) * 4,
                           machine.config().lineBytes);
    countsBase = layout.allocWords(machine.numProcs());
    stackTop = layout.allocWords(1);
    workCount = layout.allocWords(1);
    stackBase = layout.allocWords(stackCap);
    stackLock = layout.allocLock();
    barrier = layout.allocBarrierObj(cfg.barrierKind, machine.numProcs());
    machine.memory().ensure(layout.top());

    Rng rng(cfg.seed);
    checksum = 0;
    for (unsigned i = 0; i < cfg.n; ++i) {
        const std::uint32_t v = static_cast<std::uint32_t>(rng.next() >> 33);
        machine.memory().writeU32(elemAddr(i), v);
        checksum += static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull;
    }

    if (cfg.parallelCutoff == 0 || cfg.n < cfg.parallelCutoff) {
        // No cooperative phase: seed the stack with the whole array.
        machine.memory().writeU64(stackTop, 1);
        machine.memory().writeU64(workCount, 1);
        machine.memory().writeU64(stackBase,
                                  static_cast<std::uint64_t>(cfg.n));
    } else {
        machine.memory().writeU64(stackTop, 0);
        machine.memory().writeU64(workCount, 0);
    }

    barrierCtx.assign(machine.numProcs(), {});
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), *this, p, machine.numProcs()));
    }
}

SimTask
QsortWorkload::body(cpu::Processor &proc, QsortWorkload &w, unsigned pid,
                    unsigned n_procs)
{
    const OpCosts &c = w.costs;
    const std::uint64_t threshold = w.cfg.threshold;

    // ------------------------------------------------------------------
    // Phase A: cooperative partitioning of large segments. Every
    // processor scans every n_procs-th element ("the locations are not
    // strip-mined", paper section 3.3), so with large lines every
    // processor touches every line of the segment -- the source of the
    // paper's Qsort invalidation traffic at 64-byte lines. All
    // processors compute identical segment splits from the shared count
    // array, so control flow stays lock-step without extra communication.
    // ------------------------------------------------------------------
    if (w.cfg.parallelCutoff > 0 && w.cfg.n >= w.cfg.parallelCutoff) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> coop;
        coop.emplace_back(0, w.cfg.n);
        while (!coop.empty()) {
            const auto [lo, hi] = coop.back();
            coop.pop_back();
            const std::uint64_t len = hi - lo;
            bool hand_off = len < w.cfg.parallelCutoff;

            std::uint64_t total = 0;
            if (!hand_off) {
                // Median-of-three pivot; every processor reads the same
                // three cells and computes the same value.
                const std::uint64_t a =
                    co_await proc.loadUse32(w.elemAddr(lo));
                const std::uint64_t b =
                    co_await proc.loadUse32(w.elemAddr(lo + len / 2));
                const std::uint64_t d =
                    co_await proc.loadUse32(w.elemAddr(hi - 1));
                co_await proc.exec(3 * c.intOp);
                const std::uint64_t pivot =
                    std::max(std::min(a, b), std::min(std::max(a, b), d));

                // Scan 1: strided count of elements below the pivot.
                std::uint64_t below = 0;
                for (std::uint64_t k = lo + pid; k < hi; k += n_procs) {
                    const std::uint64_t v =
                        co_await proc.loadUse32(w.elemAddr(k));
                    co_await proc.exec(c.intOp);
                    if (v < pivot)
                        ++below;
                    co_await proc.branch();
                }
                co_await proc.store(w.countsBase + pid * 8, below);
                co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                          w.barrierCtx[pid]);

                // Per-processor output offsets from the shared counts.
                std::uint64_t off = lo;
                std::uint64_t ge_before = 0;
                for (unsigned q = 0; q < n_procs; ++q) {
                    const std::uint64_t cq =
                        co_await proc.loadUse(w.countsBase + q * 8);
                    co_await proc.exec(c.intOp);
                    total += cq;
                    if (q < pid) {
                        off += cq;
                        const std::uint64_t slice =
                            len / n_procs + (q < len % n_procs ? 1 : 0);
                        ge_before += slice - cq;
                    }
                }

                if (total == 0 || total == len) {
                    // Degenerate pivot (duplicates): hand the segment to
                    // the sequential phase, whose Hoare partition copes.
                    hand_off = true;
                } else {
                    std::uint64_t ge = lo + total + ge_before;
                    // Scan 2: strided reads, classified writes to aux.
                    for (std::uint64_t k = lo + pid; k < hi;
                         k += n_procs) {
                        const std::uint64_t v =
                            co_await proc.loadUse32(w.elemAddr(k));
                        co_await proc.exec(c.intOp);
                        const Addr dst =
                            w.auxBase + (v < pivot ? off++ : ge++) * 4;
                        co_await proc.store32(
                            dst, static_cast<std::uint32_t>(v));
                        co_await proc.branch();
                    }
                    co_await cpu::barrierWait(proc, w.barrier, n_procs,
                                              pid, w.barrierCtx[pid]);

                    // Copy back, strided: every processor writes every
                    // line of the segment. A pure data move, so the
                    // loads are software-pipelined one iteration ahead.
                    if (lo + pid < hi) {
                        std::uint64_t tok =
                            co_await proc.load32(w.auxBase +
                                                 (lo + pid) * 4);
                        for (std::uint64_t k = lo + pid; k < hi;
                             k += n_procs) {
                            std::uint64_t tok_next = 0;
                            if (k + n_procs < hi) {
                                tok_next = co_await proc.load32(
                                    w.auxBase + (k + n_procs) * 4);
                            }
                            const std::uint64_t v = co_await proc.use(tok);
                            co_await proc.store32(
                                w.elemAddr(k),
                                static_cast<std::uint32_t>(v));
                            co_await proc.branch();
                            tok = tok_next;
                        }
                    }
                    co_await cpu::barrierWait(proc, w.barrier, n_procs,
                                              pid, w.barrierCtx[pid]);
                }
            }

            if (hand_off) {
                if (pid == 0) {
                    co_await cpu::lockAcquire(proc, w.stackLock);
                    const std::uint64_t top =
                        co_await proc.loadUse(w.stackTop);
                    MCSIM_ASSERT(top < stackCap, "qsort stack overflow");
                    co_await proc.store(w.stackBase + top * 8,
                                        (lo << 32) | hi);
                    co_await proc.store(w.stackTop, top + 1);
                    const std::uint64_t wc =
                        co_await proc.loadUse(w.workCount);
                    co_await proc.store(w.workCount, wc + 1);
                    co_await cpu::lockRelease(proc, w.stackLock);
                }
                continue;
            }

            const std::uint64_t split = lo + total;
            coop.emplace_back(split, hi);
            coop.emplace_back(lo, split);
        }
        co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                  w.barrierCtx[pid]);
    }

    // ------------------------------------------------------------------
    // Phase B: dynamically scheduled quicksort over the shared work
    // stack (FCFS), as in the paper.
    // ------------------------------------------------------------------
    std::vector<std::pair<std::uint64_t, std::uint64_t>> local;

    for (;;) {
        // Grab a segment: spin on cached copies until work appears or the
        // count hits zero, then take the stack lock. Idle processors back
        // off exponentially so a single push does not trigger a
        // fifteen-way lock storm.
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        bool have_segment = false;
        std::uint32_t idle_backoff = 8;
        for (;;) {
            const std::uint64_t top = co_await proc.syncLoad(w.stackTop);
            if (top == 0) {
                const std::uint64_t wc =
                    co_await proc.syncLoad(w.workCount);
                if (wc == 0)
                    co_return;
                co_await proc.exec(idle_backoff);
                if (idle_backoff < 1024)
                    idle_backoff *= 2;
                co_await proc.branch();
                continue;
            }
            co_await cpu::lockAcquire(proc, w.stackLock);
            const std::uint64_t t2 = co_await proc.loadUse(w.stackTop);
            if (t2 > 0) {
                const std::uint64_t nt = t2 - 1;
                co_await proc.exec(c.addrCalc);
                const std::uint64_t seg =
                    co_await proc.loadUse(w.stackBase + nt * 8);
                lo = seg >> 32;
                hi = seg & 0xffffffffu;
                co_await proc.store(w.stackTop, nt);
                have_segment = true;
            }
            co_await cpu::lockRelease(proc, w.stackLock);
            if (have_segment)
                break;
            co_await proc.exec(idle_backoff);
            if (idle_backoff < 1024)
                idle_backoff *= 2;
            co_await proc.branch();
        }

        local.clear();
        local.emplace_back(lo, hi);

        while (!local.empty()) {
            auto [seg_lo, seg_hi] = local.back();
            local.pop_back();
            co_await proc.exec(c.intOp);

            if (seg_hi - seg_lo <= threshold) {
                // Local insertion sort, then retire one unit of work.
                for (std::uint64_t k = seg_lo + 1; k < seg_hi; ++k) {
                    co_await proc.exec(c.addrCalc);
                    const std::uint64_t v =
                        co_await proc.loadUse32(w.elemAddr(k));
                    std::uint64_t m = k;
                    while (m > seg_lo) {
                        const std::uint64_t u =
                            co_await proc.loadUse32(w.elemAddr(m - 1));
                        co_await proc.exec(c.intOp);
                        if (u <= v)
                            break;
                        co_await proc.store32(
                            w.elemAddr(m), static_cast<std::uint32_t>(u));
                        --m;
                        co_await proc.branch();
                    }
                    co_await proc.store32(w.elemAddr(m),
                                          static_cast<std::uint32_t>(v));
                    co_await proc.branch();
                }
                co_await cpu::lockAcquire(proc, w.stackLock);
                const std::uint64_t wc =
                    co_await proc.loadUse(w.workCount);
                co_await proc.store(w.workCount, wc - 1);
                co_await cpu::lockRelease(proc, w.stackLock);
                continue;
            }

            // Hoare partition around the middle element's value.
            co_await proc.exec(c.addrCalc);
            const std::uint64_t pivot = co_await proc.loadUse32(
                w.elemAddr(seg_lo + (seg_hi - seg_lo) / 2));
            std::int64_t i = static_cast<std::int64_t>(seg_lo) - 1;
            std::int64_t j = static_cast<std::int64_t>(seg_hi);
            for (;;) {
                std::uint64_t vi;
                std::uint64_t vj;
                do {
                    ++i;
                    vi = co_await proc.loadUse32(
                        w.elemAddr(static_cast<std::uint64_t>(i)));
                    co_await proc.exec(c.intOp);
                } while (vi < pivot);
                do {
                    --j;
                    vj = co_await proc.loadUse32(
                        w.elemAddr(static_cast<std::uint64_t>(j)));
                    co_await proc.exec(c.intOp);
                } while (vj > pivot);
                if (i >= j)
                    break;
                co_await proc.store32(
                    w.elemAddr(static_cast<std::uint64_t>(i)),
                    static_cast<std::uint32_t>(vj));
                co_await proc.store32(
                    w.elemAddr(static_cast<std::uint64_t>(j)),
                    static_cast<std::uint32_t>(vi));
                co_await proc.branch();
            }
            const std::uint64_t split = static_cast<std::uint64_t>(j) + 1;
            MCSIM_ASSERT(split > seg_lo && split < seg_hi,
                         "degenerate partition");

            // Keep the smaller half, publish the larger one.
            std::uint64_t keep_lo = seg_lo, keep_hi = split;
            std::uint64_t pub_lo = split, pub_hi = seg_hi;
            if (keep_hi - keep_lo > pub_hi - pub_lo) {
                std::swap(keep_lo, pub_lo);
                std::swap(keep_hi, pub_hi);
            }
            local.emplace_back(keep_lo, keep_hi);

            co_await cpu::lockAcquire(proc, w.stackLock);
            const std::uint64_t top = co_await proc.loadUse(w.stackTop);
            MCSIM_ASSERT(top < stackCap, "qsort work stack overflow");
            co_await proc.store(w.stackBase + top * 8,
                                (pub_lo << 32) | pub_hi);
            co_await proc.store(w.stackTop, top + 1);
            const std::uint64_t wc = co_await proc.loadUse(w.workCount);
            co_await proc.store(w.workCount, wc + 1);
            co_await cpu::lockRelease(proc, w.stackLock);
        }
    }
}

void
QsortWorkload::verify(core::Machine &machine) const
{
    std::uint64_t prev = 0;
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < cfg.n; ++i) {
        const std::uint32_t v = machine.memory().readU32(elemAddr(i));
        if (v < prev)
            fatal("Qsort output not sorted at index %u", i);
        prev = v;
        sum += static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull;
    }
    if (sum != checksum)
        fatal("Qsort output is not a permutation of the input");
}

} // namespace mcsim::workloads
