/**
 * @file
 * Checkpoint journals: the crash-tolerant record of a shard's completed
 * sweep points (DESIGN.md section 15).
 *
 * A journal is a 64-byte header followed by CRC-framed append-only
 * frames, one per completed point, reusing the MCST framing discipline
 * from src/trace/: every frame is length-prefixed and CRC-checked, so a
 * reader never trusts a byte the writer did not finish. The writer
 * appends a frame with a single write and flushes it to the OS before
 * returning, so a SIGKILL at any instant loses at most the in-flight
 * point(s): the scan finds every fully-flushed frame, detects a torn
 * tail by its failed CRC or short length, and resume simply truncates
 * the garbage and re-runs the points that have no frame.
 *
 * Frame payloads are canonical JSON (exp::jobToJson /
 * exp::chaosPointToJson dumps), so the merge step can splice journaled
 * results into a document byte-identical to a single-process run's.
 */

#ifndef MCSIM_SVC_JOURNAL_HH
#define MCSIM_SVC_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mcsim::svc
{

/** File magic: "MCSJ" as the first four bytes. */
constexpr std::uint32_t journalMagic = 0x4A53434Du;

/** Frame magic: "MCJF" leads every checkpoint frame. */
constexpr std::uint32_t frameMagic = 0x464A434Du;

/** Journal format version this build reads and writes. */
constexpr std::uint16_t journalVersion = 1;

/** Fixed size of the journal header, bytes. */
constexpr std::size_t journalHeaderBytes = 64;

/** Fixed size of a frame header, bytes. */
constexpr std::size_t frameHeaderBytes = 16;

/** Upper bound on one frame's payload; caps reader buffering. */
constexpr std::uint32_t maxFramePayload = 1u << 24;

/** What a journal (and the plan that owns it) records per point. */
enum class RunMode : std::uint8_t
{
    Sweep, ///< plain sweep: one exp::JobResult JSON per point
    Chaos, ///< chaos harness: one exp::ChaosPointResult JSON per pair
};

const char *runModeName(RunMode mode);

/**
 * What role a journal plays in its plan. A Primary journal is a
 * shard's own checkpoint file. A Steal journal covers one slice of a
 * revoked shard's remaining points, run by a healthy worker after the
 * victim lost its lease: its shardIndex field names the VICTIM shard
 * (so the index-ownership rule is unchanged), and stealSlice/stealSlices
 * say which slice of the victim's un-journaled remainder it holds.
 */
enum class JournalKind : std::uint8_t
{
    Primary,
    Steal,
};

const char *journalKindName(JournalKind kind);

/** Decoded journal header: which shard of which plan this file is. */
struct JournalHeader
{
    RunMode mode = RunMode::Sweep;
    JournalKind kind = JournalKind::Primary;
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
    /** Points in the whole grid / in this journal when complete (for a
     *  steal journal: the slice size, not the victim's shard size). @{ */
    std::uint32_t gridPoints = 0;
    std::uint32_t shardPoints = 0;
    /** @} */
    /** Steal journals only: slice number of how many slices the
     *  victim's remainder was split into (both zero for Primary). @{ */
    std::uint16_t stealSlice = 0;
    std::uint16_t stealSlices = 0;
    /** @} */
    /** ShardPlan::fingerprint() of the owning plan: a journal can only
     *  be resumed or merged against the exact plan that wrote it. */
    std::uint64_t planFingerprint = 0;
    /** Grid name, <= 23 chars (display; the fingerprint is the law). */
    std::string grid;
};

/** One recovered checkpoint frame. */
struct JournalFrame
{
    /** Grid-global point index this result belongs to. */
    std::uint32_t index = 0;
    /** Canonical JSON payload (jobToJson / chaosPointToJson dump). */
    std::string payload;
};

/**
 * How a scan treats a repeated point index inside one file. Strict is
 * the operational default: the writer never re-runs a journaled point,
 * so an in-file duplicate is structural corruption and fatal. Lenient
 * is the repair mode used by journal compaction: the LAST frame for an
 * index wins and earlier ones are counted as superseded, so `compact`
 * can rewrite a journal a strict reader refuses.
 */
enum class ScanPolicy
{
    Strict,
    Lenient,
};

/** Everything a scan recovers from a journal file. */
struct JournalScan
{
    JournalHeader header;
    /** Valid frames in append order (completion order, not grid order;
     *  indices are unique -- a duplicate is structural corruption under
     *  ScanPolicy::Strict; under Lenient the last frame won). */
    std::vector<JournalFrame> frames;
    /** One past the last valid frame: where resume appends. */
    std::uint64_t validBytes = 0;
    /** File exists but is zero bytes: created (or scheduled) and never
     *  even a header was flushed. Implies headerTorn. */
    bool emptyFile = false;
    /** File exists but is shorter than a header: the writer was killed
     *  during creation. Zero points are recorded; recreate it. */
    bool headerTorn = false;
    /** Bytes of torn tail discarded past validBytes (diagnostics). */
    std::uint64_t tornBytes = 0;
    /** Lenient scans only: frames dropped because a later frame for the
     *  same index superseded them. */
    std::size_t supersededFrames = 0;
};

/** Serialize @p header into its fixed 64-byte form (CRC included). */
std::vector<std::uint8_t> encodeJournalHeader(const JournalHeader &header);

/**
 * Parse and validate the fixed header in @p data (at least
 * journalHeaderBytes, sliced by the caller). fatal() on bad magic,
 * unsupported version, or header CRC mismatch; @p context names the
 * file for the error message.
 */
JournalHeader decodeJournalHeader(const std::uint8_t *data,
                                  const char *context);

/** True when @p path exists (journals live where the plan says). */
bool journalExists(const std::string &path);

/**
 * fatal() unless @p got is the exact header the plan expects for this
 * shard (fingerprint first -- its mismatch message explains what to
 * do about stale journals). Shared by worker resume and merge.
 */
void requireMatchingHeader(const JournalHeader &got,
                           const JournalHeader &want,
                           const std::string &path);

/**
 * Read and frame-check @p path: header, then every frame until the
 * first torn or corrupt one (which ends the valid region -- everything
 * after a bad frame is unreachable garbage by construction). fatal() on
 * an unreadable file, a corrupt full-size header, an out-of-range
 * index, or (under ScanPolicy::Strict) a duplicate index; a torn tail
 * is NOT fatal, it is the crash the journal exists to absorb.
 */
JournalScan scanJournal(const std::string &path,
                        ScanPolicy policy = ScanPolicy::Strict);

/** What compactJournal() did (sizes in bytes). */
struct CompactStats
{
    std::size_t frames = 0;          ///< frames kept
    std::size_t supersededFrames = 0;///< duplicate frames dropped
    std::uint64_t tornBytes = 0;     ///< torn tail bytes dropped
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/**
 * Compact the journal at @p path into @p out_path (which may equal
 * @p path for in-place compaction): keep only the LAST frame per point
 * index, re-framed and re-CRC'd in ascending index order, drop any torn
 * tail, and publish atomically (temp + rename), so a crash mid-compact
 * leaves the input untouched. The compacted journal scans clean under
 * ScanPolicy::Strict and merges byte-identically to the input. fatal()
 * on a missing/corrupt input, a torn header (nothing to keep), or any
 * I/O failure.
 */
CompactStats compactJournal(const std::string &path,
                            const std::string &out_path);

/**
 * Appends checkpoint frames. Create truncates and writes a fresh
 * header; resume truncates the torn tail found by a scan and appends
 * after the last valid frame. Each append is one write + flush, so a
 * frame is either fully visible to the next scan or entirely absent.
 */
class JournalWriter
{
  public:
    static JournalWriter create(const std::string &path,
                                const JournalHeader &header);
    static JournalWriter resume(const std::string &path,
                                std::uint64_t valid_bytes);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;
    JournalWriter(JournalWriter &&other) noexcept;
    JournalWriter &operator=(JournalWriter &&) = delete;

    /** Append one completed point; fatal() on any I/O failure. */
    void append(std::uint32_t index, const std::string &payload);

    /** Flush and close; fatal() if the OS reports a write error. */
    void close();

  private:
    JournalWriter(std::string path, std::FILE *file);

    std::string path;
    std::FILE *file = nullptr;
};

} // namespace mcsim::svc

#endif // MCSIM_SVC_JOURNAL_HH
