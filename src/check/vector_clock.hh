/**
 * @file
 * Fixed-width vector clocks for the happens-before race detector.
 *
 * One component per simulated processor. Component p advances when
 * processor p performs a release; joins propagate ordering through
 * lock/flag addresses (release joins the address clock, acquire joins
 * the processor clock). Clocks never shrink, so the usual lattice
 * reasoning applies: a <= b iff every component of a is <= b's.
 */

#ifndef MCSIM_CHECK_VECTOR_CLOCK_HH
#define MCSIM_CHECK_VECTOR_CLOCK_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mcsim::check
{

/** A vector clock with one slot per processor. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(unsigned num_procs) : slots(num_procs, 0) {}

    std::uint64_t get(ProcId p) const { return slots[p]; }
    void set(ProcId p, std::uint64_t v) { slots[p] = v; }
    void tick(ProcId p) { slots[p] += 1; }

    unsigned size() const { return static_cast<unsigned>(slots.size()); }

    /** Component-wise maximum: this |= other. */
    void
    join(const VectorClock &other)
    {
        if (slots.size() < other.slots.size())
            slots.resize(other.slots.size(), 0);
        for (std::size_t i = 0; i < other.slots.size(); ++i)
            slots[i] = std::max(slots[i], other.slots[i]);
    }

  private:
    std::vector<std::uint64_t> slots;
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_VECTOR_CLOCK_HH
