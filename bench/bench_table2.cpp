/**
 * @file
 * Reproduces paper Table 2 (benchmark statistics under SC1: references
 * and overall hit rates by line and cache size), Table 7 (read hit
 * rates), Table 8 (write hit rates), and Table 9 (cycles between
 * references), plus the section 3.3 Psim observations (invalidation-miss
 * share and memory-module utilization skew).
 *
 * Usage: bench_table2 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("table2", args);

    struct Row
    {
        double reads = 0, writes = 0;
        double hit[2][3];   // [cache][line]
        double rhit[2][3];
        double whit[2][3];
        double cbr = 0, cbw = 0;  // 16B-line pacing (Table 9 uses 16B)
        double invShare = 0, skew = 0, missLat = 0;
    };

    std::printf("Table 2 / 7 / 8 / 9 reproduction (SC1, 16 processors%s)\n",
                isFull(args) ? ", paper-size" : ", scaled");
    printHeaderRule();

    std::vector<Row> rows(benchmarkNames.size());
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        for (int big = 0; big < 2; ++big) {
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                const auto &m = res.metrics(
                    exp::paperPoint(benchmarkNames[b], core::Model::SC1,
                                    args.scale, big, lineSizes[l]));
                rows[b].hit[big][l] = 100.0 * m.hitRate;
                rows[b].rhit[big][l] = 100.0 * m.readHitRate;
                rows[b].whit[big][l] = 100.0 * m.writeHitRate;
                if (!big && lineSizes[l] == 16) {
                    rows[b].reads = m.readsPerProc / 1000.0;
                    rows[b].writes = m.writesPerProc / 1000.0;
                    rows[b].cbr = m.cyclesBetweenReads();
                    rows[b].cbw = m.cyclesBetweenWrites();
                    rows[b].invShare =
                        m.totalMisses
                            ? 100.0 * static_cast<double>(
                                          m.invalidationMisses) /
                                  static_cast<double>(m.totalMisses)
                            : 0.0;
                    rows[b].skew = m.moduleSkew;
                    rows[b].missLat = m.avgMissLatency;
                }
            }
        }
    }

    std::printf("\nTable 2: references (1,000s/proc) and hit rate (%%)\n");
    std::printf("%-7s %7s %7s | %6s %6s %6s | %6s %6s %6s\n", "Program",
                "Reads", "Writes", "s/8B", "s/16B", "s/64B", "l/8B",
                "l/16B", "l/64B");
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        const Row &r = rows[b];
        std::printf(
            "%-7s %7.0f %7.0f | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f\n",
            benchmarkNames[b].c_str(), r.reads, r.writes, r.hit[0][0],
            r.hit[0][1], r.hit[0][2], r.hit[1][0], r.hit[1][1],
            r.hit[1][2]);
    }
    std::printf("(s = small cache %s, l = large cache %s)\n",
                cacheLabel(args, false), cacheLabel(args, true));

    std::printf("\nTable 7: read hit rates (%%)\n");
    std::printf("%-7s | %6s %6s %6s | %6s %6s %6s\n", "Program", "s/8B",
                "s/16B", "s/64B", "l/8B", "l/16B", "l/64B");
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        const Row &r = rows[b];
        std::printf("%-7s | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f\n",
                    benchmarkNames[b].c_str(), r.rhit[0][0], r.rhit[0][1],
                    r.rhit[0][2], r.rhit[1][0], r.rhit[1][1],
                    r.rhit[1][2]);
    }

    std::printf("\nTable 8: write hit rates (%%)\n");
    std::printf("%-7s | %6s %6s %6s | %6s %6s %6s\n", "Program", "s/8B",
                "s/16B", "s/64B", "l/8B", "l/16B", "l/64B");
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        const Row &r = rows[b];
        std::printf("%-7s | %6.1f %6.1f %6.1f | %6.1f %6.1f %6.1f\n",
                    benchmarkNames[b].c_str(), r.whit[0][0], r.whit[0][1],
                    r.whit[0][2], r.whit[1][0], r.whit[1][1],
                    r.whit[1][2]);
    }

    std::printf("\nTable 9: cycles between references (16B lines, small "
                "cache)\n");
    std::printf("%-7s %12s %12s\n", "Program", "Reads", "Writes");
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        std::printf("%-7s %12.1f %12.1f\n", benchmarkNames[b].c_str(),
                    rows[b].cbr, rows[b].cbw);
    }

    std::printf("\nSection 3.3 characteristics (16B lines, small cache)\n");
    std::printf("%-7s %18s %14s %16s\n", "Program", "inval-miss share",
                "module skew", "avg miss lat");
    for (std::size_t b = 0; b < benchmarkNames.size(); ++b) {
        std::printf("%-7s %17.0f%% %14.2f %15.1f\n",
                    benchmarkNames[b].c_str(), rows[b].invShare,
                    rows[b].skew, rows[b].missLat);
    }
    return 0;
}
