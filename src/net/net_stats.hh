/**
 * @file
 * Counters collected by one Omega network instance.
 */

#ifndef MCSIM_NET_NET_STATS_HH
#define MCSIM_NET_NET_STATS_HH

#include <cstdint>
#include <string>

#include "obs/histogram.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcsim::net
{

/** Aggregate traffic and contention statistics for one network. */
struct NetStats
{
    /** Messages fully injected. */
    std::uint64_t messages = 0;
    /** Flits carried (sum over messages). */
    std::uint64_t flits = 0;
    /** Sum over messages of cycles spent waiting for busy output ports. */
    std::uint64_t queueCycles = 0;
    /** Sum over messages of total in-network head latency. */
    std::uint64_t latencyCycles = 0;
    /** Largest single-message queueing delay observed. */
    Tick maxQueueDelay = 0;

    /** Distribution of per-message inject-to-delivery head latency. */
    obs::LatencyHistogram transitHist;
    /** Distribution of per-hop port waits (zero waits included, so the
     *  sample count is messages x stages). */
    obs::LatencyHistogram hopWaitHist;

    /** Export under @p prefix (e.g. "reqnet."). */
    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "messages", static_cast<double>(messages));
        out.add(prefix + "flits", static_cast<double>(flits));
        out.add(prefix + "queue_cycles", static_cast<double>(queueCycles));
        out.add(prefix + "latency_cycles",
                static_cast<double>(latencyCycles));
        out.set(prefix + "max_queue_delay",
                static_cast<double>(maxQueueDelay));
        if (messages > 0) {
            out.set(prefix + "avg_latency",
                    static_cast<double>(latencyCycles) /
                        static_cast<double>(messages));
            out.set(prefix + "avg_queue_delay",
                    static_cast<double>(queueCycles) /
                        static_cast<double>(messages));
        }
    }
};

/** Counters collected by one interface buffer. */
struct BufferStats
{
    /** Messages accepted into the buffer. */
    std::uint64_t enqueued = 0;
    /** Messages that entered at the head, jumping queued messages (WO2). */
    std::uint64_t bypasses = 0;
    /** Number of queued messages jumped over, summed over bypasses. */
    std::uint64_t messagesJumped = 0;
    /** Enqueue attempts rejected because the buffer was full. */
    std::uint64_t fullRejects = 0;
    /** Total cycles messages spent queued in the buffer. */
    std::uint64_t residencyCycles = 0;

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "enqueued", static_cast<double>(enqueued));
        out.add(prefix + "bypasses", static_cast<double>(bypasses));
        out.add(prefix + "messages_jumped",
                static_cast<double>(messagesJumped));
        out.add(prefix + "full_rejects", static_cast<double>(fullRejects));
        out.add(prefix + "residency_cycles",
                static_cast<double>(residencyCycles));
    }
};

} // namespace mcsim::net

#endif // MCSIM_NET_NET_STATS_HH
