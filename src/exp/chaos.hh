/**
 * @file
 * Chaos harness: the executable fault-transparency property (DESIGN.md
 * section 11).
 *
 * For each grid point it runs a fault-free baseline and a faulted twin
 * (same workload, same seed, a named fault preset) and asserts that the
 * faulted run
 *  - completes (no deadlock, watchdog, or timeout),
 *  - actually exercised the recovery machinery (injections > 0 and, for
 *    presets with loss faults, retries > 0),
 *  - passes the invariant checker with zero violations and -- where the
 *    workload is data-race-free -- the axiomatic trace checker,
 *  - verifies its workload result, and
 *  - reproduces the baseline's result fingerprint
 *    (Workload::resultFingerprint: the full memory image by default;
 *    dynamically scheduled workloads override it to hash their semantic
 *    output region, since scheduling scratch legitimately varies with
 *    timing).
 *
 * Faults may change *when* everything happens, never *what* the program
 * computes.
 */

#ifndef MCSIM_EXP_CHAOS_HH
#define MCSIM_EXP_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/grid.hh"
#include "exp/json.hh"

namespace mcsim::exp
{

/** Outcome of one baseline-plus-faulted point pair. */
struct ChaosPointResult
{
    std::string id;       ///< the faulted point's id ("...,/F<preset>")
    bool ok = false;
    /** What broke transparency (fatal message, fingerprint mismatch,
     *  checker violations, no faults landed); empty when ok. */
    std::string error;

    /** Evidence that the run was genuinely perturbed. @{ */
    std::uint64_t faultsInjected = 0;
    std::uint64_t retries = 0;
    std::uint64_t nacks = 0;
    std::uint64_t staleMessages = 0;
    /** @} */

    Tick baselineCycles = 0;
    Tick faultedCycles = 0;
};

/** Results of a chaos sweep over one grid. */
struct ChaosReport
{
    std::string grid;
    std::string preset;
    std::vector<ChaosPointResult> points;

    bool ok() const;
    std::size_t failures() const;
    std::uint64_t totalInjected() const;
    std::uint64_t totalRetries() const;

    /** Multi-line human-readable summary. */
    std::string summary() const;
    /** Machine-readable document ("mcsim-chaos-v1"), the CI artifact. */
    Json toJson() const;
};

/** Chaos sweep options. */
struct ChaosOptions
{
    /** Fault preset applied to every faulted twin. */
    std::string preset = "standard";
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Print per-point progress to stderr. */
    bool progress = true;
};

/** Run one baseline/faulted pair (what each worker executes). */
ChaosPointResult runChaosPoint(const SweepPoint &point,
                               const std::string &preset);

/**
 * Canonical serialization of one pair outcome, exactly the element of
 * ChaosReport::toJson()'s "points" array. Public so the svc checkpoint
 * journal can store per-pair payloads that merge byte-identically. @{
 */
Json chaosPointToJson(const ChaosPointResult &result);

/** Parse a journaled pair payload back (fatal() on a malformed one). */
ChaosPointResult chaosPointFromJson(const Json &doc);
/** @} */

/** Run the property over every point of @p grid. */
ChaosReport runChaos(const Grid &grid, const ChaosOptions &options = {});

} // namespace mcsim::exp

#endif // MCSIM_EXP_CHAOS_HH
