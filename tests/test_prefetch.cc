/**
 * @file
 * Tests of the sequential next-line prefetch extension (off by default).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "sim/task.hh"

using namespace mcsim;

namespace
{

SimTask
sequentialWalk(cpu::Processor &p, unsigned lines, unsigned line_bytes,
               Tick &end)
{
    for (unsigned i = 0; i < lines; ++i)
        (void)co_await p.loadUse(0x1000 + static_cast<Addr>(i) * line_bytes);
    end = p.now();
}

core::MachineConfig
config(bool nlpf)
{
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.model = core::Model::WO1;
    cfg.cacheBytes = 4096;
    cfg.lineBytes = 16;
    cfg.nextLinePrefetch = nlpf;
    return cfg;
}

} // namespace

TEST(NextLinePrefetch, SpeedsUpSequentialWalks)
{
    Tick with = 0, without = 0;
    {
        core::Machine m(config(false));
        m.startWorkload(0, sequentialWalk(m.proc(0), 64, 16, without));
        m.run();
        EXPECT_EQ(m.cache(0).stats().prefetchesIssued, 0u);
    }
    {
        core::Machine m(config(true));
        m.startWorkload(0, sequentialWalk(m.proc(0), 64, 16, with));
        m.run();
        EXPECT_GT(m.cache(0).stats().prefetchesIssued, 0u);
        EXPECT_GT(m.cache(0).stats().prefetchesUseful +
                      m.cache(0).stats().loadHits,
                  0u);
    }
    EXPECT_LT(with, without);
}

TEST(NextLinePrefetch, DefaultOff)
{
    core::MachineConfig cfg;
    EXPECT_FALSE(cfg.nextLinePrefetch);
}
