/**
 * @file
 * Abstract instruction costs charged by the workloads for the private
 * computation between shared references (register-register arithmetic,
 * addressing, loop control). Calibrated so the SC1 inter-reference
 * distances land near the paper's Table 9 (reads every ~13-20 cycles,
 * writes every ~60-90).
 */

#ifndef MCSIM_WORKLOADS_COSTS_HH
#define MCSIM_WORKLOADS_COSTS_HH

namespace mcsim::workloads
{

/** Cycle costs of non-memory work. */
struct OpCosts
{
    unsigned intOp = 1;     ///< integer ALU operation
    unsigned addrCalc = 2;  ///< effective-address computation
    unsigned fpAdd = 2;     ///< floating add/subtract
    unsigned fpMul = 4;     ///< floating multiply
    unsigned fpDiv = 10;    ///< floating divide
    unsigned loopOverhead = 3;  ///< induction update + compare
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_COSTS_HH
