/**
 * @file
 * Configuration of the axiomatic trace-recording layer (src/axiom/).
 *
 * Kept free of other mcsim headers so core/machine_config.hh can embed a
 * TraceConfig without pulling the recorder implementation into every
 * translation unit (same pattern as check/check_config.hh).
 */

#ifndef MCSIM_AXIOM_TRACE_CONFIG_HH
#define MCSIM_AXIOM_TRACE_CONFIG_HH

#include <cstddef>

namespace mcsim::axiom
{

/**
 * Trace recording is off by default: the recorder stores every shared
 * access for the whole run, which is memory the figure benches and the
 * long workload sweeps do not want to pay. Tests that feed the axiomatic
 * checker switch it on per-machine.
 */
struct TraceConfig
{
    /** Record per-access events for offline axiomatic checking. */
    bool record = false;

    /** Safety valve: fatal() if a single run records more events than
     *  this (a runaway litmus loop would otherwise eat the heap). */
    std::size_t maxEvents = 1u << 24;

    bool enabled() const { return record; }
};

} // namespace mcsim::axiom

#endif // MCSIM_AXIOM_TRACE_CONFIG_HH
