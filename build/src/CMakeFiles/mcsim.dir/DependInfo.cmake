
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/mcsim.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/machine.cc" "src/CMakeFiles/mcsim.dir/core/machine.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/core/machine.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/mcsim.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/core/metrics.cc.o.d"
  "/root/repo/src/cpu/processor.cc" "src/CMakeFiles/mcsim.dir/cpu/processor.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/cpu/processor.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/mcsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/functional_memory.cc" "src/CMakeFiles/mcsim.dir/mem/functional_memory.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/mem/functional_memory.cc.o.d"
  "/root/repo/src/mem/memory_module.cc" "src/CMakeFiles/mcsim.dir/mem/memory_module.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/mem/memory_module.cc.o.d"
  "/root/repo/src/mem/protocol.cc" "src/CMakeFiles/mcsim.dir/mem/protocol.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/mem/protocol.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/mcsim.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/net/topology.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/mcsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/mcsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/workloads/gauss.cc" "src/CMakeFiles/mcsim.dir/workloads/gauss.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/gauss.cc.o.d"
  "/root/repo/src/workloads/layout.cc" "src/CMakeFiles/mcsim.dir/workloads/layout.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/layout.cc.o.d"
  "/root/repo/src/workloads/psim.cc" "src/CMakeFiles/mcsim.dir/workloads/psim.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/psim.cc.o.d"
  "/root/repo/src/workloads/qsort.cc" "src/CMakeFiles/mcsim.dir/workloads/qsort.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/qsort.cc.o.d"
  "/root/repo/src/workloads/relax.cc" "src/CMakeFiles/mcsim.dir/workloads/relax.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/relax.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/mcsim.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/mcsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/mcsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
