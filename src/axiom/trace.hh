/**
 * @file
 * Memory-event trace schema and the low-overhead recorder the Processor
 * feeds (DESIGN.md section 8).
 *
 * One Event is recorded per shared-memory operation, at its program-order
 * point, carrying three timestamps:
 *
 *  - issue:   the tick the operation left the processor's issue stage;
 *  - bind:    the tick its *functional* effect happened (data loads and
 *             stores bind at issue; sync operations at their timed
 *             completion -- the simulator's functional/timing split);
 *  - perform: the tick the operation was globally performed by the
 *             memory system (hit: immediately; miss: transaction
 *             completion; SC store-buffer hand-off: the hand-off tick is
 *             kept separately in orderTick).
 *
 * Values are tracked as per-granule *version tags*: the recorder keeps a
 * version counter per 4-byte granule (the race detector's granularity),
 * bumped exactly where FunctionalMemory is written. A read samples the
 * tags at its bind point, which identifies the write it read from without
 * comparing 64-bit data values (two stores of the same value stay
 * distinguishable).
 *
 * Writes whose functional effect is deferred past their program-order
 * point (sync stores, RC releases) are recorded *pending* at the
 * program-order point and patched by commitWrite()/setPerformed() later;
 * this keeps the po sequence numbers honest.
 */

#ifndef MCSIM_AXIOM_TRACE_HH
#define MCSIM_AXIOM_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "axiom/trace_config.hh"
#include "sim/types.hh"

namespace mcsim::axiom
{

/** Classification of one traced memory event. */
enum class EventKind : std::uint8_t
{
    Read,       ///< data load (Load / LoadUse)
    Write,      ///< data store
    SyncRead,   ///< sync load (acquire under RC)
    SyncRmw,    ///< test-and-set (read+write; acquire under RC)
    SyncWrite,  ///< sync store (release under RC)
    Fence,      ///< SYNC instruction (no address)
};

/** True for events with a store side. */
constexpr bool
isWriteKind(EventKind k)
{
    return k == EventKind::Write || k == EventKind::SyncRmw ||
           k == EventKind::SyncWrite;
}

/** True for events with a load side. */
constexpr bool
isReadKind(EventKind k)
{
    return k == EventKind::Read || k == EventKind::SyncRead ||
           k == EventKind::SyncRmw;
}

/** True for synchronization events (including fences). */
constexpr bool
isSyncKind(EventKind k)
{
    return k == EventKind::SyncRead || k == EventKind::SyncRmw ||
           k == EventKind::SyncWrite || k == EventKind::Fence;
}

/** Acquire side under RC: sync reads and read-modify-writes. */
constexpr bool
isAcquireKind(EventKind k)
{
    return k == EventKind::SyncRead || k == EventKind::SyncRmw ||
           k == EventKind::Fence;
}

/** Release side under RC: sync writes (and fences order both ways). */
constexpr bool
isReleaseKind(EventKind k)
{
    return k == EventKind::SyncWrite || k == EventKind::Fence;
}

/** Version-tag granularity: 4-byte granules, matching the race
 *  detector. An 8-byte access covers two adjacent granules. */
constexpr Addr
granuleOf(Addr addr)
{
    return addr >> 2;
}

/** One recorded memory event. */
struct Event
{
    std::uint32_t id = 0;       ///< index in Trace::events
    ProcId proc = 0;
    std::uint32_t poSeq = 0;    ///< per-processor program-order index
    EventKind kind = EventKind::Read;
    std::uint8_t width = 8;     ///< functional access bytes (4 or 8)
    Addr addr = 0;
    std::uint64_t value = 0;    ///< value written / value read

    Tick issue = 0;
    Tick bind = 0;              ///< functional-effect tick
    Tick perform = 0;           ///< global-perform tick
    /** The tick this event stops gating program order on the write side
     *  (SC store-buffer hand-off); equals perform otherwise. */
    Tick orderTick = 0;

    /** Per-granule version tags: the versions this read observed, or the
     *  versions this write created. tag[i] pairs with granule(i). */
    std::uint32_t tag[2] = {0, 0};

    /** Still waiting for commitWrite()/setPerformed(). */
    bool pending = false;
    /** orderTick was pinned by setOrdered(); setPerformed keeps it. */
    bool orderPinned = false;

    /** Granule count (1 for width 4, 2 for width 8). */
    unsigned granules() const { return width > 4 ? 2u : 1u; }
    Addr granule(unsigned i) const { return granuleOf(addr) + i; }

    /** "p2 W 0x1000=42 @perform 133" -- witness printing. */
    std::string describe() const;
};

const char *eventKindName(EventKind k);

/** A whole recorded execution. */
struct Trace
{
    std::vector<Event> events;

    /** Events of one processor in program order (ids). */
    std::vector<std::vector<std::uint32_t>> byProc;

    bool empty() const { return events.empty(); }
};

/**
 * The recorder the Processor feeds. All record* methods return the event
 * id so the caller can stash it next to its in-flight state and patch
 * timestamps as the transaction advances.
 */
class TraceRecorder
{
  public:
    TraceRecorder(const TraceConfig &config, unsigned num_procs);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** A data read whose value binds now. perform is patched later for
     *  misses via setPerformed(); hits pass perform == bind_tick. */
    std::uint32_t recordRead(ProcId p, Addr addr, std::uint8_t width,
                             std::uint64_t value, Tick issue_tick,
                             Tick bind_tick, Tick perform_tick);

    /** A data write whose functional effect happens now. */
    std::uint32_t recordWrite(ProcId p, Addr addr, std::uint8_t width,
                              std::uint64_t value, Tick issue_tick,
                              Tick perform_tick);

    /** A sync read / rmw recorded at issue; value+tags bind later via
     *  bindRead() (rmw additionally bumps write tags then). */
    std::uint32_t recordPendingRead(ProcId p, EventKind kind, Addr addr,
                                    Tick issue_tick);

    /** A sync write (or RC release) recorded at its program-order point;
     *  the functional write happens later via commitWrite(). */
    std::uint32_t recordPendingWrite(ProcId p, Addr addr,
                                     std::uint64_t value, Tick issue_tick);

    /** A fence; atomic in time at its completion tick. */
    std::uint32_t recordFence(ProcId p, Tick complete_tick);

    /** Patch points. @{ */
    /** Bind a pending sync read's value (and bump tags for rmw). */
    void bindRead(std::uint32_t id, std::uint64_t value, Tick bind_tick);
    /** Commit a pending sync write's functional effect. */
    void commitWrite(std::uint32_t id, Tick commit_tick);
    /** The memory system globally performed the event. */
    void setPerformed(std::uint32_t id, Tick perform_tick);
    /** SC store-buffer hand-off: stop gating program order now. */
    void setOrdered(std::uint32_t id, Tick order_tick);
    /** @} */

    /** Number of events recorded so far. */
    std::size_t size() const { return trace.events.size(); }

    /** Finalize per-proc indices and expose the trace (call after run). */
    const Trace &finish();

  private:
    Event &makeEvent(ProcId p, EventKind kind, Addr addr,
                     std::uint8_t width, std::uint64_t value,
                     Tick issue_tick);
    void sampleReadTags(Event &ev);
    void bumpWriteTags(Event &ev);

    TraceConfig cfg;
    Trace trace;
    std::vector<std::uint32_t> poCounters;           ///< per proc
    std::unordered_map<Addr, std::uint32_t> versions; ///< per granule
    bool finished = false;
};

} // namespace mcsim::axiom

#endif // MCSIM_AXIOM_TRACE_HH
