/**
 * @file
 * Correctness tests for the synchronization primitives across every
 * consistency model: lock mutual exclusion, barrier phase separation
 * (both central and dissemination kinds), and test&set serialization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hh"
#include "cpu/sync.hh"
#include "sim/task.hh"
#include "workloads/layout.hh"

using namespace mcsim;
using core::Model;

namespace
{

core::MachineConfig
config(Model m)
{
    core::MachineConfig cfg;
    cfg.numProcs = 8;
    cfg.numModules = 8;
    cfg.model = m;
    cfg.cacheBytes = 1024;
    cfg.lineBytes = 16;
    return cfg;
}

SimTask
lockedIncrements(cpu::Processor &p, cpu::LockVar lock, Addr counter,
                 unsigned reps)
{
    for (unsigned i = 0; i < reps; ++i) {
        co_await cpu::lockAcquire(p, lock);
        const std::uint64_t v = co_await p.loadUse(counter);
        co_await p.exec(3);  // widen the race window
        co_await p.store(counter, v + 1);
        co_await cpu::lockRelease(p, lock);
        co_await p.exec(5);
    }
}

SimTask
barrierPhases(cpu::Processor &p, cpu::BarrierObj barrier, unsigned n_procs,
              unsigned pid, cpu::BarrierCtx &ctx, Addr phase_flags,
              unsigned phases, bool &ok)
{
    for (unsigned ph = 0; ph < phases; ++ph) {
        // Write my per-processor phase marker, then check after the
        // barrier that every processor reached this phase.
        co_await p.store(phase_flags + pid * 8, ph + 1);
        co_await cpu::barrierWait(p, barrier, n_procs, pid, ctx);
        for (unsigned q = 0; q < n_procs; ++q) {
            const std::uint64_t v =
                co_await p.loadUse(phase_flags + q * 8);
            if (v < ph + 1)
                ok = false;
        }
        co_await cpu::barrierWait(p, barrier, n_procs, pid, ctx);
    }
}

} // namespace

class SyncAcrossModels : public ::testing::TestWithParam<Model>
{};

TEST_P(SyncAcrossModels, LockProvidesMutualExclusion)
{
    auto cfg = config(GetParam());
    core::Machine m(cfg);
    workloads::SharedLayout layout(cfg.lineBytes);
    const cpu::LockVar lock = layout.allocLock();
    const Addr counter = layout.allocWords(1);
    m.memory().ensure(layout.top());

    const unsigned reps = 20;
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        m.startWorkload(
            p, lockedIncrements(m.proc(p), lock, counter, reps));
    }
    m.run();
    EXPECT_EQ(m.memory().readU64(counter),
              static_cast<std::uint64_t>(cfg.numProcs) * reps)
        << core::modelName(GetParam());
    EXPECT_EQ(m.memory().readU64(lock.addr), 0u);  // released
}

TEST_P(SyncAcrossModels, DisseminationBarrierSeparatesPhases)
{
    auto cfg = config(GetParam());
    core::Machine m(cfg);
    workloads::SharedLayout layout(cfg.lineBytes);
    const auto barrier = layout.allocBarrierObj(
        cpu::BarrierKind::Dissemination, cfg.numProcs);
    const Addr flags = layout.allocWords(cfg.numProcs);
    m.memory().ensure(layout.top());

    bool ok = true;
    std::vector<cpu::BarrierCtx> ctx(cfg.numProcs);
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        m.startWorkload(p, barrierPhases(m.proc(p), barrier, cfg.numProcs,
                                         p, ctx[p], flags, 6, ok));
    }
    m.run();
    EXPECT_TRUE(ok) << core::modelName(GetParam());
}

TEST_P(SyncAcrossModels, CentralBarrierSeparatesPhases)
{
    auto cfg = config(GetParam());
    core::Machine m(cfg);
    workloads::SharedLayout layout(cfg.lineBytes);
    const auto barrier =
        layout.allocBarrierObj(cpu::BarrierKind::Central, cfg.numProcs);
    const Addr flags = layout.allocWords(cfg.numProcs);
    m.memory().ensure(layout.top());

    bool ok = true;
    std::vector<cpu::BarrierCtx> ctx(cfg.numProcs);
    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        m.startWorkload(p, barrierPhases(m.proc(p), barrier, cfg.numProcs,
                                         p, ctx[p], flags, 4, ok));
    }
    m.run();
    EXPECT_TRUE(ok) << core::modelName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, SyncAcrossModels,
                         ::testing::ValuesIn(core::allModels),
                         [](const auto &info) {
                             return std::string(
                                 core::modelName(info.param));
                         });

TEST(Sync, TestAndSetSerializesWinners)
{
    // All processors race one test&set; exactly one must win.
    auto cfg = config(Model::RC);
    core::Machine m(cfg);
    workloads::SharedLayout layout(cfg.lineBytes);
    const Addr word = layout.allocLock().addr;
    const Addr wins = layout.allocWords(cfg.numProcs);
    m.memory().ensure(layout.top());

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        m.startWorkload(p, [](cpu::Processor &proc, Addr w, Addr out,
                              unsigned pid) -> SimTask {
            const std::uint64_t old = co_await proc.testAndSet(w);
            co_await proc.store(out + pid * 8, old == 0 ? 1 : 0);
        }(m.proc(p), word, wins, p));
    }
    m.run();
    unsigned winners = 0;
    for (unsigned p = 0; p < cfg.numProcs; ++p)
        winners += m.memory().readU64(wins + p * 8) == 1 ? 1 : 0;
    EXPECT_EQ(winners, 1u);
}
