#include "svc/svc_io.hh"

#include <cstdio>

namespace mcsim::svc
{

std::size_t
SvcIo::write(const void *data, std::size_t size, std::FILE *file)
{
    return std::fwrite(data, 1, size, file);
}

int
SvcIo::flush(std::FILE *file)
{
    return std::fflush(file);
}

int
SvcIo::rename(const char *from, const char *to)
{
    return std::rename(from, to);
}

namespace
{

/** The pass-through singleton and the installed override. @{ */
SvcIo &
passthroughIo()
{
    static SvcIo io;
    return io;
}

SvcIo *overrideIo = nullptr;
/** @} */

} // namespace

SvcIo &
svcIo()
{
    return overrideIo != nullptr ? *overrideIo : passthroughIo();
}

SvcIo *
installSvcIo(SvcIo *io)
{
    SvcIo *previous = overrideIo;
    overrideIo = io;
    return previous;
}

} // namespace mcsim::svc
