/**
 * @file
 * Per-cache statistics, including the read/write hit-rate breakdown the
 * paper reports in Tables 2, 7 and 8.
 */

#ifndef MCSIM_MEM_CACHE_STATS_HH
#define MCSIM_MEM_CACHE_STATS_HH

#include <cstdint>
#include <string>

#include "obs/histogram.hh"
#include "sim/stats.hh"

namespace mcsim::mem
{

/** Counters for one processor's cache. */
struct CacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t loadHits = 0;
    std::uint64_t stores = 0;
    std::uint64_t storeHits = 0;
    std::uint64_t syncAccesses = 0;
    std::uint64_t syncHits = 0;

    /** Misses to lines previously removed by a coherence invalidation. */
    std::uint64_t invalidationMisses = 0;
    /** Demand misses that found the line already being fetched. */
    std::uint64_t mergedAccesses = 0;
    /** Accesses rejected (MSHR full / conflict); retried by the CPU. */
    std::uint64_t blockedAccesses = 0;

    std::uint64_t writebacks = 0;
    std::uint64_t invalidationsReceived = 0;
    std::uint64_t recallsServed = 0;

    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesUseful = 0;  ///< later demand access merged/hit

    /** Hardened protocol under fault injection (src/fault/); all zero
     *  on perfect hardware. @{ */
    std::uint64_t retries = 0;        ///< timeout/NACK-driven re-sends
    std::uint64_t nacksReceived = 0;
    std::uint64_t staleReplies = 0;   ///< duplicate/superseded, dropped
    /** @} */

    /** Observed miss service times (request issue to consumer completion),
     *  capturing contention and coherence round trips on top of the
     *  18-cycle uncontended base. @{ */
    std::uint64_t missLatencySum = 0;
    std::uint64_t missLatencyCount = 0;
    std::uint64_t missLatencyMax = 0;
    /** @} */

    /** Log2-bucketed distribution of the same miss service times; the
     *  machine merges these per-cache histograms for the run-level
     *  p50/p90/p99 quantiles. */
    obs::LatencyHistogram missLatencyHist;

    /** Integral over time of the number of busy MSHRs (cycle-weighted):
     *  divide by run cycles for mean occupancy. The relaxed models' whole
     *  point is keeping more than one of these busy (paper section 3.2),
     *  so the sweep harness exports it per run. */
    std::uint64_t mshrBusyCycles = 0;

    double
    avgMissLatency() const
    {
        return missLatencyCount ? static_cast<double>(missLatencySum) /
                                      static_cast<double>(missLatencyCount)
                                : 0.0;
    }

    double
    readHitRate() const
    {
        return loads ? static_cast<double>(loadHits) /
                           static_cast<double>(loads)
                     : 1.0;
    }

    double
    writeHitRate() const
    {
        return stores ? static_cast<double>(storeHits) /
                            static_cast<double>(stores)
                      : 1.0;
    }

    double
    overallHitRate() const
    {
        const std::uint64_t refs = loads + stores;
        return refs ? static_cast<double>(loadHits + storeHits) /
                          static_cast<double>(refs)
                    : 1.0;
    }

    void
    addTo(StatSet &out, const std::string &prefix) const
    {
        out.add(prefix + "loads", static_cast<double>(loads));
        out.add(prefix + "load_hits", static_cast<double>(loadHits));
        out.add(prefix + "stores", static_cast<double>(stores));
        out.add(prefix + "store_hits", static_cast<double>(storeHits));
        out.add(prefix + "sync_accesses",
                static_cast<double>(syncAccesses));
        out.add(prefix + "sync_hits", static_cast<double>(syncHits));
        out.add(prefix + "invalidation_misses",
                static_cast<double>(invalidationMisses));
        out.add(prefix + "merged_accesses",
                static_cast<double>(mergedAccesses));
        out.add(prefix + "blocked_accesses",
                static_cast<double>(blockedAccesses));
        out.add(prefix + "writebacks", static_cast<double>(writebacks));
        out.add(prefix + "invalidations_received",
                static_cast<double>(invalidationsReceived));
        out.add(prefix + "recalls_served",
                static_cast<double>(recallsServed));
        out.add(prefix + "prefetches_issued",
                static_cast<double>(prefetchesIssued));
        out.add(prefix + "prefetches_useful",
                static_cast<double>(prefetchesUseful));
        out.add(prefix + "retries", static_cast<double>(retries));
        out.add(prefix + "nacks_received",
                static_cast<double>(nacksReceived));
        out.add(prefix + "stale_replies",
                static_cast<double>(staleReplies));
        out.add(prefix + "miss_latency_sum",
                static_cast<double>(missLatencySum));
        out.add(prefix + "miss_latency_count",
                static_cast<double>(missLatencyCount));
        if (missLatencyMax > 0) {
            out.set(prefix + "miss_latency_max",
                    static_cast<double>(missLatencyMax));
        }
        out.add(prefix + "mshr_busy_cycles",
                static_cast<double>(mshrBusyCycles));
    }
};

} // namespace mcsim::mem

#endif // MCSIM_MEM_CACHE_STATS_HH
