/**
 * @file
 * Error and status reporting, in the spirit of gem5's logging.hh.
 *
 * panic()  - a simulator bug: a condition that should never happen
 *            regardless of user input. Aborts (core-dumpable).
 * fatal()  - a user error (bad configuration, invalid arguments). Throws
 *            FatalError so embedding code and tests can recover.
 * warn()   - something dubious but survivable.
 * inform() - plain status output.
 */

#ifndef MCSIM_SIM_LOGGING_HH
#define MCSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mcsim
{

/** Exception thrown by fatal(): a user-correctable configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user error; throws FatalError. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but non-fatal condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; on failure, panic with location info.
 * Active in all build types (these guard protocol invariants whose
 * violation would silently corrupt results).
 */
#define MCSIM_ASSERT(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mcsim::panic("assertion '%s' failed at %s:%d: %s", #cond,      \
                           __FILE__, __LINE__,                               \
                           ::mcsim::strprintf(__VA_ARGS__).c_str());         \
        }                                                                    \
    } while (0)

} // namespace mcsim

#endif // MCSIM_SIM_LOGGING_HH
