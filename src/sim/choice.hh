/**
 * @file
 * Pluggable scheduler hook for the simulator's nondeterministic choice
 * points (DESIGN.md section 12).
 *
 * A timed run of the machine is fully deterministic: the event queue
 * breaks ties by (tick, priority, insertion sequence), so every message
 * race is resolved the same way on every run. The model checker
 * (src/mc/) needs the opposite: it must *control* every such race so it
 * can drive the real protocol through all reachable orderings. This
 * header defines the seam between the two worlds.
 *
 * When a ChoiceScheduler is installed (core::MachineConfig::
 * choiceScheduler), three component layers expose their races as
 * explicit choice points instead of resolving them by timing:
 *
 *  - net::OmegaNetwork switches to logical delivery: injected messages
 *    park in per-(src, dst) FIFO pools, and the scheduler picks which
 *    pool head is delivered next (ChoiceKind::NetDeliver). Per-pair
 *    FIFO order is preserved -- that is the ordering guarantee the real
 *    switch fabric provides and the directory protocol assumes -- while
 *    every cross-pair interleaving becomes reachable.
 *  - mem::MemoryModule asks which parked waiter is serviced when a
 *    blocked line reopens (ChoiceKind::DirService).
 *  - mem::Cache asks how far to stretch a retry backoff under the
 *    hardened protocol (ChoiceKind::RetryDelay).
 *
 * When no scheduler is installed (the default, a null pointer), every
 * site takes its legacy deterministic path untouched; golden baselines
 * see zero drift.
 */

#ifndef MCSIM_SIM_CHOICE_HH
#define MCSIM_SIM_CHOICE_HH

#include <cstdint>

#include "sim/types.hh"

namespace mcsim
{

/** Which kind of nondeterministic site is asking. */
enum class ChoiceKind : std::uint8_t
{
    NetDeliver,  ///< which pending network message is delivered next
    DirService,  ///< which parked waiter a reopened line services first
    RetryDelay,  ///< backoff stretch of a hardened-protocol retry
};

/** Display name ("net", "dir", "retry"). */
const char *choiceKindName(ChoiceKind kind);

/**
 * One selectable alternative at a choice point.
 *
 * `object` identifies the protocol object the move touches (the line
 * address for all three kinds); the DPOR layer treats moves on distinct
 * objects as commuting. `aux` disambiguates moves that touch the same
 * object (source/destination port, waiter requester, delay step) so
 * sleep sets track move *identity*, not just the object.
 */
struct ChoiceOption
{
    std::uint64_t object = 0;
    std::uint64_t aux = 0;

    bool
    operator==(const ChoiceOption &other) const
    {
        return object == other.object && aux == other.aux;
    }
};

/**
 * One logical message delivery, reported to the scheduler's timeline
 * probe (counterexample rendering). `kind` is the mem::MsgKind code,
 * kept as a raw byte so this header stays below the protocol layer.
 */
struct DeliveryRecord
{
    Tick tick = 0;
    bool requestNet = false;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t lineAddr = 0;
    std::uint8_t kind = 0;
    std::uint32_t seq = 0;
};

/**
 * The scheduler interface. Implementations must be deterministic
 * functions of their own state and the call sequence: the model
 * checker's replay layer depends on a recorded choice vector
 * reproducing a run exactly.
 */
class ChoiceScheduler
{
  public:
    virtual ~ChoiceScheduler() = default;

    /** Observation hook: called at every logical network delivery so
     *  the checker can render a message timeline. Default: ignore. */
    virtual void onDelivery(const DeliveryRecord &record) { (void)record; }

    /**
     * Pick one of @p options[0..n). Sites call this for every executed
     * move -- including forced ones (n == 1) -- so the scheduler can
     * keep dependence bookkeeping (DPOR sleep sets) aligned with the
     * execution.
     *
     * @param kind site kind
     * @param options the selectable moves, deterministically ordered
     * @param n number of options (>= 1)
     * @return index in [0, n)
     */
    virtual unsigned choose(ChoiceKind kind, const ChoiceOption *options,
                            unsigned n) = 0;
};

} // namespace mcsim

#endif // MCSIM_SIM_CHOICE_HH
