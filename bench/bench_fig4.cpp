/**
 * @file
 * Reproduces paper Figure 4: percentage performance gain over SC1 of
 * SC2, WO1, WO2 and RC with the small ("16K") caches, 16 processors,
 * per benchmark and line size. Also prints the section 4.2.3/4.2.4
 * auxiliaries: WO2 buffer bypass counts and SC2 prefetch counts.
 *
 * Expected shapes: Gauss gains ordered 8B >> 16B >> 64B; Qsort moderate
 * at every line size; Relax small; Psim moderate with SC2 negative at
 * 64B; WO1 ~ WO2 ~ RC everywhere.
 *
 * Usage: bench_fig4 [--full]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const bool full = parseFull(argc, argv);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::WO2,
        core::Model::RC};

    std::printf("Figure 4 reproduction: %% gain over SC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(full, false), full ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s %14s %12s\n", "model", "8B",
                    "16B", "64B", "bypasses/16B", "pref/16B");
        // SC1 baselines per line size.
        core::RunMetrics base[3];
        for (std::size_t l = 0; l < lineSizes.size(); ++l) {
            auto cfg = baseConfig(full);
            cfg.lineBytes = lineSizes[l];
            base[l] = run(name, cfg, full);
        }
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            double bypasses16 = 0, prefetch16 = 0;
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                auto cfg = baseConfig(full);
                cfg.lineBytes = lineSizes[l];
                cfg.model = model;
                const auto m = run(name, cfg, full);
                std::printf(" %9.1f%%", core::percentGain(base[l], m));
                if (lineSizes[l] == 16) {
                    bypasses16 = static_cast<double>(m.bufferBypasses);
                    prefetch16 = static_cast<double>(m.prefetchesIssued);
                }
            }
            std::printf(" %14.0f %12.0f\n", bypasses16, prefetch16);
        }
    }
    return 0;
}
