/**
 * @file
 * The mcsim-lint check catalog (DESIGN.md section 13).
 *
 * Every check enforces one clause of the repo's determinism contract:
 * a run is a pure function of its configuration and seed. The checks
 * are listed in checkInfos[]; suppression uses
 * `// mcsim-lint: <name>(<non-empty reason>)` on the flagged line or
 * the line directly above, and an empty or unknown suppression is
 * itself a finding (suppression-audit), so the audit trail stays
 * greppable and honest.
 */

#ifndef MCSIM_TOOLS_LINT_CHECKS_HH
#define MCSIM_TOOLS_LINT_CHECKS_HH

#include <string>
#include <vector>

#include "lint/lexer.hh"
#include "lint/symbols.hh"

namespace mcsim::lint
{

/** One reported violation. */
struct Finding
{
    std::string file;
    unsigned line = 0;
    std::string check;
    std::string message;
};

/** Catalog entry (for --list-checks and --check filtering). */
struct CheckInfo
{
    const char *name;
    const char *summary;
};

/** The catalog: five determinism checks plus the suppression audit. */
const std::vector<CheckInfo> &checkInfos();

/** True when @p name names a catalog check (or a suppression alias). */
bool isKnownCheck(const std::string &name);

/**
 * Run every check (or only @p only, when non-empty) on @p file.
 * Suppressions consumed by a finding are honored; leftover malformed,
 * unknown, or empty-reason annotations surface as suppression-audit
 * findings. Appends to @p findings.
 */
void runChecks(const LexedFile &file, const SymbolIndex &index,
               const std::string &only, std::vector<Finding> &findings);

} // namespace mcsim::lint

#endif // MCSIM_TOOLS_LINT_CHECKS_HH
