/**
 * @file
 * Journal merge: fold N shard journals into the canonical results
 * document (DESIGN.md section 15).
 *
 * Byte-identity contract: the merged JSON (and CSV) for a plan is
 * byte-for-byte the document a single-process sweep_runner run over the
 * same grid emits, for ANY shard count and ANY worker thread count.
 * This works because journal frames store the canonical per-point JSON
 * (exp::jobToJson / exp::chaosPointToJson dumps), the canonical writer
 * is round-trip stable (parse then dump reproduces the bytes), and the
 * merge orders points strictly by grid-global index -- completion order
 * never leaks into the output.
 *
 * The merge refuses partial inputs loudly: a missing journal, a plan
 * mismatch, a torn header, or an uncovered point is fatal with the
 * first missing point named, never a silently shorter document. The
 * input is a journal SET -- the primaries in shard order plus any
 * number of steal journals -- and a point may appear in several files
 * (a victim's primary and a steal journal, say) as long as every copy
 * is byte-identical: results are deterministic functions of the
 * point-derived seeds, so disagreement is corruption, not racing.
 *
 * Degraded mode (MergeOptions::degraded) is the explicit escape hatch
 * for plans with permanently failed points: instead of refusing, it
 * quarantines every uncovered point into the document's "failed"
 * section ({index, id} records, grid order) and reports them in
 * MergeResult::quarantined so the caller can exit non-zero. A degraded
 * merge of a fully covered plan is byte-identical to a strict merge.
 */

#ifndef MCSIM_SVC_MERGE_HH
#define MCSIM_SVC_MERGE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "svc/shard.hh"

namespace mcsim::svc
{

/** Merge knobs. */
struct MergeOptions
{
    /**
     * Tolerate missing or header-torn journals and uncovered points:
     * quarantine every uncovered point into the document's "failed"
     * section instead of fatal()ing. The operational contract is that
     * callers exit 1 when MergeResult::degraded comes back true.
     */
    bool degraded = false;
};

/** The merged canonical outputs of one completed plan. */
struct MergeResult
{
    /** "mcsim-sweep-v1" or "mcsim-chaos-v1", exactly as sweep_runner
     *  would have written it (newline appended by the caller). */
    exp::Json document;
    /** Flat CSV, sweep mode only (exp::csvHeader + one row per job). */
    std::string csv;

    std::size_t totalJobs = 0;
    std::size_t failedJobs = 0;

    /** Chaos mode only: the rebuilt report's verdict and summary. @{ */
    bool chaosOk = false;
    std::string chaosSummary;
    /** @} */

    /** Grid-global indices quarantined by a degraded merge (empty for
     *  a fully covered plan), in grid order. @{ */
    std::vector<std::size_t> quarantined;
    bool degraded = false;
    /** @} */
};

/**
 * Merge a journal set of @p plan: the first plan.shardCount paths are
 * the primary journals in shard order, any further paths are steal
 * journals (their headers say which slice of which victim they hold).
 * fatal() on any missing, foreign, corrupt, or disagreeing journal, or
 * (unless options.degraded) on an uncovered point.
 */
MergeResult mergeJournals(const ShardPlan &plan,
                          const std::vector<std::string> &journal_paths,
                          const MergeOptions &options = {});

} // namespace mcsim::svc

#endif // MCSIM_SVC_MERGE_HH
