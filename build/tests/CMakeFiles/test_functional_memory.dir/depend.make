# Empty dependencies file for test_functional_memory.
# This may be replaced when dependencies are built.
