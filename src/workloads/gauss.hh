/**
 * @file
 * Gauss: parallel gaussian elimination of an n x n matrix (paper section
 * 3.3; original is Darmohray's shared-memory gaussian elimination of a
 * 250 x 250 matrix).
 *
 * Rows are assigned to processors cyclically; elimination step k updates
 * every row below the pivot row using the pivot row, with a barrier
 * between steps. The pivot row is read by everyone (read sharing); each
 * processor's own rows are read-modify-written, which under the
 * write-invalidate protocol makes the first store to each line a write
 * miss -- the source of the strongly line-size-dependent write hit rates
 * in the paper's Table 8.
 */

#ifndef MCSIM_WORKLOADS_GAUSS_HH
#define MCSIM_WORKLOADS_GAUSS_HH

#include <vector>

#include "cpu/sync.hh"
#include "workloads/costs.hh"
#include "workloads/workload.hh"

namespace mcsim::workloads
{

/** Gauss configuration. */
struct GaussParams
{
    /** Matrix dimension (paper: 250; scaled default: 150, see DESIGN.md). */
    unsigned n = 150;
    /** Deterministic data seed. */
    std::uint64_t seed = 12345;
    /** Barrier implementation between elimination steps. */
    cpu::BarrierKind barrierKind = cpu::BarrierKind::Dissemination;
    /** Fetch own-row elements with ownership so the following store hits
     *  (paper section 3.3 calls this out as the case where a compiler
     *  could profitably emit read-with-ownership). Off by default: the
     *  paper's compiler could not exploit it. */
    bool readOwn = false;
};

/** Gaussian-elimination benchmark. */
class GaussWorkload : public Workload
{
  public:
    explicit GaussWorkload(GaussParams params = {});

    std::string name() const override { return "Gauss"; }
    void setup(core::Machine &machine) override;
    void verify(core::Machine &machine) const override;

  private:
    static SimTask body(cpu::Processor &proc, GaussWorkload &w,
                        unsigned pid, unsigned n_procs);

    Addr elemAddr(unsigned i, unsigned j) const
    {
        return matrixBase + (static_cast<Addr>(i) * cfg.n + j) * 8;
    }

    GaussParams cfg;
    OpCosts costs;
    Addr matrixBase = 0;
    cpu::BarrierObj barrier{};
    std::vector<cpu::BarrierCtx> barrierCtx;
    std::vector<double> expected;  ///< reference elimination result
};

} // namespace mcsim::workloads

#endif // MCSIM_WORKLOADS_GAUSS_HH
