#include "svc/shard.hh"

#include "core/machine_config.hh"
#include "fault/fault_config.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace mcsim::svc
{

std::uint64_t
ShardPlan::fingerprint() const
{
    // A canonical self-describing string, hashed: cheap, stable across
    // processes, and any change to what a shard would execute -- point
    // set, order, seeds, mode, preset, partition width -- changes it.
    std::string canon = strprintf(
        "mcsim-svc-plan-v1|%s|%s|%s|%s|%u|%zu", runModeName(mode),
        preset.c_str(), grid.name.c_str(), exp::scaleName(scale),
        shardCount, grid.points.size());
    for (const exp::SweepPoint &point : grid.points) {
        canon += '|';
        canon += point.id();
    }
    return splitmix64(fnv1a(canon));
}

std::vector<std::size_t>
ShardPlan::shardIndices(std::uint32_t shard) const
{
    std::vector<std::size_t> indices;
    for (std::size_t i = shard; i < grid.points.size(); i += shardCount)
        indices.push_back(i);
    return indices;
}

std::uint32_t
ShardPlan::shardPoints(std::uint32_t shard) const
{
    const std::size_t total = grid.points.size();
    return static_cast<std::uint32_t>(
        total / shardCount + (total % shardCount > shard ? 1 : 0));
}

JournalHeader
ShardPlan::journalHeader(std::uint32_t shard) const
{
    JournalHeader header;
    header.mode = mode;
    header.shardIndex = shard;
    header.shardCount = shardCount;
    header.gridPoints = static_cast<std::uint32_t>(grid.points.size());
    header.shardPoints = shardPoints(shard);
    header.planFingerprint = fingerprint();
    header.grid = grid.name;
    return header;
}

std::string
ShardPlan::journalFileName(std::uint32_t shard) const
{
    return strprintf("%s.s%03u-of-%03u.mcsj", grid.name.c_str(), shard,
                     shardCount);
}

std::string
ShardPlan::journalPath(const std::string &dir, std::uint32_t shard) const
{
    return dir + "/" + journalFileName(shard);
}

ShardPlan
buildShardPlan(const PlanOptions &options)
{
    if (options.shards == 0)
        fatal("svc: a plan needs at least one shard");
    if (options.mode == RunMode::Chaos && options.preset.empty())
        fatal("svc: chaos mode needs a fault preset");
    if (!options.preset.empty())
        (void)fault::faultPreset(options.preset); // name check, fatal()s

    ShardPlan plan;
    plan.grid = exp::namedGrid(options.grid, options.scale);
    plan.scale = options.scale;
    plan.mode = options.mode;
    plan.shardCount = options.shards;
    if (options.mode == RunMode::Chaos)
        plan.preset = options.preset;

    for (exp::SweepPoint &point : plan.grid.points) {
        if (options.procs)
            point.numProcs = options.procs;
        if (options.cacheBytes)
            point.cacheBytes = options.cacheBytes;
        if (options.lineBytes)
            point.lineBytes = options.lineBytes;
        if (options.mode == RunMode::Sweep && !options.preset.empty())
            point.faultPreset = options.preset;
        // sweep_runner's fail-fast discipline: dry-build the machine
        // configuration so a bad geometry fails before any fork, named
        // after its point, never mid-shard inside a worker process.
        try {
            const core::MachineConfig cfg = point.machineConfig();
            cfg.validate();
            mem::CacheParams cache;
            cache.cacheBytes = cfg.cacheBytes;
            cache.lineBytes = cfg.lineBytes;
            cache.assoc = cfg.assoc;
            cache.validate();
        } catch (const FatalError &err) {
            fatal("svc: point %s: %s", point.id().c_str(), err.what());
        }
    }
    return plan;
}

} // namespace mcsim::svc
