#include "workloads/synthetic.hh"

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/layout.hh"

namespace mcsim::workloads
{

SyntheticWorkload::SyntheticWorkload(SyntheticParams params) : cfg(params)
{
    if (cfg.privateWords == 0 || cfg.sharedWords == 0)
        fatal("synthetic regions must be nonempty");
}

void
SyntheticWorkload::setup(core::Machine &machine)
{
    SharedLayout layout(machine.config().lineBytes);
    sharedBase = layout.allocWords(cfg.sharedWords);
    privateBase.clear();
    for (unsigned p = 0; p < machine.numProcs(); ++p)
        privateBase.push_back(layout.allocWords(cfg.privateWords));
    counterAddr = layout.allocWords(1);
    lock = layout.allocLock();
    barrier = layout.allocBarrierObj(cfg.barrierKind, machine.numProcs());
    machine.memory().ensure(layout.top());

    expectedCounter = 0;
    if (cfg.lockEvery > 0) {
        for (unsigned p = 0; p < machine.numProcs(); ++p)
            expectedCounter += cfg.refsPerProc / cfg.lockEvery;
    }

    barrierCtx.assign(machine.numProcs(), {});
    for (unsigned p = 0; p < machine.numProcs(); ++p) {
        machine.startWorkload(
            p, body(machine.proc(p), *this, p, machine.numProcs()));
    }
}

SimTask
SyntheticWorkload::body(cpu::Processor &proc, SyntheticWorkload &w,
                        unsigned pid, unsigned n_procs)
{
    Rng rng(w.cfg.seed + pid * 0x1234567ull);
    for (unsigned r = 1; r <= w.cfg.refsPerProc; ++r) {
        const bool shared = rng.chance(w.cfg.sharedFraction);
        const Addr base = shared ? w.sharedBase : w.privateBase[pid];
        const std::uint64_t words =
            shared ? w.cfg.sharedWords : w.cfg.privateWords;
        const Addr addr = base + rng.below(words) * 8;

        if (rng.chance(w.cfg.storeFraction)) {
            co_await proc.store(addr, rng.next());
        } else {
            const auto token = co_await proc.load(addr);
            co_await proc.exec(w.cfg.execBetween);
            (void)co_await proc.use(token);
        }
        if (w.cfg.execBetween > 0)
            co_await proc.exec(w.cfg.execBetween);

        if (w.cfg.lockEvery > 0 && r % w.cfg.lockEvery == 0) {
            co_await cpu::lockAcquire(proc, w.lock);
            const std::uint64_t v = co_await proc.loadUse(w.counterAddr);
            co_await proc.store(w.counterAddr, v + 1);
            co_await cpu::lockRelease(proc, w.lock);
        }
        if (w.cfg.barrierEvery > 0 && r % w.cfg.barrierEvery == 0) {
            co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                                      w.barrierCtx[pid]);
        }
    }
    // Final barrier so every model ends with a quiesced machine.
    co_await cpu::barrierWait(proc, w.barrier, n_procs, pid,
                              w.barrierCtx[pid]);
}

void
SyntheticWorkload::verify(core::Machine &machine) const
{
    if (expectedCounter > 0) {
        const std::uint64_t got = machine.memory().readU64(counterAddr);
        if (got != expectedCounter) {
            fatal("synthetic counter %llu != expected %llu",
                  static_cast<unsigned long long>(got),
                  static_cast<unsigned long long>(expectedCounter));
        }
    }
}

} // namespace mcsim::workloads
