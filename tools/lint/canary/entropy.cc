// Canary fixture for mcsim-lint's no-entropy check. NOT compiled into
// any target: test_lint_canary runs the linter over this file and
// asserts every violation below is reported. If the check ever goes
// silent, the canary suite turns red (the --weaken pattern from
// src/mc/ applied to the linter itself).

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long long
wallClockSeed()
{
    // violation: wall clock as a seed
    return static_cast<unsigned long long>(time(nullptr));
}

unsigned long long
systemClockSeed()
{
    // violation: std::chrono::system_clock
    return static_cast<unsigned long long>(
        std::chrono::system_clock::now().time_since_epoch().count());
}

unsigned
hardwareEntropy()
{
    std::random_device rd;  // violation: std::random_device
    return rd();
}

int
libcRand()
{
    return rand();  // violation: rand()
}

unsigned long long
addressAsId(const int *object)
{
    // violation: pointer-to-integer cast (allocator-layout entropy)
    return reinterpret_cast<unsigned long long>(
        reinterpret_cast<std::uintptr_t>(object));
}
