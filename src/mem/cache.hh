/**
 * @file
 * Per-processor two-way set-associative, write-back, write-allocate,
 * lockup-free cache for shared data (paper section 3.1/3.2).
 *
 * The cache tracks timing state only (tags, MESI-less I/S/M states, MSHRs);
 * data values live in FunctionalMemory. Misses allocate an MSHR and a
 * pending way, emit a GetShared/GetExclusive request through the Outbox,
 * and complete when the matching DataReply returns. Per the paper's
 * protocol, a store that hits a Shared line invalidates the local copy and
 * refetches the line with write permission -- i.e. it counts as a write
 * miss, which is the cause of the "curiously low" write hit ratios the
 * paper analyses for Qsort.
 */

#ifndef MCSIM_MEM_CACHE_HH
#define MCSIM_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/fault.hh"
#include "mem/cache_stats.hh"
#include "mem/outbox.hh"
#include "obs/tracer.hh"
#include "mem/protocol.hh"
#include "sim/choice.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace mcsim::check
{
class Checker;
} // namespace mcsim::check

namespace mcsim::mem
{

/** Classification of a shared-memory access as seen by the cache. */
enum class AccessType : std::uint8_t
{
    Load,       ///< ordinary data read
    LoadOwn,    ///< read with ownership (fetch exclusive; paper sec. 3.3)
    Store,      ///< ordinary data write
    SyncLoad,   ///< strongly-ordered read (spin test, flag read)
    SyncRmw,    ///< test-and-set
    SyncStore,  ///< lock release / flag write
};

/** True for access types that require write permission (M state). */
constexpr bool
needsExclusive(AccessType t)
{
    return t == AccessType::LoadOwn || t == AccessType::Store ||
           t == AccessType::SyncRmw || t == AccessType::SyncStore;
}

/** True for synchronization accesses (counted separately from data). */
constexpr bool
isSync(AccessType t)
{
    return t == AccessType::SyncLoad || t == AccessType::SyncRmw ||
           t == AccessType::SyncStore;
}

/** What the cache did with an access. */
enum class AccessOutcome : std::uint8_t
{
    Hit,      ///< satisfied locally; the CPU applies its own hit latency
    Miss,     ///< MSHR allocated, request sent; completion will fire
    Merged,   ///< attached to an in-flight MSHR; completion will fire
    Blocked,  ///< no resources / conflicting transaction; retry later
};

/** Static cache geometry and latencies. */
struct CacheParams
{
    std::uint32_t cacheBytes = 16 * 1024;
    std::uint32_t lineBytes = 16;
    std::uint32_t assoc = 2;
    std::uint32_t numMshrs = 5;
    /** Cycles from miss detection to the request entering the Outbox. */
    std::uint32_t missHandleCycles = 2;
    /** Cycles from reply-head arrival to consumer completion. */
    std::uint32_t fillCycles = 3;
    /** Mark load-miss requests bypass-eligible (WO2). */
    bool bypassLoads = false;
    /** Sequential hardware prefetch: a demand miss also fetches the next
     *  line (shared mode) when an MSHR and a way are free. An extension
     *  in the spirit of the paper's conclusion that relaxed consistency
     *  should be combined "with other memory latency reducing techniques
     *  such as more sophisticated prefetching". */
    bool nextLinePrefetch = false;

    /** Validate; fatal() on inconsistent geometry. */
    void validate() const;

    std::uint32_t numSets() const { return cacheBytes / (lineBytes * assoc); }
    std::uint32_t lineWords() const { return std::max(lineBytes / 8u, 1u); }
};

/**
 * One processor's shared-data cache with its miss-handling machinery.
 */
class Cache
{
  public:
    /** Observable line states (Pending = fill in flight). */
    enum class LineState : std::uint8_t { Invalid, Shared, Modified, Pending };

    /** Invoked at completion time of each miss/merge, with its cookie. */
    using CompletionFn = std::function<void(std::uint64_t cookie)>;
    /** Invoked whenever a Blocked condition may have cleared. */
    using RetryFn = std::function<void()>;

    /**
     * @param eq shared event queue
     * @param proc owning processor id (network source port)
     * @param params geometry and latencies
     * @param outbox request-network injection queue
     * @param num_modules memory module count (address interleaving)
     */
    Cache(EventQueue &eq, ProcId proc, const CacheParams &params,
          Outbox &outbox, unsigned num_modules);

    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /**
     * Attempt a shared-memory access at the current tick.
     *
     * Hit: the caller applies its hit latency. Miss/Merged: the completion
     * handler will later be invoked with @p cookie. Blocked: the caller
     * must retry when the retry handler fires.
     */
    AccessOutcome access(Addr addr, AccessType type, std::uint64_t cookie);

    /**
     * SC2 non-binding prefetch of the line containing @p addr; best
     * effort. @return true when a prefetch transaction was launched.
     */
    bool prefetch(Addr addr, bool exclusive);

    /** Response-network delivery entry point (wired by the Machine). */
    void handleResponse(NetMsg &&msg);

    void setCompletionHandler(CompletionFn fn) { completionFn = std::move(fn); }
    void setRetryHandler(RetryFn fn) { retryFn = std::move(fn); }

    /** Wire the invariant checker (Machine; nullptr = no checking). */
    void setChecker(check::Checker *c) { checker = c; }

    /** Wire the event tracer (Machine; nullptr = no tracing). */
    void setTracer(obs::Tracer *t) { tracer = t; }

    /**
     * Wire the fault plan (Machine; nullptr = perfect hardware). A wired
     * plan switches the cache onto the hardened protocol: tolerant
     * dedup of stale/duplicate replies, writeback limbo (no re-request
     * of a line until its Writeback is acknowledged), NACK handling,
     * and MSHR timeout retry with bounded exponential backoff.
     */
    void setFaultPlan(fault::FaultPlan *p) { plan = p; }

    /** Wire the model checker's choice scheduler (Machine; nullptr =
     *  seeded-jitter backoff). With a scheduler installed, the stretch
     *  of each hardened-protocol retry backoff becomes an explicit
     *  choice point (ChoiceKind::RetryDelay). */
    void setChoiceScheduler(ChoiceScheduler *s) { chooser = s; }

    /**
     * Fault injection (tests only): silently drop the next Invalidate that
     * targets a resident line -- the InvAck is still sent, but the stale
     * Shared copy survives, which the coherence auditor must catch when
     * another processor gains ownership.
     */
    void injectIgnoreNextInvalidateForTest() { ignoreNextInvalidate = true; }

    /** Free MSHR count (CPU issue gating). */
    unsigned freeMshrs() const;

    /** Statistics. */
    const CacheStats &stats() const { return cacheStats; }

    /** State of the line containing @p addr (tests/diagnostics). */
    LineState lineState(Addr addr) const;

    /** Number of lines currently valid (S or M); tests. */
    unsigned validLineCount() const;

    /** Snapshot of all valid lines (tests/invariant checks). */
    std::vector<std::pair<Addr, LineState>> validLines() const;

    /** One in-flight miss, for the watchdog's diagnostic snapshot. */
    struct MshrView
    {
        Addr lineAddr = invalidAddr;
        bool exclusive = false;
        bool replyReceived = false;
        Tick issueTick = 0;
        unsigned attempts = 0;
    };
    /** Snapshot of all busy MSHRs (diagnostics). */
    std::vector<MshrView> pendingMshrs() const;
    /** Writebacks awaiting WbAck (hardened protocol; diagnostics). */
    std::size_t pendingWritebacks() const { return wbLimbo.size(); }

    const CacheParams &params() const { return cfg; }

  private:
    struct Line
    {
        Addr lineAddr = invalidAddr;
        LineState state = LineState::Invalid;
        Tick lru = 0;
        /** Directory grant seq this copy was installed under (hardened
         *  protocol: stamps Writeback/FlushData surrenders). */
        std::uint32_t seq = 0;
    };

    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = invalidAddr;
        bool exclusive = false;
        bool prefetch = false;
        std::uint32_t set = 0;
        std::uint32_t way = 0;
        std::vector<std::uint64_t> cookies;
        Tick issueTick = 0;
        bool replyReceived = false;
        bool completed = false;
        Tick completionTick = 0;
        Tick freeTick = 0;
        /** Coherence request deferred until the fill settles. */
        bool deferredInvalidate = false;
        bool deferredRecallExclusive = false;
        bool deferredRecallShared = false;
        /** Stamp of the deferred recall (hardened: echoed in the
         *  RecallStale a clean surrender answers with). */
        std::uint32_t deferredRecallSeq = 0;
        /** Hardened protocol (fault plan wired). @{ */
        std::uint32_t replySeq = 0;     ///< seq of the accepted reply
        std::uint32_t minAcceptSeq = 0; ///< replies below this are stale
        unsigned attempts = 0;          ///< re-sends so far
        std::uint64_t retryGen = 0;     ///< cancels superseded timers
        /** @} */
    };

    Addr lineOf(Addr addr) const { return alignDown(addr, cfg.lineBytes); }
    std::uint32_t setOf(Addr line_addr) const;
    ModuleId moduleOf(Addr line_addr) const;

    Line *findLine(Addr line_addr);
    const Line *findLine(Addr line_addr) const;
    Mshr *findMshr(Addr line_addr);
    Mshr *allocMshr();

    /** Pick an evictable way in @p set; nullptr when all ways pending. */
    Line *pickVictim(std::uint32_t set);

    /** Start a miss transaction; assumes resources were checked. */
    void launchMiss(Line &way_line, std::uint32_t set, Addr line_addr,
                    bool exclusive, bool is_prefetch, std::uint64_t cookie,
                    bool bypass_eligible, bool count_inval = true);

    /** Evict @p line (writeback if Modified). */
    void evict(Line &line);

    void sendRequest(MsgKind kind, Addr line_addr, bool bypass_eligible,
                     Tick delay, std::uint32_t seq = 0);

    /** Hardened protocol: timeout-driven re-issue. @{ */
    void armRetry(Mshr &mshr, Tick delay);
    void retryFire(Addr line_addr, std::uint64_t gen);
    Tick retryDelay(Addr line_addr, unsigned attempt);
    /** @} */

    /** Fill settle: install line, free MSHR, run deferred coherence. */
    void settleFill(Addr line_addr);

    void applyInvalidate(Addr line_addr);
    void applyRecall(Addr line_addr, bool exclusive_recall);

    /** Hardened protocol: record that grants below @p seq for
     *  @p line_addr are dead to this cache. @{ */
    void bumpGrantFloor(Addr line_addr, std::uint32_t seq);
    std::uint32_t grantFloorOf(Addr line_addr) const;
    /** @} */

    void fireCompletion(std::uint64_t cookie, Tick when);
    void notifyRetry();

    EventQueue &queue;
    ProcId procId;
    CacheParams cfg;
    Outbox &out;
    unsigned numModules;

    std::vector<Line> lines;  ///< sets * assoc, way-major within set
    std::vector<Mshr> mshrs;
    /** Lines removed by coherence; a later miss on one is an inv. miss. */
    std::unordered_set<Addr> invalidatedLines;
    /** Hardened protocol: lines whose Writeback awaits a WbAck; accesses
     *  to them block until the ack clears the limbo (this is what makes
     *  "GetExclusive from the registered owner" unambiguous at the
     *  directory -- a lost reply, never an eviction race). */
    std::unordered_set<Addr> wbLimbo;
    /** Hardened protocol: per-line minimum acceptable grant seq. An MSHR's
     *  minAcceptSeq dies with the MSHR, but a stale grant (from a retry or
     *  a network duplicate) can outlive it and arrive at a LATER miss on
     *  the same line; without this floor that miss would install a copy
     *  the directory already revoked. Bumped by every Invalidate/Recall
     *  stamp and by evictions surrendering a grant; seeds minAcceptSeq in
     *  launchMiss. */
    std::unordered_map<Addr, std::uint32_t> grantFloor;

    /** Close the current MSHR-occupancy interval and apply @p delta busy
     *  MSHRs from now on. */
    void accountMshrs(int delta);

    CompletionFn completionFn;
    RetryFn retryFn;
    CacheStats cacheStats;
    /** MSHR-occupancy accounting (mshrBusyCycles integral). @{ */
    Tick mshrStamp = 0;
    unsigned mshrBusy = 0;
    /** @} */

    check::Checker *checker = nullptr;
    obs::Tracer *tracer = nullptr;
    fault::FaultPlan *plan = nullptr;  ///< nullptr = legacy protocol
    ChoiceScheduler *chooser = nullptr;  ///< nullptr = seeded backoff
    std::uint64_t retrySeq = 0;        ///< retry-timer generation counter
    bool ignoreNextInvalidate = false;  ///< fault injection, tests only
};

} // namespace mcsim::mem

#endif // MCSIM_MEM_CACHE_HH
