file(REMOVE_RECURSE
  "CMakeFiles/bench_tables3_6.dir/bench_tables3_6.cpp.o"
  "CMakeFiles/bench_tables3_6.dir/bench_tables3_6.cpp.o.d"
  "bench_tables3_6"
  "bench_tables3_6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables3_6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
