#include "cpu/processor.hh"

#include <cstdio>
#include <cstdlib>

#include "axiom/trace.hh"
#include "check/checker.hh"
#include "sim/logging.hh"

namespace mcsim::cpu
{

namespace
{

/**
 * Terminate on an op kind that reached a stage which, by construction,
 * never handles it (e.g. an Exec op in the memory pipeline). Op-kind
 * switches list every enumerator explicitly and route the impossible
 * ones here, so adding an OpKind makes -Wswitch (and mcsim-lint)
 * force every stage to be revisited.
 */
[[noreturn]] void
unreachableOp(const char *stage, Processor::OpKind kind)
{
    panic("[unreachable-op] %s cannot handle op kind %d", stage,
          static_cast<int>(kind));
}

} // namespace

bool
Processor::traceEnabled()
{
    // The simulator is single-threaded and nothing calls setenv; the
    // one-time read into a function-local static is benign.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    static const bool enabled = std::getenv("MCSIM_TRACE") != nullptr;
    return enabled;
}

void
Processor::trace(const char *what, Addr addr, std::uint64_t value) const
{
    if (traceEnabled()) {
        std::fprintf(stderr, "%10llu p%-2u %-12s addr=%llx val=%llu\n",
                     static_cast<unsigned long long>(queue.now()), cfg.id,
                     what, static_cast<unsigned long long>(addr),
                     static_cast<unsigned long long>(value));
    }
}

std::uint64_t
Processor::readMem(Addr addr, std::uint8_t width) const
{
    return width == 4 ? mem.readU32(addr) : mem.readU64(addr);
}

void
Processor::writeMem(Addr addr, std::uint64_t value, std::uint8_t width)
{
    if (width == 4)
        mem.writeU32(addr, static_cast<std::uint32_t>(value));
    else
        mem.writeU64(addr, value);
}

Processor::Processor(EventQueue &eq, const ProcParams &params,
                     mem::Cache &cache_ref, mem::FunctionalMemory &memory)
    : queue(eq), cfg(params), cache(cache_ref), mem(memory)
{
    cache.setCompletionHandler(
        [this](std::uint64_t cookie) { onCompletion(cookie); });
    cache.setRetryHandler([this]() { onRetry(); });
}

void
Processor::start(SimTask &&t)
{
    MCSIM_ASSERT(!started, "processor %u started twice", cfg.id);
    task = std::move(t);
    started = true;
    queue.schedule(
        queue.now(),
        [this]() {
            task.resume();
            afterResume();
        },
        EventQueue::prioCpu);
}

void
Processor::afterResume()
{
    if (task.done() && !finished) {
        finished = true;
        procStats.finishedAt = queue.now();
        task.rethrowIfFailed();
        if (doneFn)
            doneFn();
    }
}

mem::AccessType
Processor::accessTypeFor(OpKind kind) const
{
    switch (kind) {
      case OpKind::Load:
      case OpKind::LoadUse:
        return mem::AccessType::Load;  // callers map `own` separately
      case OpKind::Store:
        return mem::AccessType::Store;
      case OpKind::SyncLoad:
        return mem::AccessType::SyncLoad;
      case OpKind::SyncRmw:
        return mem::AccessType::SyncRmw;
      case OpKind::SyncStore:
        return mem::AccessType::SyncStore;
      case OpKind::Exec:
      case OpKind::Use:
      case OpKind::Fence:
        // Never reach the cache: no memory access type exists for them.
        unreachableOp("accessTypeFor", kind);
    }
    unreachableOp("accessTypeFor", kind);
}

void
Processor::countOp(const Op &op)
{
    procStats.instructions += 1;
    switch (op.kind) {
      case OpKind::Exec:
        procStats.execCycles += op.cycles;
        break;
      case OpKind::Load:
      case OpKind::LoadUse:
        procStats.loads += 1;
        break;
      case OpKind::Use:
        break;
      case OpKind::Store:
        procStats.stores += 1;
        break;
      case OpKind::SyncLoad:
        procStats.syncLoads += 1;
        break;
      case OpKind::SyncRmw:
        procStats.syncRmws += 1;
        break;
      case OpKind::SyncStore:
        procStats.syncStores += 1;
        break;
      case OpKind::Fence:
        procStats.fences += 1;
        break;
    }
}

bool
Processor::beginOp(const Op &op, std::coroutine_handle<> h)
{
    MCSIM_ASSERT(!active, "processor %u began op with one active", cfg.id);
    const Tick now = queue.now();
    if (issueSink)
        issueSink->onIssue(op);
    countOp(op);

    switch (op.kind) {
      case OpKind::Exec: {
        if (op.cycles == 0)
            return false;
        active = Active{op, h, now};
        chargeBusy(op.cycles);
        finishAt(now + op.cycles, 0);
        return true;
      }

      case OpKind::Use: {
        auto it = tokens.find(op.token);
        MCSIM_ASSERT(it != tokens.end(),
                     "use of unknown/consumed load token");
        TokenState &tok = it->second;
        if (tok.readyKnown && tok.ready <= now) {
            opResult = tok.value;
            tokens.erase(it);
            return false;  // register already available: no stall
        }
        active = Active{op, h, now};
        if (tok.readyKnown) {
            procStats.useStallCycles += tok.ready - now;
            chargeStall(obs::StallCause::LoadMiss, now, tok.ready);
            const std::uint64_t value = tok.value;
            tokens.erase(it);
            finishAt(tok.ready, value);
        } else {
            active->wait = WaitKind::Register;
            active->waitStart = now;
            active->waitToken = op.token;
        }
        return true;
      }

      case OpKind::Load:
      case OpKind::LoadUse:
      case OpKind::Store:
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
      case OpKind::SyncStore:
      case OpKind::Fence: {
        // Every memory-pipeline kind funnels into the issue logic.
        active = Active{op, h, now};
        attemptMem();
        return true;
      }
    }
    unreachableOp("beginOp", op.kind);
}

void
Processor::chargeBusy(std::uint64_t cycles)
{
    if (cycles == 0)
        return;
    procStats.breakdown.busy(cycles);
    if (tracer) {
        tracer->span(obs::Track::Proc, cfg.id, obs::SpanKind::Busy,
                     queue.now(), cycles);
    }
}

void
Processor::chargeStall(obs::StallCause cause, Tick from, Tick until)
{
    if (until <= from)
        return;
    procStats.breakdown.stall(cause, until - from);
    if (tracer) {
        // The six stall SpanKinds mirror StallCause in order.
        const auto kind = static_cast<obs::SpanKind>(
            static_cast<unsigned>(obs::SpanKind::StallLoadMiss) +
            static_cast<unsigned>(cause));
        tracer->span(obs::Track::Proc, cfg.id, kind, from, until - from);
    }
}

obs::StallCause
Processor::gateCauseFor(Gate gate) const
{
    switch (gate) {
      case Gate::Drain:
        return obs::StallCause::FenceSync;
      case Gate::ReleaseBusy:
        return obs::StallCause::Release;
      case Gate::CacheBlocked:
        return obs::StallCause::StoreMshr;
      case Gate::SingleOutstanding:
        // Charge the wait to the reference actually outstanding; under
        // the SC rule there is exactly one (early-released SC store
        // requests no longer count as outstanding).
        // mcsim-lint: order-insensitive(at most one live entry under SC)
        for (const auto &[cookie, rec] : inFlight) {
            (void)cookie;
            if (rec.earlyReleased)
                continue;
            switch (rec.kind) {
              case OpKind::Load:
              case OpKind::LoadUse:
                return obs::StallCause::LoadMiss;
              case OpKind::Store:
                // With the SC store buffer the wait ends exactly at the
                // interface-buffer hand-off, so it is backpressure, not
                // MSHR occupancy.
                return cfg.model.scStoreBufferRelease
                           ? obs::StallCause::Buffer
                           : obs::StallCause::StoreMshr;
              case OpKind::SyncLoad:
              case OpKind::SyncRmw:
                return obs::StallCause::Acquire;
              case OpKind::SyncStore:
                return obs::StallCause::Release;
              case OpKind::Exec:
              case OpKind::Use:
              case OpKind::Fence:
                // Never enter inFlight; keep scanning.
                break;
            }
        }
        return obs::StallCause::LoadMiss;
      case Gate::None:
        break;
    }
    return obs::StallCause::LoadMiss;
}

void
Processor::clearGate()
{
    if (!active || active->gate == Gate::None)
        return;
    const Tick waited = queue.now() - active->gateStart;
    chargeStall(active->gateCause, active->gateStart, queue.now());
    switch (active->gate) {
      case Gate::SingleOutstanding:
        procStats.issueStallCycles += waited;
        break;
      case Gate::Drain:
        procStats.drainStallCycles += waited;
        break;
      case Gate::ReleaseBusy:
        procStats.syncStallCycles += waited;
        break;
      case Gate::CacheBlocked:
        procStats.blockedStallCycles += waited;
        break;
      case Gate::None:
        break;
    }
    active->gate = Gate::None;
}

void
Processor::attemptMem()
{
    MCSIM_ASSERT(active, "attemptMem without active op");
    const Op &op = active->op;
    const Tick now = queue.now();
    const auto &model = cfg.model;
    const bool is_sync = op.kind == OpKind::SyncLoad ||
                         op.kind == OpKind::SyncRmw ||
                         op.kind == OpKind::SyncStore;

    auto gateOn = [&](Gate g) {
        if (active->gate == Gate::None) {
            active->gateStart = now;
            active->gateCause = gateCauseFor(g);
        } else if (active->gate != g) {
            // Switching gates: charge the old one first.
            clearGate();
            active->gateStart = now;
            active->gateCause = gateCauseFor(g);
        }
        active->gate = g;
        active->wait = WaitKind::Gated;
    };

    // SYNC fence: under the relaxed models wait for every outstanding
    // reference (and any pending release) to be performed; under SC the
    // single-outstanding rule already provides the ordering.
    if (op.kind == OpKind::Fence) {
        const bool relaxed = !model.singleOutstanding;
        if (relaxed && (outstanding > 0 || releasePending) &&
            !syncOrderingDisabled) {
            gateOn(Gate::Drain);
            return;
        }
        clearGate();
        if (checker)
            checker->onFenceComplete(cfg.id);
        if (recorder)
            recorder->recordFence(cfg.id, now);
        chargeBusy(1);
        finishAt(now + 1, 0);
        return;
    }

    // RC: releases never stall the processor; they are deferred until the
    // references outstanding at the release have been performed.
    if (model.releaseConsistent && op.kind == OpKind::SyncStore) {
        if (releasePending) {
            gateOn(Gate::ReleaseBusy);  // hardware tracks one release
            return;
        }
        clearGate();
        // Commit this op (resume scheduled, wait cleared) BEFORE starting
        // the release machinery: its completion path re-enters onRetry()
        // and must not see this op still gated.
        const Op release_op = op;
        chargeBusy(1);
        finishAt(now + 1, 0);
        deferRelease(release_op);
        return;
    }

    // Weak ordering: every sync operation waits for all outstanding
    // references to be performed before it is issued.
    if (model.syncDrains && is_sync && outstanding > 0) {
        if (skipNextDrain || syncOrderingDisabled) {
            skipNextDrain = false;  // fault injection: skip the drain
        } else {
            gateOn(Gate::Drain);
            return;
        }
    }

    // Sequential consistency: any access stalls while another is
    // outstanding. SC2 additionally prefetches the stalled access's line.
    if (model.singleOutstanding && outstanding > 0) {
        if (model.prefetchOnStall && !active->prefetched) {
            active->prefetched = true;
            cache.prefetch(op.addr,
                           mem::needsExclusive(accessTypeFor(op.kind)));
        }
        gateOn(Gate::SingleOutstanding);
        return;
    }

    // Issue to the cache.
    if (checker)
        checker->onIssueCheck(cfg.id, is_sync, /*is_release=*/false);
    const std::uint64_t cookie = nextCookie++;
    mem::AccessType acc_type = accessTypeFor(op.kind);
    if (op.own && acc_type == mem::AccessType::Load)
        acc_type = mem::AccessType::LoadOwn;
    const auto outcome = cache.access(op.addr, acc_type, cookie);
    switch (outcome) {
      case mem::AccessOutcome::Hit:
        clearGate();
        handleHit();
        return;
      case mem::AccessOutcome::Miss:
      case mem::AccessOutcome::Merged:
        clearGate();
        handleIssued(cookie);
        return;
      case mem::AccessOutcome::Blocked:
        gateOn(Gate::CacheBlocked);
        return;
    }
}

void
Processor::handleHit()
{
    const Op &op = active->op;
    const Tick now = queue.now();
    switch (op.kind) {
      case OpKind::Load: {
        if (checker)
            checker->onDataRead(cfg.id, op.addr, op.width);
        const std::uint64_t value = readMem(op.addr, op.width);
        if (recorder)
            recorder->recordRead(cfg.id, op.addr, op.width, value, now,
                                 now, now);
        const std::uint64_t id = nextToken++;
        tokens[id] = TokenState{value, now + cfg.loadDelay, true};
        chargeBusy(1);
        finishAt(now + 1, id);
        return;
      }
      case OpKind::LoadUse: {
        if (checker)
            checker->onDataRead(cfg.id, op.addr, op.width);
        const std::uint64_t value = readMem(op.addr, op.width);
        if (recorder)
            recorder->recordRead(cfg.id, op.addr, op.width, value, now,
                                 now, now);
        procStats.useStallCycles += cfg.loadDelay > 1
                                        ? cfg.loadDelay - 1
                                        : 0;
        chargeBusy(1);
        chargeStall(obs::StallCause::LoadMiss, now + 1, now + cfg.loadDelay);
        finishAt(now + cfg.loadDelay, value);
        return;
      }
      case OpKind::Store:
        if (checker)
            checker->onDataWrite(cfg.id, op.addr, op.width);
        writeMem(op.addr, op.value, op.width);
        if (recorder)
            recorder->recordWrite(cfg.id, op.addr, op.width, op.value,
                                  now, now);
        chargeBusy(1);
        finishAt(now + 1, 0);
        return;
      case OpKind::SyncLoad: {
        const Addr a = op.addr;
        const std::uint32_t tid =
            recorder ? recorder->recordPendingRead(
                           cfg.id, axiom::EventKind::SyncRead, a, now)
                     : noTraceId;
        chargeBusy(1);
        chargeStall(obs::StallCause::Acquire, now + 1, now + cfg.loadDelay);
        finishAtEval(now + cfg.loadDelay, [this, a, tid]() {
            if (checker)
                checker->onAcquire(cfg.id, a);
            const std::uint64_t v = mem.readU64(a);
            if (recorder)
                recorder->bindRead(tid, v, queue.now());
            trace("syncload.hit", a, v);
            return v;
        });
        return;
      }
      case OpKind::SyncRmw: {
        const Addr a = op.addr;
        const std::uint32_t tid =
            recorder ? recorder->recordPendingRead(
                           cfg.id, axiom::EventKind::SyncRmw, a, now)
                     : noTraceId;
        chargeBusy(1);
        chargeStall(obs::StallCause::Acquire, now + 1, now + cfg.loadDelay);
        finishAtEval(now + cfg.loadDelay, [this, a, tid]() {
            if (checker)
                checker->onAcquire(cfg.id, a);
            const std::uint64_t v = mem.testAndSet(a);
            if (recorder)
                recorder->bindRead(tid, v, queue.now());
            trace("rmw.hit", a, v);
            return v;
        });
        return;
      }
      case OpKind::SyncStore:
        // Hit in M state: the write is globally performed immediately
        // (every other copy is already invalid).
        if (checker)
            checker->onRelease(cfg.id, op.addr);
        mem.writeU64(op.addr, op.value);
        if (recorder) {
            const std::uint32_t tid = recorder->recordPendingWrite(
                cfg.id, op.addr, op.value, now);
            recorder->commitWrite(tid, now);
        }
        trace("syncst.hit", op.addr, op.value);
        chargeBusy(1);
        finishAt(now + 1, 0);
        return;
      case OpKind::Exec:
      case OpKind::Use:
      case OpKind::Fence:
        // Non-memory kinds: no cache access can ever hit for them.
        unreachableOp("hit path", op.kind);
    }
    unreachableOp("hit path", op.kind);
}

void
Processor::handleIssued(std::uint64_t cookie)
{
    const Op &op = active->op;
    const Tick now = queue.now();
    outstanding += 1;
    if (checker)
        checker->onRefIssued(cfg.id, cookie);

    InFlight rec;
    rec.kind = op.kind;
    rec.addr = op.addr;
    rec.value = op.value;

    switch (op.kind) {
      case OpKind::Load: {
        if (checker)
            checker->onDataRead(cfg.id, op.addr, op.width);
        const std::uint64_t value = readMem(op.addr, op.width);
        if (recorder)
            rec.traceId = recorder->recordRead(cfg.id, op.addr, op.width,
                                               value, now, now, now);
        const std::uint64_t id = nextToken++;
        rec.token = id;
        tokens[id] = TokenState{value, maxTick, false};
        inFlight.emplace(cookie, rec);
        if (cfg.model.blockingLoads) {
            active->wait = WaitKind::Completion;
            active->waitStart = now;
            active->waitCookie = cookie;
        } else {
            chargeBusy(1);
            finishAt(now + 1, id);
        }
        return;
      }
      case OpKind::LoadUse: {
        if (checker)
            checker->onDataRead(cfg.id, op.addr, op.width);
        rec.value = readMem(op.addr, op.width);
        if (recorder)
            rec.traceId = recorder->recordRead(cfg.id, op.addr, op.width,
                                               rec.value, now, now, now);
        inFlight.emplace(cookie, rec);
        active->wait = WaitKind::Completion;
        active->waitStart = now;
        active->waitCookie = cookie;
        return;
      }
      case OpKind::Store: {
        if (checker)
            checker->onDataWrite(cfg.id, op.addr, op.width);
        writeMem(op.addr, op.value, op.width);
        if (recorder)
            rec.traceId = recorder->recordWrite(cfg.id, op.addr, op.width,
                                                op.value, now, now);
        inFlight.emplace(cookie, rec);
        if (cfg.model.scStoreBufferRelease) {
            // The write stops being "the outstanding reference" once its
            // request is in the network interface buffer; the line fill
            // still completes (and frees the MSHR) in the background.
            const Tick handoff =
                now + cache.params().missHandleCycles + 2;
            queue.schedule(
                handoff,
                [this, cookie]() {
                    auto it = inFlight.find(cookie);
                    if (it == inFlight.end() || it->second.earlyReleased)
                        return;
                    it->second.earlyReleased = true;
                    MCSIM_ASSERT(outstanding > 0,
                                 "early release with zero outstanding");
                    outstanding -= 1;
                    if (checker)
                        checker->onRefEarlyReleased(cfg.id, cookie);
                    if (recorder && it->second.traceId != noTraceId)
                        recorder->setOrdered(it->second.traceId,
                                             queue.now());
                    onRetry();
                },
                EventQueue::prioDeliver);
        }
        chargeBusy(1);
        finishAt(now + 1, 0);
        return;
      }
      case OpKind::SyncStore:
        // The release happens-before edge is established at the program-
        // order point even though the functional write is deferred to the
        // timed completion: later accesses of this processor must not leak
        // into the edge.
        if (checker)
            checker->onRelease(cfg.id, op.addr);
        if (recorder)
            rec.traceId = recorder->recordPendingWrite(cfg.id, op.addr,
                                                       op.value, now);
        if (cfg.model.singleOutstanding) {
            // Under SC a sync write needs no extra stall: the
            // single-outstanding rule already orders everything after it.
            // Its value still becomes visible to other processors only at
            // completion (when sharers' invalidations have been taken),
            // the same protocol point as under the relaxed models.
            inFlight.emplace(cookie, rec);
            chargeBusy(1);
            finishAt(now + 1, 0);
            return;
        }
        [[fallthrough]];
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
        // Blocking: the sync operation must be performed before the
        // processor proceeds (weak ordering / SC / RC acquire). A
        // falling-through relaxed sync store recorded its pending write
        // above and must not also record a read.
        if (recorder && op.kind != OpKind::SyncStore) {
            rec.traceId = recorder->recordPendingRead(
                cfg.id,
                op.kind == OpKind::SyncLoad ? axiom::EventKind::SyncRead
                                            : axiom::EventKind::SyncRmw,
                op.addr, now);
        }
        inFlight.emplace(cookie, rec);
        active->wait = WaitKind::Completion;
        active->waitStart = now;
        active->waitCookie = cookie;
        return;
      case OpKind::Exec:
      case OpKind::Use:
      case OpKind::Fence:
        // Exec/Use never issue to memory; Fence drains before issue.
        unreachableOp("issue path", op.kind);
    }
    unreachableOp("issue path", op.kind);
}

void
Processor::deferRelease(const Op &op)
{
    MCSIM_ASSERT(!releasePending, "second release while one pending");
    releasePending = true;
    deferredRelease = op;
    if (checker) {
        // Program-order point of the release: the happens-before edge and
        // the linter's snapshot of prior references both form here.
        checker->onRelease(cfg.id, op.addr);
        checker->onReleaseDeferred(cfg.id);
    }
    if (recorder)
        releaseTraceId = recorder->recordPendingWrite(cfg.id, op.addr,
                                                      op.value,
                                                      queue.now());
    if (outstanding > 0 && !syncOrderingDisabled) {
        procStats.releasesDeferred += 1;
        releaseCounter = outstanding;
        // mcsim-lint: order-insensitive(uniform flag set on every entry)
        for (auto &[cookie, rec] : inFlight)
            rec.releaseTagged = true;
    } else {
        releaseCounter = 0;
        tryIssueRelease();
    }
}

void
Processor::tryIssueRelease()
{
    MCSIM_ASSERT(releasePending && deferredRelease && releaseCounter == 0,
                 "tryIssueRelease in bad state");
    const Op op = *deferredRelease;
    if (checker)
        checker->onIssueCheck(cfg.id, /*is_sync=*/true, /*is_release=*/true);
    const std::uint64_t cookie = nextCookie++;
    const auto outcome =
        cache.access(op.addr, mem::AccessType::SyncStore, cookie);
    switch (outcome) {
      case mem::AccessOutcome::Hit:
        mem.writeU64(op.addr, op.value);
        if (recorder && releaseTraceId != noTraceId) {
            recorder->commitWrite(releaseTraceId, queue.now());
            releaseTraceId = noTraceId;
        }
        releasePending = false;
        deferredRelease.reset();
        if (checker)
            checker->onReleaseDone(cfg.id);
        onRetry();  // a fence or second release may be waiting
        return;
      case mem::AccessOutcome::Miss:
      case mem::AccessOutcome::Merged: {
        outstanding += 1;
        if (checker)
            checker->onRefIssued(cfg.id, cookie);
        InFlight rec;
        rec.kind = OpKind::SyncStore;
        rec.addr = op.addr;
        rec.value = op.value;
        rec.isRelease = true;
        rec.traceId = releaseTraceId;
        releaseTraceId = noTraceId;
        inFlight.emplace(cookie, rec);
        deferredRelease.reset();
        return;
      }
      case mem::AccessOutcome::Blocked:
        // Keep deferredRelease set; onRetry() will try again.
        return;
    }
}

void
Processor::onCompletion(std::uint64_t cookie)
{
    auto node = inFlight.extract(cookie);
    MCSIM_ASSERT(!node.empty(), "completion for unknown cookie");
    const InFlight rec = node.mapped();
    if (checker)
        checker->onRefCompleted(cfg.id, cookie);
    if (!rec.earlyReleased) {
        MCSIM_ASSERT(outstanding > 0, "completion with zero outstanding");
        outstanding -= 1;
    }

    if (rec.releaseTagged) {
        MCSIM_ASSERT(releaseCounter > 0, "tagged completion, zero counter");
        releaseCounter -= 1;
        if (releaseCounter == 0 && deferredRelease)
            tryIssueRelease();
    }

    const Tick now = queue.now();
    if (recorder && rec.traceId != noTraceId &&
        (rec.kind == OpKind::Load || rec.kind == OpKind::LoadUse ||
         rec.kind == OpKind::Store)) {
        recorder->setPerformed(rec.traceId, now);
    }
    switch (rec.kind) {
      case OpKind::Load: {
        auto it = tokens.find(rec.token);
        MCSIM_ASSERT(it != tokens.end(), "completion for missing token");
        it->second.ready = now;
        it->second.readyKnown = true;
        if (active && active->wait == WaitKind::Register &&
            active->waitToken == rec.token) {
            procStats.useStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::LoadMiss, active->waitStart, now);
            const std::uint64_t value = it->second.value;
            tokens.erase(it);
            resumeNow(value);
        } else if (active && active->wait == WaitKind::Completion &&
                   active->waitCookie == cookie) {
            // Blocking-load wait: hand back the (ready) token.
            procStats.useStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::LoadMiss, active->waitStart, now);
            resumeNow(rec.token);
        }
        break;
      }

      case OpKind::LoadUse:
        if (active && active->wait == WaitKind::Completion &&
            active->waitCookie == cookie) {
            procStats.useStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::LoadMiss, active->waitStart, now);
            resumeNow(rec.value);
        }
        break;

      case OpKind::Store:
        break;

      case OpKind::SyncLoad:
        if (active && active->wait == WaitKind::Completion &&
            active->waitCookie == cookie) {
            procStats.syncStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::Acquire, active->waitStart, now);
            if (checker)
                checker->onAcquire(cfg.id, rec.addr);
            const std::uint64_t v = mem.readU64(rec.addr);
            if (recorder && rec.traceId != noTraceId)
                recorder->bindRead(rec.traceId, v, now);
            trace("syncload.cpl", rec.addr, v);
            resumeNow(v);
        }
        break;

      case OpKind::SyncRmw:
        if (active && active->wait == WaitKind::Completion &&
            active->waitCookie == cookie) {
            procStats.syncStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::Acquire, active->waitStart, now);
            if (checker)
                checker->onAcquire(cfg.id, rec.addr);
            const std::uint64_t v = mem.testAndSet(rec.addr);
            if (recorder && rec.traceId != noTraceId)
                recorder->bindRead(rec.traceId, v, now);
            trace("rmw.cpl", rec.addr, v);
            resumeNow(v);
        }
        break;

      case OpKind::SyncStore:
        mem.writeU64(rec.addr, rec.value);
        if (recorder && rec.traceId != noTraceId)
            recorder->commitWrite(rec.traceId, now);
        trace("syncst.cpl", rec.addr, rec.value);
        if (rec.isRelease) {
            releasePending = false;
            if (checker)
                checker->onReleaseDone(cfg.id);
        } else if (active && active->wait == WaitKind::Completion &&
                   active->waitCookie == cookie) {
            procStats.syncStallCycles += now - active->startTick;
            chargeStall(obs::StallCause::Release, active->waitStart, now);
            resumeNow(0);
        }
        break;

      case OpKind::Exec:
      case OpKind::Use:
      case OpKind::Fence:
        // Never tracked in inFlight, so no completion can name them.
        unreachableOp("completion", rec.kind);
    }

    onRetry();
}

void
Processor::onRetry()
{
    // A deferred release whose counter has drained (or that was blocked on
    // cache resources) gets priority: it is older than the active op.
    if (releasePending && deferredRelease && releaseCounter == 0)
        tryIssueRelease();

    if (active && active->wait == WaitKind::Gated)
        attemptMem();
}

void
Processor::finishAt(Tick when, std::uint64_t result)
{
    MCSIM_ASSERT(active, "finishAt without active op");
    active->wait = WaitKind::None;
    queue.schedule(
        when, [this, result]() { resumeNow(result); },
        EventQueue::prioCpu);
}

void
Processor::finishAtEval(Tick when, std::function<std::uint64_t()> eval)
{
    MCSIM_ASSERT(active, "finishAtEval without active op");
    active->wait = WaitKind::None;
    queue.schedule(
        when, [this, eval = std::move(eval)]() { resumeNow(eval()); },
        EventQueue::prioCpu);
}

void
Processor::resumeNow(std::uint64_t result)
{
    MCSIM_ASSERT(active, "resume without active op");
    opResult = result;
    auto h = active->h;
    active.reset();
    h.resume();
    afterResume();
}

} // namespace mcsim::cpu
