#include "core/machine.hh"

#include "sim/logging.hh"

namespace mcsim::core
{

void
MachineConfig::validate() const
{
    if (numProcs == 0 || numProcs > 64)
        fatal("numProcs must be 1..64 (got %u)", numProcs);
    if (numModules == 0 || numModules > 64)
        fatal("numModules must be 1..64 (got %u)", numModules);
    if (!isPowerOf2(numModules))
        fatal("numModules must be a power of two (got %u)", numModules);
    if (switchRadix < 2)
        fatal("switchRadix must be >= 2");
    if (bufferEntries == 0)
        fatal("bufferEntries must be >= 1");
    if (loadDelay == 0)
        fatal("loadDelay must be >= 1");
    if (relaxedMshrs == 0)
        fatal("relaxedMshrs must be >= 1");
    // Cache geometry is validated by CacheParams::validate().
}

Machine::Machine(const MachineConfig &config) : cfg(config)
{
    cfg.validate();

    const unsigned ports = std::max(cfg.numProcs, cfg.numModules);
    const ModelParams model = cfg.modelParams();

    if (cfg.obs.tracer) {
        tracerPtr = std::make_unique<obs::Tracer>(cfg.obs.tracerEvents);
        tracerPtr->arm(cfg.obs.tracerArmed);
    }

    reqNet = std::make_unique<Network>(
        queue, ports, cfg.switchRadix, [this](mem::NetMsg &&msg) {
            modules[msg.dst % cfg.numModules]->handleRequest(std::move(msg));
        });
    respNet = std::make_unique<Network>(
        queue, ports, cfg.switchRadix, [this](mem::NetMsg &&msg) {
            caches[msg.dst % cfg.numProcs]->handleResponse(std::move(msg));
        });

    mem::MemoryParams mem_params;
    mem_params.lineBytes = cfg.lineBytes;
    mem_params.initCycles = cfg.memInitCycles;
    mem_params.numProcs = cfg.numProcs;

    for (unsigned m = 0; m < cfg.numModules; ++m) {
        respBufs.push_back(std::make_unique<Buffer>(
            queue, *respNet, cfg.bufferEntries, /*bypass=*/false));
        memOut.push_back(
            std::make_unique<mem::Outbox>(*respBufs.back(), false));
        modules.push_back(std::make_unique<mem::MemoryModule>(
            queue, m, mem_params, *memOut.back()));
    }

    mem::CacheParams cache_params;
    cache_params.cacheBytes = cfg.cacheBytes;
    cache_params.lineBytes = cfg.lineBytes;
    cache_params.assoc = cfg.assoc;
    cache_params.numMshrs = model.numMshrs;
    cache_params.missHandleCycles = cfg.missHandleCycles;
    cache_params.fillCycles = cfg.fillCycles;
    cache_params.bypassLoads = model.loadBypass;
    cache_params.nextLinePrefetch = cfg.nextLinePrefetch;

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        reqBufs.push_back(std::make_unique<Buffer>(
            queue, *reqNet, cfg.bufferEntries, model.loadBypass));
        procOut.push_back(
            std::make_unique<mem::Outbox>(*reqBufs.back(), model.loadBypass));
        caches.push_back(std::make_unique<mem::Cache>(
            queue, p, cache_params, *procOut.back(), cfg.numModules));

        cpu::ProcParams proc_params;
        proc_params.id = p;
        proc_params.model = model;
        proc_params.loadDelay = cfg.loadDelay;
        proc_params.branchDelay = cfg.branchDelay;
        procs.push_back(std::make_unique<cpu::Processor>(
            queue, proc_params, *caches.back(), fmem));
        procs.back()->setDoneHandler([this]() { onWorkloadDone(); });
    }

    if (cfg.check.enabled()) {
        checkerPtr = std::make_unique<check::Checker>(
            cfg.check, model, cfg.numProcs, cfg.numModules, cfg.lineBytes);
        std::vector<const mem::Cache *> cache_views;
        for (const auto &c : caches)
            cache_views.push_back(c.get());
        std::vector<const mem::MemoryModule *> module_views;
        for (const auto &m : modules)
            module_views.push_back(m.get());
        checkerPtr->attach(std::move(cache_views), std::move(module_views));
        for (auto &c : caches)
            c->setChecker(checkerPtr.get());
        for (auto &m : modules)
            m->setChecker(checkerPtr.get());
        for (auto &p : procs)
            p->setChecker(checkerPtr.get());
    }

    if (cfg.trace.enabled()) {
        recorderPtr = std::make_unique<axiom::TraceRecorder>(cfg.trace,
                                                             cfg.numProcs);
        for (auto &p : procs)
            p->setRecorder(recorderPtr.get());
    }

    if (tracerPtr) {
        reqNet->setTracer(tracerPtr.get(), obs::Track::ReqSwitch);
        respNet->setTracer(tracerPtr.get(), obs::Track::RespSwitch);
        for (auto &c : caches)
            c->setTracer(tracerPtr.get());
        for (auto &p : procs)
            p->setTracer(tracerPtr.get());
        for (auto &m : modules)
            m->setTracer(tracerPtr.get());
    }
}

void
Machine::startWorkload(unsigned proc_id, SimTask &&task)
{
    if (proc_id >= cfg.numProcs)
        fatal("startWorkload: processor %u out of range", proc_id);
    procs[proc_id]->start(std::move(task));
    ++started;
}

void
Machine::onWorkloadDone()
{
    ++doneCount;
}

Tick
Machine::run()
{
    if (started == 0)
        fatal("Machine::run with no workloads started");
    while (doneCount < started) {
        if (queue.empty()) {
            fatal("deadlock: %u of %u workloads unfinished at tick %llu",
                  started - doneCount, started,
                  static_cast<unsigned long long>(queue.now()));
        }
        queue.run(1 << 16);
        if (queue.now() > cfg.maxCycles) {
            fatal("simulation exceeded maxCycles=%llu with %u workloads "
                  "unfinished",
                  static_cast<unsigned long long>(cfg.maxCycles),
                  started - doneCount);
        }
    }
    if (checkerPtr)
        checkerPtr->finalAudit();
    Tick last = 0;
    for (const auto &p : procs)
        if (p->done())
            last = std::max(last, p->stats().finishedAt);
    return last;
}

StatSet
Machine::collectStats() const
{
    StatSet out;
    out.set("machine.num_procs", cfg.numProcs);
    out.set("machine.line_bytes", cfg.lineBytes);
    out.set("machine.cache_bytes", cfg.cacheBytes);

    for (unsigned p = 0; p < cfg.numProcs; ++p) {
        caches[p]->stats().addTo(out, "cache.total.");
        procs[p]->stats().addTo(out, "proc.total.");
    }
    for (unsigned m = 0; m < cfg.numModules; ++m)
        modules[m]->stats().addTo(out, "mem.total.");
    reqNet->stats().addTo(out, "reqnet.");
    respNet->stats().addTo(out, "respnet.");
    for (unsigned p = 0; p < cfg.numProcs; ++p)
        reqBufs[p]->stats().addTo(out, "reqbuf.total.");
    if (checkerPtr)
        checkerPtr->stats().addTo(out, "check.");
    if (recorderPtr)
        out.set("axiom.events", static_cast<double>(recorderPtr->size()));
    if (tracerPtr) {
        out.set("obs.trace_events", static_cast<double>(tracerPtr->size()));
        out.set("obs.trace_dropped",
                static_cast<double>(tracerPtr->dropped()));
    }

    Tick last = 0;
    for (const auto &p : procs)
        last = std::max(last, p->stats().finishedAt);
    out.set("machine.run_ticks", static_cast<double>(last));
    return out;
}

} // namespace mcsim::core
