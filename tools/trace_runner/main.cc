/**
 * @file
 * trace_runner: the command-line face of src/trace/ -- record workload
 * runs as trace files, replay traces through any consistency model,
 * generate synthetic datacenter traffic, and inspect/validate files.
 *
 * Usage:
 *   trace_runner record   --benchmark NAME --model MODEL --out FILE
 *                         [--scale S] [--procs N] [--cache-bytes N]
 *                         [--line-bytes N] [--delay N] [--seed N]
 *   trace_runner replay   --trace FILE [--model MODEL|all]
 *                         [--cache-bytes N] [--line-bytes N] [--delay N]
 *                         [--check] [--json FILE]
 *   trace_runner generate --gen zipf|burst|ring|lock --out FILE
 *                         [--procs N] [--ops N] [--seed N]
 *                         [--hot-keys N] [--skew F] [--store-fraction F]
 *                         [--burst-max N] [--idle-max N]
 *                         [--object-words N] [--ring-slots N]
 *                         [--payload-words N] [--locks N] [--hold-ops N]
 *   trace_runner import   --text FILE --out FILE [--procs N] [--seed N]
 *   trace_runner inspect  --trace FILE
 *
 * record defaults to the quick-grid geometry (8 procs, 4 KiB caches,
 * 16-byte lines, delay 4) with the point's derived seed, so a recorded
 * trace replays cycle-identically against the golden quick numbers.
 * replay runs the trace on the recorded processor count; --model all
 * sweeps the seven models. generate emits seed-stable synthetic
 * traffic; the same flags always produce the identical file. import
 * converts the classic text trace syntax (one `<proc> <r|w> <hex-addr>`
 * transaction per line, e.g. "5 w 0xabcd") into a validated .mct;
 * malformed lines are rejected with their line number, never skipped.
 *
 * Exit status: 0 success, 1 on malformed traces or failed runs
 * (structured one-line error, no partial results), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "axiom/axiom_checker.hh"
#include "core/machine.hh"
#include "exp/grid.hh"
#include "exp/json.hh"
#include "sim/logging.hh"
#include "trace/capture.hh"
#include "trace/generators.hh"
#include "trace/import.hh"
#include "trace/replay.hh"
#include "workloads/workload.hh"

#include "../common/cli.hh"

using namespace mcsim;

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s record   --benchmark NAME --model MODEL --out FILE\n"
        "                   [--scale quick|scaled|full] [--procs N]\n"
        "                   [--cache-bytes N] [--line-bytes N]\n"
        "                   [--delay N] [--seed N]\n"
        "       %s replay   --trace FILE [--model MODEL|all]\n"
        "                   [--cache-bytes N] [--line-bytes N]\n"
        "                   [--delay N] [--check] [--json FILE]\n"
        "       %s generate --gen zipf|burst|ring|lock --out FILE\n"
        "                   [--procs N] [--ops N] [--seed N]\n"
        "                   [--hot-keys N] [--skew F]\n"
        "                   [--store-fraction F] [--burst-max N]\n"
        "                   [--idle-max N] [--object-words N]\n"
        "                   [--ring-slots N] [--payload-words N]\n"
        "                   [--locks N] [--hold-ops N]\n"
        "       %s import   --text FILE --out FILE [--procs N] "
        "[--seed N]\n"
        "       %s inspect  --trace FILE\n",
        argv0, argv0, argv0, argv0, argv0);
}

[[noreturn]] void
configError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "trace_runner: %s\n", message.c_str());
    usage(argv0);
    std::exit(2);
}

/** Everything any subcommand accepts; each validates its own subset. */
struct Options
{
    std::string subcommand;
    std::string benchmark;
    std::string model;
    std::string tracePath;
    std::string textPath;
    std::string out;
    std::string json;
    std::string gen;
    exp::Scale scale = exp::Scale::Quick;
    unsigned procs = 0;
    unsigned cacheBytes = 0;
    unsigned lineBytes = 0;
    unsigned delay = 0;
    std::uint64_t seed = 0;
    bool check = false;
    trace::GeneratorParams genParams;
};

double
nextDouble(const char *argv0, const std::string &flag, const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        configError(argv0, flag + " expects a number, got '" + text + "'");
    return value;
}

Options
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        configError(argv[0], "missing subcommand");
    Options opt;
    opt.subcommand = argv[1];
    if (opt.subcommand != "record" && opt.subcommand != "replay" &&
        opt.subcommand != "generate" && opt.subcommand != "import" &&
        opt.subcommand != "inspect") {
        if (opt.subcommand == "--help" || opt.subcommand == "-h") {
            usage(argv[0]);
            std::exit(0);
        }
        configError(argv[0],
                    "unknown subcommand '" + opt.subcommand +
                        "' (record/replay/generate/import/inspect)");
    }

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                configError(argv[0], arg + " expects a value");
            return argv[++i];
        };
        auto nextUnsigned = [&]() -> unsigned {
            unsigned value = 0;
            if (!tools::parseUnsigned(next(), value))
                configError(argv[0],
                            arg + " expects a non-negative integer, "
                                  "got '" + argv[i] + "'");
            return value;
        };
        auto nextU64 = [&]() -> std::uint64_t {
            std::uint64_t value = 0;
            if (!tools::parseU64(next(), value))
                configError(argv[0],
                            arg + " expects a non-negative integer, "
                                  "got '" + argv[i] + "'");
            return value;
        };
        if (arg == "--benchmark") {
            opt.benchmark = next();
        } else if (arg == "--model") {
            opt.model = next();
        } else if (arg == "--trace") {
            opt.tracePath = next();
        } else if (arg == "--text") {
            opt.textPath = next();
        } else if (arg == "--out") {
            opt.out = next();
        } else if (arg == "--json") {
            opt.json = next();
        } else if (arg == "--gen") {
            opt.gen = next();
        } else if (arg == "--scale") {
            try {
                opt.scale = exp::scaleFromName(next());
            } catch (const FatalError &err) {
                configError(argv[0], err.what());
            }
        } else if (arg == "--procs") {
            opt.procs = nextUnsigned();
        } else if (arg == "--cache-bytes") {
            opt.cacheBytes = nextUnsigned();
        } else if (arg == "--line-bytes") {
            opt.lineBytes = nextUnsigned();
        } else if (arg == "--delay") {
            opt.delay = nextUnsigned();
        } else if (arg == "--seed") {
            opt.seed = nextU64();
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--ops") {
            opt.genParams.opsPerProc = nextUnsigned();
        } else if (arg == "--hot-keys") {
            opt.genParams.hotKeys = nextUnsigned();
        } else if (arg == "--skew") {
            opt.genParams.zipfSkew = nextDouble(argv[0], arg, next());
        } else if (arg == "--store-fraction") {
            opt.genParams.storeFraction =
                nextDouble(argv[0], arg, next());
        } else if (arg == "--burst-max") {
            opt.genParams.burstMax = nextUnsigned();
        } else if (arg == "--idle-max") {
            opt.genParams.idleMax = nextUnsigned();
        } else if (arg == "--object-words") {
            opt.genParams.objectWords = nextUnsigned();
        } else if (arg == "--ring-slots") {
            opt.genParams.ringSlots = nextUnsigned();
        } else if (arg == "--payload-words") {
            opt.genParams.payloadWords = nextUnsigned();
        } else if (arg == "--locks") {
            opt.genParams.locks = nextUnsigned();
        } else if (arg == "--hold-ops") {
            opt.genParams.holdOps = nextUnsigned();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            configError(argv[0], "unknown argument: " + arg);
        }
    }
    return opt;
}

/** Parse --model against the model catalog before any work starts. */
core::Model
parseModel(const char *argv0, const std::string &name)
{
    try {
        return core::modelFromName(name);
    } catch (const FatalError &err) {
        configError(argv0, err.what());
    }
}

/**
 * The models a replay covers: one named model, or all seven under
 * "all" (the trace front-end's whole point).
 */
std::vector<core::Model>
replayModels(const char *argv0, const std::string &name)
{
    if (name.empty() || name == "all") {
        return {std::begin(core::allModels), std::end(core::allModels)};
    }
    return {parseModel(argv0, name)};
}

/** The sweep point a record run executes (quick-grid defaults). */
exp::SweepPoint
recordPoint(const Options &opt)
{
    exp::SweepPoint p;
    p.benchmark = opt.benchmark;
    p.model = parseModel("trace_runner", opt.model);
    p.scale = opt.scale;
    p.numProcs = opt.procs ? opt.procs : 8;
    p.cacheBytes =
        opt.cacheBytes ? opt.cacheBytes : exp::smallCache(opt.scale);
    p.lineBytes = opt.lineBytes ? opt.lineBytes : 16;
    p.delay = opt.delay ? opt.delay : 4;
    p.seed = opt.seed ? opt.seed : p.derivedSeed();
    return p;
}

int
runRecord(const Options &opt)
{
    if (opt.benchmark.empty())
        configError("trace_runner", "record requires --benchmark");
    if (opt.model.empty())
        configError("trace_runner", "record requires --model");
    if (opt.out.empty())
        configError("trace_runner", "record requires --out");
    const exp::SweepPoint point = recordPoint(opt);
    const auto workload = point.makeWorkload();

    trace::TraceHeader header;
    header.procCount = point.numProcs;
    header.seed = point.seed;
    header.generator = trace::Generator::Captured;
    header.source = point.benchmark;

    trace::FileSink sink(opt.out);
    trace::TraceCapture capture(header, sink);
    const workloads::RunResult result = workloads::runWorkload(
        *workload, point.machineConfig(),
        [&](core::Machine &machine) { capture.attach(machine); });
    capture.finish();
    sink.close();

    std::printf("recorded %s: %llu records, %llu cycles -> %s\n",
                point.id().c_str(),
                static_cast<unsigned long long>(capture.recordCount()),
                static_cast<unsigned long long>(result.metrics.cycles),
                opt.out.c_str());
    return 0;
}

/** One replay run (mirrors exp::SweepRunner::runPoint's check wiring). */
workloads::RunResult
replayOnce(trace::TraceWorkload &workload, core::Model model,
           const Options &opt)
{
    core::MachineConfig cfg;
    cfg.numProcs = workload.header().procCount;
    cfg.numModules = cfg.numProcs;
    cfg.model = model;
    cfg.cacheBytes = opt.cacheBytes ? opt.cacheBytes : 4 * 1024;
    cfg.lineBytes = opt.lineBytes ? opt.lineBytes : 16;
    cfg.loadDelay = opt.delay ? opt.delay : 4;
    cfg.branchDelay = cfg.loadDelay;
    // Coherence/ordering auditors stay on (repo default); --check adds
    // the axiomatic trace recorder + post-run check on top.
    cfg.trace.record = opt.check;
    cfg.check.races = false;  // traces are traffic, not DRF programs

    core::Machine machine(cfg);
    workload.setup(machine);
    const Tick last = machine.run();
    workload.verify(machine);
    if (axiom::TraceRecorder *rec = machine.traceRecorder()) {
        const axiom::AxiomResult verdict =
            axiom::checkTrace(rec->finish(), cfg.modelParams());
        if (!verdict.ok)
            fatal("axiomatic trace rejected: %s", verdict.message.c_str());
    }
    workloads::RunResult result;
    result.metrics = core::RunMetrics::fromMachine(machine, last);
    result.stats = machine.collectStats();
    return result;
}

int
runReplay(const Options &opt)
{
    if (opt.tracePath.empty())
        configError("trace_runner", "replay requires --trace");
    const std::vector<core::Model> models =
        replayModels("trace_runner", opt.model);

    auto workload = trace::TraceWorkload::fromFile(opt.tracePath);
    const trace::TraceHeader &header = workload->header();
    std::printf("%s: %s trace, %u procs, %llu records, seed %llu\n",
                opt.tracePath.c_str(),
                trace::generatorName(header.generator), header.procCount,
                static_cast<unsigned long long>(header.totalRecords),
                static_cast<unsigned long long>(header.seed));

    exp::Json runs = exp::Json::array();
    for (core::Model model : models) {
        const workloads::RunResult result =
            replayOnce(*workload, model, opt);
        std::printf("  %-5s %10llu cycles, read hit rate %.4f%s\n",
                    core::modelName(model),
                    static_cast<unsigned long long>(
                        result.metrics.cycles),
                    result.metrics.readHitRate,
                    opt.check ? ", checks ok" : "");
        exp::Json entry = exp::Json::object();
        entry["model"] = exp::Json(core::modelName(model));
        exp::Json metrics = exp::Json::object();
        for (const auto &[name, value] : result.metrics.toStatSet())
            metrics[name] = exp::Json(value);
        entry["metrics"] = std::move(metrics);
        runs.push(std::move(entry));
    }

    if (!opt.json.empty()) {
        exp::Json doc = exp::Json::object();
        doc["schema"] = exp::Json("mcsim-trace-replay-v1");
        doc["trace"] = exp::Json(opt.tracePath);
        doc["generator"] =
            exp::Json(trace::generatorName(header.generator));
        doc["procs"] = exp::Json(header.procCount);
        doc["records"] = exp::Json(
            static_cast<double>(header.totalRecords));
        doc["runs"] = std::move(runs);
        std::ofstream out(opt.json, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", opt.json.c_str());
            return 1;
        }
        out << doc.dump() << "\n";
    }
    return 0;
}

int
runGenerate(const Options &opt)
{
    if (opt.gen.empty())
        configError("trace_runner", "generate requires --gen");
    if (opt.out.empty())
        configError("trace_runner", "generate requires --out");
    trace::GeneratorParams params = opt.genParams;
    try {
        params.kind = trace::generatorFromName(opt.gen);
    } catch (const FatalError &err) {
        configError("trace_runner", err.what());
    }
    if (opt.procs)
        params.procs = opt.procs;
    if (opt.seed)
        params.seed = opt.seed;

    trace::FileSink sink(opt.out);
    trace::generateTrace(params, sink);
    sink.close();

    // Re-open and fully validate: a generator bug must fail the command,
    // never linger as a bad artifact.
    const auto workload = trace::TraceWorkload::fromFile(opt.out);
    std::printf("generated %s trace: %u procs, %llu records, seed %llu "
                "-> %s\n",
                opt.gen.c_str(), params.procs,
                static_cast<unsigned long long>(
                    workload->header().totalRecords),
                static_cast<unsigned long long>(params.seed),
                opt.out.c_str());
    return 0;
}

int
runImport(const Options &opt)
{
    if (opt.textPath.empty())
        configError("trace_runner", "import requires --text");
    if (opt.out.empty())
        configError("trace_runner", "import requires --out");
    trace::ImportParams params;
    params.procs = opt.procs;
    params.seed = opt.seed;
    const trace::ImportSummary summary =
        trace::importTextTraceFile(opt.textPath, opt.out, params);
    std::printf("imported %s: %llu transaction(s) (%llu read(s), %llu "
                "write(s)), %u procs -> %s\n",
                opt.textPath.c_str(),
                static_cast<unsigned long long>(summary.records),
                static_cast<unsigned long long>(summary.reads),
                static_cast<unsigned long long>(summary.writes),
                summary.procs, opt.out.c_str());
    return 0;
}

int
runInspect(const Options &opt)
{
    if (opt.tracePath.empty())
        configError("trace_runner", "inspect requires --trace");
    trace::TraceReader reader(
        std::make_shared<trace::FileSource>(opt.tracePath));
    const trace::TraceSummary summary = reader.validate();
    const trace::TraceHeader &header = reader.header();

    std::printf("trace:      %s\n", opt.tracePath.c_str());
    std::printf("generator:  %s\n",
                trace::generatorName(header.generator));
    std::printf("source:     %s\n", header.source.c_str());
    std::printf("version:    %u\n",
                static_cast<unsigned>(trace::traceVersion));
    std::printf("procs:      %u\n", header.procCount);
    std::printf("seed:       %llu\n",
                static_cast<unsigned long long>(header.seed));
    std::printf("records:    %llu\n",
                static_cast<unsigned long long>(summary.records));
    std::printf("addr limit: 0x%llx\n",
                static_cast<unsigned long long>(summary.addrLimit));
    std::printf("content:    %016llx\n",
                static_cast<unsigned long long>(summary.contentHash));
    static const char *const kindNames[] = {
        "exec", "load", "use", "loaduse", "store",
        "syncload", "syncrmw", "syncstore", "fence"};
    for (std::size_t k = 0; k < summary.perKind.size(); ++k) {
        if (summary.perKind[k]) {
            std::printf("  %-9s %llu\n", kindNames[k],
                        static_cast<unsigned long long>(
                            summary.perKind[k]));
        }
    }
    for (unsigned p = 0; p < header.procCount; ++p) {
        std::printf("  proc %-4u %llu record(s)\n", p,
                    static_cast<unsigned long long>(
                        reader.procRecords(p)));
    }
    std::printf("validation: ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    try {
        if (opt.subcommand == "record")
            return runRecord(opt);
        if (opt.subcommand == "replay")
            return runReplay(opt);
        if (opt.subcommand == "generate")
            return runGenerate(opt);
        if (opt.subcommand == "import")
            return runImport(opt);
        return runInspect(opt);
    } catch (const FatalError &err) {
        std::fprintf(stderr, "trace_runner: %s\n", err.what());
        return 1;
    }
}
