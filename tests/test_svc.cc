/**
 * @file
 * Suite for src/svc/: shard planning, checkpoint journals, crash/resume
 * determinism, and the byte-identical merge contract.
 *
 * The core property under test: for ANY shard count, ANY interruption
 * pattern (clean stops, torn tails, SIGKILLed worker processes), the
 * merged results document is byte-for-byte the document a single
 * uninterrupted SweepRunner run emits. Interruptions are driven by a
 * seeded Rng so failures replay exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "exp/chaos.hh"
#include "exp/grid.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "svc/atomic_file.hh"
#include "svc/chaos_svc.hh"
#include "svc/journal.hh"
#include "svc/merge.hh"
#include "svc/shard.hh"
#include "svc/worker.hh"

namespace
{

using namespace mcsim;

/** Fresh scratch directory (tests only; src/ stays entropy-free). */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/mcsim_svc_XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir == nullptr ? "/tmp" : dir;
}

std::string
slurp(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr) << path;
    if (file == nullptr)
        return {};
    std::string out;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, got);
    std::fclose(file);
    return out;
}

void
appendBytes(const std::string &path, const std::string &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
}

/**
 * A six-point slice of the quick grid: real workloads, real metrics,
 * small enough that several full runs stay cheap. Built directly (not
 * via buildShardPlan) so tests control the plan exactly.
 */
svc::ShardPlan
miniPlan(std::uint32_t shards)
{
    svc::ShardPlan plan;
    plan.grid = exp::namedGrid("quick", exp::Scale::Quick);
    plan.grid.points.resize(6);
    plan.scale = exp::Scale::Quick;
    plan.mode = svc::RunMode::Sweep;
    plan.shardCount = shards;
    return plan;
}

/** Canonical single-process reference for a plan's grid. @{ */
std::string
referenceJson(const exp::Grid &grid)
{
    exp::SweepOptions opts;
    opts.threads = 1;
    opts.progress = false;
    exp::SweepOutcomes outcomes;
    outcomes.add(grid, exp::SweepRunner(opts).run(grid));
    return outcomes.toJson().dump();
}

std::string
referenceCsv(const exp::Grid &grid)
{
    exp::SweepOptions opts;
    opts.threads = 1;
    opts.progress = false;
    exp::SweepOutcomes outcomes;
    outcomes.add(grid, exp::SweepRunner(opts).run(grid));
    return outcomes.toCsv();
}
/** @} */

TEST(SvcShard, RoundRobinPartitionCoversEveryPointOnce)
{
    svc::PlanOptions options;
    options.grid = "quick";
    options.scale = exp::Scale::Quick;
    options.shards = 5;
    const svc::ShardPlan plan = svc::buildShardPlan(options);
    ASSERT_EQ(plan.grid.points.size(), 28u);

    std::vector<unsigned> hits(plan.grid.points.size(), 0);
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < plan.shardCount; ++s) {
        const std::vector<std::size_t> indices = plan.shardIndices(s);
        EXPECT_EQ(indices.size(), plan.shardPoints(s));
        total += plan.shardPoints(s);
        for (const std::size_t i : indices) {
            ASSERT_LT(i, hits.size());
            hits[i] += 1;
            EXPECT_EQ(i % plan.shardCount, s);
        }
    }
    EXPECT_EQ(total, plan.grid.points.size());
    for (const unsigned h : hits)
        EXPECT_EQ(h, 1u);
}

TEST(SvcShard, FingerprintIsStableAndSensitive)
{
    svc::PlanOptions options;
    options.grid = "quick";
    options.scale = exp::Scale::Quick;
    options.shards = 4;
    const std::uint64_t base = svc::buildShardPlan(options).fingerprint();
    // Pure function of the options: rebuild and match.
    EXPECT_EQ(svc::buildShardPlan(options).fingerprint(), base);

    svc::PlanOptions other = options;
    other.shards = 5;
    EXPECT_NE(svc::buildShardPlan(other).fingerprint(), base);
    other = options;
    other.mode = svc::RunMode::Chaos;
    other.preset = "light";
    EXPECT_NE(svc::buildShardPlan(other).fingerprint(), base);
    other = options;
    other.preset = "light"; // sweep fault preset lands in point ids
    EXPECT_NE(svc::buildShardPlan(other).fingerprint(), base);
    other = options;
    other.lineBytes = 32;
    EXPECT_NE(svc::buildShardPlan(other).fingerprint(), base);
}

TEST(SvcJournal, HeaderAndFramesRoundTrip)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/round.mcsj";

    svc::JournalHeader header;
    header.mode = svc::RunMode::Sweep;
    header.shardIndex = 1;
    header.shardCount = 3;
    header.gridPoints = 10;
    header.shardPoints = 3;
    header.planFingerprint = 0xDEADBEEFCAFEF00Dull;
    header.grid = "quick";

    {
        svc::JournalWriter writer = svc::JournalWriter::create(path, header);
        writer.append(1, "{\"a\":1}");
        writer.append(4, std::string(1000, 'x'));
        writer.append(7, "");
        writer.close();
    }

    const svc::JournalScan scan = svc::scanJournal(path);
    EXPECT_FALSE(scan.headerTorn);
    EXPECT_EQ(scan.tornBytes, 0u);
    EXPECT_EQ(scan.header.mode, svc::RunMode::Sweep);
    EXPECT_EQ(scan.header.shardIndex, 1u);
    EXPECT_EQ(scan.header.shardCount, 3u);
    EXPECT_EQ(scan.header.gridPoints, 10u);
    EXPECT_EQ(scan.header.shardPoints, 3u);
    EXPECT_EQ(scan.header.planFingerprint, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(scan.header.grid, "quick");
    ASSERT_EQ(scan.frames.size(), 3u);
    EXPECT_EQ(scan.frames[0].index, 1u);
    EXPECT_EQ(scan.frames[0].payload, "{\"a\":1}");
    EXPECT_EQ(scan.frames[1].payload, std::string(1000, 'x'));
    EXPECT_EQ(scan.frames[2].index, 7u);
    EXPECT_EQ(scan.validBytes, slurp(path).size());
}

TEST(SvcJournal, DuplicateAndForeignIndicesAreStructuralCorruption)
{
    const std::string dir = makeTempDir();
    svc::JournalHeader header;
    header.shardIndex = 0;
    header.shardCount = 2;
    header.gridPoints = 6;
    header.shardPoints = 3;
    header.grid = "g";

    const std::string dup = dir + "/dup.mcsj";
    {
        svc::JournalWriter writer = svc::JournalWriter::create(dup, header);
        writer.append(2, "x");
        writer.append(2, "y");
        writer.close();
    }
    EXPECT_THROW(svc::scanJournal(dup), FatalError);

    const std::string foreign = dir + "/foreign.mcsj";
    {
        svc::JournalWriter writer =
            svc::JournalWriter::create(foreign, header);
        writer.append(3, "odd index in an even shard");
        writer.close();
    }
    EXPECT_THROW(svc::scanJournal(foreign), FatalError);
}

TEST(SvcJournal, TornTailsRecoverAtEveryCut)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/full.mcsj";

    svc::JournalHeader header;
    header.shardCount = 1;
    header.gridPoints = 8;
    header.shardPoints = 8;
    header.grid = "g";

    const std::array<std::string, 4> payloads = {
        "alpha", "", std::string(300, 'z'), "{\"k\":\"v\"}"};
    std::vector<std::size_t> boundaries; // valid sizes after each frame
    {
        svc::JournalWriter writer = svc::JournalWriter::create(path, header);
        std::size_t size = svc::journalHeaderBytes;
        boundaries.push_back(size);
        for (std::size_t i = 0; i < payloads.size(); ++i) {
            writer.append(static_cast<std::uint32_t>(i), payloads[i]);
            size += svc::frameHeaderBytes + payloads[i].size();
            boundaries.push_back(size);
        }
        writer.close();
    }
    const std::string full = slurp(path);
    ASSERT_EQ(full.size(), boundaries.back());

    // Cut the file at seeded random offsets (plus every exact frame
    // boundary) and demand the scan recovers exactly the fully-flushed
    // frames -- the SIGKILL-mid-write model.
    Rng rng(20260808);
    std::vector<std::size_t> cuts = boundaries;
    for (int i = 0; i < 24; ++i) {
        cuts.push_back(svc::journalHeaderBytes +
                       rng.below(full.size() - svc::journalHeaderBytes));
    }
    for (const std::size_t cut : cuts) {
        const std::string torn_path = dir + "/torn.mcsj";
        std::FILE *file = std::fopen(torn_path.c_str(), "wb");
        ASSERT_NE(file, nullptr);
        std::fwrite(full.data(), 1, cut, file);
        std::fclose(file);

        const svc::JournalScan scan = svc::scanJournal(torn_path);
        EXPECT_FALSE(scan.headerTorn);
        std::size_t want_frames = 0;
        while (want_frames + 1 < boundaries.size() &&
               boundaries[want_frames + 1] <= cut)
            ++want_frames;
        EXPECT_EQ(scan.frames.size(), want_frames) << "cut=" << cut;
        EXPECT_EQ(scan.validBytes, boundaries[want_frames]);
        EXPECT_EQ(scan.tornBytes, cut - boundaries[want_frames]);

        // Resume truncates the garbage and appends cleanly.
        svc::JournalWriter writer =
            svc::JournalWriter::resume(torn_path, scan.validBytes);
        writer.append(7, "resumed");
        writer.close();
        const svc::JournalScan again = svc::scanJournal(torn_path);
        ASSERT_EQ(again.frames.size(), want_frames + 1);
        EXPECT_EQ(again.frames.back().index, 7u);
        EXPECT_EQ(again.frames.back().payload, "resumed");
        EXPECT_EQ(again.tornBytes, 0u);
    }

    // A corrupt byte inside the last frame's payload drops exactly that
    // frame (CRC), keeping everything before it.
    std::string flipped = full;
    flipped[flipped.size() - 2] ^= 0x40;
    const std::string flip_path = dir + "/flip.mcsj";
    std::FILE *file = std::fopen(flip_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(flipped.data(), 1, flipped.size(), file);
    std::fclose(file);
    const svc::JournalScan scan = svc::scanJournal(flip_path);
    EXPECT_EQ(scan.frames.size(), payloads.size() - 1);
    EXPECT_EQ(scan.validBytes, boundaries[payloads.size() - 1]);

    // A file shorter than a header is a torn header: zero recorded
    // points, recreate.
    const std::string stub_path = dir + "/stub.mcsj";
    file = std::fopen(stub_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(full.data(), 1, 17, file);
    std::fclose(file);
    const svc::JournalScan stub = svc::scanJournal(stub_path);
    EXPECT_TRUE(stub.headerTorn);
    EXPECT_TRUE(stub.frames.empty());
}

TEST(SvcWorker, SeededInterruptionsResumeToByteIdenticalMerge)
{
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string ref_csv = referenceCsv(plan.grid);

    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};

    // Drive both shards with seeded random stop points, garbage torn
    // tails injected between attempts, until both journals complete.
    Rng rng(987654321);
    std::array<bool, 2> done = {false, false};
    unsigned attempts = 0;
    unsigned interrupted = 0;
    while ((!done[0] || !done[1]) && attempts < 64) {
        ++attempts;
        const std::uint32_t shard =
            done[0] ? 1u
                    : (done[1] ? 0u
                               : static_cast<std::uint32_t>(rng.below(2)));
        svc::WorkerOptions options;
        options.threads = 1;
        options.progress = false;
        // Stop after 1 or 2 new points so every attempt is interrupted.
        options.stopAfter = static_cast<std::size_t>(1 + rng.below(2));
        const svc::WorkerResult result =
            svc::runShardWorker(plan, shard, paths[shard], options);
        done[shard] = result.done;
        interrupted += result.stopped ? 1 : 0;
        if (!result.done && rng.below(3) == 0) {
            // Simulate a kill mid-frame-write: garbage on the tail.
            appendBytes(paths[shard], "\x13garbage-torn-tail");
        }
    }
    ASSERT_TRUE(done[0] && done[1]);
    EXPECT_GT(interrupted, 0u) << "the schedule never interrupted";

    const svc::MergeResult merged = svc::mergeJournals(plan, paths);
    EXPECT_EQ(merged.document.dump(), ref_json);
    EXPECT_EQ(merged.csv, ref_csv);
    EXPECT_EQ(merged.totalJobs, plan.grid.points.size());
    EXPECT_EQ(merged.failedJobs, 0u);

    // Finishing again is idempotent: a no-op attempt, same merge.
    svc::WorkerOptions options;
    options.threads = 1;
    options.progress = false;
    const svc::WorkerResult again =
        svc::runShardWorker(plan, 0, paths[0], options);
    EXPECT_TRUE(again.done);
    EXPECT_EQ(again.completedPoints, 0u);
    EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(), ref_json);
}

TEST(SvcWorker, MergeIsIdenticalAcrossShardCounts)
{
    const std::string ref_json = referenceJson(miniPlan(1).grid);
    for (const std::uint32_t shards : {1u, 3u, 6u}) {
        const svc::ShardPlan plan = miniPlan(shards);
        const std::string dir = makeTempDir();
        std::vector<std::string> paths;
        for (std::uint32_t s = 0; s < shards; ++s) {
            paths.push_back(plan.journalPath(dir, s));
            svc::WorkerOptions options;
            options.threads = 1;
            options.progress = false;
            const svc::WorkerResult result =
                svc::runShardWorker(plan, s, paths.back(), options);
            EXPECT_TRUE(result.done);
        }
        EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(),
                  ref_json)
            << shards << " shard(s)";
    }
}

TEST(SvcMerge, RefusesIncompleteForeignAndMissingJournals)
{
    const svc::ShardPlan plan = miniPlan(2);
    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};

    // Missing journals.
    EXPECT_THROW(svc::mergeJournals(plan, paths), FatalError);
    // Wrong path count.
    EXPECT_THROW(svc::mergeJournals(plan, {paths[0]}), FatalError);

    // Shard 0 incomplete (stopped after one point), shard 1 complete.
    svc::WorkerOptions stop_one;
    stop_one.threads = 1;
    stop_one.progress = false;
    stop_one.stopAfter = 1;
    EXPECT_FALSE(svc::runShardWorker(plan, 0, paths[0], stop_one).done);
    svc::WorkerOptions to_end;
    to_end.threads = 1;
    to_end.progress = false;
    EXPECT_TRUE(svc::runShardWorker(plan, 1, paths[1], to_end).done);
    EXPECT_THROW(svc::mergeJournals(plan, paths), FatalError);

    // A journal from a DIFFERENT plan (other shard count) is refused by
    // fingerprint, both by merge and by a resuming worker.
    const svc::ShardPlan other = miniPlan(3);
    EXPECT_THROW(svc::mergeJournals(other, {paths[0], paths[1],
                                            other.journalPath(dir, 2)}),
                 FatalError);
    EXPECT_THROW(svc::runShardWorker(other, 0, paths[0], to_end),
                 FatalError);
}

TEST(SvcChaos, ShardedChaosMergesByteIdentical)
{
    // Two-point chaos plan: enough to exercise the chaos journal path
    // while staying cheap (each point is a baseline + faulted pair).
    svc::ShardPlan plan;
    plan.grid = exp::namedGrid("quick", exp::Scale::Quick);
    plan.grid.points.resize(2);
    plan.scale = exp::Scale::Quick;
    plan.mode = svc::RunMode::Chaos;
    plan.preset = "light";
    plan.shardCount = 2;

    exp::ChaosOptions chaos_opts;
    chaos_opts.preset = "light";
    chaos_opts.threads = 1;
    chaos_opts.progress = false;
    const exp::ChaosReport report = exp::runChaos(plan.grid, chaos_opts);
    exp::Json reports = exp::Json::array();
    reports.push(report.toJson());
    exp::Json ref = exp::Json::object();
    ref["schema"] = exp::Json("mcsim-chaos-v1");
    ref["reports"] = std::move(reports);

    const std::string dir = makeTempDir();
    std::vector<std::string> paths;
    for (std::uint32_t s = 0; s < plan.shardCount; ++s) {
        paths.push_back(plan.journalPath(dir, s));
        svc::WorkerOptions options;
        options.threads = 1;
        options.progress = false;
        EXPECT_TRUE(
            svc::runShardWorker(plan, s, paths.back(), options).done);
    }
    const svc::MergeResult merged = svc::mergeJournals(plan, paths);
    EXPECT_EQ(merged.document.dump(), ref.dump());
    EXPECT_EQ(merged.chaosOk, report.ok());
    EXPECT_EQ(merged.chaosSummary, report.summary());
}

TEST(SvcAtomicFile, WritesWholeFilesAndLeavesNoTemp)
{
    const std::string dir = makeTempDir();
    const std::string path = dir + "/doc.json";
    svc::writeFileAtomic(path, "first\n");
    EXPECT_EQ(slurp(path), "first\n");
    svc::writeFileAtomic(path, "second, longer content\n");
    EXPECT_EQ(slurp(path), "second, longer content\n");
    EXPECT_FALSE(svc::journalExists(path + ".tmp"));
    // Unwritable destination reports, never leaves a temp behind.
    EXPECT_THROW(svc::writeFileAtomic("/nonexistent-dir/x/y", "z"),
                 FatalError);

    // ensureDirectory is mkdir -p: nested creation, idempotent, and a
    // file in the way is a clear error.
    const std::string nested = dir + "/a/b/c";
    svc::ensureDirectory(nested);
    svc::ensureDirectory(nested);
    svc::writeFileAtomic(nested + "/doc.json", "x");
    EXPECT_EQ(slurp(nested + "/doc.json"), "x");
    EXPECT_THROW(svc::ensureDirectory(nested + "/doc.json"), FatalError);
}

/** Run a shell command; return its exit status (-1 on popen failure). */
int
runCommand(const std::string &cmd)
{
    FILE *pipe = popen((cmd + " 2>&1 >/dev/null").c_str(), "r");
    if (pipe == nullptr)
        return -1;
    std::array<char, 4096> buf;
    while (std::fread(buf.data(), 1, buf.size(), pipe) > 0) {
    }
    const int status = pclose(pipe);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SvcKillGate, SigkilledWorkersResumeToByteIdenticalQuickGrid)
{
    // The real-SIGKILL gate, end to end at the binary level: phase one
    // kills every worker after 4 fresh points with relaunching disabled
    // (exit 1, journals kept); phase two resumes and must converge to
    // exit 0 with output byte-identical to an uninterrupted
    // single-process run of the quick grid.
    const std::string dir = makeTempDir();
    const std::string bin = MCSIM_SVC_BIN;
    const std::string plan_flags =
        " --grid quick --shards 3 --threads 1 --no-progress --dir " + dir;

    const int phase1 = runCommand(bin + " run" + plan_flags +
                                  " --kill-after 4 --max-retries 0");
    EXPECT_EQ(phase1, 1);
    for (unsigned s = 0; s < 3; ++s) {
        EXPECT_TRUE(svc::journalExists(
            dir + strprintf("/quick.s%03u-of-003.mcsj", s)));
    }

    const std::string out = dir + "/merged.json";
    const int phase2 =
        runCommand(bin + " run" + plan_flags + " --resume --out " + out);
    EXPECT_EQ(phase2, 0);

    const exp::Grid grid = exp::namedGrid("quick", exp::Scale::Quick);
    EXPECT_EQ(slurp(out), referenceJson(grid) + "\n");
}

/** Truncate @p path to @p size bytes in place. */
void
truncateFile(const std::string &path, std::size_t size)
{
    const std::string data = slurp(path).substr(0, size);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(data.data(), 1, data.size(), file);
    std::fclose(file);
}

/** Indices with a valid frame in @p path (empty if header torn). */
std::vector<std::size_t>
journaledIndices(const std::string &path)
{
    std::vector<std::size_t> got;
    const svc::JournalScan scan = svc::scanJournal(path);
    if (scan.headerTorn)
        return got;
    for (const svc::JournalFrame &frame : scan.frames)
        got.push_back(frame.index);
    return got;
}

TEST(SvcJournal, HeaderBoundaryTearsLoseExactlyTheUnflushedPoints)
{
    // The satellite cases around the 64-byte header boundary: a cut AT
    // the boundary keeps the header and zero frames; a cut INSIDE the
    // header (and the zero-length file) is a torn header that a real
    // worker recreates from scratch. In every case the resumed worker
    // must re-run exactly the lost points and merge byte-identical.
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};
    svc::WorkerOptions run_all;
    run_all.threads = 1;
    run_all.progress = false;
    ASSERT_TRUE(svc::runShardWorker(plan, 1, paths[1], run_all).done);
    ASSERT_TRUE(svc::runShardWorker(plan, 0, paths[0], run_all).done);
    const std::vector<std::size_t> shard0 = plan.shardIndices(0);

    struct Cut
    {
        std::size_t size;
        bool torn_header;
        bool empty_file;
    };
    const std::vector<Cut> cuts = {
        {svc::journalHeaderBytes, false, false}, // exact boundary
        {svc::journalHeaderBytes - 1, true, false}, // inside header
        {1, true, false},
        {0, true, true}, // zero-length: created, never written
    };
    for (const Cut &cut : cuts) {
        truncateFile(paths[0], cut.size);
        const svc::JournalScan scan = svc::scanJournal(paths[0]);
        EXPECT_EQ(scan.headerTorn, cut.torn_header) << cut.size;
        EXPECT_EQ(scan.emptyFile, cut.empty_file) << cut.size;
        EXPECT_TRUE(scan.frames.empty()) << cut.size;

        // All points were lost; the resumed worker re-runs all of them.
        const svc::WorkerResult result =
            svc::runShardWorker(plan, 0, paths[0], run_all);
        EXPECT_TRUE(result.done);
        EXPECT_EQ(result.resumedPoints, 0u) << cut.size;
        EXPECT_EQ(result.completedPoints, shard0.size()) << cut.size;
        EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(),
                  ref_json)
            << cut.size;
    }
}

TEST(SvcJournal, CrcByteFlipDropsExactlyThatFrameAndResumeRestoresIt)
{
    // Corrupt one byte of the LAST frame's stored CRC (frame header
    // offset 12): the scan must drop exactly that frame, the resumed
    // worker must re-run exactly that point, and the merge must come
    // back byte-identical.
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};
    svc::WorkerOptions run_all;
    run_all.threads = 1;
    run_all.progress = false;
    ASSERT_TRUE(svc::runShardWorker(plan, 0, paths[0], run_all).done);
    ASSERT_TRUE(svc::runShardWorker(plan, 1, paths[1], run_all).done);

    const svc::JournalScan before = svc::scanJournal(paths[0]);
    ASSERT_GE(before.frames.size(), 2u);
    const std::size_t last = before.frames.size() - 1;
    const std::uint32_t lost_index = before.frames[last].index;
    // Start of the last frame = end of the one before it.
    std::size_t frame_start = svc::journalHeaderBytes;
    for (std::size_t i = 0; i < last; ++i)
        frame_start +=
            svc::frameHeaderBytes + before.frames[i].payload.size();

    std::string data = slurp(paths[0]);
    data[frame_start + 12] ^= 0x01; // stored CRC, low byte
    std::FILE *file = std::fopen(paths[0].c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(data.data(), 1, data.size(), file);
    std::fclose(file);

    const svc::JournalScan scan = svc::scanJournal(paths[0]);
    ASSERT_EQ(scan.frames.size(), before.frames.size() - 1);
    for (std::size_t i = 0; i + 1 < before.frames.size(); ++i)
        EXPECT_EQ(scan.frames[i].index, before.frames[i].index);
    EXPECT_EQ(scan.validBytes, frame_start);

    const svc::WorkerResult result =
        svc::runShardWorker(plan, 0, paths[0], run_all);
    EXPECT_TRUE(result.done);
    EXPECT_EQ(result.resumedPoints, before.frames.size() - 1);
    EXPECT_EQ(result.completedPoints, 1u);
    const std::vector<std::size_t> now = journaledIndices(paths[0]);
    EXPECT_EQ(std::count(now.begin(), now.end(), lost_index), 1);
    EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(), ref_json);
}

TEST(SvcJournal, CompactIsCanonicalIdempotentAndRepairsDuplicates)
{
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};
    svc::WorkerOptions run_all;
    run_all.threads = 1;
    run_all.progress = false;
    ASSERT_TRUE(svc::runShardWorker(plan, 0, paths[0], run_all).done);
    ASSERT_TRUE(svc::runShardWorker(plan, 1, paths[1], run_all).done);

    // A torn tail compacts away; merge bytes are untouched.
    appendBytes(paths[0], "\x7fmid-write garbage");
    const svc::CompactStats stats =
        svc::compactJournal(paths[0], paths[0]);
    EXPECT_GT(stats.tornBytes, 0u);
    EXPECT_EQ(stats.supersededFrames, 0u);
    EXPECT_EQ(svc::scanJournal(paths[0]).tornBytes, 0u);
    EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(), ref_json);

    // Idempotent: compacting a compacted journal is a byte no-op,
    // whether in place or to a separate output.
    const std::string once = slurp(paths[0]);
    svc::compactJournal(paths[0], paths[0]);
    EXPECT_EQ(slurp(paths[0]), once);
    const std::string copy = dir + "/copy.mcsj";
    svc::compactJournal(paths[0], copy);
    EXPECT_EQ(slurp(copy), once);
    EXPECT_EQ(slurp(paths[0]), once);

    // An in-file duplicate index (a resume replaying an append after a
    // lost truncate) is fatal corruption under the operational Strict
    // policy; the Lenient scan keeps the LAST frame, and compaction
    // repairs the journal back to strict-clean with that payload.
    const svc::JournalScan base = svc::scanJournal(paths[1]);
    const std::uint32_t dup = base.frames.front().index;
    {
        svc::JournalWriter writer =
            svc::JournalWriter::resume(paths[1], base.validBytes);
        writer.append(dup, base.frames.front().payload);
        writer.close();
    }
    EXPECT_THROW(svc::scanJournal(paths[1]), FatalError);
    const svc::JournalScan lenient =
        svc::scanJournal(paths[1], svc::ScanPolicy::Lenient);
    EXPECT_EQ(lenient.supersededFrames, 1u);
    EXPECT_EQ(lenient.frames.size(), base.frames.size());
    const svc::CompactStats repair =
        svc::compactJournal(paths[1], paths[1]);
    EXPECT_EQ(repair.supersededFrames, 1u);
    EXPECT_EQ(repair.frames, base.frames.size());
    EXPECT_EQ(svc::scanJournal(paths[1]).frames.size(),
              base.frames.size());
    EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(), ref_json);
}

TEST(SvcWorker, StealSlicesPartitionTheRemainderAndMergeByteIdentical)
{
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string ref_csv = referenceCsv(plan.grid);
    const std::string dir = makeTempDir();
    const std::vector<std::string> primaries = {
        plan.journalPath(dir, 0), plan.journalPath(dir, 1)};

    // Shard 1 completes; shard 0 journals one point and "dies".
    svc::WorkerOptions run_all;
    run_all.threads = 1;
    run_all.progress = false;
    ASSERT_TRUE(svc::runShardWorker(plan, 1, primaries[1], run_all).done);
    svc::WorkerOptions stop_one = run_all;
    stop_one.stopAfter = 1;
    ASSERT_FALSE(
        svc::runShardWorker(plan, 0, primaries[0], stop_one).done);

    // Slice membership: the slices partition the frozen remainder
    // (victim's points minus the journaled one), round-robin, exactly.
    const std::vector<std::size_t> journaled =
        journaledIndices(primaries[0]);
    ASSERT_EQ(journaled.size(), 1u);
    std::vector<std::size_t> remainder;
    for (const std::size_t index : plan.shardIndices(0))
        if (index != journaled[0])
            remainder.push_back(index);
    const std::vector<std::size_t> slice0 =
        svc::stealSliceMembers(plan, 0, 0, 2, primaries[0]);
    const std::vector<std::size_t> slice1 =
        svc::stealSliceMembers(plan, 0, 1, 2, primaries[0]);
    std::vector<std::size_t> joined;
    for (std::size_t i = 0; i < remainder.size(); ++i)
        joined.push_back(i % 2 == 0 ? slice0[i / 2] : slice1[i / 2]);
    EXPECT_EQ(joined, remainder);
    EXPECT_EQ(slice0.size() + slice1.size(), remainder.size());
    // More slices than remainder points: the excess slices are empty.
    EXPECT_TRUE(
        svc::stealSliceMembers(
            plan, 0, static_cast<std::uint16_t>(remainder.size()), 8,
            primaries[0])
            .empty());

    // Steal workers run the slices into their own journals; the merge
    // over primaries + steals is byte-identical to the reference.
    std::vector<std::string> paths = primaries;
    for (std::uint16_t k = 0; k < 2; ++k) {
        const std::string steal_path =
            plan.stealJournalPath(dir, 0, k, 2);
        const svc::WorkerResult result = svc::runStealWorker(
            plan, 0, k, 2, primaries[0], steal_path, run_all);
        EXPECT_TRUE(result.done);
        paths.push_back(steal_path);
    }
    EXPECT_EQ(svc::findStealJournals(plan, dir).size(), 2u);
    const svc::MergeResult merged = svc::mergeJournals(plan, paths);
    EXPECT_EQ(merged.document.dump(), ref_json);
    EXPECT_EQ(merged.csv, ref_csv);

    // Cross-file duplicates are tolerated when byte-identical: finish
    // the victim's primary too (it now covers the stolen points as
    // well) and the merge must not change.
    ASSERT_TRUE(svc::runShardWorker(plan, 0, primaries[0], run_all).done);
    EXPECT_EQ(svc::mergeJournals(plan, paths).document.dump(), ref_json);

    // A cross-file DISAGREEMENT is corruption: a forged steal journal
    // claiming a different payload for a covered point is fatal.
    const std::string forged = plan.stealJournalPath(dir, 0, 2, 3);
    {
        svc::JournalWriter writer = svc::JournalWriter::create(
            forged, plan.stealJournalHeader(0, 2, 3, 1));
        writer.append(static_cast<std::uint32_t>(remainder[0]),
                      "{\"forged\":true}");
        writer.close();
    }
    std::vector<std::string> with_forged = paths;
    with_forged.push_back(forged);
    EXPECT_THROW(svc::mergeJournals(plan, with_forged), FatalError);
}

TEST(SvcMerge, DegradedMergeQuarantinesExactlyTheUncovered)
{
    const svc::ShardPlan plan = miniPlan(2);
    const std::string ref_json = referenceJson(plan.grid);
    const std::string dir = makeTempDir();
    const std::vector<std::string> paths = {plan.journalPath(dir, 0),
                                            plan.journalPath(dir, 1)};

    svc::WorkerOptions run_all;
    run_all.threads = 1;
    run_all.progress = false;
    svc::WorkerOptions stop_one = run_all;
    stop_one.stopAfter = 1;
    ASSERT_FALSE(svc::runShardWorker(plan, 0, paths[0], stop_one).done);
    ASSERT_TRUE(svc::runShardWorker(plan, 1, paths[1], run_all).done);

    // Strict refuses; degraded quarantines exactly the uncovered set.
    EXPECT_THROW(svc::mergeJournals(plan, paths), FatalError);
    std::vector<std::size_t> uncovered;
    const std::vector<std::size_t> got = journaledIndices(paths[0]);
    for (const std::size_t index : plan.shardIndices(0))
        if (std::count(got.begin(), got.end(), index) == 0)
            uncovered.push_back(index);
    ASSERT_FALSE(uncovered.empty());

    svc::MergeOptions degraded;
    degraded.degraded = true;
    const svc::MergeResult merged =
        svc::mergeJournals(plan, paths, degraded);
    EXPECT_TRUE(merged.degraded);
    EXPECT_EQ(merged.quarantined, uncovered);
    EXPECT_EQ(merged.totalJobs,
              plan.grid.points.size() - uncovered.size());

    // The document's failed section names them, index and id, in grid
    // order.
    const exp::Json *failed = merged.document.find("failed");
    ASSERT_NE(failed, nullptr);
    ASSERT_EQ(failed->size(), uncovered.size());
    for (std::size_t i = 0; i < uncovered.size(); ++i) {
        const exp::Json &entry = failed->at(i);
        ASSERT_NE(entry.find("index"), nullptr);
        ASSERT_NE(entry.find("id"), nullptr);
        EXPECT_EQ(entry.find("index")->asNumber(),
                  static_cast<double>(uncovered[i]));
        EXPECT_EQ(entry.find("id")->asString(),
                  plan.grid.points[uncovered[i]].id());
    }

    // Fully covered, a degraded merge is byte-identical to a strict
    // one: the failed section only exists when something was lost.
    ASSERT_TRUE(svc::runShardWorker(plan, 0, paths[0], run_all).done);
    const svc::MergeResult full =
        svc::mergeJournals(plan, paths, degraded);
    EXPECT_FALSE(full.degraded);
    EXPECT_EQ(full.document.find("failed"), nullptr);
    EXPECT_EQ(full.document.dump(), ref_json);
    EXPECT_EQ(full.document.dump(),
              svc::mergeJournals(plan, paths).document.dump());
}

TEST(SvcChaosSvc, SeededFaultHistoriesMergeByteIdentical)
{
    // The tentpole invariant, in process: randomized (but seeded)
    // kill/stall/tear/io-fault/coordinator-crash histories against the
    // mini plan, with immediate steal escalation, must converge with
    // nothing quarantined and merge byte-identical to the fault-free
    // reference every round.
    const svc::ShardPlan plan = miniPlan(2);
    const std::string dir = makeTempDir();
    svc::SvcChaosConfig config;
    config.seed = 20260808;
    config.rounds = 3;
    config.preset = "heavy";
    config.maxRetries = 0; // first barren attempt escalates to steal
    config.progress = false;
    const svc::SvcChaosReport report =
        svc::runSvcChaos(plan, dir, config);
    ASSERT_EQ(report.rounds.size(), config.rounds);
    std::size_t faults = 0;
    for (const svc::SvcChaosRound &round : report.rounds) {
        EXPECT_TRUE(round.ok) << "round " << round.round << ": "
                              << round.error;
        EXPECT_TRUE(round.identical);
        EXPECT_TRUE(round.compactIdentical);
        EXPECT_TRUE(round.quarantined.empty());
        faults += round.kills + round.stalls + round.tears +
                  round.ioFaults + round.coordCrashes;
    }
    EXPECT_TRUE(report.ok());
    EXPECT_GT(faults, 0u) << "the heavy preset injected nothing";

    // The report serializes; the schema tag is pinned.
    const exp::Json doc = report.toJson();
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(), "mcsim-svc-chaos-v1");
    ASSERT_NE(doc.find("ok"), nullptr);
    EXPECT_TRUE(doc.find("ok")->asBool());
}

TEST(SvcChaosSvc, PoisonedPointsAreQuarantinedExactly)
{
    // Poisoned points crash every worker that attempts them: blame
    // tracking must quarantine EXACTLY the poisoned set, and the
    // degraded merge must still be byte-identical to a reference that
    // skipped them.
    const svc::ShardPlan plan = miniPlan(2);
    const std::string dir = makeTempDir();
    svc::SvcChaosConfig config;
    config.seed = 7;
    config.rounds = 2;
    config.preset = "light";
    config.poison = {1, 4};
    config.progress = false;
    const svc::SvcChaosReport report =
        svc::runSvcChaos(plan, dir, config);
    EXPECT_TRUE(report.ok());
    for (const svc::SvcChaosRound &round : report.rounds) {
        EXPECT_TRUE(round.ok) << round.error;
        EXPECT_EQ(round.quarantined,
                  (std::vector<std::size_t>{1, 4}));
        EXPECT_TRUE(round.identical);
    }

    // An out-of-range poison index is a configuration error.
    svc::SvcChaosConfig bad = config;
    bad.poison = {999};
    EXPECT_THROW(svc::runSvcChaos(plan, dir, bad), FatalError);
    EXPECT_THROW(svc::svcChaosPreset("bogus"), FatalError);
}

TEST(SvcLeaseGate, StalledWorkersAreRevokedAndStolenToConvergence)
{
    // The lease/steal gate at the binary level: every primary worker
    // stalls forever after 8 journaled points (a stuck process, not a
    // dead one). Lease supervision must revoke them, barren relaunches
    // must exhaust retries, and steal slices (3 points each, under the
    // stall threshold) must finish the remainders -- exit 0, output
    // byte-identical to the single-process reference.
    const std::string dir = makeTempDir();
    const std::string bin = MCSIM_SVC_BIN;
    const std::string out = dir + "/merged.json";
    const int status = runCommand(
        bin + " run --grid quick --shards 2 --threads 2 --no-progress" +
        " --dir " + dir + " --lease-ms 4000 --poll-ms 100" +
        " --stall-at 8 --max-retries 1 --steal-fanout 2 --out " + out);
    EXPECT_EQ(status, 0);

    // The steal journals are on disk and discoverable.
    svc::PlanOptions plan_options;
    plan_options.grid = "quick";
    plan_options.scale = exp::Scale::Quick;
    plan_options.shards = 2;
    const svc::ShardPlan plan = svc::buildShardPlan(plan_options);
    EXPECT_FALSE(svc::findStealJournals(plan, dir).empty());

    const exp::Grid grid = exp::namedGrid("quick", exp::Scale::Quick);
    EXPECT_EQ(slurp(out), referenceJson(grid) + "\n");
}

} // namespace
