/**
 * @file
 * Reproduces paper Figure 6: Gauss on 32 processors -- % gain over SC1
 * for SC2, WO1 and RC at both cache sizes (the paper skipped WO2 at 32
 * processors). The extra network stage raises memory latency (18 -> 20
 * cycles), so the paper found slightly larger gains than at 16
 * processors.
 *
 * Usage: bench_fig6 [--full]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const bool full = parseFull(argc, argv);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::RC};

    std::printf("Figure 6 reproduction: Gauss, 32 processors, %% gain "
                "over SC1%s\n",
                full ? " (paper-size)" : " (scaled)");
    printHeaderRule();

    for (int big = 0; big < 2; ++big) {
        std::printf("\n%s caches\n", cacheLabel(full, big));
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        core::RunMetrics base[3];
        for (std::size_t l = 0; l < lineSizes.size(); ++l) {
            auto cfg = baseConfig(full, 32);
            cfg.cacheBytes = big ? largeCache(full) : smallCache(full);
            cfg.lineBytes = lineSizes[l];
            base[l] = run("Gauss", cfg, full);
        }
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (std::size_t l = 0; l < lineSizes.size(); ++l) {
                auto cfg = baseConfig(full, 32);
                cfg.cacheBytes = big ? largeCache(full) : smallCache(full);
                cfg.lineBytes = lineSizes[l];
                cfg.model = model;
                const auto m = run("Gauss", cfg, full);
                std::printf(" %9.1f%%", core::percentGain(base[l], m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
