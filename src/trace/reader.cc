#include "trace/reader.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"

namespace mcsim::trace
{

void
MemorySource::read(std::uint64_t offset, void *out, std::size_t n) const
{
    if (offset + n > buffer.size())
        fatal("trace: read past end of trace buffer (truncated trace)");
    std::copy_n(buffer.data() + offset, n, static_cast<std::uint8_t *>(out));
}

FileSource::FileSource(const std::string &p) : path(p)
{
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("trace: cannot open trace file '%s'", path.c_str());
    if (std::fseek(file, 0, SEEK_END) != 0)
        fatal("trace: cannot seek in '%s'", path.c_str());
    const long end = std::ftell(file);
    if (end < 0)
        fatal("trace: cannot size '%s'", path.c_str());
    fileSize = static_cast<std::uint64_t>(end);
}

FileSource::~FileSource()
{
    if (file)
        std::fclose(file);
}

void
FileSource::read(std::uint64_t offset, void *out, std::size_t n) const
{
    if (offset + n > fileSize)
        fatal("trace: read past end of '%s' (truncated trace)",
              path.c_str());
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(out, 1, n, file) != n) {
        fatal("trace: read error in '%s'", path.c_str());
    }
}

TraceReader::TraceReader(std::shared_ptr<const TraceSource> src)
    : source(std::move(src))
{
    MCSIM_ASSERT(source != nullptr, "trace reader needs a source");
    if (source->size() < headerBytes)
        fatal("trace: truncated trace file (no complete header)");
    std::array<std::uint8_t, headerBytes> raw{};
    source->read(0, raw.data(), raw.size());
    head = decodeHeader(raw.data());

    blocksPerProc.resize(head.procCount);
    recordsPerProc.assign(head.procCount, 0);

    const std::uint64_t fileSize = source->size();
    std::uint64_t offset = headerBytes;
    std::uint64_t indexed = 0;
    while (offset < fileSize) {
        if (fileSize - offset < blockHeaderBytes) {
            fatal("trace: truncated trace file (partial block header at "
                  "offset %llu)",
                  static_cast<unsigned long long>(offset));
        }
        std::array<std::uint8_t, blockHeaderBytes> bh{};
        source->read(offset, bh.data(), bh.size());
        if (getU32(bh.data()) != blockMagic) {
            fatal("trace: bad block magic at offset %llu (corrupt file)",
                  static_cast<unsigned long long>(offset));
        }
        const std::uint32_t proc = getU32(bh.data() + 4);
        if (proc >= head.procCount) {
            fatal("trace: out-of-range proc id %u in block header "
                  "(trace declares %u procs)", proc, head.procCount);
        }
        BlockRef ref;
        ref.records = getU32(bh.data() + 8);
        ref.bytes = getU32(bh.data() + 12);
        ref.crc = getU32(bh.data() + 16);
        ref.payloadOffset = offset + blockHeaderBytes;
        if (ref.records == 0 || ref.records > blockRecordLimit)
            fatal("trace: implausible block record count %u", ref.records);
        if (ref.bytes > maxBlockPayload)
            fatal("trace: block payload size %u exceeds format limit",
                  ref.bytes);
        if (fileSize - ref.payloadOffset < ref.bytes) {
            fatal("trace: truncated trace file (block payload cut short "
                  "at offset %llu)",
                  static_cast<unsigned long long>(ref.payloadOffset));
        }
        blocksPerProc[proc].push_back(ref);
        recordsPerProc[proc] += ref.records;
        indexed += ref.records;
        offset = ref.payloadOffset + ref.bytes;
    }
    if (indexed != head.totalRecords) {
        fatal("trace: record count mismatch (header declares %llu, "
              "blocks hold %llu)",
              static_cast<unsigned long long>(head.totalRecords),
              static_cast<unsigned long long>(indexed));
    }
}

TraceReader::Stream::Stream(std::shared_ptr<const TraceSource> src,
                            std::vector<BlockRef> blockList, unsigned proc)
    : source(std::move(src)), blocks(std::move(blockList))
{
    context = strprintf("proc %u", proc);
}

void
TraceReader::Stream::loadBlock()
{
    const BlockRef &ref = blocks[blockIndex];
    payload.resize(ref.bytes);
    source->read(ref.payloadOffset, payload.data(), payload.size());
    if (crc32(payload.data(), payload.size()) != ref.crc) {
        fatal("trace: block payload CRC mismatch (%s, block %zu)",
              context.c_str(), blockIndex);
    }
    state = CodecState{};
    pos = 0;
    left = ref.records;
    blockIndex += 1;
}

bool
TraceReader::Stream::next(Record &out)
{
    if (left == 0) {
        if (blockIndex >= blocks.size())
            return false;
        loadBlock();
    }
    out = decodeRecord(payload.data(), payload.size(), pos, state,
                       context.c_str());
    left -= 1;
    if (left == 0 && pos != payload.size()) {
        fatal("trace: %zu trailing payload bytes after the last record "
              "(%s)", payload.size() - pos, context.c_str());
    }
    return true;
}

TraceReader::Stream
TraceReader::stream(unsigned proc) const
{
    MCSIM_ASSERT(proc < head.procCount, "stream(): proc out of range");
    return Stream(source, blocksPerProc[proc], proc);
}

TraceSummary
TraceReader::validate() const
{
    TraceSummary sum;

    // Content hash: FNV-1a over the complete byte stream, chunked so
    // large traces never materialize (same constants as sim/random.hh).
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const std::uint64_t fileSize = source->size();
    std::vector<std::uint8_t> chunk(64 * 1024);
    for (std::uint64_t off = 0; off < fileSize;) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk.size(), fileSize - off));
        source->read(off, chunk.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= chunk[i];
            hash *= 0x100000001b3ull;
        }
        off += n;
    }
    sum.contentHash = hash;

    for (unsigned p = 0; p < head.procCount; ++p) {
        Stream s = stream(p);
        Record rec;
        // Mirror the replaying processor's token bookkeeping exactly:
        // tokens are handed out sequentially per Load (cpu/processor.cc
        // nextToken), and a Use of a dead token would trip a processor
        // assert -- reject it here instead, before any machine exists.
        std::uint64_t nextToken = 1;
        std::unordered_set<std::uint64_t> live;
        std::uint64_t index = 0;
        while (s.next(rec)) {
            sum.records += 1;
            sum.perKind[static_cast<std::size_t>(rec.kind)] += 1;
            switch (rec.kind) {
              case OpKind::Load:
                live.insert(nextToken);
                nextToken += 1;
                break;
              case OpKind::Use:
                if (live.erase(rec.token) == 0) {
                    fatal("trace: proc %u record %llu uses load token "
                          "%llu that is not live", p,
                          static_cast<unsigned long long>(index),
                          static_cast<unsigned long long>(rec.token));
                }
                break;
              case OpKind::Exec:
              case OpKind::LoadUse:
              case OpKind::Store:
              case OpKind::SyncLoad:
              case OpKind::SyncRmw:
              case OpKind::SyncStore:
              case OpKind::Fence:
                break;
            }
            switch (rec.kind) {
              case OpKind::Load:
              case OpKind::LoadUse:
              case OpKind::Store:
              case OpKind::SyncLoad:
              case OpKind::SyncRmw:
              case OpKind::SyncStore:
                if (rec.addr % rec.width != 0) {
                    fatal("trace: proc %u record %llu has misaligned "
                          "address 0x%llx (width %u)", p,
                          static_cast<unsigned long long>(index),
                          static_cast<unsigned long long>(rec.addr),
                          static_cast<unsigned>(rec.width));
                }
                sum.addrLimit =
                    std::max<Addr>(sum.addrLimit, rec.addr + rec.width);
                break;
              case OpKind::Exec:
              case OpKind::Use:
              case OpKind::Fence:
                break;
            }
            index += 1;
        }
    }
    return sum;
}

} // namespace mcsim::trace
