/**
 * @file
 * Reproduces paper Figure 8: the blocking-loads study (SC1, bWO1, WO1
 * vs bSC1) at the large caches. With high hit rates the differences
 * shrink; the paper notes Gauss's variations here are "so small as to
 * be unimportant".
 *
 * Usage: bench_fig8 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig8", args);
    const std::vector<core::Model> models = {
        core::Model::SC1, core::Model::BWO1, core::Model::WO1};

    std::printf("Figure 8 reproduction: %% gain over bSC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(args, true), isFull(args) ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (unsigned line : lineSizes) {
                const auto &base = res.metrics(exp::paperPoint(
                    name, core::Model::BSC1, args.scale, true, line));
                const auto &m = res.metrics(
                    exp::paperPoint(name, model, args.scale, true, line));
                std::printf(" %9.1f%%", core::percentGain(base, m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
