/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, priorities,
 * determinism, and time-window execution.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace mcsim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&, i]() { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() { order.push_back(2); }, EventQueue::prioCpu);
    q.schedule(5, [&]() { order.push_back(1); }, EventQueue::prioDeliver);
    q.schedule(5, [&]() { order.push_back(3); }, EventQueue::prioCpu + 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ReentrantSchedulingFromCallback)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&]() {
        ++fired;
        q.schedule(2, [&]() { ++fired; });
    });
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 2u);
}

TEST(EventQueue, SameTickReentrantRunsThisTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(7, [&]() {
        order.push_back(1);
        q.schedule(7, [&]() { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 7u);
}

TEST(EventQueue, RunUntilStopsAtLimitInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(20, [&]() { ++fired; });
    q.schedule(21, [&]() { ++fired; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunMaxEventsGuard)
{
    EventQueue q;
    // A self-perpetuating event chain.
    std::function<void()> again = [&]() { q.scheduleIn(1, again); };
    q.scheduleIn(1, again);
    EXPECT_EQ(q.run(1000), 1000u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<Tick>(i), []() {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, []() {});
    q.run();
    EXPECT_DEATH(q.schedule(5, []() {}), "past");
}

TEST(EventQueue, DeterministicInterleaving)
{
    // Two identical runs execute identical event sequences.
    auto run_once = []() {
        EventQueue q;
        std::vector<int> order;
        for (int i = 0; i < 50; ++i) {
            q.schedule(static_cast<Tick>(i % 7), [&order, i]() {
                order.push_back(i);
            });
        }
        q.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}
