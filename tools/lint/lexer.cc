#include "lint/lexer.hh"

#include <cctype>

namespace mcsim::lint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Trim ASCII whitespace from both ends. */
std::string
trim(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/**
 * Parse `mcsim-lint: name(reason) [, name(reason)]...` annotations out
 * of a comment body. A marker with nothing parseable after it is kept
 * as a malformed entry so the audit can flag it instead of silently
 * ignoring a typoed suppression.
 */
void
parseSuppressions(std::string_view comment, unsigned line, LexedFile &out)
{
    static constexpr std::string_view marker = "mcsim-lint:";
    std::size_t at = comment.find(marker);
    if (at == std::string_view::npos)
        return;
    std::string_view rest = comment.substr(at + marker.size());

    bool parsedAny = false;
    std::size_t pos = 0;
    while (pos < rest.size()) {
        while (pos < rest.size() &&
               (std::isspace(static_cast<unsigned char>(rest[pos])) ||
                rest[pos] == ','))
            ++pos;
        std::size_t nameStart = pos;
        while (pos < rest.size() &&
               (identChar(rest[pos]) || rest[pos] == '-'))
            ++pos;
        if (pos == nameStart)
            break;
        Suppression s;
        s.check = std::string(rest.substr(nameStart, pos - nameStart));
        s.line = line;
        if (pos < rest.size() && rest[pos] == '(') {
            std::size_t close = rest.find(')', pos + 1);
            if (close == std::string_view::npos) {
                s.reason = trim(rest.substr(pos + 1));
                pos = rest.size();
            } else {
                s.reason = trim(rest.substr(pos + 1, close - pos - 1));
                pos = close + 1;
            }
        }
        out.suppressions[line].push_back(std::move(s));
        parsedAny = true;
    }
    if (!parsedAny) {
        Suppression s;
        s.line = line;
        s.malformed = true;
        out.suppressions[line].push_back(std::move(s));
    }
}

/** Multi-character punctuators lexed as single tokens. `>` is always a
 *  single token so template-argument depth counting stays simple. */
constexpr std::string_view multiPunct[] = {
    "->*", "<<=", "...", "::", "->", "<=", ">=", "==", "!=",
    "&&",  "||",  "<<",  "+=", "-=", "*=", "/=", "|=", "&=",
    "^=",  "%=",  "++",  "--",
};

} // namespace

LexedFile
lex(std::string path, std::string source)
{
    LexedFile out;
    out.path = std::move(path);
    out.source = std::move(source);
    const std::string &src = out.source;

    unsigned line = 1;
    bool inDirective = false;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto newline = [&](std::size_t at) {
        ++line;
        // A directive continues past a backslash-newline.
        if (inDirective && !(at >= 1 && src[at - 1] == '\\'))
            inDirective = false;
    };

    while (i < n) {
        const char c = src[i];

        if (c == '\n') {
            newline(i);
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Line comment (may carry a suppression annotation).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            std::size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            parseSuppressions(
                std::string_view(src).substr(i + 2, end - i - 2), line, out);
            i = end;
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            std::size_t end = src.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            parseSuppressions(
                std::string_view(src).substr(i + 2, end - i - 2), line, out);
            for (std::size_t k = i; k < end; ++k) {
                if (src[k] == '\n')
                    newline(k);
            }
            i = end;
            continue;
        }

        // Preprocessor directive start (only at logical line start; good
        // enough: a mid-line `#` is the stringize operator, macro-only).
        if (c == '#') {
            bool lineStart = true;
            for (std::size_t k = i; k-- > 0;) {
                if (src[k] == '\n')
                    break;
                if (!std::isspace(static_cast<unsigned char>(src[k]))) {
                    lineStart = false;
                    break;
                }
            }
            if (lineStart)
                inDirective = true;
            ++i;
            continue;
        }

        // Identifier (and possible raw-string prefix).
        if (identStart(c)) {
            std::size_t start = i;
            while (i < n && identChar(src[i]))
                ++i;
            std::string_view text =
                std::string_view(src).substr(start, i - start);
            // Raw string: R"delim( ... )delim" with optional encoding
            // prefix folded into the identifier (u8R, LR, ...).
            if (i < n && src[i] == '"' && text.size() >= 1 &&
                text.back() == 'R' &&
                (text == "R" || text == "LR" || text == "uR" ||
                 text == "UR" || text == "u8R")) {
                std::size_t dStart = i + 1;
                std::size_t paren = src.find('(', dStart);
                if (paren == std::string::npos) {
                    i = n;
                    continue;
                }
                std::string closer = ")" +
                    src.substr(dStart, paren - dStart) + "\"";
                std::size_t end = src.find(closer, paren + 1);
                end = end == std::string::npos ? n : end + closer.size();
                out.tokens.push_back(
                    {Tok::String, std::string_view(), line, inDirective});
                for (std::size_t k = i; k < end; ++k) {
                    if (src[k] == '\n')
                        ++line;  // raw string: no continuation semantics
                }
                i = end;
                continue;
            }
            out.tokens.push_back({Tok::Ident, text, line, inDirective});
            continue;
        }

        // Number (incl. hex, digit separators, and suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t start = i;
            ++i;
            while (i < n) {
                const char d = src[i];
                if (identChar(d) || d == '.' || d == '\'') {
                    ++i;
                    continue;
                }
                // Exponent signs: 1e-5, 0x1p+3.
                if ((d == '+' || d == '-') &&
                    (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                     src[i - 1] == 'p' || src[i - 1] == 'P')) {
                    ++i;
                    continue;
                }
                break;
            }
            out.tokens.push_back(
                {Tok::Number, std::string_view(src).substr(start, i - start),
                 line, inDirective});
            continue;
        }

        // String / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t k = i + 1;
            while (k < n) {
                if (src[k] == '\\') {
                    k += 2;
                    continue;
                }
                if (src[k] == quote)
                    break;
                if (src[k] == '\n')
                    break;  // unterminated; tolerate
                ++k;
            }
            out.tokens.push_back({quote == '"' ? Tok::String : Tok::CharLit,
                                  std::string_view(), line, inDirective});
            i = k < n ? k + 1 : n;
            continue;
        }

        // Punctuation: longest multi-char unit first.
        std::string_view rest = std::string_view(src).substr(i);
        std::string_view matched;
        for (std::string_view p : multiPunct) {
            if (rest.substr(0, p.size()) == p) {
                matched = p;
                break;
            }
        }
        if (!matched.empty()) {
            out.tokens.push_back(
                {Tok::Punct, std::string_view(src).substr(i, matched.size()),
                 line, inDirective});
            i += matched.size();
        } else {
            out.tokens.push_back(
                {Tok::Punct, std::string_view(src).substr(i, 1), line,
                 inDirective});
            ++i;
        }
    }
    return out;
}

} // namespace mcsim::lint
