#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace mcsim
{

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < curTick_) {
        panic("event scheduled in the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick_));
    }
    events.push(Event{when, priority, nextSeq++, std::move(cb)});
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (!events.empty() && events.top().when <= limit) {
        // Move the callback out before popping so re-entrant scheduling
        // from within the callback is safe.
        Event ev = events.top();
        events.pop();
        curTick_ = ev.when;
        ev.cb();
        ++numExecuted;
        ++count;
    }
    if (curTick_ < limit && events.empty())
        curTick_ = limit;
    return count;
}

std::uint64_t
EventQueue::run(std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (!events.empty() && count < maxEvents) {
        Event ev = events.top();
        events.pop();
        curTick_ = ev.when;
        ev.cb();
        ++numExecuted;
        ++count;
    }
    return count;
}

} // namespace mcsim
