/**
 * @file
 * Parallel sweep engine: fans a Grid of SweepPoints across std::thread
 * workers, one fully isolated Machine per job.
 *
 * Isolation and determinism contract:
 *  - every job builds its own Machine, FunctionalMemory, and workload
 *    from its SweepPoint alone -- no state is shared between jobs, so
 *    results are independent of worker count and scheduling;
 *  - seeds are a pure function of the point (SweepPoint::seed, assigned
 *    by the grid builder, possibly via derivedSeed()) -- never wall
 *    clock;
 *  - a job that throws (FatalError: deadlock, maxCycles timeout budget,
 *    failed verify, rejected axiomatic trace) marks itself failed with
 *    the message and the sweep continues;
 *  - results are reported in grid order, so serializing them yields a
 *    byte-identical document no matter how many threads ran the sweep.
 *
 * Progress (completed count, elapsed, ETA) goes to stderr only; nothing
 * wall-clock-derived enters the results.
 */

#ifndef MCSIM_EXP_SWEEP_HH
#define MCSIM_EXP_SWEEP_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "exp/grid.hh"
#include "exp/json.hh"

namespace mcsim::exp
{

/** Outcome of one sweep job. */
struct JobResult
{
    SweepPoint point;
    bool ok = false;
    /** Failure description (fatal message, verify failure, axiom cycle
     *  witness); empty when ok. */
    std::string error;
    core::RunMetrics metrics;

    /** Axiomatic post-run check (only when point.recordTrace). @{ */
    bool traceChecked = false;
    bool traceAccepted = false;
    std::uint64_t traceEvents = 0;
    std::uint64_t traceEdges = 0;
    /** @} */
};

/** Sweep engine options. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
    /** Print per-job progress and ETA to stderr. */
    bool progress = true;
};

/**
 * Per-job completion sink: called once per finished job with the job's
 * grid-global point index. Calls are serialized (one at a time, under a
 * lock), so a sink may append to a checkpoint journal without its own
 * synchronization; completion ORDER is scheduling-dependent, so a sink
 * must never bake it into canonical output (the svc merge step orders by
 * index). Return false to stop scheduling new jobs -- jobs already in
 * flight still complete and are still reported.
 */
using JobSink = std::function<bool(std::size_t, const JobResult &)>;

/** Thread-pool sweep runner. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {});

    /** Run every point of @p grid; results in grid order. */
    std::vector<JobResult> run(const Grid &grid) const;

    /**
     * Run only the points of @p grid named by @p indices (the shard-aware
     * entry point: a shard is a subset of grid-global indices). Results
     * come back in @p indices order; failure annotations name the
     * grid-global index out of the full grid size, so a sharded run's
     * error strings are byte-identical to a whole-grid run's.
     */
    std::vector<JobResult>
    runIndices(const Grid &grid, const std::vector<std::size_t> &indices,
               const JobSink &on_complete = {}) const;

    /** Run one point in isolation (what each worker executes). */
    static JobResult runPoint(const SweepPoint &point);

  private:
    SweepOptions opts;
};

/** Results of one or more grids keyed for lookup by point id. */
class SweepOutcomes
{
  public:
    void add(const Grid &grid, std::vector<JobResult> results);

    /** Grids in insertion order. @{ */
    const std::vector<std::string> &gridsRun() const { return order; }
    const std::vector<JobResult> &gridResults(const std::string &g) const;
    /** @} */

    /** Lookup by point identity; fatal() when missing or failed. */
    const core::RunMetrics &metrics(const SweepPoint &point) const;

    /** Total and failed job counts across all grids. @{ */
    std::size_t totalJobs() const;
    std::size_t failedJobs() const;
    /** @} */

    /** The canonical results document ("mcsim-sweep-v1"). */
    Json toJson() const;

    /** Flat CSV (one row per job, fixed column set). */
    std::string toCsv() const;

  private:
    std::vector<std::string> order;
    std::vector<std::vector<JobResult>> perGrid;
};

/**
 * Convenience: run @p grid and wrap the results for lookup. The figure
 * benches use this to replace their serial config loops.
 */
SweepOutcomes runGrid(const Grid &grid, SweepOptions options = {});

/**
 * Canonical serialization of one job, exactly the element the
 * "mcsim-sweep-v1" document's grid arrays hold. Public so the svc
 * checkpoint journal can store -- and the merge step can splice --
 * byte-identical payloads. @{
 */
Json jobToJson(const JobResult &job);

/** The fixed CSV header row (trailing newline included). */
std::string csvHeader();

/**
 * One CSV row (trailing newline included) rebuilt from a job's canonical
 * JSON, so rows serialized from live results and rows merged from
 * journaled payloads are byte-identical by construction. fatal() if
 * @p job lacks a point field or a reference metric.
 */
std::string csvRowFromJson(const std::string &grid_name, const Json &job);
/** @} */

} // namespace mcsim::exp

#endif // MCSIM_EXP_SWEEP_HH
