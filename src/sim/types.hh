/**
 * @file
 * Fundamental simulator-wide type definitions.
 *
 * Part of mcsim, a reproduction of Zucker & Baer, "A Performance Study of
 * Memory Consistency Models" (UW TR 92-01-02 / ISCA 1992).
 */

#ifndef MCSIM_SIM_TYPES_HH
#define MCSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace mcsim
{

/** Simulated time, in processor cycles. */
using Tick = std::uint64_t;

/** A byte address in the simulated (shared or private) address space. */
using Addr = std::uint64_t;

/** Identifier of a processor (and of its network input port). */
using ProcId = std::uint32_t;

/** Identifier of a global memory module. */
using ModuleId = std::uint32_t;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** An invalid/unassigned address marker. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/**
 * Round @p value down to a multiple of @p align (power of two).
 */
constexpr Addr
alignDown(Addr value, Addr align)
{
    return value & ~(align - 1);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log base @p base of @p v, for small integers. */
constexpr unsigned
logCeil(std::uint64_t v, std::uint64_t base)
{
    unsigned stages = 0;
    std::uint64_t reach = 1;
    while (reach < v) {
        reach *= base;
        ++stages;
    }
    return stages;
}

} // namespace mcsim

#endif // MCSIM_SIM_TYPES_HH
