/**
 * @file
 * Functional (value-holding) image of the shared address space.
 *
 * Timing and function are decoupled: workloads perform loads and stores
 * against this byte store at instruction issue time, while the caches,
 * directory and networks model only timing. Synchronization operations are
 * the exception -- they execute functionally at their timed completion so
 * that lock handoffs and barrier releases are serialized exactly as the
 * hardware would serialize them (see DESIGN.md).
 */

#ifndef MCSIM_MEM_FUNCTIONAL_MEMORY_HH
#define MCSIM_MEM_FUNCTIONAL_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/types.hh"

namespace mcsim::mem
{

/** A flat, growable byte store for the simulated shared segment. */
class FunctionalMemory
{
  public:
    /** @param initial_bytes initial allocation (grows on demand). */
    explicit FunctionalMemory(std::size_t initial_bytes = 1 << 20);

    /** Currently backed size in bytes. */
    std::size_t size() const { return bytes.size(); }

    /** Read @p n bytes at @p addr into @p out. */
    void read(Addr addr, void *out, std::size_t n) const;

    /** Write @p n bytes from @p in at @p addr. */
    void write(Addr addr, const void *in, std::size_t n);

    /** Typed accessors. @{ */
    std::uint32_t readU32(Addr addr) const;
    void writeU32(Addr addr, std::uint32_t value);
    std::uint64_t readU64(Addr addr) const;
    void writeU64(Addr addr, std::uint64_t value);
    std::int64_t readI64(Addr addr) const;
    void writeI64(Addr addr, std::int64_t value);
    double readF64(Addr addr) const;
    void writeF64(Addr addr, double value);
    /** @} */

    /**
     * Atomic test-and-set used by lock acquisition: reads the 64-bit word
     * at @p addr and unconditionally writes 1. Returns the old value.
     */
    std::uint64_t testAndSet(Addr addr);

    /** Ensure addresses [0, limit) are backed. */
    void ensure(Addr limit);

    /**
     * FNV-1a hash over the full backed image. The chaos harness compares
     * a faulted run's fingerprint against its fault-free twin to assert
     * fault transparency: injected faults may change timing, never the
     * final memory contents.
     */
    std::uint64_t fingerprint() const;

    /** FNV-1a hash over [addr, addr + n): the range variant workloads
     *  use to fingerprint their output region when other parts of the
     *  image (scheduler stacks, scratch) legitimately vary with timing. */
    std::uint64_t fingerprint(Addr addr, std::size_t n) const;

  private:
    // A const read of an unbacked address returns zero without growing;
    // writes grow the store. mutable is avoided by pre-growing in ensure().
    std::vector<std::uint8_t> bytes;
};

} // namespace mcsim::mem

#endif // MCSIM_MEM_FUNCTIONAL_MEMORY_HH
