/**
 * @file
 * Litmus-test engine: directed multi-threaded micro-programs with
 * per-model allowed/forbidden outcome sets (DESIGN.md section 8).
 *
 * Each test is a handful of threads of abstract ops over a few shared
 * variables. The driver builds a small traced machine, runs the threads
 * with seed-controlled execution padding (to diversify interleavings),
 * and returns three things per run:
 *
 *  - the functional read values (the simulator's value flow -- always a
 *    sequentially consistent interleaving by construction);
 *  - the hardware-visible read values reconstructed by the axiomatic
 *    checker from the perform timestamps (these CAN exhibit the weak
 *    behaviors the model permits);
 *  - the axiomatic checker's verdict on the recorded trace.
 *
 * Tests assert that hardware outcomes stay inside the model's allowed
 * set and that every trace from a clean machine is accepted.
 */

#ifndef MCSIM_AXIOM_LITMUS_HH
#define MCSIM_AXIOM_LITMUS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "axiom/axiom_checker.hh"
#include "core/machine_config.hh"

namespace mcsim::core
{
class Machine;
} // namespace mcsim::core

namespace mcsim::axiom
{

/** One abstract litmus instruction. */
struct LitmusOp
{
    enum class Kind : std::uint8_t
    {
        W,      ///< plain store
        R,      ///< plain load (loadUse)
        SyncW,  ///< sync store (release under RC)
        SyncR,  ///< sync load (acquire under RC)
        Rmw,    ///< test-and-set (acquire under RC)
        Fence,  ///< SYNC instruction
    };

    Kind kind = Kind::R;
    unsigned var = 0;           ///< shared-variable index
    std::uint64_t value = 0;    ///< stores only
};

/**
 * One litmus test: threads, and the predicate deciding whether a given
 * tuple of hardware read values is allowed on a machine with the given
 * feature set. Reads are numbered thread-major in program order.
 */
struct LitmusTest
{
    std::string name;
    unsigned numVars = 2;
    std::vector<std::vector<LitmusOp>> threads;
    bool (*allowed)(const core::ModelParams &params,
                    const std::vector<std::uint64_t> &reads) = nullptr;
};

/** Result of one litmus run. */
struct LitmusRun
{
    /** Read values in the simulator's functional value flow. */
    std::vector<std::uint64_t> funcReads;
    /** Hardware-visible read values (axiomatic reconstruction). */
    std::vector<std::uint64_t> hwReads;
    /** Checker verdict on the recorded trace. */
    AxiomResult axiom;
    Tick runTicks = 0;
};

/** "1,0" -- outcome tuples for histograms and messages. */
std::string outcomeString(const std::vector<std::uint64_t> &reads);

/** The classic suite: SB, SB+fence, MP, MP+sync, LB, WRC, WRC+sync,
 *  IRIW, IRIW+sync, CoRR. */
const std::vector<LitmusTest> &litmusSuite();

/** A small traced machine configuration for litmus runs of @p model
 *  (4 procs, 4 modules, checking on, race detection off -- litmus
 *  programs race by design). */
core::MachineConfig litmusConfig(core::Model model);

/** Run @p test once on a machine built from @p config with @p seed
 *  driving the inter-op execution padding. @p prepare, when non-empty,
 *  is invoked on the freshly built machine before any workload starts
 *  (the model checker uses it to install test-only weakenings). */
LitmusRun runLitmus(const LitmusTest &test,
                    const core::MachineConfig &config, std::uint64_t seed,
                    const std::function<void(core::Machine &)> &prepare = {});

} // namespace mcsim::axiom

#endif // MCSIM_AXIOM_LITMUS_HH
