/**
 * @file
 * Generic network message envelope.
 *
 * The network layer is independent of the cache-coherence protocol: it
 * transports opaque payloads between numbered ports. The only payload
 * property the network layer ever inspects is bypassEligible, which marks
 * messages (loads, in WO2) allowed to jump to the head of an interface
 * buffer.
 */

#ifndef MCSIM_NET_MESSAGE_HH
#define MCSIM_NET_MESSAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace mcsim::net
{

/** Width of one network flit in bytes (one cycle per flit per stage). */
constexpr std::uint32_t flitBytes = 8;

/**
 * A message in flight on an Omega network.
 *
 * @tparam Payload protocol-level content carried opaquely.
 */
template <typename Payload>
struct Msg
{
    /** Input port the message enters at. */
    std::uint32_t src = 0;
    /** Output port the message must be delivered to. */
    std::uint32_t dst = 0;
    /** Message size in bytes; determines flit count and port occupancy. */
    std::uint32_t bytes = flitBytes;
    /** True when an interface buffer may promote this message (WO2 loads). */
    bool bypassEligible = false;
    /** Tick at which the sender handed the message to the interface. */
    Tick createdAt = 0;
    /** Protocol-level content. */
    Payload payload{};

    /** Number of flits (>= 1). */
    std::uint32_t
    flits() const
    {
        return bytes == 0 ? 1 : (bytes + flitBytes - 1) / flitBytes;
    }
};

} // namespace mcsim::net

#endif // MCSIM_NET_MESSAGE_HH
