/**
 * @file
 * Tests of the consistency-model stall rules in the processor (paper
 * Table 1): SC's single-outstanding gate, WO's multiple outstanding
 * references and sync drains, blocking-load variants, SC2's stall
 * prefetch, and RC's deferred releases.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/machine.hh"
#include "cpu/processor.hh"
#include "sim/task.hh"

using namespace mcsim;
using core::Model;

namespace
{

core::MachineConfig
config(Model m, unsigned line = 16)
{
    core::MachineConfig cfg;
    cfg.numProcs = 4;
    cfg.numModules = 4;
    cfg.model = m;
    cfg.cacheBytes = 2048;
    cfg.lineBytes = line;
    return cfg;
}

/** N independent load misses issued back to back, then all used.
 *  The 0x110 stride spreads the lines across memory modules so module
 *  occupancy does not serialize what the model would overlap. */
SimTask
parallelLoads(cpu::Processor &p, unsigned n, Tick &start, Tick &end)
{
    start = p.now();
    std::vector<std::uint64_t> tokens;
    for (unsigned i = 0; i < n; ++i)
        tokens.push_back(co_await p.load(0x1000 + i * 0x110));
    for (auto t : tokens)
        (void)co_await p.use(t);
    end = p.now();
}

SimTask
storeThenLoadElsewhere(cpu::Processor &p, Tick &start, Tick &end)
{
    start = p.now();
    co_await p.store(0x1000, 1);
    (void)co_await p.loadUse(0x2000);
    end = p.now();
}

SimTask
fenceAfterStore(cpu::Processor &p, Tick &start, Tick &end)
{
    co_await p.store(0x1000, 1);
    start = p.now();
    co_await p.fence();
    end = p.now();
}

SimTask
releaseTimeline(cpu::Processor &p, Tick &store_done, Tick &release_done,
                Tick &after)
{
    co_await p.store(0x1000, 1);  // outstanding miss
    store_done = p.now();
    co_await p.syncStore(0x2000, 1);  // release
    release_done = p.now();
    co_await p.exec(1);
    after = p.now();
}

SimTask
doubleRelease(cpu::Processor &p, Tick &first, Tick &second)
{
    co_await p.store(0x1000, 1);
    co_await p.syncStore(0x2000, 1);
    first = p.now();
    co_await p.syncStore(0x3000, 1);  // must wait for release #1
    second = p.now();
}

} // namespace

TEST(ProcessorModels, WO1OverlapsIndependentMisses)
{
    Tick s_sc = 0, e_sc = 0, s_wo = 0, e_wo = 0;
    {
        core::Machine m(config(Model::SC1));
        m.startWorkload(0, parallelLoads(m.proc(0), 4, s_sc, e_sc));
        m.run();
    }
    {
        core::Machine m(config(Model::WO1));
        m.startWorkload(0, parallelLoads(m.proc(0), 4, s_wo, e_wo));
        m.run();
    }
    // On this 4-port machine the network has one stage, so an
    // uncontended miss costs 16 cycles. SC1 serializes four misses;
    // WO1 overlaps them in its five MSHRs.
    EXPECT_GE(e_sc - s_sc, 4 * 16u);
    EXPECT_LT(e_wo - s_wo, 2 * 16u + 8);
}

TEST(ProcessorModels, WO1LimitedByMshrCount)
{
    // Six misses with 5 MSHRs: the sixth waits for a free slot.
    Tick s = 0, e5 = 0, e6 = 0;
    {
        core::Machine m(config(Model::WO1));
        m.startWorkload(0, parallelLoads(m.proc(0), 5, s, e5));
        m.run();
    }
    {
        core::Machine m(config(Model::WO1));
        Tick s6 = 0;
        m.startWorkload(0, parallelLoads(m.proc(0), 6, s6, e6));
        m.run();
    }
    EXPECT_GT(e6, e5);
}

TEST(ProcessorModels, SC1SerializesStoreThenLoad)
{
    // Strict SC1 (the paper configuration): a subsequent load stalls at
    // issue until the outstanding store miss is globally performed.
    Tick s = 0, e = 0;
    core::Machine m(config(Model::SC1));
    m.startWorkload(0, storeThenLoadElsewhere(m.proc(0), s, e));
    m.run();
    EXPECT_GE(e - s, 2 * 16u);  // two serialized misses
    EXPECT_GT(m.proc(0).stats().issueStallCycles, 0u);
}

TEST(ProcessorModels, ScStoreBufferReleaseAblationHidesWriteLatency)
{
    // With the ablatable store-buffer-release feature enabled, the
    // store's outstanding slot frees at the network hand-off and the
    // next load overlaps the store's fill.
    Tick s = 0, e = 0;
    auto cfg = config(Model::SC1);
    auto mp = core::modelParams(Model::SC1);
    mp.scStoreBufferRelease = true;
    mp.numMshrs = 2;  // one background fill + one demand reference
    cfg.modelOverride = mp;
    core::Machine m(cfg);
    m.startWorkload(0, storeThenLoadElsewhere(m.proc(0), s, e));
    m.run();
    EXPECT_LE(e - s, 28u);
}

TEST(ProcessorModels, WO1FenceDrainsOutstandingStores)
{
    Tick s = 0, e = 0;
    core::Machine m(config(Model::WO1));
    m.startWorkload(0, fenceAfterStore(m.proc(0), s, e));
    m.run();
    // The fence waits for the store's global completion (~18 cycles).
    EXPECT_GE(e - s, 12u);
    EXPECT_GT(m.proc(0).stats().drainStallCycles, 0u);
}

TEST(ProcessorModels, SC1FenceIsFree)
{
    Tick s = 0, e = 0;
    core::Machine m(config(Model::SC1));
    m.startWorkload(0, fenceAfterStore(m.proc(0), s, e));
    m.run();
    EXPECT_LE(e - s, 2u);
}

TEST(ProcessorModels, RCReleaseDoesNotStall)
{
    Tick store_done = 0, release_done = 0, after = 0;
    core::Machine m(config(Model::RC));
    m.startWorkload(0, releaseTimeline(m.proc(0), store_done,
                                       release_done, after));
    m.run();
    // The release is deferred behind the outstanding store, but the
    // processor continues immediately.
    EXPECT_EQ(release_done - store_done, 1u);
    EXPECT_EQ(after - release_done, 1u);
    EXPECT_EQ(m.proc(0).stats().releasesDeferred, 1u);
}

TEST(ProcessorModels, WO1ReleaseStallsUntilPerformed)
{
    Tick store_done = 0, release_done = 0, after = 0;
    core::Machine m(config(Model::WO1));
    m.startWorkload(0, releaseTimeline(m.proc(0), store_done,
                                       release_done, after));
    m.run();
    // Drain the store (~17 remaining) plus the sync store's own miss.
    EXPECT_GE(release_done - store_done, 30u);
    EXPECT_EQ(m.proc(0).stats().releasesDeferred, 0u);
}

TEST(ProcessorModels, RCSecondReleaseWaitsForFirst)
{
    Tick first = 0, second = 0;
    core::Machine m(config(Model::RC));
    m.startWorkload(0, doubleRelease(m.proc(0), first, second));
    m.run();
    // Release #2 is gated until release #1 completes globally.
    EXPECT_GE(second - first, 18u);
    EXPECT_GT(m.proc(0).stats().syncStallCycles, 0u);
}

TEST(ProcessorModels, BlockingLoadsStallAtIssue)
{
    Tick s_b = 0, e_b = 0, s_n = 0, e_n = 0;
    {
        core::Machine m(config(Model::BWO1));
        m.startWorkload(0, parallelLoads(m.proc(0), 3, s_b, e_b));
        m.run();
    }
    {
        core::Machine m(config(Model::WO1));
        m.startWorkload(0, parallelLoads(m.proc(0), 3, s_n, e_n));
        m.run();
    }
    // Blocking loads serialize the three misses (16 cycles each on this
    // single-stage machine).
    EXPECT_GE(e_b - s_b, 3 * 16u);
    EXPECT_LT(e_n - s_n, 40u);
}

TEST(ProcessorModels, SC2PrefetchesTheStalledAccess)
{
    // Two load misses: under SC2 the second is prefetched during the
    // stall and merges when it finally issues.
    Tick s2 = 0, e2 = 0, s1 = 0, e1 = 0;
    core::Machine m2(config(Model::SC2));
    m2.startWorkload(0, parallelLoads(m2.proc(0), 2, s2, e2));
    m2.run();
    core::Machine m1(config(Model::SC1));
    m1.startWorkload(0, parallelLoads(m1.proc(0), 2, s1, e1));
    m1.run();

    EXPECT_EQ(m2.cache(0).stats().prefetchesIssued, 1u);
    EXPECT_EQ(m2.cache(0).stats().prefetchesUseful, 1u);
    EXPECT_LT(e2 - s2, e1 - s1);  // pipelined misses beat serialized
    EXPECT_EQ(m1.cache(0).stats().prefetchesIssued, 0u);
}

TEST(ProcessorModels, RegisterInterlockTiming)
{
    // A use immediately after a hit load stalls loadDelay-1 extra cycles;
    // a use after enough computation does not stall at all.
    core::Machine m(config(Model::WO1));
    Tick t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    m.startWorkload(0, [](cpu::Processor &p, Tick &a, Tick &b, Tick &c,
                          Tick &d) -> SimTask {
        co_await p.store(0x100, 7);  // line now Modified (after miss)
        co_await p.exec(100);
        a = p.now();
        const auto tok = co_await p.load(0x100);  // hit
        (void)co_await p.use(tok);                // stalls until +4
        b = p.now();
        c = p.now();
        const auto tok2 = co_await p.load(0x100);
        co_await p.exec(10);
        (void)co_await p.use(tok2);  // ready long ago: free
        d = p.now();
    }(m.proc(0), t0, t1, t2, t3));
    m.run();
    EXPECT_EQ(t1 - t0, 4u);   // issue (1) + interlock to loadDelay
    EXPECT_EQ(t3 - t2, 11u);  // issue (1) + exec(10), no stall
}

TEST(ProcessorModels, DoneHandlerAndStats)
{
    core::Machine m(config(Model::SC1));
    Tick s = 0, e = 0;
    m.startWorkload(0, parallelLoads(m.proc(0), 2, s, e));
    m.run();
    EXPECT_TRUE(m.proc(0).done());
    EXPECT_EQ(m.proc(0).stats().loads, 2u);
    EXPECT_GT(m.proc(0).stats().instructions, 2u);
    EXPECT_EQ(m.proc(0).outstandingRefs(), 0u);
    EXPECT_FALSE(m.proc(0).releaseInFlight());
}
