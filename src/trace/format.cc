#include "trace/format.hh"

#include <array>
#include <cstring>

#include "sim/logging.hh"

namespace mcsim::trace
{

const char *
generatorName(Generator generator)
{
    switch (generator) {
      case Generator::Captured: return "captured";
      case Generator::Zipfian: return "zipf";
      case Generator::Bursty: return "burst";
      case Generator::Ring: return "ring";
      case Generator::LockStorm: return "lock";
    }
    return "?";
}

Generator
generatorFromName(const std::string &name)
{
    if (name == "captured")
        return Generator::Captured;
    if (name == "zipf")
        return Generator::Zipfian;
    if (name == "burst")
        return Generator::Bursty;
    if (name == "ring")
        return Generator::Ring;
    if (name == "lock")
        return Generator::LockStorm;
    fatal("unknown generator '%s' (zipf/burst/ring/lock)", name.c_str());
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

namespace
{

/** CRC-32 (reflected 0xEDB88320) lookup table, built once. */
std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (unsigned k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

namespace
{

/** Unsigned LEB128. @{ */
void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::uint8_t *data, std::size_t size, std::size_t &pos,
          const char *context)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= size) {
            fatal("trace: truncated record (payload ends mid-varint) "
                  "in %s", context);
        }
        const std::uint8_t byte = data[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
        if (!(byte & 0x80u))
            return v;
    }
    fatal("trace: overlong varint in %s", context);
}
/** @} */

/** Zigzag-signed varint (deltas). @{ */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}
/** @} */

/**
 * Stable wire opcodes: the on-disk identity of each OpKind. Never reuse
 * or renumber -- add new codes at the tail and bump traceVersion if the
 * semantics of existing ones change.
 */
std::uint8_t
wireOpcode(OpKind kind)
{
    switch (kind) {
      case OpKind::Exec: return 0;
      case OpKind::Load: return 1;
      case OpKind::Use: return 2;
      case OpKind::LoadUse: return 3;
      case OpKind::Store: return 4;
      case OpKind::SyncLoad: return 5;
      case OpKind::SyncRmw: return 6;
      case OpKind::SyncStore: return 7;
      case OpKind::Fence: return 8;
    }
    panic("wireOpcode: bad OpKind %u", static_cast<unsigned>(kind));
}

constexpr std::uint8_t opcodeLimit = 9;

OpKind
kindFromWire(std::uint8_t opcode, const char *context)
{
    switch (opcode) {
      case 0: return OpKind::Exec;
      case 1: return OpKind::Load;
      case 2: return OpKind::Use;
      case 3: return OpKind::LoadUse;
      case 4: return OpKind::Store;
      case 5: return OpKind::SyncLoad;
      case 6: return OpKind::SyncRmw;
      case 7: return OpKind::SyncStore;
      case 8: return OpKind::Fence;
      default:
        fatal("trace: unknown record opcode %u in %s",
              static_cast<unsigned>(opcode), context);
    }
}

constexpr std::uint8_t widthFlag = 0x10;
constexpr std::uint8_t ownFlag = 0x20;

bool
carriesAddr(OpKind kind)
{
    switch (kind) {
      case OpKind::Load:
      case OpKind::LoadUse:
      case OpKind::Store:
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
      case OpKind::SyncStore:
        return true;
      case OpKind::Exec:
      case OpKind::Use:
      case OpKind::Fence:
        return false;
    }
    panic("carriesAddr: bad OpKind %u", static_cast<unsigned>(kind));
}

} // namespace

void
encodeRecord(std::vector<std::uint8_t> &out, CodecState &state,
             const Record &rec)
{
    std::uint8_t head = wireOpcode(rec.kind);
    if (rec.width == 4)
        head |= widthFlag;
    if (rec.own)
        head |= ownFlag;
    out.push_back(head);

    if (carriesAddr(rec.kind)) {
        putVarint(out, zigzag(static_cast<std::int64_t>(
                           rec.addr - state.prevAddr)));
        state.prevAddr = rec.addr;
    }
    switch (rec.kind) {
      case OpKind::Exec:
        putVarint(out, rec.cycles);
        break;
      case OpKind::Use:
        putVarint(out, zigzag(static_cast<std::int64_t>(
                           rec.token - state.prevToken)));
        state.prevToken = rec.token;
        break;
      case OpKind::Store:
      case OpKind::SyncStore:
        putVarint(out, rec.value);
        break;
      case OpKind::Load:
      case OpKind::LoadUse:
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
      case OpKind::Fence:
        break;
    }
}

Record
decodeRecord(const std::uint8_t *data, std::size_t size, std::size_t &pos,
             CodecState &state, const char *context)
{
    if (pos >= size)
        fatal("trace: truncated record (empty payload tail) in %s", context);
    const std::uint8_t head = data[pos++];
    const std::uint8_t opcode = head & 0x0Fu;
    if (opcode >= opcodeLimit || (head & ~std::uint8_t(0x3Fu)) != 0) {
        fatal("trace: unknown record opcode 0x%02x in %s",
              static_cast<unsigned>(head), context);
    }

    Record rec;
    rec.kind = kindFromWire(opcode, context);
    rec.width = (head & widthFlag) ? 4 : 8;
    rec.own = (head & ownFlag) != 0;

    const bool isLoad =
        rec.kind == OpKind::Load || rec.kind == OpKind::LoadUse;
    if (rec.own && !isLoad)
        fatal("trace: ownership flag on a non-load record in %s", context);
    if (rec.width == 4 && !isLoad && rec.kind != OpKind::Store)
        fatal("trace: 32-bit width flag on a non-data record in %s",
              context);

    if (carriesAddr(rec.kind)) {
        const std::int64_t delta =
            unzigzag(getVarint(data, size, pos, context));
        rec.addr = state.prevAddr + static_cast<Addr>(delta);
        state.prevAddr = rec.addr;
    }
    switch (rec.kind) {
      case OpKind::Exec: {
        const std::uint64_t cycles = getVarint(data, size, pos, context);
        if (cycles > UINT32_MAX)
            fatal("trace: exec cycle count overflows 32 bits in %s",
                  context);
        rec.cycles = static_cast<std::uint32_t>(cycles);
        break;
      }
      case OpKind::Use: {
        const std::int64_t delta =
            unzigzag(getVarint(data, size, pos, context));
        rec.token = state.prevToken + static_cast<std::uint64_t>(delta);
        state.prevToken = rec.token;
        break;
      }
      case OpKind::Store:
      case OpKind::SyncStore:
        rec.value = getVarint(data, size, pos, context);
        break;
      case OpKind::Load:
      case OpKind::LoadUse:
      case OpKind::SyncLoad:
      case OpKind::SyncRmw:
      case OpKind::Fence:
        break;
    }
    return rec;
}

namespace
{

/** Bytes reserved for the NUL-padded source label in the header. */
constexpr std::size_t sourceBytes = 24;

} // namespace

std::vector<std::uint8_t>
encodeHeader(const TraceHeader &header)
{
    std::vector<std::uint8_t> out;
    out.reserve(headerBytes);
    putU32(out, traceMagic);
    putU16(out, traceVersion);
    putU16(out, 0);
    putU32(out, header.procCount);
    putU32(out, static_cast<std::uint32_t>(header.generator));
    putU64(out, header.seed);
    putU64(out, header.totalRecords);
    char label[sourceBytes] = {};
    // Truncate silently: the label is descriptive, not load-bearing.
    std::strncpy(label, header.source.c_str(), sourceBytes - 1);
    out.insert(out.end(), label, label + sourceBytes);
    putU32(out, 0);
    putU32(out, crc32(out.data(), out.size()));
    return out;
}

TraceHeader
decodeHeader(const std::uint8_t *data)
{
    if (getU32(data) != traceMagic)
        fatal("trace: bad magic (not a mcsim trace file)");
    const std::uint16_t version = getU16(data + 4);
    if (version != traceVersion) {
        fatal("trace: unsupported trace version %u (this build reads "
              "version %u)", static_cast<unsigned>(version),
              static_cast<unsigned>(traceVersion));
    }
    const std::uint32_t stored = getU32(data + headerBytes - 4);
    if (crc32(data, headerBytes - 4) != stored)
        fatal("trace: header CRC mismatch (corrupt file)");

    TraceHeader header;
    header.procCount = getU32(data + 8);
    const std::uint32_t gen = getU32(data + 12);
    if (gen > static_cast<std::uint32_t>(Generator::LockStorm))
        fatal("trace: unknown generator id %u in header", gen);
    header.generator = static_cast<Generator>(gen);
    header.seed = getU64(data + 16);
    header.totalRecords = getU64(data + 24);
    const char *label = reinterpret_cast<const char *>(data + 32);
    header.source.assign(label, strnlen(label, sourceBytes));
    if (header.procCount == 0 || header.procCount > 1024)
        fatal("trace: implausible processor count %u in header",
              header.procCount);
    return header;
}

} // namespace mcsim::trace
