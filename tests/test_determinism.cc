/**
 * @file
 * Determinism contract of the sweep engine (DESIGN.md section 9): the
 * same grid serializes to a byte-identical results document no matter
 * how many worker threads ran it, and re-running a point reproduces its
 * metrics bit-for-bit. These properties are what make exact-match golden
 * baselines (test_golden.cc) possible at all.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/grid.hh"
#include "exp/json.hh"
#include "exp/sweep.hh"
#include "sim/random.hh"

using namespace mcsim;

namespace
{

/** A cross-model slice of the quick grid, small enough to run twice. */
exp::Grid
sliceGrid()
{
    const exp::Grid full = exp::namedGrid("quick", exp::Scale::Quick);
    exp::Grid slice{full.name, {}};
    // Every 3rd point: samples several models and workloads.
    for (std::size_t i = 0; i < full.points.size(); i += 3)
        slice.points.push_back(full.points[i]);
    return slice;
}

exp::SweepOutcomes
runWithThreads(const exp::Grid &grid, unsigned threads)
{
    exp::SweepOptions opts;
    opts.threads = threads;
    opts.progress = false;
    return exp::runGrid(grid, opts);
}

} // namespace

TEST(Determinism, JsonByteIdenticalAcrossThreadCounts)
{
    const exp::Grid grid = sliceGrid();
    const std::string serial = runWithThreads(grid, 1).toJson().dump();
    const std::string threaded = runWithThreads(grid, 4).toJson().dump();
    EXPECT_EQ(serial, threaded);

    const std::string csv1 = runWithThreads(grid, 1).toCsv();
    const std::string csv4 = runWithThreads(grid, 4).toCsv();
    EXPECT_EQ(csv1, csv4);
}

TEST(Determinism, TraceGridIsByteIdenticalAcrossThreadCounts)
{
    // The trace-replay benches hold the same contract as the paper
    // workloads: generators and replay are deterministic, so the grid
    // document is identical at any worker count.
    const exp::Grid full =
        exp::namedGrid("trace-quick", exp::Scale::Quick);
    exp::Grid slice{full.name, {}};
    for (std::size_t i = 0; i < full.points.size(); i += 5)
        slice.points.push_back(full.points[i]);

    const std::string serial = runWithThreads(slice, 1).toJson().dump();
    const std::string threaded =
        runWithThreads(slice, 4).toJson().dump();
    EXPECT_EQ(serial, threaded);
}

TEST(Determinism, RepeatedPointIsBitIdentical)
{
    exp::SweepPoint point;
    point.benchmark = "Qsort";
    point.model = core::Model::WO1;
    point.scale = exp::Scale::Quick;
    point.numProcs = 8;
    point.cacheBytes = 4096;
    point.seed = point.derivedSeed();

    const exp::JobResult a = exp::SweepRunner::runPoint(point);
    const exp::JobResult b = exp::SweepRunner::runPoint(point);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;

    const StatSet sa = a.metrics.toStatSet();
    const StatSet sb = b.metrics.toStatSet();
    for (const auto &[name, value] : sa)
        EXPECT_EQ(value, sb.get(name)) << name;
}

TEST(Determinism, SeedIsPureFunctionOfThePoint)
{
    const exp::Grid grid = exp::namedGrid("quick", exp::Scale::Quick);
    for (const exp::SweepPoint &p : grid.points) {
        // Stable: recomputing the derivation gives the assigned seed
        // back (derivedSeed() hashes the seedless id).
        EXPECT_EQ(p.seed, p.derivedSeed());
    }
    // And distinct points get distinct seeds.
    EXPECT_NE(grid.points[0].derivedSeed(), grid.points[1].derivedSeed());
}

namespace
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else {
            cell += c;
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

} // namespace

// The CSV export is derived from RunMetrics::toStatSet, so every metric
// added there (MSHR occupancy from the sweep engine PR, the stall-cause
// breakdown and histogram quantiles from src/obs/) must appear as a
// column whose cell matches the StatSet value under the canonical JSON
// number formatting.
TEST(Determinism, CsvCarriesMshrAndObsColumns)
{
    exp::Grid grid{"quick", {sliceGrid().points.front()}};
    const exp::SweepOutcomes outcomes = runWithThreads(grid, 1);
    const std::string csv = outcomes.toCsv();

    const std::size_t eol = csv.find('\n');
    ASSERT_NE(eol, std::string::npos);
    const std::vector<std::string> header =
        splitCsvLine(csv.substr(0, eol));
    const std::size_t eol2 = csv.find('\n', eol + 1);
    ASSERT_NE(eol2, std::string::npos);
    const std::vector<std::string> row =
        splitCsvLine(csv.substr(eol + 1, eol2 - eol - 1));
    ASSERT_EQ(header.size(), row.size());

    const StatSet stats =
        outcomes.metrics(grid.points.front()).toStatSet();
    const char *required[] = {
        "mshrBusyCycles",     "avgMshrOccupancy",
        "busyCycles",         "idleCycles",
        "stallLoadMissCycles", "stallStoreMshrCycles",
        "stallBufferCycles",  "stallFenceSyncCycles",
        "stallAcquireCycles", "stallReleaseCycles",
        "missLatencyP50",     "missLatencyMax",
        "netTransitP99",      "memQueueP90",
    };
    for (const char *name : required) {
        std::size_t col = header.size();
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i] == name)
                col = i;
        }
        ASSERT_LT(col, header.size()) << name << " missing from header";
        // Cells reuse the canonical JSON number formatting.
        EXPECT_EQ(row[col], exp::Json(stats.get(name)).dump()) << name;
    }
}

TEST(Determinism, HashPrimitivesAreFixed)
{
    // The seed derivation must never drift: golden baselines embed the
    // seeds. Pin the reference vectors of both primitives.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
}
