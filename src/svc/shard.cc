#include "svc/shard.hh"

#include <algorithm>
#include <cstdio>

#include <dirent.h>

#include "core/machine_config.hh"
#include "fault/fault_config.hh"
#include "mem/cache.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace mcsim::svc
{

std::uint64_t
ShardPlan::fingerprint() const
{
    // A canonical self-describing string, hashed: cheap, stable across
    // processes, and any change to what a shard would execute -- point
    // set, order, seeds, mode, preset, partition width -- changes it.
    std::string canon = strprintf(
        "mcsim-svc-plan-v1|%s|%s|%s|%s|%u|%zu", runModeName(mode),
        preset.c_str(), grid.name.c_str(), exp::scaleName(scale),
        shardCount, grid.points.size());
    for (const exp::SweepPoint &point : grid.points) {
        canon += '|';
        canon += point.id();
    }
    return splitmix64(fnv1a(canon));
}

std::vector<std::size_t>
ShardPlan::shardIndices(std::uint32_t shard) const
{
    std::vector<std::size_t> indices;
    for (std::size_t i = shard; i < grid.points.size(); i += shardCount)
        indices.push_back(i);
    return indices;
}

std::uint32_t
ShardPlan::shardPoints(std::uint32_t shard) const
{
    const std::size_t total = grid.points.size();
    return static_cast<std::uint32_t>(
        total / shardCount + (total % shardCount > shard ? 1 : 0));
}

JournalHeader
ShardPlan::journalHeader(std::uint32_t shard) const
{
    JournalHeader header;
    header.mode = mode;
    header.shardIndex = shard;
    header.shardCount = shardCount;
    header.gridPoints = static_cast<std::uint32_t>(grid.points.size());
    header.shardPoints = shardPoints(shard);
    header.planFingerprint = fingerprint();
    header.grid = grid.name;
    return header;
}

std::string
ShardPlan::journalFileName(std::uint32_t shard) const
{
    return strprintf("%s.s%03u-of-%03u.mcsj", grid.name.c_str(), shard,
                     shardCount);
}

std::string
ShardPlan::journalPath(const std::string &dir, std::uint32_t shard) const
{
    return dir + "/" + journalFileName(shard);
}

JournalHeader
ShardPlan::stealJournalHeader(std::uint32_t victim, std::uint16_t slice,
                              std::uint16_t slices,
                              std::uint32_t slice_points) const
{
    JournalHeader header = journalHeader(victim);
    header.kind = JournalKind::Steal;
    header.stealSlice = slice;
    header.stealSlices = slices;
    header.shardPoints = slice_points;
    return header;
}

std::string
ShardPlan::stealJournalFileName(std::uint32_t victim, std::uint16_t slice,
                                std::uint16_t slices) const
{
    return strprintf("%s.s%03u-of-%03u.steal%02u-of-%02u.mcsj",
                     grid.name.c_str(), victim, shardCount, slice,
                     slices);
}

std::string
ShardPlan::stealJournalPath(const std::string &dir, std::uint32_t victim,
                            std::uint16_t slice,
                            std::uint16_t slices) const
{
    return dir + "/" + stealJournalFileName(victim, slice, slices);
}

std::vector<std::string>
findStealJournals(const ShardPlan &plan, const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return {};
    std::vector<std::string> names;
    for (struct dirent *de = ::readdir(d); de != nullptr;
         de = ::readdir(d))
        names.emplace_back(de->d_name);
    ::closedir(d);
    // Fixed-width canonical names sort exactly in (victim, slice)
    // order, so a plain sort makes discovery order deterministic.
    std::sort(names.begin(), names.end());

    std::vector<std::string> out;
    const std::string prefix = plan.grid.name + ".s";
    for (const std::string &name : names) {
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        unsigned victim = 0, count = 0, slice = 0, slices = 0;
        if (std::sscanf(name.c_str() + prefix.size(),
                        "%3u-of-%3u.steal%2u-of-%2u.mcsj", &victim,
                        &count, &slice, &slices) != 4)
            continue;
        // Round-trip through the canonical formatter: anything that is
        // not byte-for-byte a steal journal of THIS plan shape (wrong
        // shard count, stray suffix, zero-width fields) is ignored.
        if (count != plan.shardCount || victim >= plan.shardCount ||
            slices == 0 || slice >= slices)
            continue;
        if (name != plan.stealJournalFileName(
                        victim, static_cast<std::uint16_t>(slice),
                        static_cast<std::uint16_t>(slices)))
            continue;
        out.push_back(dir + "/" + name);
    }
    return out;
}

ShardPlan
buildShardPlan(const PlanOptions &options)
{
    if (options.shards == 0)
        fatal("svc: a plan needs at least one shard");
    if (options.mode == RunMode::Chaos && options.preset.empty())
        fatal("svc: chaos mode needs a fault preset");
    if (!options.preset.empty())
        (void)fault::faultPreset(options.preset); // name check, fatal()s

    ShardPlan plan;
    plan.grid = exp::namedGrid(options.grid, options.scale);
    plan.scale = options.scale;
    plan.mode = options.mode;
    plan.shardCount = options.shards;
    if (options.mode == RunMode::Chaos)
        plan.preset = options.preset;

    for (exp::SweepPoint &point : plan.grid.points) {
        if (options.procs)
            point.numProcs = options.procs;
        if (options.cacheBytes)
            point.cacheBytes = options.cacheBytes;
        if (options.lineBytes)
            point.lineBytes = options.lineBytes;
        if (options.mode == RunMode::Sweep && !options.preset.empty())
            point.faultPreset = options.preset;
        // sweep_runner's fail-fast discipline: dry-build the machine
        // configuration so a bad geometry fails before any fork, named
        // after its point, never mid-shard inside a worker process.
        try {
            const core::MachineConfig cfg = point.machineConfig();
            cfg.validate();
            mem::CacheParams cache;
            cache.cacheBytes = cfg.cacheBytes;
            cache.lineBytes = cfg.lineBytes;
            cache.assoc = cfg.assoc;
            cache.validate();
        } catch (const FatalError &err) {
            fatal("svc: point %s: %s", point.id().c_str(), err.what());
        }
    }
    return plan;
}

} // namespace mcsim::svc
