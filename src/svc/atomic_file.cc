#include "svc/atomic_file.hh"

#include <cstdio>

#include <sys/stat.h>

#include "sim/logging.hh"

namespace mcsim::svc
{

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string temp = path + ".tmp";
    std::FILE *file = std::fopen(temp.c_str(), "wb");
    if (file == nullptr)
        fatal("cannot write '%s'", temp.c_str());
    const bool wrote =
        content.empty() ||
        std::fwrite(content.data(), 1, content.size(), file) ==
            content.size();
    // fflush pushes the bytes to the OS before the rename publishes the
    // name; a kill after the rename therefore always leaves a complete
    // file (crash consistency against SIGKILL, not power loss).
    const bool flushed = wrote && std::fflush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    if (!wrote || !flushed || !closed) {
        std::remove(temp.c_str());
        fatal("short write to '%s'", temp.c_str());
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        fatal("cannot rename '%s' into '%s'", temp.c_str(), path.c_str());
    }
}

void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        return;
    // Walk the components left to right, creating each prefix; EEXIST
    // is checked by stat so a file in the way is a clear error.
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        const std::string prefix = path.substr(0, next);
        pos = next + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        struct stat st = {};
        if (::stat(prefix.c_str(), &st) == 0) {
            if (!S_ISDIR(st.st_mode))
                fatal("svc: '%s' exists and is not a directory",
                      prefix.c_str());
            continue;
        }
        if (::mkdir(prefix.c_str(), 0777) != 0) {
            // A concurrent worker may have just created it.
            if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
                fatal("svc: cannot create directory '%s'",
                      prefix.c_str());
        }
    }
}

} // namespace mcsim::svc
