#include "exp/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <cstdio>
#include <mutex>
#include <thread>

#include "axiom/axiom_checker.hh"
#include "core/machine.hh"
#include "sim/logging.hh"

namespace mcsim::exp
{

SweepRunner::SweepRunner(SweepOptions options) : opts(options)
{
    if (opts.threads == 0) {
        opts.threads = std::thread::hardware_concurrency();
        if (opts.threads == 0)
            opts.threads = 1;
    }
}

JobResult
SweepRunner::runPoint(const SweepPoint &point)
{
    JobResult result;
    result.point = point;
    try {
        core::MachineConfig cfg = point.machineConfig();
        auto workload = point.makeWorkload();
        if (!workload->dataRaceFree())
            cfg.check.races = false;

        core::Machine machine(cfg);
        workload->setup(machine);
        const Tick last = machine.run();
        workload->verify(machine);
        result.metrics = core::RunMetrics::fromMachine(machine, last);

        if (axiom::TraceRecorder *rec = machine.traceRecorder()) {
            const axiom::Trace &trace = rec->finish();
            const axiom::AxiomResult verdict =
                axiom::checkTrace(trace, cfg.modelParams());
            result.traceChecked = true;
            result.traceAccepted = verdict.ok;
            result.traceEvents = trace.events.size();
            result.traceEdges = verdict.edgeCount;
            if (!verdict.ok) {
                result.error = "axiomatic trace rejected: " +
                               verdict.message;
                return result;
            }
        }
        result.ok = true;
    } catch (const std::exception &err) {
        result.error = err.what();
    }
    return result;
}

std::vector<JobResult>
SweepRunner::run(const Grid &grid) const
{
    std::vector<std::size_t> all(grid.points.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return runIndices(grid, all);
}

std::vector<JobResult>
SweepRunner::runIndices(const Grid &grid,
                        const std::vector<std::size_t> &indices,
                        const JobSink &on_complete) const
{
    const std::size_t gridTotal = grid.points.size();
    const std::size_t total = indices.size();
    std::vector<JobResult> results(total);
    if (total == 0)
        return results;
    for (std::size_t index : indices) {
        if (index >= gridTotal) {
            fatal("sweep: index %zu out of range for grid '%s' (%zu "
                  "points)", index, grid.name.c_str(), gridTotal);
        }
    }

    // Wall-clock is display-only: it feeds the stderr progress line and
    // never any result. Canonical output stays a pure function of the
    // grid (test_determinism pins this).
    // mcsim-lint: no-entropy(stderr progress/ETA display only)
    const auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> stop{false};
    std::mutex reportMutex;
    // The sink may throw (a journal append hitting a full or failing
    // disk): capture the first exception, stop the pool, and rethrow
    // from the calling thread -- an exception crossing a thread
    // boundary uncaught would terminate the whole process.
    std::exception_ptr sinkError;

    auto worker = [&]() {
        for (;;) {
            if (stop.load(std::memory_order_relaxed))
                return;
            const std::size_t i = next.fetch_add(1);
            if (i >= total)
                return;
            const std::size_t index = indices[i];
            results[i] = runPoint(grid.points[index]);
            if (!results[i].ok) {
                // Locate the failure for whoever reads the results
                // document: a timeout/watchdog message alone does not say
                // which job died (the machine knows nothing of the grid).
                // The annotation uses the grid-global index and total, so
                // a sharded run reports identically to a whole-grid run.
                results[i].error = strprintf(
                    "grid '%s' point %zu of %zu (%s, seed %llu): %s",
                    grid.name.c_str(), index, gridTotal,
                    grid.points[index].id().c_str(),
                    static_cast<unsigned long long>(
                        grid.points[index].seed),
                    results[i].error.c_str());
            }
            const std::size_t done = completed.fetch_add(1) + 1;
            if (on_complete) {
                // Serialized: journal-style sinks append without locking.
                std::lock_guard<std::mutex> lock(reportMutex);
                try {
                    if (!on_complete(index, results[i]))
                        stop.store(true, std::memory_order_relaxed);
                } catch (...) {
                    if (!sinkError)
                        sinkError = std::current_exception();
                    stop.store(true, std::memory_order_relaxed);
                    return;
                }
            }
            if (!opts.progress)
                continue;
            const double elapsed =
                std::chrono::duration<double>(
                    // mcsim-lint: no-entropy(stderr progress display only)
                    std::chrono::steady_clock::now() - t0)
                    .count();
            const double eta =
                elapsed / static_cast<double>(done) *
                static_cast<double>(total - done);
            std::lock_guard<std::mutex> lock(reportMutex);
            std::fprintf(stderr,
                         "[%zu/%zu] %-44s %-6s %6.1fs elapsed, ETA "
                         "%.1fs\n",
                         done, total, grid.points[index].id().c_str(),
                         results[i].ok ? "ok" : "FAILED", elapsed, eta);
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(opts.threads, total));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    if (sinkError)
        std::rethrow_exception(sinkError);
    return results;
}

void
SweepOutcomes::add(const Grid &grid, std::vector<JobResult> results)
{
    order.push_back(grid.name);
    perGrid.push_back(std::move(results));
}

const std::vector<JobResult> &
SweepOutcomes::gridResults(const std::string &g) const
{
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == g)
            return perGrid[i];
    fatal("no results recorded for grid '%s'", g.c_str());
}

const core::RunMetrics &
SweepOutcomes::metrics(const SweepPoint &point) const
{
    const std::string key = point.id();
    for (const auto &results : perGrid) {
        for (const JobResult &job : results) {
            if (job.point.id() != key)
                continue;
            if (!job.ok) {
                fatal("sweep job %s failed: %s", key.c_str(),
                      job.error.c_str());
            }
            return job.metrics;
        }
    }
    fatal("no sweep result for point %s", key.c_str());
}

std::size_t
SweepOutcomes::totalJobs() const
{
    std::size_t n = 0;
    for (const auto &results : perGrid)
        n += results.size();
    return n;
}

std::size_t
SweepOutcomes::failedJobs() const
{
    std::size_t n = 0;
    for (const auto &results : perGrid)
        for (const JobResult &job : results)
            n += job.ok ? 0 : 1;
    return n;
}

Json
jobToJson(const JobResult &job)
{
    const SweepPoint &p = job.point;
    Json out = Json::object();
    out["id"] = Json(p.id());
    out["benchmark"] = Json(p.benchmark);
    out["model"] = Json(core::modelName(p.model));
    out["scale"] = Json(scaleName(p.scale));
    out["procs"] = Json(p.numProcs);
    out["cacheBytes"] = Json(p.cacheBytes);
    out["lineBytes"] = Json(p.lineBytes);
    out["delay"] = Json(p.delay);
    out["schedule"] = Json(workloads::relaxScheduleName(p.schedule));
    // As a string: 64-bit seeds are not exactly representable in a JSON
    // number (IEEE double mantissa is 53 bits).
    out["seed"] = Json(
        strprintf("%llu", static_cast<unsigned long long>(p.seed)));
    out["status"] = Json(job.ok ? "ok" : "failed");
    if (!job.ok)
        out["error"] = Json(job.error);
    Json metrics = Json::object();
    for (const auto &[name, value] : job.metrics.toStatSet())
        metrics[name] = Json(value);
    if (job.traceChecked) {
        metrics["axiomAccepted"] = Json(job.traceAccepted ? 1.0 : 0.0);
        metrics["axiomEvents"] = Json(job.traceEvents);
        metrics["axiomEdges"] = Json(job.traceEdges);
    }
    out["metrics"] = std::move(metrics);
    return out;
}

Json
SweepOutcomes::toJson() const
{
    Json doc = Json::object();
    doc["schema"] = Json("mcsim-sweep-v1");
    Json grids = Json::object();
    for (std::size_t i = 0; i < order.size(); ++i) {
        Json jobs = Json::array();
        for (const JobResult &job : perGrid[i])
            jobs.push(jobToJson(job));
        grids[order[i]] = std::move(jobs);
    }
    doc["grids"] = std::move(grids);
    return doc;
}

std::string
csvHeader()
{
    // Fixed column set: point identity, status, then the RunMetrics
    // export in its canonical (alphabetical) order, taken from a default
    // instance so failed jobs produce the same columns.
    const StatSet reference = core::RunMetrics().toStatSet();
    std::string out =
        "grid,id,benchmark,model,scale,procs,cacheBytes,lineBytes,delay,"
        "schedule,seed,status";
    for (const auto &[name, value] : reference) {
        (void)value;
        out += ',';
        out += name;
    }
    out += "\n";
    return out;
}

std::string
csvRowFromJson(const std::string &grid_name, const Json &job)
{
    auto field = [&](const char *name) -> const Json & {
        const Json *value = job.find(name);
        if (value == nullptr)
            fatal("csv: job record lacks field '%s'", name);
        return *value;
    };
    auto text = [&](const char *name) {
        const Json &value = field(name);
        // Numbers reuse the canonical writer, so a row rebuilt from a
        // journaled payload matches one serialized from live results.
        return value.isString() ? value.asString() : value.dump();
    };
    std::string out;
    out += grid_name;
    for (const char *name :
         {"id", "benchmark", "model", "scale", "procs", "cacheBytes",
          "lineBytes", "delay", "schedule", "seed", "status"}) {
        out += ',';
        out += text(name);
    }
    const Json &metrics = field("metrics");
    const StatSet reference = core::RunMetrics().toStatSet();
    for (const auto &[name, value] : reference) {
        (void)value;
        const Json *metric = metrics.find(name);
        if (metric == nullptr)
            fatal("csv: job '%s' lacks metric '%s'",
                  text("id").c_str(), name.c_str());
        out += ',';
        out += metric->dump();
    }
    out += "\n";
    return out;
}

std::string
SweepOutcomes::toCsv() const
{
    std::string out = csvHeader();
    for (std::size_t i = 0; i < order.size(); ++i)
        for (const JobResult &job : perGrid[i])
            out += csvRowFromJson(order[i], jobToJson(job));
    return out;
}

SweepOutcomes
runGrid(const Grid &grid, SweepOptions options)
{
    SweepOutcomes outcomes;
    outcomes.add(grid, SweepRunner(options).run(grid));
    return outcomes;
}

} // namespace mcsim::exp
