#include "exp/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace mcsim::exp
{

Json &
Json::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    MCSIM_ASSERT(kind_ == Kind::Object, "operator[] on non-object JSON");
    for (auto &[name, value] : members)
        if (name == key)
            return value;
    members.emplace_back(key, Json());
    return members.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members)
        if (name == key)
            return &value;
    return nullptr;
}

void
Json::writeEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
Json::writeNumber(std::string &out, double v)
{
    // Exactly-representable integers print without a decimal point; this
    // keeps cycle counts and counters readable and diff-friendly.
    if (std::nearbyint(v) == v && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
Json::write(std::string &out, int depth) const
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolean ? "true" : "false";
        break;
      case Kind::Number:
        writeNumber(out, number);
        break;
      case Kind::String:
        writeEscaped(out, string);
        break;
      case Kind::Array:
        if (items.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items.size(); ++i) {
            out += inner;
            items[i].write(out, depth + 1);
            out += i + 1 < items.size() ? ",\n" : "\n";
        }
        out += pad + "]";
        break;
      case Kind::Object:
        if (members.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members.size(); ++i) {
            out += inner;
            writeEscaped(out, members[i].first);
            out += ": ";
            members[i].second.write(out, depth + 1);
            out += i + 1 < members.size() ? ",\n" : "\n";
        }
        out += pad + "}";
        break;
    }
}

std::string
Json::dump() const
{
    std::string out;
    write(out, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a byte range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text(text), error(error)
    {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (!failed && pos != text.size())
            fail("trailing content");
        return failed ? Json() : v;
    }

  private:
    void
    fail(const std::string &what)
    {
        if (!failed && error) {
            *error = strprintf("JSON parse error at byte %zu: %s", pos,
                               what.c_str());
        }
        failed = true;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (failed || pos >= text.size()) {
            fail("unexpected end of input");
            return Json();
        }
        const char c = text[pos];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (literal("true"))
            return Json(true);
        if (literal("false"))
            return Json(false);
        if (literal("null"))
            return Json();
        return number();
    }

    std::string
    string()
    {
        std::string out;
        ++pos;  // opening quote
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            const char esc = text[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text.substr(pos, 4).c_str(), nullptr,
                                 16));
                pos += 4;
                // Golden files only carry ASCII; keep it simple.
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default:
                fail("unknown escape");
                return out;
            }
        }
        if (pos >= text.size()) {
            fail("unterminated string");
            return out;
        }
        ++pos;  // closing quote
        return out;
    }

    Json
    number()
    {
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) {
            fail("invalid value");
            return Json();
        }
        pos += static_cast<std::size_t>(end - start);
        return Json(v);
    }

    Json
    array()
    {
        Json out = Json::array();
        ++pos;  // [
        if (eat(']'))
            return out;
        while (!failed) {
            out.push(value());
            if (eat(']'))
                return out;
            if (!eat(',')) {
                fail("expected ',' or ']'");
                return out;
            }
        }
        return out;
    }

    Json
    object()
    {
        Json out = Json::object();
        ++pos;  // {
        if (eat('}'))
            return out;
        while (!failed) {
            skipWs();
            if (pos >= text.size() || text[pos] != '"') {
                fail("expected member name");
                return out;
            }
            const std::string key = string();
            if (!eat(':')) {
                fail("expected ':'");
                return out;
            }
            out[key] = value();
            if (eat('}'))
                return out;
            if (!eat(',')) {
                fail("expected ',' or '}'");
                return out;
            }
        }
        return out;
    }

    const std::string &text;
    std::string *error;
    std::size_t pos = 0;
    bool failed = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).run();
}

} // namespace mcsim::exp
