/**
 * @file
 * Full configuration of one simulated machine (paper section 3.1 defaults).
 */

#ifndef MCSIM_CORE_MACHINE_CONFIG_HH
#define MCSIM_CORE_MACHINE_CONFIG_HH

#include <cstdint>
#include <optional>

#include "axiom/trace_config.hh"
#include "check/check_config.hh"
#include "core/consistency.hh"
#include "fault/fault_config.hh"
#include "obs/obs_config.hh"
#include "sim/choice.hh"
#include "sim/types.hh"

namespace mcsim::core
{

/** Machine-wide parameters; validate() is called by Machine. */
struct MachineConfig
{
    /** Processors (paper: 16, plus 32 for Gauss). */
    unsigned numProcs = 16;
    /** Global memory modules (dance-hall: same count as processors). */
    unsigned numModules = 16;

    /** Consistency model the hardware implements. */
    Model model = Model::SC1;
    /** MSHRs for the relaxed models (paper: 5). */
    unsigned relaxedMshrs = 5;

    /** Cache geometry (paper: 16K/64K, 8/16/64-byte lines, 2-way). */
    unsigned cacheBytes = 16 * 1024;
    unsigned lineBytes = 16;
    unsigned assoc = 2;

    /** Delayed-load / branch delay in cycles (paper: 4; section 5.3: 2). */
    unsigned loadDelay = 4;
    unsigned branchDelay = 4;

    /** Interconnect (paper: 4x4 switches, 4-entry interface buffers). */
    unsigned switchRadix = 4;
    unsigned bufferEntries = 4;

    /** Sequential next-line hardware prefetch in every cache (an
     *  extension beyond the paper's SC2 stall prefetch; off by default,
     *  studied in bench_ablation). */
    bool nextLinePrefetch = false;

    /** Latency calibration (see DESIGN.md): 18-cycle uncontended miss for
     *  16 processors, 20 for 32. @{ */
    unsigned missHandleCycles = 2;
    unsigned fillCycles = 3;
    unsigned memInitCycles = 7;
    /** @} */

    /** Runaway guard: fatal() if simulated time exceeds this. */
    Tick maxCycles = 4'000'000'000ull;

    /** Invariant checking (src/check/): on by default so every test and
     *  microbenchmark runs fully audited; the figure benches switch it
     *  off (bench/bench_common.hh) to keep reported timings clean. */
    check::CheckConfig check;

    /** Axiomatic trace recording (src/axiom/): off by default -- it
     *  keeps every shared access of the run in memory. The litmus
     *  engine and the axiom tests switch it on per-machine. */
    axiom::TraceConfig trace;

    /** Observability (src/obs/): the timeline event tracer is off by
     *  default; stall attribution and latency histograms are always on. */
    obs::ObsConfig obs;

    /** Fault injection (src/fault/): off by default (perfect hardware,
     *  legacy protocol paths, zero golden drift). The forward-progress
     *  watchdog inside is armed regardless of fault.enable. */
    fault::FaultConfig fault;

    /** When set, use this exact feature set instead of the canonical one
     *  for `model` -- the hook the ablation benches use to toggle single
     *  hardware features (MSHR count, bypassing, the SC store buffer). */
    std::optional<ModelParams> modelOverride;

    /** Model checking (src/mc/): non-owning; when set, the Machine
     *  switches both networks to logical scheduler-driven delivery and
     *  exposes directory waiter order and retry backoff as choice
     *  points (see sim/choice.hh). Null for every normal timed run. */
    ChoiceScheduler *choiceScheduler = nullptr;

    /** fatal() on inconsistent settings. */
    void validate() const;

    /** The feature set to build: the override when present, else the
     *  canonical parameters for `model`. */
    ModelParams modelParams() const
    {
        if (modelOverride)
            return *modelOverride;
        return core::modelParams(model, relaxedMshrs);
    }
};

} // namespace mcsim::core

#endif // MCSIM_CORE_MACHINE_CONFIG_HH
