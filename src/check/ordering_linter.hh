/**
 * @file
 * Ordering linter: re-derives each consistency model's issue rules from
 * core/consistency.hh ModelParams and verifies the processor's actual
 * issue/completion trace against them.
 *
 * The linter keeps its own per-processor record of outstanding
 * references -- fed by issue/completion events, never by reading the
 * processor's counters -- so a bookkeeping bug in the processor cannot
 * hide from it. Rules enforced at each access issue:
 *
 *  - singleOutstanding (SC1/SC2/bSC1): no access may issue while a
 *    reference is outstanding (store-buffer early release exempts the
 *    handed-off store, mirroring scStoreBufferRelease).
 *  - syncDrains (WO1/WO2/bWO1): a sync operation may issue only after
 *    every outstanding reference completed.
 *  - releaseConsistent (RC): a release may issue only after every
 *    reference outstanding at its defer point has completed.
 *  - Fence under a relaxed model completes only with zero outstanding
 *    references and no release in flight.
 */

#ifndef MCSIM_CHECK_ORDERING_LINTER_HH
#define MCSIM_CHECK_ORDERING_LINTER_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/consistency.hh"
#include "sim/types.hh"

namespace mcsim::check
{

/** Per-processor consistency-model rule checker. */
class OrderingLinter
{
  public:
    OrderingLinter(unsigned num_procs, const core::ModelParams &model);

    /**
     * An access passed the processor's issue gates and is being sent to
     * the cache. @return a violation description, or "".
     */
    std::string issueCheck(ProcId p, bool is_sync, bool is_release);

    /** A miss/merge allocated outstanding slot @p cookie. */
    void refIssued(ProcId p, std::uint64_t cookie);
    /** SC store-buffer hand-off: @p cookie stops gating issue. */
    void refEarlyReleased(ProcId p, std::uint64_t cookie);
    /** The cache completed the reference @p cookie. */
    void refCompleted(ProcId p, std::uint64_t cookie);

    /** RC: a release entered the deferred-release machinery. */
    void releaseDeferred(ProcId p);
    /** RC: the pending release performed globally (or hit). */
    void releaseDone(ProcId p);

    /** A fence completed. @return a violation description, or "". */
    std::string fenceCheck(ProcId p);

  private:
    struct ProcState
    {
        /** Outstanding references still gating issue. */
        std::unordered_set<std::uint64_t> outstanding;
        /** Hand-off-released stores still completing in the background. */
        std::unordered_set<std::uint64_t> background;
        bool releasePending = false;
        /** References outstanding when the pending release was deferred. */
        std::unordered_set<std::uint64_t> releaseSnapshot;
    };

    core::ModelParams model;
    std::vector<ProcState> procs;
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_ORDERING_LINTER_HH
