/**
 * @file
 * Local coordinator: spawns one OS process per shard, supervises them,
 * and relaunches the ones that die (DESIGN.md sections 15 and 16).
 *
 * Failure model: a worker process may disappear at any instant (crash,
 * SIGKILL, OOM). Its journal is the only state that matters; the
 * coordinator never holds results, it only schedules processes and
 * reads journal sizes to judge progress. Relaunching is governed by a
 * forward-progress watchdog: an attempt that journals at least one new
 * point resets the shard's strike count, so a run that keeps making
 * progress is relaunched indefinitely (this is what lets a --kill-after
 * worker converge), while a shard that dies repeatedly with NO new
 * points exhausts its retries. Relaunches back off exponentially.
 * --max-retries 0 disables relaunching entirely: the first death fails
 * the shard, leaving its journal for a later `run --resume` -- the
 * two-phase kill/resume gate CI exercises.
 *
 * Two hardening layers sit on top (DESIGN.md section 16):
 *
 *  - LEASES (leaseMs > 0): a live worker whose journal stops growing
 *    for leaseMs is not making progress -- stuck, deadlocked, or
 *    stalled -- so the coordinator revokes its lease (SIGKILL) and the
 *    normal death path judges the attempt. Heartbeat is journal file
 *    size: the one signal that cannot lie about durable progress.
 *
 *  - WORK STEALING (stealFanout > 0): a shard that exhausts its
 *    retries is not abandoned; its un-journaled remainder (frozen,
 *    since the victim is never relaunched) is split round-robin into
 *    up to stealFanout slices, each run by a fresh worker journaling
 *    into a separate steal journal. Steal attempts are supervised by
 *    the same watchdog; a slice that exhausts ITS retries fails the
 *    shard for good (degraded merge quarantines what stayed
 *    uncovered). A restarted coordinator rediscovers steal journals
 *    from disk, so crash/restart cycles lose nothing.
 */

#ifndef MCSIM_SVC_COORDINATOR_HH
#define MCSIM_SVC_COORDINATOR_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "svc/shard.hh"

namespace mcsim::svc
{

/** One unit of supervised work: a whole shard, or a steal slice. */
struct Assignment
{
    std::uint32_t shard = 0; ///< own shard, or the victim when stealing
    bool steal = false;
    std::uint16_t slice = 0;  ///< steal only: which slice
    std::uint16_t slices = 1; ///< steal only: of how many
};

/** Coordinator knobs. */
struct CoordinatorOptions
{
    /** Concurrent worker processes; 0 = one per shard. */
    unsigned workers = 0;
    /** Consecutive no-progress deaths an assignment may suffer before
     *  the coordinator escalates (steal) or gives up; 0 = never
     *  relaunch (first death is final, journals are kept for a
     *  --resume). */
    unsigned maxRetries = 3;
    /** First relaunch delay; doubles per consecutive no-progress death
     *  of that assignment, capped at 5000 ms. */
    unsigned backoffMs = 200;
    /** Lease duration: a worker whose journal does not grow for this
     *  long is revoked (SIGKILL). 0 disables lease supervision (the
     *  coordinator then blocks until workers die on their own). */
    unsigned leaseMs = 0;
    /** Lease poll interval (only meaningful with leaseMs > 0). */
    unsigned pollMs = 50;
    /** Slices a failed shard's remainder is split into for stealing;
     *  0 disables stealing (retry exhaustion fails the shard). */
    unsigned stealFanout = 2;
    /** Narrate launches, deaths, revocations, steals to stderr. */
    bool progress = true;
};

/** Supervision outcome for one shard. */
struct ShardStatus
{
    std::uint32_t shard = 0;
    /** Worker launches for this shard, steal attempts included. */
    unsigned attempts = 0;
    /** Journaled points at the last scan, steal journals included. */
    std::size_t journaledPoints = 0;
    /** Lease revocations suffered by this shard's workers. */
    unsigned revocations = 0;
    /** The shard's remainder was handed to steal workers. */
    bool stolen = false;
    bool done = false;
    /** Why the coordinator gave up; empty while healthy. */
    std::string error;
};

/** Outcome of a supervised run. */
struct CoordinatorReport
{
    /** Every shard's points are fully journaled (steals included). */
    bool ok = false;
    std::vector<ShardStatus> shards;
};

/**
 * Builds the argv for one worker process (the CLI layer owns the flag
 * syntax; the coordinator only owns scheduling).
 */
using WorkerArgv =
    std::function<std::vector<std::string>(const Assignment &)>;

/**
 * Supervise worker processes for every shard of @p plan until each
 * shard's points are fully journaled (primary journal at
 * @p journal_paths[shard], steal journals in @p dir) or retries and
 * steals are exhausted. fatal() only on coordinator-side failures
 * (fork or exec impossible); worker deaths are policy, not errors.
 */
CoordinatorReport runCoordinator(
    const ShardPlan &plan, const std::string &dir,
    const std::vector<std::string> &journal_paths,
    const WorkerArgv &worker_argv, const CoordinatorOptions &options);

} // namespace mcsim::svc

#endif // MCSIM_SVC_COORDINATOR_HH
