/**
 * @file
 * Timing tests for the Omega network transport and the interface buffers:
 * uncontended latency, flit-proportional port occupancy, FIFO contention,
 * buffer capacity, and WO2 load bypassing.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/iface_buffer.hh"
#include "net/omega_network.hh"
#include "sim/event_queue.hh"

using namespace mcsim;

namespace
{

struct Payload
{
    int id = 0;
};

using Net = net::OmegaNetwork<Payload>;
using Buf = net::IfaceBuffer<Payload>;
using Msg = net::Msg<Payload>;

struct Delivery
{
    int id;
    Tick at;
    std::uint32_t dst;
};

struct Harness
{
    EventQueue queue;
    std::vector<Delivery> delivered;
    Net network;

    explicit Harness(unsigned ports = 16, unsigned radix = 4)
        : network(queue, ports, radix, [this](Msg &&m) {
              delivered.push_back({m.payload.id, queue.now(), m.dst});
          })
    {}

    Msg
    make(int id, std::uint32_t src, std::uint32_t dst,
         std::uint32_t bytes = 8, bool bypass = false)
    {
        Msg m;
        m.src = src;
        m.dst = dst;
        m.bytes = bytes;
        m.bypassEligible = bypass;
        m.payload.id = id;
        return m;
    }
};

} // namespace

TEST(Message, FlitCount)
{
    Msg m;
    m.bytes = 8;
    EXPECT_EQ(m.flits(), 1u);
    m.bytes = 9;
    EXPECT_EQ(m.flits(), 2u);
    m.bytes = 72;  // header + 64-byte line
    EXPECT_EQ(m.flits(), 9u);
    m.bytes = 0;
    EXPECT_EQ(m.flits(), 1u);
}

TEST(OmegaNetwork, UncontendedHeadLatencyEqualsStages)
{
    Harness h;
    EXPECT_EQ(h.network.headLatency(), 2u);
    h.queue.schedule(100, [&]() { h.network.inject(h.make(1, 3, 9)); });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 1u);
    EXPECT_EQ(h.delivered[0].at, 102u);  // one cycle per stage
    EXPECT_EQ(h.delivered[0].dst, 9u);
}

TEST(OmegaNetwork, LatencyIndependentOfMessageSize)
{
    // Pipelined flits: the head arrives after `stages` cycles no matter
    // how long the message is (paper section 3.1).
    for (std::uint32_t bytes : {8u, 16u, 64u, 72u}) {
        Harness h;
        h.queue.schedule(50,
                         [&, bytes]() {
                             h.network.inject(h.make(1, 0, 15, bytes));
                         });
        h.queue.run();
        ASSERT_EQ(h.delivered.size(), 1u);
        EXPECT_EQ(h.delivered[0].at, 52u) << "bytes=" << bytes;
    }
}

TEST(OmegaNetwork, PortOccupancySerializesBySize)
{
    // Two same-path messages: the second's head waits for the first's
    // flits to clear each port.
    Harness h;
    h.queue.schedule(10, [&]() {
        h.network.inject(h.make(1, 0, 9, 72));  // 9 flits
        h.network.inject(h.make(2, 0, 9, 8));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].at, 12u);
    // Message 2 starts stage 0 when the port frees at t=19, head out 20,
    // stage 1 likewise gated.
    EXPECT_EQ(h.delivered[1].at, 21u);
    EXPECT_GT(h.network.stats().queueCycles, 0u);
}

TEST(OmegaNetwork, DisjointPathsDoNotInterfere)
{
    Harness h;
    h.queue.schedule(10, [&]() {
        h.network.inject(h.make(1, 0, 0, 72));
        h.network.inject(h.make(2, 5, 10, 8));  // different switches
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].at, 12u);
    EXPECT_EQ(h.delivered[1].at, 12u);
}

TEST(OmegaNetwork, HotSpotContentionAccumulates)
{
    // All 16 sources target one destination: final-stage port serializes.
    Harness h;
    h.queue.schedule(10, [&]() {
        for (std::uint32_t s = 0; s < 16; ++s)
            h.network.inject(h.make(static_cast<int>(s), s, 7, 8));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 16u);
    Tick last = 0;
    for (const auto &d : h.delivered) {
        EXPECT_GT(d.at, last);  // strictly serialized arrivals
        last = d.at;
    }
    EXPECT_GE(last, 10u + 16u);  // at least one cycle apart each
    EXPECT_EQ(h.network.stats().messages, 16u);
}

TEST(OmegaNetwork, StatsCountMessagesAndFlits)
{
    Harness h;
    h.queue.schedule(1, [&]() {
        h.network.inject(h.make(1, 0, 1, 8));
        h.network.inject(h.make(2, 2, 3, 72));
    });
    h.queue.run();
    EXPECT_EQ(h.network.stats().messages, 2u);
    EXPECT_EQ(h.network.stats().flits, 10u);
    EXPECT_GT(h.network.stats().latencyCycles, 0u);
}

// ---------------------------------------------------------------------
// Interface buffer
// ---------------------------------------------------------------------

namespace
{

struct BufHarness : Harness
{
    Buf buffer;

    explicit BufHarness(unsigned capacity = 4, bool bypass = false)
        : Harness(), buffer(queue, network, capacity, bypass)
    {}
};

} // namespace

TEST(IfaceBuffer, AddsOneCycleBeforeInjection)
{
    BufHarness h;
    h.queue.schedule(10, [&]() {
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(1, 0, 5, 8)));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 1u);
    // drain at 10, head at stage0 at 11, delivered at 13.
    EXPECT_EQ(h.delivered[0].at, 13u);
}

TEST(IfaceBuffer, LinkSerializesByFlits)
{
    BufHarness h;
    h.queue.schedule(10, [&]() {
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(1, 0, 5, 72)));  // 9 flits
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(2, 0, 5, 8)));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 2u);
    EXPECT_EQ(h.delivered[0].id, 1);
    // Second message starts the link at t=19.
    EXPECT_GE(h.delivered[1].at, 22u);
}

TEST(IfaceBuffer, CapacityRejectsAndNotifies)
{
    BufHarness h(2);
    int space_events = 0;
    h.queue.schedule(10, [&]() {
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(1, 0, 5, 72)));
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(2, 0, 5, 72)));
        // First message drains its slot at t=10; but at this instant both
        // slots are held.
        EXPECT_TRUE(h.buffer.full());
        EXPECT_FALSE(h.buffer.tryEnqueue(h.make(3, 0, 5, 8)));
        h.buffer.onSpace([&]() { ++space_events; });
    });
    h.queue.run();
    EXPECT_EQ(h.buffer.stats().fullRejects, 1u);
    EXPECT_EQ(space_events, 1);
    EXPECT_EQ(h.delivered.size(), 2u);
}

TEST(IfaceBuffer, BypassPromotesLoads)
{
    BufHarness h(8, /*bypass=*/true);
    h.queue.schedule(10, [&]() {
        // Three stores queue; then a bypass-eligible load jumps every
        // queued message, including the one at the front -- the paper's
        // "simple, but slightly flawed" behaviour (section 3.2): nothing
        // has started draining yet at this tick.
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(1, 0, 5, 72)));
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(2, 0, 5, 72)));
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(3, 0, 5, 72)));
        EXPECT_TRUE(
            h.buffer.tryEnqueue(h.make(4, 0, 5, 8, /*bypass=*/true)));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 4u);
    EXPECT_EQ(h.delivered[0].id, 4);  // jumped 1, 2 and 3
    EXPECT_EQ(h.delivered[1].id, 1);
    EXPECT_EQ(h.delivered[2].id, 2);
    EXPECT_EQ(h.delivered[3].id, 3);
    EXPECT_EQ(h.buffer.stats().bypasses, 1u);
    EXPECT_EQ(h.buffer.stats().messagesJumped, 3u);
}

TEST(IfaceBuffer, NoBypassWhenDisabled)
{
    BufHarness h(8, /*bypass=*/false);
    h.queue.schedule(10, [&]() {
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(1, 0, 5, 72)));
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(2, 0, 5, 72)));
        EXPECT_TRUE(h.buffer.tryEnqueue(h.make(3, 0, 5, 8, true)));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 3u);
    EXPECT_EQ(h.delivered[1].id, 2);
    EXPECT_EQ(h.delivered[2].id, 3);
    EXPECT_EQ(h.buffer.stats().bypasses, 0u);
}

TEST(IfaceBuffer, FifoOrderPreserved)
{
    BufHarness h(8);
    h.queue.schedule(5, [&]() {
        for (int i = 0; i < 6; ++i)
            EXPECT_TRUE(h.buffer.tryEnqueue(h.make(i, 0, 3, 8)));
    });
    h.queue.run();
    ASSERT_EQ(h.delivered.size(), 6u);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)].id, i);
}
