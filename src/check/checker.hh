/**
 * @file
 * Facade over the three invariant auditors (coherence, ordering, races)
 * plus the protocol message lint. One Checker is owned by the Machine
 * when checking is enabled; caches, memory modules and processors hold a
 * nullable pointer to it and report events through the hooks below.
 *
 * Violations either throw FatalError immediately (CheckMode::Fatal, the
 * default -- tests catch the throw) or are counted in CheckStats and
 * surfaced through Machine::collectStats() / core::RunMetrics
 * (CheckMode::Count).
 */

#ifndef MCSIM_CHECK_CHECKER_HH
#define MCSIM_CHECK_CHECKER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/check_config.hh"
#include "check/coherence_auditor.hh"
#include "check/ordering_linter.hh"
#include "check/race_detector.hh"
#include "core/consistency.hh"
#include "mem/protocol.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mcsim::check
{

/** Violation counters exported through the machine's StatSet. */
struct CheckStats
{
    std::uint64_t coherenceViolations = 0;
    std::uint64_t orderingViolations = 0;
    std::uint64_t raceViolations = 0;
    std::uint64_t protocolViolations = 0;

    std::uint64_t lineAudits = 0;
    std::uint64_t accessesChecked = 0;
    std::uint64_t orderingChecked = 0;
    std::uint64_t messagesChecked = 0;

    std::uint64_t
    totalViolations() const
    {
        return coherenceViolations + orderingViolations + raceViolations +
               protocolViolations;
    }

    void addTo(StatSet &out, const std::string &prefix) const;
};

/** The config-gated invariant-checking layer. */
class Checker
{
  public:
    /**
     * @param config reporting mode and auditor selection
     * @param model the consistency-model feature set under check
     * @param num_procs processor count
     * @param num_modules memory-module count
     * @param line_bytes cache line size (module interleaving)
     */
    Checker(const CheckConfig &config, const core::ModelParams &model,
            unsigned num_procs, unsigned num_modules, unsigned line_bytes);

    Checker(const Checker &) = delete;
    Checker &operator=(const Checker &) = delete;

    /** Wire the snapshot targets (owned by the Machine). */
    void attach(std::vector<const mem::Cache *> caches,
                std::vector<const mem::MemoryModule *> modules);

    /** Coherence hooks (mem layer). @{ */
    void onCacheLineEvent(ProcId p, Addr line_addr);
    void onDirectoryEvent(unsigned module, Addr line_addr);
    void onProtocolMessage(const mem::CoherenceMsg &msg, bool to_memory);
    /** @} */

    /** Race-detection hooks (cpu layer, functional access points). @{ */
    void onDataRead(ProcId p, Addr addr, unsigned width);
    void onDataWrite(ProcId p, Addr addr, unsigned width);
    void onAcquire(ProcId p, Addr sync_addr);
    void onRelease(ProcId p, Addr sync_addr);
    /** @} */

    /** Ordering hooks (cpu layer, issue/completion trace). @{ */
    void onIssueCheck(ProcId p, bool is_sync, bool is_release);
    void onRefIssued(ProcId p, std::uint64_t cookie);
    void onRefEarlyReleased(ProcId p, std::uint64_t cookie);
    void onRefCompleted(ProcId p, std::uint64_t cookie);
    void onReleaseDeferred(ProcId p);
    void onReleaseDone(ProcId p);
    void onFenceComplete(ProcId p);
    /** @} */

    /** Full-state sweep; call once the machine has quiesced. */
    void finalAudit();

    const CheckStats &stats() const { return checkStats; }
    const CheckConfig &config() const { return cfg; }

  private:
    /** Count a violation; throw under CheckMode::Fatal. */
    void report(std::uint64_t CheckStats::*counter, const char *kind,
                const std::string &what);

    CheckConfig cfg;
    std::unique_ptr<CoherenceAuditor> coherence;
    std::unique_ptr<OrderingLinter> ordering;
    std::unique_ptr<RaceDetector> races;
    unsigned numProcs;
    unsigned lineBytes;
    CheckStats checkStats;
    unsigned warningsEmitted = 0;
    /** Per-line highest grant sequence number seen on a mem->proc data
     *  reply; grants must never go backwards (equal is legal: the
     *  hardened protocol re-grants idempotently to the registered
     *  owner without bumping the sequence). */
    std::unordered_map<Addr, std::uint32_t> grantSeqHigh;
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_CHECKER_HH
