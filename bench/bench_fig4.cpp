/**
 * @file
 * Reproduces paper Figure 4: percentage performance gain over SC1 of
 * SC2, WO1, WO2 and RC with the small ("16K") caches, 16 processors,
 * per benchmark and line size. Also prints the section 4.2.3/4.2.4
 * auxiliaries: WO2 buffer bypass counts and SC2 prefetch counts.
 *
 * Expected shapes: Gauss gains ordered 8B >> 16B >> 64B; Qsort moderate
 * at every line size; Relax small; Psim moderate with SC2 negative at
 * 64B; WO1 ~ WO2 ~ RC everywhere.
 *
 * Usage: bench_fig4 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig4", args);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::WO2,
        core::Model::RC};

    std::printf("Figure 4 reproduction: %% gain over SC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(args, false), isFull(args) ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s %14s %12s\n", "model", "8B",
                    "16B", "64B", "bypasses/16B", "pref/16B");
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            double bypasses16 = 0, prefetch16 = 0;
            for (unsigned line : lineSizes) {
                const auto &base = res.metrics(exp::paperPoint(
                    name, core::Model::SC1, args.scale, false, line));
                const auto &m = res.metrics(
                    exp::paperPoint(name, model, args.scale, false, line));
                std::printf(" %9.1f%%", core::percentGain(base, m));
                if (line == 16) {
                    bypasses16 = static_cast<double>(m.bufferBypasses);
                    prefetch16 = static_cast<double>(m.prefetchesIssued);
                }
            }
            std::printf(" %14.0f %12.0f\n", bypasses16, prefetch16);
        }
    }
    return 0;
}
