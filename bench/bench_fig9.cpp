/**
 * @file
 * Reproduces paper Figure 9: the effect of hand-scheduling Relax's
 * stencil loads. For SC1 and WO1, at both cache sizes, prints the
 * run-time change of the model-specific optimal schedule and of a
 * deliberately bad schedule relative to the compiler's default order.
 *
 * The paper found up to ~8% swing between good and bad schedules, and
 * that the optimal order differs between SC (missing load issued last,
 * nothing after it) and WO (missing load issued first, used last).
 *
 * Usage: bench_fig9 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;
using workloads::RelaxSchedule;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig9", args);

    std::printf("Figure 9 reproduction: Relax scheduling, %% run-time "
                "change vs default schedule%s\n",
                isFull(args) ? " (paper-size)" : " (scaled)");
    std::printf("(positive = faster than the default schedule)\n");
    printHeaderRule();

    struct Variant
    {
        core::Model model;
        RelaxSchedule optimal;
        RelaxSchedule bad;
    };
    const Variant variants[] = {
        {core::Model::SC1, RelaxSchedule::OptimalSC, RelaxSchedule::BadSC},
        {core::Model::WO1, RelaxSchedule::OptimalWO, RelaxSchedule::BadWO},
    };

    for (int big = 0; big < 2; ++big) {
        for (const auto &v : variants) {
            std::printf("\n%s, %s caches\n", core::modelName(v.model),
                        cacheLabel(args, big));
            std::printf("%-9s %10s %10s %10s\n", "schedule", "8B", "16B",
                        "64B");
            auto at = [&](RelaxSchedule sched, unsigned line)
                -> const core::RunMetrics & {
                return res.metrics(exp::paperPoint("Relax", v.model,
                                                   args.scale, big, line,
                                                   16, 4, sched));
            };
            std::printf("%-9s", "optimal");
            for (unsigned line : lineSizes)
                std::printf(" %9.1f%%",
                            core::percentGain(at(RelaxSchedule::Default,
                                                 line),
                                              at(v.optimal, line)));
            std::printf("\n%-9s", "bad");
            for (unsigned line : lineSizes)
                std::printf(" %9.1f%%",
                            core::percentGain(at(RelaxSchedule::Default,
                                                 line),
                                              at(v.bad, line)));
            std::printf("\n");
        }
    }
    return 0;
}
