/**
 * @file
 * Declarative sweep grids: the configuration points behind every paper
 * table and figure, named so the parallel sweep engine, the figure
 * benches, and the golden-baseline tests all run exactly the same jobs.
 *
 * A SweepPoint is one (benchmark, model, geometry, seed) tuple. Its
 * canonical id() string doubles as the job key in results documents and
 * as the input to the deterministic seed derivation (sim/random.hh
 * fnv1a): a job's seed is a pure function of its configuration, never of
 * wall clock or worker scheduling.
 */

#ifndef MCSIM_EXP_GRID_HH
#define MCSIM_EXP_GRID_HH

#include <memory>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

namespace mcsim::exp
{

/**
 * Problem/cache scale of a run (DESIGN.md scaling discipline: problem
 * and cache sizes shrink together so each benchmark stays in the same
 * fits/doesn't-fit regime the paper analyses).
 *
 * Quick is the CI scale: all seven models x four workloads complete in
 * seconds and are pinned by golden baselines (tests/golden/).
 */
enum class Scale { Quick, Scaled, Full };

const char *scaleName(Scale scale);
Scale scaleFromName(const std::string &name);

/** Paper cache sizes at a scale ("16K"-equivalent / "64K"-equivalent). */
unsigned smallCache(Scale scale);
unsigned largeCache(Scale scale);

/** Benchmark names in the paper's presentation order. */
const std::vector<std::string> &benchmarkNames();

/** Trace-replay benchmark names (one per synthetic generator). */
const std::vector<std::string> &traceBenchmarkNames();

/** One configuration point of a sweep. */
struct SweepPoint
{
    /** Workload: Gauss / Qsort / Relax / Psim / Synthetic, or a
     *  trace-replay point (TraceZipf / TraceBurst / TraceRing /
     *  TraceLock: the generator runs in-memory at makeWorkload time, so
     *  the point stays self-contained and reproducible in isolation). */
    std::string benchmark = "Gauss";
    core::Model model = core::Model::SC1;
    Scale scale = Scale::Scaled;
    unsigned numProcs = 16;
    unsigned cacheBytes = 8 * 1024;
    unsigned lineBytes = 16;
    /** Load and branch delay in cycles (Tables 3-6 vary this). */
    unsigned delay = 4;
    /** Relax stencil load schedule (Figure 9); Default elsewhere. */
    workloads::RelaxSchedule schedule = workloads::RelaxSchedule::Default;
    /** Workload data seed; 0 = the workload's canonical default seed
     *  (the paper grids use these so EXPERIMENTS.md numbers hold). */
    std::uint64_t seed = 0;
    /** Record an axiomatic trace and run the checker on it post-run. */
    bool recordTrace = false;
    /** Run the src/check/ invariant suite during the run. */
    bool runChecks = false;
    /** Simulated-cycle budget (job timeout); 0 = per-scale default. */
    Tick maxCycles = 0;
    /** Fault-injection preset name (src/fault/: "light", "standard",
     *  "heavy"); empty = perfect hardware. The fault seed derives from
     *  the point id, so chaos jobs reproduce in isolation. */
    std::string faultPreset;

    /** Canonical unique id, e.g. "Gauss/WO1/p16/c8192/l16/d4/default/s0";
     *  faulted points append "/F<preset>" so fault-free ids -- and the
     *  goldens keyed by them -- are untouched. */
    std::string id() const;

    /** Seed derived from the seedless id -- what grid builders assign
     *  when they want per-point (rather than canonical) seeding. */
    std::uint64_t derivedSeed() const;

    /** The machine this point describes. */
    core::MachineConfig machineConfig() const;

    /** The workload this point describes, at this scale and seed. */
    std::unique_ptr<workloads::Workload> makeWorkload() const;
};

/** A named list of points; the unit the sweep engine executes. */
struct Grid
{
    std::string name;
    std::vector<SweepPoint> points;
};

/**
 * Shared point factory for the paper grids, so the grid builders and the
 * figure benches construct byte-identical ids for lookup.
 */
SweepPoint paperPoint(const std::string &benchmark, core::Model model,
                      Scale scale, bool big_cache, unsigned line_bytes,
                      unsigned procs = 16, unsigned delay = 4,
                      workloads::RelaxSchedule schedule =
                          workloads::RelaxSchedule::Default);

/** Grid names understood by namedGrid(), in catalog order. */
const std::vector<std::string> &gridNames();

/**
 * Build a named grid: fig2, fig4..fig9, table2, tables3_6 (the paper
 * experiments, at @p scale), quick (the CI grid: all 7 models x 4
 * workloads at one small configuration, always Quick scale, per-point
 * derived seeds), or trace-quick (quick's shape over the 4 synthetic
 * trace generators instead of the paper workloads). fatal() on unknown
 * names.
 */
Grid namedGrid(const std::string &name, Scale scale);

/**
 * Randomized consistency fuzz grid: @p count Synthetic points whose
 * workload parameters and seeds all derive from @p base_seed, run with
 * the axiomatic trace checker and the invariant suite enabled.
 */
Grid fuzzGrid(unsigned count, std::uint64_t base_seed);

} // namespace mcsim::exp

#endif // MCSIM_EXP_GRID_HH
