/**
 * @file
 * Synthetic datacenter traffic generators (DESIGN.md section 14.4).
 *
 * Each generator derives every choice from the seed through the house
 * Rng (sim/random.hh), so one (generator, knobs, seed) tuple always
 * produces the identical byte stream -- traces are reproducible
 * artifacts, never captured entropy. Four shapes:
 *
 *  - zipf:  zipfian hot-key key-value traffic; overlapped non-blocking
 *           loads with occasional stores and rare fences.
 *  - burst: bursty open-loop request arrivals; idle gaps then trains of
 *           multi-word object reads with trailing updates.
 *  - ring:  neighbour producer/consumer rings; payload stores published
 *           by a sync flag store, consumed via sync load + reads.
 *  - lock:  lock-contention storm on a few hot locks; test-and-test&set
 *           acquires around short critical sections.
 *
 * Traces are machine-geometry independent (addresses are 64-byte
 * separated where false sharing is not the point), so one trace sweeps
 * across every model and cache shape unchanged.
 */

#ifndef MCSIM_TRACE_GENERATORS_HH
#define MCSIM_TRACE_GENERATORS_HH

#include <vector>

#include "trace/writer.hh"

namespace mcsim::trace
{

/** Knobs for all generators; each shape reads its own subset. */
struct GeneratorParams
{
    Generator kind = Generator::Zipfian;
    unsigned procs = 8;
    /** Approximate record budget per processor (patterns complete, so
     *  the actual count can slightly exceed it). */
    unsigned opsPerProc = 1024;
    std::uint64_t seed = 1;

    /** zipf: number of hot keys, skew exponent, update fraction. @{ */
    unsigned hotKeys = 256;
    double zipfSkew = 0.9;
    double storeFraction = 0.25;
    /** @} */

    /** burst: arrival/burst shape and object footprint. @{ */
    unsigned burstMax = 24;
    unsigned idleMax = 160;
    unsigned objectWords = 4;
    /** @} */

    /** ring: slots per ring and payload words per slot. @{ */
    unsigned ringSlots = 8;
    unsigned payloadWords = 4;
    /** @} */

    /** lock: hot-lock count and critical-section length. @{ */
    unsigned locks = 2;
    unsigned holdOps = 4;
    /** @} */
};

/** The header a generated trace carries for @p params. */
TraceHeader generatorHeader(const GeneratorParams &params);

/**
 * Emit the trace described by @p params into @p sink. fatal() on
 * out-of-range knobs (strict up-front validation, CLI contract).
 */
void generateTrace(const GeneratorParams &params, ByteSink &sink);

/** Convenience: generate into a memory buffer (grids, tests). */
std::vector<std::uint8_t> generateTraceBytes(const GeneratorParams &params);

} // namespace mcsim::trace

#endif // MCSIM_TRACE_GENERATORS_HH
