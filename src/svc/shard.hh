/**
 * @file
 * Deterministic shard planner: partitions a named grid into
 * location-independent shards (DESIGN.md section 15).
 *
 * A plan is a pure function of its options -- grid name, scale,
 * geometry overrides, mode, preset, shard count -- so every
 * participant (coordinator, each worker, the merge step, a re-run on a
 * different machine) derives the identical point list, the identical
 * round-robin shard membership, and the identical plan fingerprint from
 * the CLI flags alone. Nothing about the partition depends on where or
 * when a shard runs; seeds stay the point-derived seeds the grid
 * builder assigned (sim/random.hh fnv1a + splitmix64 over the point
 * id), exactly as in a single-process sweep.
 */

#ifndef MCSIM_SVC_SHARD_HH
#define MCSIM_SVC_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/grid.hh"
#include "svc/journal.hh"

namespace mcsim::svc
{

/** Everything that determines a plan (the svc_runner CLI surface). */
struct PlanOptions
{
    std::string grid = "quick";
    exp::Scale scale = exp::Scale::Scaled;
    std::uint32_t shards = 1;
    RunMode mode = RunMode::Sweep;
    /** Sweep mode: fault preset applied to every point (empty = perfect
     *  hardware). Chaos mode: the harness preset (never empty). */
    std::string preset;
    /** Geometry overrides, 0 = keep the grid's values. @{ */
    unsigned procs = 0;
    unsigned cacheBytes = 0;
    unsigned lineBytes = 0;
    /** @} */
};

/** A fully built, validated partition of one grid. */
struct ShardPlan
{
    /** The grid with all overrides applied (point ids are final). */
    exp::Grid grid;
    exp::Scale scale = exp::Scale::Scaled;
    RunMode mode = RunMode::Sweep;
    /** Chaos harness preset; empty in sweep mode (a sweep preset is
     *  already inside each point and therefore inside each id). */
    std::string preset;
    std::uint32_t shardCount = 1;

    /**
     * Identity of this plan: fnv1a over mode, preset, scale, shard
     * count, and every final point id (ids encode benchmark, model,
     * geometry, schedule, seed, and fault preset). Journals carry it,
     * and resume/merge refuse any journal whose fingerprint differs.
     */
    std::uint64_t fingerprint() const;

    /** Grid-global indices owned by @p shard: round-robin, i.e. all i
     *  with i %% shardCount == shard, in grid order. */
    std::vector<std::size_t> shardIndices(std::uint32_t shard) const;

    std::uint32_t shardPoints(std::uint32_t shard) const;

    /** The header every journal of this plan must carry. */
    JournalHeader journalHeader(std::uint32_t shard) const;

    /** Canonical journal file name, e.g. "quick.s003-of-008.mcsj"
     *  (fixed-width so a directory listing sorts in shard order). */
    std::string journalFileName(std::uint32_t shard) const;

    /** @p dir + "/" + journalFileName(shard). */
    std::string journalPath(const std::string &dir,
                            std::uint32_t shard) const;

    /**
     * Header for a steal journal covering slice @p slice of @p slices
     * of @p victim's un-journaled remainder (the remainder is frozen by
     * the coordinator when the victim's lease is revoked). shardIndex
     * names the victim, so the scan's index-ownership rule is unchanged;
     * shardPoints is the slice size @p slice_points.
     */
    JournalHeader stealJournalHeader(std::uint32_t victim,
                                     std::uint16_t slice,
                                     std::uint16_t slices,
                                     std::uint32_t slice_points) const;

    /** Canonical steal journal file name, e.g.
     *  "quick.s003-of-008.steal00-of-02.mcsj". */
    std::string stealJournalFileName(std::uint32_t victim,
                                     std::uint16_t slice,
                                     std::uint16_t slices) const;

    /** @p dir + "/" + stealJournalFileName(...). */
    std::string stealJournalPath(const std::string &dir,
                                 std::uint32_t victim,
                                 std::uint16_t slice,
                                 std::uint16_t slices) const;
};

/**
 * Steal journal files of @p plan present in @p dir, as full paths in
 * sorted (victim, slice) order: the deterministic discovery path shared
 * by merge, `run --resume` and a restarted coordinator. Matches by the
 * canonical file-name shape only; headers are validated by whoever
 * opens the file.
 */
std::vector<std::string> findStealJournals(const ShardPlan &plan,
                                           const std::string &dir);

/**
 * Build and validate a plan: resolve the named grid, apply overrides,
 * dry-build every point's machine configuration (the sweep_runner
 * fail-fast discipline: a bad geometry fails here, named after its
 * point, before any process forks). fatal() on unknown grid or preset
 * names, zero shards, or invalid geometry.
 */
ShardPlan buildShardPlan(const PlanOptions &options);

} // namespace mcsim::svc

#endif // MCSIM_SVC_SHARD_HH
