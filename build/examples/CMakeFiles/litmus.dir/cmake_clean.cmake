file(REMOVE_RECURSE
  "CMakeFiles/litmus.dir/litmus.cpp.o"
  "CMakeFiles/litmus.dir/litmus.cpp.o.d"
  "litmus"
  "litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
