#include "svc/merge.hh"

#include <utility>

#include "exp/chaos.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

namespace mcsim::svc
{

namespace
{

/** Parse one journaled payload; fatal() names the point on failure. */
exp::Json
parsePayload(const std::string &payload, const std::string &path,
             std::uint32_t index)
{
    std::string error;
    exp::Json doc = exp::Json::parse(payload, &error);
    if (!error.empty())
        fatal("svc: journal '%s' point %u payload is not JSON: %s",
              path.c_str(), index, error.c_str());
    return doc;
}

} // namespace

MergeResult
mergeJournals(const ShardPlan &plan,
              const std::vector<std::string> &journal_paths)
{
    if (journal_paths.size() != plan.shardCount) {
        fatal("svc: merge got %zu journal(s) for %u shard(s)",
              journal_paths.size(), plan.shardCount);
    }

    const std::size_t total = plan.grid.points.size();
    std::vector<std::string> payloads(total);
    std::vector<bool> covered(total, false);

    for (std::uint32_t shard = 0; shard < plan.shardCount; ++shard) {
        const std::string &path = journal_paths[shard];
        if (!journalExists(path))
            fatal("svc: shard %u journal '%s' does not exist (did the "
                  "shard ever run?)",
                  shard, path.c_str());
        const JournalScan scan = scanJournal(path);
        if (scan.headerTorn)
            fatal("svc: shard %u journal '%s' has a torn header (the "
                  "worker died during creation; resume the run)",
                  shard, path.c_str());
        requireMatchingHeader(scan.header, plan.journalHeader(shard),
                              path);
        // The scan already guarantees in-range, shard-owned, unique
        // indices, so shards can never collide with one another here.
        for (const JournalFrame &frame : scan.frames) {
            payloads[frame.index] = frame.payload;
            covered[frame.index] = true;
        }
        if (scan.frames.size() < scan.header.shardPoints) {
            fatal("svc: shard %u journal '%s' holds %zu of %u points; "
                  "the shard is incomplete (resume the run before "
                  "merging)",
                  shard, path.c_str(), scan.frames.size(),
                  scan.header.shardPoints);
        }
    }
    for (std::size_t i = 0; i < total; ++i) {
        if (!covered[i])
            fatal("svc: no journal covers point %zu (%s)", i,
                  plan.grid.points[i].id().c_str());
    }

    MergeResult result;
    result.totalJobs = total;

    if (plan.mode == RunMode::Sweep) {
        // Splice the journaled canonical payloads, in grid order, into
        // exactly the document SweepOutcomes::toJson() builds.
        exp::Json jobs = exp::Json::array();
        result.csv = exp::csvHeader();
        for (std::size_t i = 0; i < total; ++i) {
            exp::Json job = parsePayload(
                payloads[i], journal_paths[i % plan.shardCount],
                static_cast<std::uint32_t>(i));
            const exp::Json *status = job.find("status");
            if (status == nullptr || !status->isString())
                fatal("svc: point %zu payload lacks a status field", i);
            if (status->asString() != "ok")
                ++result.failedJobs;
            result.csv += exp::csvRowFromJson(plan.grid.name, job);
            jobs.push(std::move(job));
        }
        exp::Json grids = exp::Json::object();
        grids[plan.grid.name] = std::move(jobs);
        exp::Json doc = exp::Json::object();
        doc["schema"] = exp::Json("mcsim-sweep-v1");
        doc["grids"] = std::move(grids);
        result.document = std::move(doc);
        return result;
    }

    // Chaos: rebuild the report object and let ITS serialization and
    // verdict logic speak, so the merged document and the exit status
    // match a single-process `sweep_runner --chaos` run exactly.
    exp::ChaosReport report;
    report.grid = plan.grid.name;
    report.preset = plan.preset;
    report.points.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        report.points.push_back(exp::chaosPointFromJson(parsePayload(
            payloads[i], journal_paths[i % plan.shardCount],
            static_cast<std::uint32_t>(i))));
    }
    result.failedJobs = report.failures();
    result.chaosOk = report.ok();
    result.chaosSummary = report.summary();
    exp::Json reports = exp::Json::array();
    reports.push(report.toJson());
    exp::Json doc = exp::Json::object();
    doc["schema"] = exp::Json("mcsim-chaos-v1");
    doc["reports"] = std::move(reports);
    result.document = std::move(doc);
    return result;
}

} // namespace mcsim::svc
