#include "exp/golden.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mcsim::exp
{

double
metricTolerance(const std::string &metric)
{
    // Integral event counters: exact. Everything the simulator counts
    // one event at a time is bit-deterministic for a fixed seed.
    static const char *exact[] = {
        "cycles",          "totalReads",        "totalWrites",
        "totalSyncOps",    "invalidationMisses", "totalMisses",
        "bufferBypasses",  "prefetchesIssued",  "prefetchesUseful",
        "releasesDeferred", "checkViolations",  "checkLineAudits",
        "checkAccessesChecked", "checkOrderingChecked",
        "faultsInjected",  "protocolRetries",   "protocolNacks",
        "staleProtocolMsgs",
        "mshrBusyCycles",  "axiomAccepted",     "axiomEvents",
        "axiomEdges",      "busyCycles",        "idleCycles",
        "stallLoadMissCycles", "stallStoreMshrCycles",
        "stallBufferCycles", "stallFenceSyncCycles",
        "stallAcquireCycles", "stallReleaseCycles",
        "missLatencyP50",  "missLatencyP90",    "missLatencyP99",
        "missLatencyMax",  "netTransitP50",     "netTransitP90",
        "netTransitP99",   "netTransitMax",     "memQueueP50",
        "memQueueP90",     "memQueueP99",       "memQueueMax"};
    for (const char *name : exact)
        if (metric == name)
            return 0.0;
    // Derived doubles (rates, latencies, per-proc averages, skew,
    // occupancy): tiny relative slack for cross-platform float
    // accumulation order.
    return 1e-9;
}

namespace
{

bool
withinTolerance(double expected, double actual, double rel_tol)
{
    if (expected == actual)
        return true;
    if (rel_tol == 0.0)
        return false;
    const double mag = std::max(std::fabs(expected), std::fabs(actual));
    return std::fabs(expected - actual) <= rel_tol * mag;
}

const Json *
findJob(const Json &jobs, const std::string &id)
{
    for (const Json &job : jobs.elements()) {
        const Json *jid = job.find("id");
        if (jid && jid->isString() && jid->asString() == id)
            return &job;
    }
    return nullptr;
}

void
firstDivergence(GoldenDiff &diff, const std::string &grid,
                const std::string &job, const std::string &what)
{
    diff.ok = false;
    diff.divergences += 1;
    if (diff.divergences == 1) {
        diff.report = strprintf("golden divergence in grid '%s'\n"
                                "  job:    %s\n"
                                "  %s\n",
                                grid.c_str(), job.c_str(), what.c_str());
    }
}

} // namespace

GoldenDiff
compareToGolden(const Json &actual, const Json &golden,
                const std::string &grid_name)
{
    GoldenDiff diff;

    const Json *golden_grids = golden.find("grids");
    const Json *actual_grids = actual.find("grids");
    const Json *want = golden_grids ? golden_grids->find(grid_name)
                                    : nullptr;
    const Json *have = actual_grids ? actual_grids->find(grid_name)
                                    : nullptr;
    if (!want || !want->isArray()) {
        diff.ok = false;
        diff.divergences = 1;
        diff.report = strprintf(
            "golden document has no grid '%s'\n", grid_name.c_str());
        return diff;
    }
    if (!have || !have->isArray()) {
        diff.ok = false;
        diff.divergences = 1;
        diff.report = strprintf(
            "results document has no grid '%s'\n", grid_name.c_str());
        return diff;
    }

    for (const Json &golden_job : want->elements()) {
        const Json *jid = golden_job.find("id");
        const std::string id =
            jid && jid->isString() ? jid->asString() : "<missing id>";
        const Json *actual_job = findJob(*have, id);
        if (!actual_job) {
            firstDivergence(diff, grid_name, id,
                            "missing from the new results");
            continue;
        }

        const Json *want_status = golden_job.find("status");
        const Json *have_status = actual_job->find("status");
        const std::string ws = want_status && want_status->isString()
                                   ? want_status->asString()
                                   : "ok";
        const std::string hs = have_status && have_status->isString()
                                   ? have_status->asString()
                                   : "ok";
        if (ws != hs) {
            firstDivergence(
                diff, grid_name, id,
                strprintf("status: expected %s, got %s", ws.c_str(),
                          hs.c_str()));
            continue;
        }

        const Json *want_metrics = golden_job.find("metrics");
        const Json *have_metrics = actual_job->find("metrics");
        if (!want_metrics || !have_metrics)
            continue;
        for (const auto &[metric, expected] : want_metrics->pairs()) {
            const Json *got = have_metrics->find(metric);
            if (!got || !got->isNumber()) {
                firstDivergence(diff, grid_name, id,
                                strprintf("metric %s: missing from the "
                                          "new results",
                                          metric.c_str()));
                continue;
            }
            const double tol = metricTolerance(metric);
            if (!withinTolerance(expected.asNumber(), got->asNumber(),
                                 tol)) {
                firstDivergence(
                    diff, grid_name, id,
                    strprintf("metric %s: expected %.17g, got %.17g "
                              "(rel tol %g)",
                              metric.c_str(), expected.asNumber(),
                              got->asNumber(), tol));
            }
        }
    }

    if (diff.divergences > 1) {
        diff.report += strprintf("  ... and %u further divergence(s)\n",
                                 diff.divergences - 1);
    }
    if (diff.ok) {
        diff.report = strprintf("grid '%s': %zu job(s) match golden\n",
                                grid_name.c_str(), want->size());
    }
    return diff;
}

GoldenDiff
checkAgainstGoldenDir(const Json &actual, const std::string &golden_dir,
                      const std::string &grid_name)
{
    const std::string path = golden_dir + "/" + grid_name + ".json";
    std::ifstream in(path);
    if (!in) {
        GoldenDiff diff;
        diff.ok = false;
        diff.divergences = 1;
        diff.report =
            strprintf("cannot open golden file %s\n", path.c_str());
        return diff;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string parse_error;
    const Json golden = Json::parse(text.str(), &parse_error);
    if (!parse_error.empty()) {
        GoldenDiff diff;
        diff.ok = false;
        diff.divergences = 1;
        diff.report = strprintf("golden file %s: %s\n", path.c_str(),
                                parse_error.c_str());
        return diff;
    }
    return compareToGolden(actual, golden, grid_name);
}

} // namespace mcsim::exp
