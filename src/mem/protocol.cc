#include "mem/protocol.hh"

namespace mcsim::mem
{

const char *
msgKindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::GetShared: return "GetShared";
      case MsgKind::GetExclusive: return "GetExclusive";
      case MsgKind::Writeback: return "Writeback";
      case MsgKind::InvAck: return "InvAck";
      case MsgKind::RecallStale: return "RecallStale";
      case MsgKind::FlushData: return "FlushData";
      case MsgKind::DataReplyShared: return "DataReplyShared";
      case MsgKind::DataReplyExclusive: return "DataReplyExclusive";
      case MsgKind::Invalidate: return "Invalidate";
      case MsgKind::RecallShared: return "RecallShared";
      case MsgKind::RecallExclusive: return "RecallExclusive";
    }
    return "<unknown>";
}

} // namespace mcsim::mem
