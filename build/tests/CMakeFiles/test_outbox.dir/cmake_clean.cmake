file(REMOVE_RECURSE
  "CMakeFiles/test_outbox.dir/test_outbox.cc.o"
  "CMakeFiles/test_outbox.dir/test_outbox.cc.o.d"
  "test_outbox"
  "test_outbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
