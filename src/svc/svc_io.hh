/**
 * @file
 * Injectable I/O seam for the orchestrator's durability layer
 * (DESIGN.md section 16).
 *
 * Every write the orchestrator's crash-consistency story depends on --
 * journal frame appends and flushes (src/svc/journal.cc) and the
 * temp-write-then-rename publication of results documents
 * (src/svc/atomic_file.cc) -- goes through this seam instead of calling
 * the C library directly. The default implementation is a transparent
 * pass-through; the process-level chaos harness (src/svc/chaos_svc.hh)
 * installs a faulting implementation that makes the Nth write come up
 * short, the Nth flush report an error, or a rename fail -- the
 * deterministic, seed-derived analogue of a disk filling up or a
 * process dying mid-syscall.
 *
 * The seam is intentionally narrow: reads are not routed through it
 * (a torn or corrupt READ is already modelled end-to-end by the
 * journal's CRC framing and the scan's torn-tail handling), and
 * fopen/fclose stay direct (their failures are setup errors, not
 * mid-flight durability hazards).
 */

#ifndef MCSIM_SVC_SVC_IO_HH
#define MCSIM_SVC_SVC_IO_HH

#include <cstddef>
#include <cstdio>

namespace mcsim::svc
{

/** The I/O operations the durability layer performs, overridable. */
class SvcIo
{
  public:
    virtual ~SvcIo() = default;

    /** fwrite: may report (or perform) a short write. */
    virtual std::size_t write(const void *data, std::size_t size,
                              std::FILE *file);

    /** fflush: 0 on success, EOF on failure. */
    virtual int flush(std::FILE *file);

    /** rename(2): 0 on success, -1 on failure. */
    virtual int rename(const char *from, const char *to);
};

/** The active seam (the pass-through unless one was installed). */
SvcIo &svcIo();

/**
 * Install @p io as the active seam (nullptr restores the pass-through);
 * returns the previously active override, nullptr if none. Callers are
 * expected to restore the previous value (RAII guard in chaos_svc);
 * installation is process-global and not thread-safe against concurrent
 * installs -- the chaos harness installs before launching any worker
 * thread and uninstalls after they join.
 */
SvcIo *installSvcIo(SvcIo *io);

} // namespace mcsim::svc

#endif // MCSIM_SVC_SVC_IO_HH
