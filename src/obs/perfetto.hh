/**
 * @file
 * Chrome trace-event (Perfetto) exporter for the obs::Tracer ring.
 *
 * Emits the legacy JSON trace format (a "traceEvents" array of "X"
 * complete events plus process/thread name metadata), which both
 * chrome://tracing and ui.perfetto.dev load directly. Each component
 * class (Track) becomes one process; each component instance becomes
 * one named thread, so the viewer shows per-processor, per-switch-port
 * and per-module timelines. Timestamps are simulated cycles written
 * into the "ts"/"dur" microsecond fields: read 1 us as 1 cycle.
 */

#ifndef MCSIM_OBS_PERFETTO_HH
#define MCSIM_OBS_PERFETTO_HH

#include <string>

#include "obs/tracer.hh"

namespace mcsim::obs
{

/** Serialize the retained events as a Chrome trace-event JSON document. */
std::string perfettoJson(const Tracer &tracer);

} // namespace mcsim::obs

#endif // MCSIM_OBS_PERFETTO_HH
