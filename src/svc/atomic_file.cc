#include "svc/atomic_file.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/logging.hh"
#include "svc/svc_io.hh"

namespace mcsim::svc
{

void
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string temp = path + ".tmp";
    std::FILE *file = std::fopen(temp.c_str(), "wb");
    if (file == nullptr)
        fatal("cannot write '%s'", temp.c_str());
    const bool wrote =
        content.empty() ||
        svcIo().write(content.data(), content.size(), file) ==
            content.size();
    // fflush pushes the bytes to the OS before the rename publishes the
    // name; a kill after the rename therefore always leaves a complete
    // file (crash consistency against SIGKILL, not power loss).
    const bool flushed = wrote && svcIo().flush(file) == 0;
    const bool closed = std::fclose(file) == 0;
    if (!wrote || !flushed || !closed) {
        std::remove(temp.c_str());
        fatal("short write to '%s'", temp.c_str());
    }
    if (svcIo().rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        fatal("cannot rename '%s' into '%s'", temp.c_str(), path.c_str());
    }
}

void
ensureDirectory(const std::string &path)
{
    if (path.empty())
        return;
    // Walk the components left to right, creating each prefix; EEXIST
    // is checked by stat so a file in the way is a clear error.
    std::size_t pos = 0;
    while (pos <= path.size()) {
        std::size_t next = path.find('/', pos);
        if (next == std::string::npos)
            next = path.size();
        const std::string prefix = path.substr(0, next);
        pos = next + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        struct stat st = {};
        if (::stat(prefix.c_str(), &st) == 0) {
            if (!S_ISDIR(st.st_mode))
                fatal("svc: '%s' exists and is not a directory",
                      prefix.c_str());
            continue;
        }
        if (::mkdir(prefix.c_str(), 0777) != 0) {
            // A concurrent worker may have just created it.
            if (::stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
                fatal("svc: cannot create directory '%s'",
                      prefix.c_str());
        }
    }
}

void
removeTree(const std::string &path)
{
    struct stat st = {};
    if (::lstat(path.c_str(), &st) != 0)
        return;
    if (!S_ISDIR(st.st_mode)) {
        if (::unlink(path.c_str()) != 0)
            fatal("svc: cannot remove '%s'", path.c_str());
        return;
    }
    DIR *dir = ::opendir(path.c_str());
    if (dir == nullptr)
        fatal("svc: cannot list '%s'", path.c_str());
    // Sorted traversal: deletion order (and thus any error message) is
    // deterministic regardless of directory hash order.
    std::vector<std::string> entries;
    for (struct dirent *de = ::readdir(dir); de != nullptr;
         de = ::readdir(dir)) {
        const std::string name = de->d_name;
        if (name != "." && name != "..")
            entries.push_back(name);
    }
    ::closedir(dir);
    std::sort(entries.begin(), entries.end());
    for (const std::string &name : entries)
        removeTree(path + "/" + name);
    if (::rmdir(path.c_str()) != 0)
        fatal("svc: cannot remove directory '%s'", path.c_str());
}

} // namespace mcsim::svc
