/**
 * @file
 * Happens-before data-race detector over simulated shared accesses.
 *
 * FastTrack-style vector-clock detection (Flanagan & Freund) adapted to
 * the simulator's functional/timing split:
 *
 *  - Plain data loads/stores execute functionally at issue time; the
 *    processor reports them here at that same point, so the detector
 *    sees them in a legal interleaving of the simulated execution.
 *  - SyncLoad/SyncRmw act as acquires of their address's clock,
 *    reported at the point the sync value is functionally observed.
 *  - SyncStore acts as a release, reported at its program-order point
 *    (for RC that is where the release enters the deferred-release
 *    machinery, before later accesses of the releasing processor can
 *    advance its clock).
 *
 * Sync and plain accesses to the same address do not conflict with each
 * other: sync operations are hardware-serialized, and the workloads
 * legitimately mix sync peeks with lock-protected plain updates of the
 * same word (Qsort's stack top, Psim's ring counts).
 *
 * Shadow state is kept per 4-byte granule (the narrowest simulated
 * access width), so adjacent-word false sharing never reports a false
 * race. A race here means the program is not data-race-free and the
 * paper's "all models appear sequentially consistent" guarantee is void.
 */

#ifndef MCSIM_CHECK_RACE_DETECTOR_HH
#define MCSIM_CHECK_RACE_DETECTOR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "check/vector_clock.hh"
#include "sim/types.hh"

namespace mcsim::check
{

/** Vector-clock race detector; reports races as description strings. */
class RaceDetector
{
  public:
    explicit RaceDetector(unsigned num_procs);

    /**
     * Record a plain data read/write of [addr, addr+width) by @p p.
     * @return a human-readable race description, or "" when race-free.
     * @{
     */
    std::string read(ProcId p, Addr addr, unsigned width);
    std::string write(ProcId p, Addr addr, unsigned width);
    /** @} */

    /** Acquire: join the sync address's clock into processor @p p's. */
    void acquire(ProcId p, Addr sync_addr);

    /** Release: fold @p p's clock into the sync address's, advance p. */
    void release(ProcId p, Addr sync_addr);

    std::uint64_t accessesChecked() const { return numChecked; }

  private:
    /** Last-access metadata for one 4-byte granule. */
    struct Shadow
    {
        static constexpr ProcId noWriter = ~ProcId(0);
        ProcId writer = noWriter;       ///< last writer
        std::uint64_t writeClock = 0;   ///< writer's clock at the write
        /** Per-processor clock of each processor's last read; empty until
         *  the granule is first read. */
        std::vector<std::uint64_t> readClocks;
    };

    static Addr granuleOf(Addr addr) { return addr >> 2; }

    Shadow &shadowFor(Addr granule);
    std::string checkRead(ProcId p, Addr granule);
    std::string checkWrite(ProcId p, Addr granule);

    unsigned numProcs;
    std::vector<VectorClock> procClock;           ///< C[p]
    std::unordered_map<Addr, VectorClock> syncClock;  ///< L[addr]
    std::unordered_map<Addr, Shadow> shadow;      ///< per granule
    std::uint64_t numChecked = 0;
};

} // namespace mcsim::check

#endif // MCSIM_CHECK_RACE_DETECTOR_HH
