// Canary fixture for mcsim-lint's choice-seam check. Run with
//   mcsim-lint --treat-as src/mem/rogue_component.cc <this file>
// so the linter classifies it as timing-layer code: ad-hoc entropy and
// unregistered ChoiceScheduler::choose() calls must then be reported.
// NOT compiled into any target.

#include <cstdint>

struct FakeScheduler
{
    unsigned choose(int kind, const void *options, unsigned n);
};

// violation (timing layer): splitmix64 outside the choice seam
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    return x ^ (x >> 31);
}

unsigned
pickDeliveryOrder(FakeScheduler *sched, std::uint64_t salt)
{
    // violation (timing layer): Rng-style hash chain deciding order
    const std::uint64_t h = splitmix64(salt);
    // violation: choose() call outside the registered seam sites
    return sched->choose(0, nullptr, static_cast<unsigned>(h % 4 + 1));
}
