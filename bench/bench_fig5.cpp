/**
 * @file
 * Reproduces paper Figure 5: percentage gain over SC1 with the large
 * ("64K") caches, 16 processors. The paper's headline here: Gauss's
 * gains collapse to under ~2% once its data set fits the cache, while
 * Qsort (whose working set still does not fit) keeps its gains.
 *
 * Usage: bench_fig5 [--full] [--threads N] [--no-progress]
 */

#include "bench_common.hh"

using namespace mcsim;
using namespace mcsim::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = parseBenchArgs(argc, argv);
    const exp::SweepOutcomes res = runNamedGrid("fig5", args);
    const std::vector<core::Model> models = {
        core::Model::SC2, core::Model::WO1, core::Model::WO2,
        core::Model::RC};

    std::printf("Figure 5 reproduction: %% gain over SC1, 16 procs, "
                "%s caches%s\n",
                cacheLabel(args, true), isFull(args) ? " (paper-size)" : "");
    printHeaderRule();

    for (const auto &name : benchmarkNames) {
        std::printf("\n%s\n", name.c_str());
        std::printf("%-6s %10s %10s %10s\n", "model", "8B", "16B", "64B");
        for (core::Model model : models) {
            std::printf("%-6s", core::modelName(model));
            for (unsigned line : lineSizes) {
                const auto &base = res.metrics(exp::paperPoint(
                    name, core::Model::SC1, args.scale, true, line));
                const auto &m = res.metrics(
                    exp::paperPoint(name, model, args.scale, true, line));
                std::printf(" %9.1f%%", core::percentGain(base, m));
            }
            std::printf("\n");
        }
    }
    return 0;
}
