/**
 * @file
 * Executable versions of the paper's headline qualitative findings, at
 * reduced sizes so they run in seconds. These are the regression tests
 * that keep the reproduction honest: if a change to the simulator breaks
 * one of the paper's shapes, it fails here before it reaches the bench
 * binaries.
 */

#include <gtest/gtest.h>

#include "core/machine_config.hh"
#include "core/metrics.hh"
#include "workloads/gauss.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/workload.hh"

using namespace mcsim;
using core::Model;

namespace
{

core::MachineConfig
paperConfig(Model m, unsigned line, unsigned cache = 4096)
{
    core::MachineConfig cfg;
    cfg.numProcs = 16;
    cfg.numModules = 16;
    cfg.model = m;
    cfg.cacheBytes = cache;
    cfg.lineBytes = line;
    cfg.maxCycles = 2'000'000'000ull;
    return cfg;
}

Tick
gaussCycles(Model m, unsigned line, unsigned n = 96, unsigned cache = 4096)
{
    workloads::GaussParams p;
    p.n = n;
    workloads::GaussWorkload w(p);
    return workloads::runWorkload(w, paperConfig(m, line, cache))
        .metrics.cycles;
}

double
gain(Tick base, Tick other)
{
    return 100.0 * (static_cast<double>(base) -
                    static_cast<double>(other)) /
           static_cast<double>(base);
}

} // namespace

TEST(PaperShapes, GaussGainsDecreaseWithLineSize)
{
    // Figure 4, Gauss: the smaller the line (the lower the hit rate),
    // the bigger the relaxed-model gain.
    const double g8 = gain(gaussCycles(Model::SC1, 8),
                           gaussCycles(Model::WO1, 8));
    const double g16 = gain(gaussCycles(Model::SC1, 16),
                            gaussCycles(Model::WO1, 16));
    const double g64 = gain(gaussCycles(Model::SC1, 64),
                            gaussCycles(Model::WO1, 64));
    EXPECT_GT(g8, g16);
    EXPECT_GT(g16, g64);
    EXPECT_GT(g8, 15.0);  // substantial benefit at 8-byte lines
    EXPECT_GT(g64, 0.0);
}

TEST(PaperShapes, RcAndWo1AreEquivalent)
{
    // Section 4.2.2: "in all of the runs RC and WO1 performed in a
    // similar manner", RC at most slightly better.
    const Tick wo1 = gaussCycles(Model::WO1, 16);
    const Tick rc = gaussCycles(Model::RC, 16);
    const double diff = gain(wo1, rc);
    EXPECT_GT(diff, -2.0);
    EXPECT_LT(diff, 5.0);
}

TEST(PaperShapes, Wo2BypassingIsNotWorthwhile)
{
    // Section 4.2.3: bypassing produced "no difference in performance".
    const Tick wo1 = gaussCycles(Model::WO1, 16);
    const Tick wo2 = gaussCycles(Model::WO2, 16);
    const double diff =
        100.0 * std::abs(static_cast<double>(wo1) -
                         static_cast<double>(wo2)) /
        static_cast<double>(wo1);
    EXPECT_LT(diff, 4.0);
}

TEST(PaperShapes, Sc2PrefetchIsMarginalForGauss)
{
    // Section 4.2.4: "very little benefit in prefetching one line when a
    // processor is stalled" -- much less than the relaxed models buy.
    const Tick sc1 = gaussCycles(Model::SC1, 16);
    const Tick sc2 = gaussCycles(Model::SC2, 16);
    const Tick wo1 = gaussCycles(Model::WO1, 16);
    EXPECT_LT(gain(sc1, sc2), 0.6 * gain(sc1, wo1));
}

TEST(PaperShapes, GaussGainsCollapseWhenDataFitsCache)
{
    // Figure 5: with the large cache the hit rates are uniformly high
    // and "the benefits never reach 2%" (we allow a looser bound at the
    // reduced test size).
    const double small_gain = gain(gaussCycles(Model::SC1, 16, 96, 2048),
                                   gaussCycles(Model::WO1, 16, 96, 2048));
    const double big_gain =
        gain(gaussCycles(Model::SC1, 16, 96, 64 * 1024),
             gaussCycles(Model::WO1, 16, 96, 64 * 1024));
    EXPECT_LT(big_gain, 0.6 * small_gain);
}

TEST(PaperShapes, QsortSixtyFourByteLinesSlowest)
{
    // Figure 2: Qsort's 64-byte configuration is the slowest despite its
    // higher hit rate (sharing traffic + line-proportional occupancy).
    auto qsort_cycles = [&](unsigned line) {
        workloads::QsortParams p;
        p.n = 16384;
        p.parallelCutoff = 4096;
        workloads::QsortWorkload w(p);
        return workloads::runWorkload(w, paperConfig(Model::SC1, line))
            .metrics.cycles;
    };
    const Tick c16 = qsort_cycles(16);
    const Tick c64 = qsort_cycles(64);
    EXPECT_GT(c64, c16);
}

TEST(PaperShapes, RelaxGainsAreSmall)
{
    // Section 4.1.3: "Relax obtains very little benefit from the relaxed
    // models. The largest gain is 5%."
    auto relax_cycles = [&](Model m) {
        workloads::RelaxParams p;
        p.interior = 96;
        p.iterations = 2;
        workloads::RelaxWorkload w(p);
        return workloads::runWorkload(w, paperConfig(m, 16))
            .metrics.cycles;
    };
    const double g = gain(relax_cycles(Model::SC1),
                          relax_cycles(Model::WO1));
    EXPECT_LT(g, 10.0);
    EXPECT_GT(g, -2.0);
}

TEST(PaperShapes, BlockingLoadsCaptureGaussWriteLatency)
{
    // Figure 7, Gauss at the small cache: part of WO1's gain survives
    // with blocking loads (write latency), but non-blocking loads add a
    // substantial further step.
    const Tick bsc1 = gaussCycles(Model::BSC1, 16);
    const Tick bwo1 = gaussCycles(Model::BWO1, 16);
    const Tick wo1 = gaussCycles(Model::WO1, 16);
    EXPECT_GT(gain(bsc1, bwo1), 0.0);
    EXPECT_GT(gain(bsc1, wo1), gain(bsc1, bwo1));
}

TEST(PaperShapes, ThirtyTwoProcessorsStillGain)
{
    // Figure 6: the relaxed models keep their benefit at 32 processors
    // (with one extra network stage).
    workloads::GaussParams p;
    p.n = 96;
    auto cfg = paperConfig(Model::SC1, 16);
    cfg.numProcs = 32;
    cfg.numModules = 32;
    workloads::GaussWorkload w1(p);
    const Tick sc1 = workloads::runWorkload(w1, cfg).metrics.cycles;
    cfg.model = Model::WO1;
    workloads::GaussWorkload w2(p);
    const Tick wo1 = workloads::runWorkload(w2, cfg).metrics.cycles;
    EXPECT_GT(gain(sc1, wo1), 10.0);
}
