file(REMOVE_RECURSE
  "CMakeFiles/scheduling.dir/scheduling.cpp.o"
  "CMakeFiles/scheduling.dir/scheduling.cpp.o.d"
  "scheduling"
  "scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
