/**
 * @file
 * Fault-injection configuration (DESIGN.md section 11).
 *
 * Faults are deterministic: every injection decision is a pure function
 * of (seed, site, decision index), derived with splitmix64 hash chains
 * (sim/random.hh), so a faulted run reproduces bit-identically at any
 * sweep thread count -- the same contract the sweep engine already makes
 * for fault-free runs.
 *
 * The master switch is `enable`. When it is off the protocol takes its
 * legacy (perfect-hardware) paths exactly, so golden baselines see zero
 * drift; when it is on, the hardened protocol paths (per-line grant
 * sequence numbers, writeback acknowledgment, NACKs, MSHR retry with
 * bounded exponential backoff) are active even if every rate below is
 * zero.
 *
 * The forward-progress watchdog is configured here but is independent of
 * `enable`: it is pure observation (no event, no timing change) and is
 * armed for every run by default.
 */

#ifndef MCSIM_FAULT_FAULT_CONFIG_HH
#define MCSIM_FAULT_FAULT_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mcsim::fault
{

/** Per-machine fault-injection settings. */
struct FaultConfig
{
    /** Master switch: injection sites armed, hardened protocol on. */
    bool enable = false;

    /** Seed for every injection decision (sweeps derive it from the
     *  point id so chaos jobs are reproducible in isolation). */
    std::uint64_t seed = 0;

    /** Total injected-fault cap across all sites; 0 = unlimited. Unit
     *  tests use budget=1 to inject exactly one fault and then let the
     *  recovery machinery run on perfect hardware. */
    std::uint64_t budget = 0;

    /** Omega-network switch-port faults (per eligible message). @{ */
    double dropRate = 0.0;       ///< lose the message entirely
    double dupRate = 0.0;        ///< deliver a second copy later
    double delayRate = 0.0;      ///< hold the message extra cycles
    unsigned delayMaxCycles = 64;///< uniform extra delay in [1, max]
    /** @} */

    /** Directory-side lost replies (per DataReply leaving a module). */
    double replyLossRate = 0.0;

    /** Memory-module transient stall windows: per DRAM reservation,
     *  with probability `moduleStallRate` add [1, moduleStallMaxCycles]
     *  busy cycles before the access starts. @{ */
    double moduleStallRate = 0.0;
    unsigned moduleStallMaxCycles = 32;
    /** @} */

    /** Memory-module blackouts: within every `blackoutPeriod`-cycle
     *  window each module has one seed-positioned outage of up to
     *  `blackoutMaxCycles` during which arriving requests are deferred
     *  (never dropped) to the outage end. 0 period = no blackouts. @{ */
    Tick blackoutPeriod = 0;
    Tick blackoutMaxCycles = 0;
    /** @} */

    /** Recovery: MSHR timeout-driven re-issue. A request whose reply
     *  has not arrived after retryTimeoutCycles (+ backoff on later
     *  attempts) is re-sent. 0 disables retries -- only useful in tests
     *  that want a wedge for the watchdog to convert. @{ */
    unsigned retryTimeoutCycles = 400;
    unsigned backoffBaseCycles = 64;   ///< doubled per attempt...
    unsigned backoffMaxCycles = 4096;  ///< ...capped here
    unsigned backoffJitterCycles = 32; ///< + seed-derived [0, jitter]
    /** @} */

    /** Directory NACKs a Get* instead of queueing it once a blocked
     *  line's waiter queue is this deep; the cache re-sends after
     *  backoff. 0 = never NACK. */
    unsigned nackThreshold = 8;

    /** Forward-progress watchdog: fatal() with a diagnostic snapshot
     *  when no instruction retires machine-wide for this many cycles.
     *  Active for every run (faults on or off); 0 = disabled. */
    Tick watchdogCycles = 2'000'000;

    /** Injection sites armed / hardened protocol selected. */
    bool enabled() const { return enable; }

    /** fatal() on inconsistent settings (rates outside [0,1], blackout
     *  longer than its period, ...). */
    void validate() const;
};

/** Preset names understood by faultPreset(), in catalog order:
 *  "off", "light", "standard", "heavy". */
const std::vector<std::string> &faultPresetNames();

/** Build a named preset; fatal() on unknown names. */
FaultConfig faultPreset(const std::string &name);

} // namespace mcsim::fault

#endif // MCSIM_FAULT_FAULT_CONFIG_HH
