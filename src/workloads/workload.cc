#include "workloads/workload.hh"

namespace mcsim::workloads
{

RunResult
runWorkload(Workload &workload, const core::MachineConfig &config)
{
    return runWorkload(workload, config, {});
}

RunResult
runWorkload(Workload &workload, const core::MachineConfig &config,
            const std::function<void(core::Machine &)> &afterSetup)
{
    core::MachineConfig cfg = config;
    if (!workload.dataRaceFree())
        cfg.check.races = false;
    core::Machine machine(cfg);
    workload.setup(machine);
    if (afterSetup)
        afterSetup(machine);
    const Tick last = machine.run();
    workload.verify(machine);

    RunResult result;
    result.metrics = core::RunMetrics::fromMachine(machine, last);
    result.stats = machine.collectStats();
    return result;
}

} // namespace mcsim::workloads
