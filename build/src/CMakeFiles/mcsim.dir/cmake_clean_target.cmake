file(REMOVE_RECURSE
  "libmcsim.a"
)
