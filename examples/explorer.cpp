/**
 * @file
 * Explorer: run one benchmark on one machine configuration and dump the
 * full statistics set -- stall breakdowns, network contention, module
 * utilization, hit rates. The tool for poking at the simulator.
 *
 * Usage: explorer [options]
 *   --workload gauss|qsort|relax|psim|synthetic   (default gauss)
 *   --model SC1|SC2|WO1|WO2|RC|bSC1|bWO1          (default SC1)
 *   --procs N       (default 16)
 *   --cache BYTES   (default 4096)
 *   --line BYTES    (default 16)
 *   --delay N       load/branch delay (default 4)
 *   --size N        workload size knob (matrix n / elements / interior)
 *   --full          paper-size workload and caches
 *   --stats         dump every raw statistic
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/machine_config.hh"
#include "core/metrics.hh"
#include "workloads/gauss.hh"
#include "workloads/psim.hh"
#include "workloads/qsort.hh"
#include "workloads/relax.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace mcsim;

namespace
{

std::unique_ptr<workloads::Workload>
makeWorkload(const std::string &name, unsigned size, bool full)
{
    if (name == "gauss") {
        workloads::GaussParams p;
        p.n = size ? size : (full ? 250 : 150);
        return std::make_unique<workloads::GaussWorkload>(p);
    }
    if (name == "qsort") {
        workloads::QsortParams p;
        p.n = size ? size : (full ? 500000 : 40960);
        return std::make_unique<workloads::QsortWorkload>(p);
    }
    if (name == "relax") {
        workloads::RelaxParams p;
        p.interior = size ? size : (full ? 512 : 192);
        p.iterations = full ? 8 : 3;
        return std::make_unique<workloads::RelaxWorkload>(p);
    }
    if (name == "psim") {
        workloads::PsimParams p;
        if (size)
            p.packetsPerProc = size;
        return std::make_unique<workloads::PsimWorkload>(p);
    }
    if (name == "synthetic") {
        workloads::SyntheticParams p;
        p.refsPerProc = size ? size : 5000;
        return std::make_unique<workloads::SyntheticWorkload>(p);
    }
    std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "gauss";
    std::string model = "SC1";
    unsigned size = 0;
    bool full = false;
    bool dump_stats = false;

    core::MachineConfig cfg;
    cfg.cacheBytes = 4096;
    cfg.lineBytes = 16;

    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", argv[i]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload"))
            workload = next();
        else if (!std::strcmp(argv[i], "--model"))
            model = next();
        else if (!std::strcmp(argv[i], "--procs"))
            cfg.numProcs = cfg.numModules = std::atoi(next());
        else if (!std::strcmp(argv[i], "--cache"))
            cfg.cacheBytes = std::atoi(next());
        else if (!std::strcmp(argv[i], "--line"))
            cfg.lineBytes = std::atoi(next());
        else if (!std::strcmp(argv[i], "--delay"))
            cfg.loadDelay = cfg.branchDelay = std::atoi(next());
        else if (!std::strcmp(argv[i], "--size"))
            size = std::atoi(next());
        else if (!std::strcmp(argv[i], "--full"))
            full = true;
        else if (!std::strcmp(argv[i], "--stats"))
            dump_stats = true;
        else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return 1;
        }
    }
    if (full && cfg.cacheBytes == 4096)
        cfg.cacheBytes = 16 * 1024;
    cfg.model = core::modelFromName(model);

    auto w = makeWorkload(workload, size, full);
    auto result = workloads::runWorkload(*w, cfg);
    const auto &m = result.metrics;

    std::printf("%s on %s: %s\n", w->name().c_str(), model.c_str(),
                m.summary().c_str());
    std::printf("  invalidation misses: %llu of %llu misses (%.0f%%)\n",
                (unsigned long long)m.invalidationMisses,
                (unsigned long long)m.totalMisses,
                m.totalMisses ? 100.0 * m.invalidationMisses / m.totalMisses
                              : 0.0);
    std::printf("  module skew: %.2f   avg resp latency: %.1f   "
                "avg miss latency: %.1f\n",
                m.moduleSkew, m.avgRespLatency, m.avgMissLatency);
    std::printf("  bypasses: %llu  prefetches: %llu (useful %llu)  "
                "deferred releases: %llu\n",
                (unsigned long long)m.bufferBypasses,
                (unsigned long long)m.prefetchesIssued,
                (unsigned long long)m.prefetchesUseful,
                (unsigned long long)m.releasesDeferred);
    const auto &s = result.stats;
    std::printf("  stalls/proc: issue=%.0f drain=%.0f use=%.0f sync=%.0f "
                "blocked=%.0f (cycles=%llu)\n",
                s.get("proc.total.issue_stall_cycles") / cfg.numProcs,
                s.get("proc.total.drain_stall_cycles") / cfg.numProcs,
                s.get("proc.total.use_stall_cycles") / cfg.numProcs,
                s.get("proc.total.sync_stall_cycles") / cfg.numProcs,
                s.get("proc.total.blocked_stall_cycles") / cfg.numProcs,
                (unsigned long long)m.cycles);

    if (dump_stats) {
        std::string text;
        for (const auto &[k, v] : result.stats)
            std::printf("%s = %.1f\n", k.c_str(), v);
    }
    return 0;
}
