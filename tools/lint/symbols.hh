/**
 * @file
 * Cross-file symbol harvest for mcsim-lint.
 *
 * The checks need three pieces of repo-wide knowledge that a single
 * token stream cannot provide:
 *
 *  - which names are declared with std::unordered_map/unordered_set
 *    type (variables, data members, and functions returning one), so
 *    iteration over them can be recognized at use sites in other files;
 *  - which scoped enums are defined in the linted tree (name and
 *    enumerator count), so a `switch` whose case labels are qualified
 *    with one of them is known to range over a closed protocol enum;
 *  - type aliases that resolve to unordered containers.
 *
 * The harvest runs over every gathered file (headers included) before
 * any check runs. It is name-based, not scope-resolved: a std::vector
 * that shares its identifier with an unordered member elsewhere would
 * be over-approximated. The repo-wide zero-findings gate keeps that
 * honest -- a collision either gets renamed or suppressed with a
 * written reason.
 */

#ifndef MCSIM_TOOLS_LINT_SYMBOLS_HH
#define MCSIM_TOOLS_LINT_SYMBOLS_HH

#include <map>
#include <set>
#include <string>

#include "lint/lexer.hh"

namespace mcsim::lint
{

/** Accumulated declarations across all linted files. */
struct SymbolIndex
{
    /** Names declared with an unordered container type. */
    std::set<std::string, std::less<>> unorderedNames;
    /** Type aliases (`using X = std::unordered_map<...>`) to unordered
     *  containers; declarations of these types feed unorderedNames. */
    std::set<std::string, std::less<>> unorderedTypes;
    /** Scoped enums defined in the linted tree -> enumerator count. */
    std::map<std::string, unsigned, std::less<>> enums;
};

/** Harvest declarations from one lexed file into @p index. */
void harvestSymbols(const LexedFile &file, SymbolIndex &index);

} // namespace mcsim::lint

#endif // MCSIM_TOOLS_LINT_SYMBOLS_HH
