/**
 * @file
 * litmus_runner: run the classic litmus suite against the simulated
 * machines and report per-outcome histograms with their verdicts.
 *
 * Every run records a full memory-event trace, reconstructs the
 * hardware-visible read values, and feeds the trace to the axiomatic
 * checker. A run fails when a model-forbidden outcome is observed (at
 * the functional or hardware level) or when the checker rejects the
 * trace; the happens-before cycle witness is printed in that case.
 *
 * Usage:
 *   litmus_runner [--model NAME|all] [--test NAME|all] [--seeds N]
 *                 [--store-buffer] [--verbose]
 *
 * Exit status: 0 when every selected run is clean, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "axiom/litmus.hh"
#include "core/consistency.hh"
#include "sim/logging.hh"

#include "../common/cli.hh"

using namespace mcsim;
using namespace mcsim::axiom;

namespace
{

struct Options
{
    std::string model = "all";
    std::string test = "all";
    unsigned seeds = 20;
    bool storeBuffer = false;
    bool verbose = false;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--model NAME|all] [--test NAME|all] [--seeds N]\n"
        "          [--store-buffer] [--verbose]\n"
        "  --model         one of SC1 SC2 WO1 WO2 RC bSC1 bWO1, or all\n"
        "  --test          a litmus test name (e.g. SB, MP+sync), or all\n"
        "  --seeds         runs per (model, test) pair (default 20)\n"
        "  --store-buffer  also run the SC systems with the store-buffer\n"
        "                  hand-off ablation enabled\n"
        "  --verbose       print every individual run\n",
        argv0);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--model") {
            opt.model = next();
        } else if (arg == "--test") {
            opt.test = next();
        } else if (arg == "--seeds") {
            if (!tools::parseUnsigned(next(), opt.seeds) ||
                opt.seeds == 0) {
                std::fprintf(stderr,
                             "litmus_runner: --seeds expects a positive "
                             "integer\n");
                usage(argv[0]);
                std::exit(2);
            }
        } else if (arg == "--store-buffer") {
            opt.storeBuffer = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            usage(argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

/** One-line config error + exit 2 (the up-front validation contract). */
[[noreturn]] void
configError(const std::string &message)
{
    std::fprintf(stderr, "litmus_runner: %s\n", message.c_str());
    std::exit(2);
}

/**
 * Fail fast on bad configuration: model and test names and every machine
 * configuration are checked before a single litmus run starts.
 */
void
validateOptions(const Options &opt)
{
    if (opt.model != "all") {
        bool known = false;
        for (core::Model model : core::allModels)
            known = known || opt.model == core::modelName(model);
        if (!known) {
            std::string names;
            for (core::Model model : core::allModels)
                names += std::string(names.empty() ? "" : " ") +
                         core::modelName(model);
            configError(strprintf("unknown model '%s' (one of: %s, all)",
                                  opt.model.c_str(), names.c_str()));
        }
    }
    if (opt.test != "all") {
        bool known = false;
        for (const LitmusTest &test : litmusSuite())
            known = known || opt.test == test.name;
        if (!known) {
            std::string names;
            for (const LitmusTest &test : litmusSuite())
                names += (names.empty() ? "" : ", ") + test.name;
            configError(strprintf("unknown litmus test '%s' (one of: "
                                  "%s, all)",
                                  opt.test.c_str(), names.c_str()));
        }
    }
    for (core::Model model : core::allModels) {
        if (opt.model != "all" && opt.model != core::modelName(model))
            continue;
        try {
            litmusConfig(model).validate();
        } catch (const FatalError &err) {
            configError(strprintf("model %s: %s",
                                  core::modelName(model), err.what()));
        }
    }
}

/** One machine configuration under test. */
struct Target
{
    std::string label;
    core::MachineConfig config;
};

std::vector<Target>
buildTargets(const Options &opt)
{
    std::vector<Target> targets;
    for (core::Model model : core::allModels) {
        if (opt.model != "all" &&
            opt.model != core::modelName(model))
            continue;
        targets.push_back({core::modelName(model), litmusConfig(model)});
        if (opt.storeBuffer &&
            core::modelParams(model).singleOutstanding) {
            Target t{std::string(core::modelName(model)) + "+buf",
                     litmusConfig(model)};
            core::ModelParams params = core::modelParams(model);
            params.scStoreBufferRelease = true;
            t.config.modelOverride = params;
            targets.push_back(std::move(t));
        }
    }
    if (targets.empty()) {
        std::fprintf(stderr, "no model matches '%s'\n", opt.model.c_str());
        std::exit(2);
    }
    return targets;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    validateOptions(opt);
    const std::vector<Target> targets = buildTargets(opt);

    bool test_matched = false;
    unsigned pairs = 0;
    unsigned failed_pairs = 0;

    for (const Target &target : targets) {
        const core::ModelParams params = target.config.modelParams();
        for (const LitmusTest &test : litmusSuite()) {
            if (opt.test != "all" && opt.test != test.name)
                continue;
            test_matched = true;
            pairs += 1;

            // outcome -> {count, forbidden}
            std::map<std::string, std::pair<unsigned, bool>> histogram;
            unsigned rejected = 0;
            std::string first_report;
            for (std::uint64_t seed = 1; seed <= opt.seeds; ++seed) {
                LitmusRun run;
                try {
                    run = runLitmus(test, target.config, seed);
                } catch (const FatalError &err) {
                    std::printf("%s / %s seed %llu: fatal: %s\n",
                                target.label.c_str(), test.name.c_str(),
                                static_cast<unsigned long long>(seed),
                                err.what());
                    rejected += 1;
                    continue;
                }
                const bool hw_ok = test.allowed(params, run.hwReads);
                const bool func_ok = test.allowed(params, run.funcReads);
                auto &slot = histogram[outcomeString(run.hwReads)];
                slot.first += 1;
                slot.second = slot.second || !hw_ok;
                if (!run.axiom.ok) {
                    rejected += 1;
                    if (first_report.empty())
                        first_report = run.axiom.message;
                }
                if (!func_ok) {
                    auto &fslot =
                        histogram[outcomeString(run.funcReads) + " (func)"];
                    fslot.first += 1;
                    fslot.second = true;
                }
                if (opt.verbose) {
                    std::printf("  %s / %s seed %llu: hw=(%s) func=(%s) "
                                "%s %s\n",
                                target.label.c_str(), test.name.c_str(),
                                static_cast<unsigned long long>(seed),
                                outcomeString(run.hwReads).c_str(),
                                outcomeString(run.funcReads).c_str(),
                                hw_ok && func_ok ? "allowed" : "FORBIDDEN",
                                run.axiom.ok ? "accepted" : "REJECTED");
                }
            }

            bool forbidden = false;
            for (const auto &[outcome, slot] : histogram)
                forbidden = forbidden || slot.second;
            const bool pair_ok = !forbidden && rejected == 0;
            failed_pairs += pair_ok ? 0 : 1;

            std::printf("%-8s %-9s %s\n", target.label.c_str(),
                        test.name.c_str(), pair_ok ? "ok" : "FAIL");
            for (const auto &[outcome, slot] : histogram) {
                std::printf("    (%s) x%u%s\n", outcome.c_str(),
                            slot.first,
                            slot.second ? "  FORBIDDEN" : "");
            }
            if (rejected > 0) {
                std::printf("    %u trace(s) rejected by the axiomatic "
                            "checker\n%s",
                            rejected, first_report.c_str());
            }
        }
    }

    if (!test_matched) {
        std::fprintf(stderr, "no litmus test matches '%s'\n",
                     opt.test.c_str());
        return 2;
    }
    std::printf("litmus_runner: %u/%u (model, test) pairs clean\n",
                pairs - failed_pairs, pairs);
    return failed_pairs == 0 ? 0 : 1;
}
