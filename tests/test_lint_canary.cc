/**
 * @file
 * Canary suite for mcsim-lint (tools/lint/). Three guarantees:
 *
 *  - every intentional violation in the tools/lint/canary/ fixtures is
 *    reported with the expected check name -- if a check goes silent,
 *    this suite turns red (the --weaken pattern from src/mc/ applied
 *    to the linter itself);
 *  - the real src/ tree is clean: zero unsuppressed findings over the
 *    full compile database;
 *  - every in-tree suppression names a real check and carries a
 *    non-empty written reason (the audit trail stays honest).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace
{

struct ToolResult
{
    int exit = -1;
    std::string output;  ///< stdout + stderr, interleaved
};

/** Run mcsim-lint with @p args; capture combined output and status. */
ToolResult
runLint(const std::string &args)
{
    const std::string cmd =
        std::string(MCSIM_LINT_BIN) + " " + args + " 2>&1";
    ToolResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    std::array<char, 4096> buf;
    std::size_t n = 0;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.output.append(buf.data(), n);
    const int status = pclose(pipe);
    r.exit = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

std::string
canary(const char *name)
{
    return std::string(MCSIM_LINT_SOURCE_DIR) + "/tools/lint/canary/" +
           name;
}

/** Occurrences of @p needle in @p haystack. */
unsigned
countOf(const std::string &haystack, const std::string &needle)
{
    unsigned count = 0;
    for (std::size_t at = haystack.find(needle);
         at != std::string::npos; at = haystack.find(needle, at + 1))
        ++count;
    return count;
}

TEST(LintCanary, ListChecksNamesTheCatalog)
{
    const ToolResult r = runLint("--list-checks");
    EXPECT_EQ(r.exit, 0) << r.output;
    for (const char *check :
         {"no-entropy", "no-unordered-iteration", "no-pointer-ordering",
          "protocol-switch-exhaustiveness", "choice-seam",
          "suppression-audit"})
        EXPECT_NE(r.output.find(check), std::string::npos) << check;
}

TEST(LintCanary, EntropyFixtureFullyReported)
{
    const ToolResult r = runLint(canary("entropy.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    // time(), system_clock, random_device, rand(), pointer-to-integer.
    EXPECT_EQ(countOf(r.output, "[no-entropy]"), 5u) << r.output;
    EXPECT_NE(r.output.find("'system_clock'"), std::string::npos);
    EXPECT_NE(r.output.find("'random_device'"), std::string::npos);
    EXPECT_NE(r.output.find("allocator layout"), std::string::npos);
}

TEST(LintCanary, UnorderedIterationFixtureReportedSuppressionHonored)
{
    const ToolResult r = runLint(canary("unordered_iteration.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    // The unsuppressed range-for and the begin() walk -- and only
    // those: the order-insensitive(reason) walk must stay silent.
    EXPECT_EQ(countOf(r.output, "[no-unordered-iteration]"), 2u)
        << r.output;
    EXPECT_NE(r.output.find("'lines'"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("'pending'"), std::string::npos) << r.output;
    EXPECT_EQ(countOf(r.output, "[suppression-audit]"), 0u) << r.output;
}

TEST(LintCanary, PointerOrderingFixtureFullyReported)
{
    const ToolResult r = runLint(canary("pointer_ordering.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    // map-on-pointer, set-of-pointers, &a < &b, get() < get().
    EXPECT_EQ(countOf(r.output, "[no-pointer-ordering]"), 4u) << r.output;
}

TEST(LintCanary, SwitchDefaultFixtureReported)
{
    const ToolResult r = runLint(canary("switch_default.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    EXPECT_EQ(countOf(r.output, "[protocol-switch-exhaustiveness]"), 1u)
        << r.output;
    EXPECT_NE(r.output.find("'Kind'"), std::string::npos) << r.output;
}

TEST(LintCanary, ChoiceSeamFixtureReportedUnderTimingPath)
{
    const ToolResult r = runLint(
        "--treat-as src/mem/rogue_component.cc " + canary("choice_seam.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    // splitmix64 definition + use, and the unregistered choose() call.
    EXPECT_EQ(countOf(r.output, "[choice-seam]"), 3u) << r.output;
}

TEST(LintCanary, ChoiceSeamFixtureSilentOutsideTimingLayers)
{
    // The same file classified as non-timing code: entropy primitives
    // are legal there (workload data generation uses them), and no
    // registered-seam rule applies.
    const ToolResult r = runLint(
        "--treat-as src/workloads/datagen.cc " + canary("choice_seam.cc"));
    EXPECT_EQ(countOf(r.output, "[choice-seam]"), 1u) << r.output;
    EXPECT_NE(r.output.find("choose"), std::string::npos) << r.output;
}

TEST(LintCanary, SuppressionAuditFixtureFullyReported)
{
    const ToolResult r = runLint(canary("suppression_audit.cc"));
    EXPECT_EQ(r.exit, 1) << r.output;
    // Empty reason, unknown check, unparsable annotation.
    EXPECT_EQ(countOf(r.output, "[suppression-audit]"), 3u) << r.output;
    // The empty-reason annotation must NOT suppress its walk.
    EXPECT_EQ(countOf(r.output, "[no-unordered-iteration]"), 1u)
        << r.output;
}

TEST(LintCanary, RealSrcTreeIsClean)
{
    const ToolResult r =
        runLint(std::string("-p ") + MCSIM_LINT_BUILD_DIR + " " +
                MCSIM_LINT_SOURCE_DIR + "/src");
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_NE(r.output.find("mcsim-lint: clean"), std::string::npos)
        << r.output;
}

TEST(LintCanary, EverySuppressionInTreeCarriesAReason)
{
    const ToolResult r =
        runLint(std::string("--list-suppressions -p ") +
                MCSIM_LINT_BUILD_DIR + " " + MCSIM_LINT_SOURCE_DIR +
                "/src");
    EXPECT_EQ(r.exit, 0) << r.output;
    EXPECT_EQ(r.output.find("<malformed>"), std::string::npos) << r.output;

    // Parse `path:line: check(reason)` lines; reasons must be non-empty.
    unsigned suppressions = 0;
    std::size_t pos = 0;
    while (pos < r.output.size()) {
        std::size_t eol = r.output.find('\n', pos);
        if (eol == std::string::npos)
            eol = r.output.size();
        const std::string line = r.output.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("mcsim-lint:", 0) == 0)
            continue;  // summary line
        const std::size_t open = line.find('(');
        const std::size_t close = line.rfind(')');
        if (open == std::string::npos || close == std::string::npos)
            continue;
        ++suppressions;
        EXPECT_GT(close, open + 1) << "empty reason: " << line;
    }
    // The known waivers: processor x2, ordering_linter, axiom_checker,
    // memory_module, sweep x2. More may be added; never fewer silently.
    EXPECT_GE(suppressions, 7u) << r.output;
}

} // namespace
