/**
 * @file
 * Choice-vector recording and replay for the model checker
 * (DESIGN.md section 12).
 *
 * A run of the machine under a ChoiceScheduler is a deterministic
 * function of the sequence of indices the scheduler returns -- the
 * *choice vector*. Two schedulers live here:
 *
 *  - VectorScheduler drives the explorer's depth-first search: it
 *    replays a prefix of forced decisions (the path to the current
 *    branch node), picks the first non-sleeping alternative beyond it,
 *    and records every choice point it passes (options, pick, and the
 *    sleep set on arrival) so the explorer can extend its search path.
 *  - ReplayScheduler plays back a bare choice vector ("2.0.1"),
 *    picking index 0 past its end. It is what `mc_runner --replay`
 *    and counterexample minimization use: feeding the same vector
 *    twice must reproduce the identical run.
 */

#ifndef MCSIM_MC_SCHEDULE_HH
#define MCSIM_MC_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/choice.hh"

namespace mcsim::mc
{

/**
 * The independence relation the sleep-set reduction is built on: moves
 * touching distinct protocol objects (cache lines) commute. Moves on
 * the same line are conservatively dependent. `--dpor off` gives the
 * unreduced ground truth this abstraction is cross-checked against.
 */
inline bool
independent(const ChoiceOption &a, const ChoiceOption &b)
{
    return a.object != b.object;
}

/** True when @p moves contains @p move (full identity: object + aux). */
bool sleepContains(const std::vector<ChoiceOption> &moves,
                   const ChoiceOption &move);

/** One resolved choice point of a recorded run. */
struct ChoiceRecord
{
    ChoiceKind kind = ChoiceKind::NetDeliver;
    unsigned chosen = 0;
    std::vector<ChoiceOption> options;
    /** Sleep set on arrival at this node (DPOR bookkeeping). */
    std::vector<ChoiceOption> sleep;
};

/** "2.0.1" -- dotted decimal encoding of a choice vector. */
std::string formatVector(const std::vector<unsigned> &vec);

/** Parse the dotted form; false on malformed input. Empty string and
 *  the spelling "-" both decode to the empty (all-zeros) vector. */
bool parseVector(const std::string &text, std::vector<unsigned> &out);

/** Forced decision for one prefix node of a VectorScheduler run. */
struct PrefixNode
{
    unsigned chosen = 0;
    /** Sleep set to impose on arrival (includes the alternatives
     *  already explored at the branch node). */
    std::vector<ChoiceOption> sleep;
};

/** The explorer's recording scheduler (see file header). */
class VectorScheduler : public ChoiceScheduler
{
  public:
    /** @param prefix forced decisions for the first nodes
     *  @param use_sleep apply sleep-set pruning beyond the prefix
     *  (false = naive enumeration: always pick index 0 there) */
    explicit VectorScheduler(std::vector<PrefixNode> prefix,
                             bool use_sleep);

    unsigned choose(ChoiceKind kind, const ChoiceOption *options,
                    unsigned n) override;
    void onDelivery(const DeliveryRecord &record) override;

    const std::vector<ChoiceRecord> &records() const { return recs; }
    const std::vector<DeliveryRecord> &timeline() const
    {
        return deliveries;
    }
    /** A node past the prefix had every option sleeping (the run is
     *  redundant with an already-explored Mazurkiewicz trace). */
    bool sleepBlocked() const { return blocked; }

  private:
    std::vector<PrefixNode> prefix;
    bool useSleep;
    /** Sleep set propagated to the next fresh node. */
    std::vector<ChoiceOption> sleepNow;
    std::vector<ChoiceRecord> recs;
    std::vector<DeliveryRecord> deliveries;
    bool blocked = false;
};

/** Bare choice-vector playback (see file header). */
class ReplayScheduler : public ChoiceScheduler
{
  public:
    explicit ReplayScheduler(std::vector<unsigned> vec);

    unsigned choose(ChoiceKind kind, const ChoiceOption *options,
                    unsigned n) override;
    void onDelivery(const DeliveryRecord &record) override;

    const std::vector<DeliveryRecord> &timeline() const
    {
        return deliveries;
    }
    /** Indices actually executed (vector entries clamped into range). */
    const std::vector<unsigned> &executed() const { return picks; }
    /** Vector entries that were out of range for their node and fell
     *  back to index 0 (a vector recorded on a different config). */
    std::uint64_t divergences() const { return diverged; }

  private:
    std::vector<unsigned> vec;
    std::vector<unsigned> picks;
    std::vector<DeliveryRecord> deliveries;
    std::uint64_t diverged = 0;
};

} // namespace mcsim::mc

#endif // MCSIM_MC_SCHEDULE_HH
