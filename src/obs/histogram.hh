/**
 * @file
 * Log2-bucketed latency histogram (DESIGN.md section 10).
 *
 * Bucket b holds values whose bit width is b, i.e. bucket 0 holds only
 * 0, bucket b >= 1 holds [2^(b-1), 2^b - 1]. Quantiles are reported as
 * the upper edge of the bucket containing the requested rank (capped at
 * the exact observed maximum), so they are deterministic integers: a
 * merge of per-component histograms in a fixed order yields the same
 * summary no matter how many sweep worker threads ran, which keeps the
 * golden baselines exact-match.
 */

#ifndef MCSIM_OBS_HISTOGRAM_HH
#define MCSIM_OBS_HISTOGRAM_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace mcsim::obs
{

/** Fixed-size log2 histogram of cycle counts. */
struct LatencyHistogram
{
    /** std::bit_width of a uint64_t is in [0, 64]. */
    static constexpr unsigned numBuckets = 65;

    std::array<std::uint64_t, numBuckets> counts{};
    std::uint64_t samples = 0;
    std::uint64_t sum = 0;
    std::uint64_t maxValue = 0;

    void
    record(std::uint64_t value)
    {
        counts[std::bit_width(value)] += 1;
        samples += 1;
        sum += value;
        maxValue = std::max(maxValue, value);
    }

    /** Element-wise merge; order-independent, so deterministic. */
    void
    merge(const LatencyHistogram &other)
    {
        for (unsigned b = 0; b < numBuckets; ++b)
            counts[b] += other.counts[b];
        samples += other.samples;
        sum += other.sum;
        maxValue = std::max(maxValue, other.maxValue);
    }

    double
    mean() const
    {
        return samples ? static_cast<double>(sum) /
                             static_cast<double>(samples)
                       : 0.0;
    }

    /** Inclusive upper edge of bucket @p b. */
    static std::uint64_t
    bucketUpper(unsigned b)
    {
        return b == 0 ? 0 : (std::uint64_t(1) << b) - 1;
    }

    /**
     * Deterministic upper-bound quantile: the upper edge of the bucket
     * containing rank ceil(p * samples), capped at the exact maximum.
     * Returns 0 when empty.
     */
    std::uint64_t
    quantile(double p) const
    {
        if (samples == 0)
            return 0;
        const double exact = p * static_cast<double>(samples);
        std::uint64_t rank =
            static_cast<std::uint64_t>(std::ceil(exact));
        rank = std::clamp<std::uint64_t>(rank, 1, samples);
        std::uint64_t cumulative = 0;
        for (unsigned b = 0; b < numBuckets; ++b) {
            cumulative += counts[b];
            if (cumulative >= rank)
                return std::min(bucketUpper(b), maxValue);
        }
        return maxValue;
    }

    std::uint64_t p50() const { return quantile(0.50); }
    std::uint64_t p90() const { return quantile(0.90); }
    std::uint64_t p99() const { return quantile(0.99); }
};

} // namespace mcsim::obs

#endif // MCSIM_OBS_HISTOGRAM_HH
