/**
 * @file
 * C++20 coroutine task used to express simulated programs.
 *
 * A workload is a coroutine returning SimTask. It issues abstract
 * instructions by co_awaiting awaitables supplied by its Processor; the
 * processor suspends/resumes the coroutine according to the timing rules of
 * the consistency model being simulated.
 */

#ifndef MCSIM_SIM_TASK_HH
#define MCSIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <utility>

namespace mcsim
{

/**
 * An eagerly-suspended coroutine handle with RAII ownership.
 *
 * The coroutine body does not start executing until resume() is first
 * called; it suspends at its final point so done() and rethrowIfFailed()
 * remain valid until destruction.
 */
class SimTask
{
  public:
    struct promise_type
    {
        std::exception_ptr exception;

        SimTask
        get_return_object()
        {
            return SimTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            exception = std::current_exception();
        }
    };

    SimTask() = default;

    explicit SimTask(std::coroutine_handle<promise_type> h) : handle(h) {}

    SimTask(SimTask &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}

    SimTask &
    operator=(SimTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, nullptr);
        }
        return *this;
    }

    SimTask(const SimTask &) = delete;
    SimTask &operator=(const SimTask &) = delete;

    ~SimTask() { destroy(); }

    /** True when a coroutine is attached. */
    bool valid() const { return static_cast<bool>(handle); }

    /** True when the coroutine has run to completion (or threw). */
    bool done() const { return !handle || handle.done(); }

    /** Resume the coroutine; it runs until its next suspension point. */
    void
    resume()
    {
        if (handle && !handle.done())
            handle.resume();
    }

    /** Re-raise any exception that escaped the coroutine body. */
    void
    rethrowIfFailed() const
    {
        if (handle && handle.promise().exception)
            std::rethrow_exception(handle.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle;
};

/**
 * An awaitable sub-coroutine, used to write reusable simulated routines
 * (lock acquire, barrier wait) that workloads invoke with
 * `co_await routine(...)`. The child starts when awaited; when it
 * completes, control transfers symmetrically back to the caller.
 *
 * @tparam T the value the routine co_returns (void by default).
 */
template <typename T = void>
class SubTask
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;
        // Storage for the co_returned value; unused specialization-free
        // trick: a union-free optional-like slot.
        alignas(T) unsigned char slot[sizeof(T)];
        bool hasValue = false;

        SubTask get_return_object() { return SubTask(Handle::from_promise(*this)); }
        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }

        void
        return_value(T value)
        {
            new (slot) T(std::move(value));
            hasValue = true;
        }

        void unhandled_exception() { exception = std::current_exception(); }

        ~promise_type()
        {
            if (hasValue)
                reinterpret_cast<T *>(slot)->~T();
        }
    };

    SubTask() = default;
    explicit SubTask(Handle h) : handle(h) {}
    SubTask(SubTask &&o) noexcept : handle(std::exchange(o.handle, nullptr)) {}
    SubTask &
    operator=(SubTask &&o) noexcept
    {
        if (this != &o) {
            if (handle)
                handle.destroy();
            handle = std::exchange(o.handle, nullptr);
        }
        return *this;
    }
    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    ~SubTask()
    {
        if (handle)
            handle.destroy();
    }

    bool await_ready() const { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> caller)
    {
        handle.promise().continuation = caller;
        return handle;  // start the child
    }

    T
    await_resume()
    {
        auto &p = handle.promise();
        if (p.exception)
            std::rethrow_exception(p.exception);
        return std::move(*reinterpret_cast<T *>(p.slot));
    }

  private:
    Handle handle;
};

/** void specialization: routines with no result. */
template <>
class SubTask<void>
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        std::coroutine_handle<> continuation;
        std::exception_ptr exception;

        SubTask get_return_object() { return SubTask(Handle::from_promise(*this)); }
        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { exception = std::current_exception(); }
    };

    SubTask() = default;
    explicit SubTask(Handle h) : handle(h) {}
    SubTask(SubTask &&o) noexcept : handle(std::exchange(o.handle, nullptr)) {}
    SubTask &
    operator=(SubTask &&o) noexcept
    {
        if (this != &o) {
            if (handle)
                handle.destroy();
            handle = std::exchange(o.handle, nullptr);
        }
        return *this;
    }
    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    ~SubTask()
    {
        if (handle)
            handle.destroy();
    }

    bool await_ready() const { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> caller)
    {
        handle.promise().continuation = caller;
        return handle;
    }

    void
    await_resume()
    {
        if (handle.promise().exception)
            std::rethrow_exception(handle.promise().exception);
    }

  private:
    Handle handle;
};

} // namespace mcsim

#endif // MCSIM_SIM_TASK_HH
